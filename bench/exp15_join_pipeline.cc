// E15 (ablation) — A0 as a join operator (paper §4.2): Garlic implemented
// the fuzzy merge as a join so plans could compose. We compare evaluating a
// 3-way conjunction (a) flat, as one 3-ary TA, vs (b) as a left-deep
// pipeline of binary lazy joins, for both full-result and top-k
// consumption. The pipeline's virtue is composability and lazy prefix
// consumption; its cost is re-buffering between stages.

#include "bench_util.h"
#include "middleware/cost.h"
#include "middleware/join.h"
#include "middleware/threshold.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;
constexpr size_t kN = 20000;

void PrintTables() {
  Banner("E15: flat 3-ary TA vs left-deep binary join pipeline "
         "(min rule, N=20000)");
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, kN, 3);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "E15 sources");
  std::vector<GradedSource*> ptrs = SourcePtrs(sources);
  ScoringRulePtr min = MinRule();

  TablePrinter table({"k", "flat-ta-cost", "pipeline-cost",
                      "pipeline/flat"});
  for (size_t k : {1u, 10u, 100u}) {
    // Flat 3-ary TA.
    TopKResult flat = CheckedValue(ThresholdTopK(ptrs, *min, k), "E15 flat");

    // Left-deep pipeline: (A join B) join C, pulling the top k lazily.
    AccessCost cost;
    CountingSource a(ptrs[0], &cost);
    CountingSource b(ptrs[1], &cost);
    CountingSource c(ptrs[2], &cost);
    TopKJoinSource inner =
        CheckedValue(TopKJoinSource::Create(&a, &b, min, "A*B"), "inner");
    TopKJoinSource outer =
        CheckedValue(TopKJoinSource::Create(&inner, &c, min, "(A*B)*C"),
                     "outer");
    size_t produced = 0;
    while (produced < k && outer.NextSorted().has_value()) ++produced;

    table.AddRow({std::to_string(k), std::to_string(flat.cost.total()),
                  std::to_string(cost.total()),
                  TablePrinter::Num(static_cast<double>(cost.total()) /
                                        static_cast<double>(
                                            flat.cost.total()),
                                    3)});
  }
  table.Print();
  std::cout << "Expectation: the pipeline stays competitive with the flat "
               "plan — here it even undercuts it by ~2x, because each "
               "binary stage pays only one random probe per new object and "
               "the inner join's output arrives pre-merged — while gaining "
               "composability: each stage is an ordinary GradedSource, "
               "which is exactly why Garlic chose the join formulation.\n";
}

void BM_PipelineVsFlat(benchmark::State& state) {
  const bool pipeline = state.range(0) != 0;
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, kN, 3);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "bench sources");
  std::vector<GradedSource*> ptrs = SourcePtrs(sources);
  ScoringRulePtr min = MinRule();
  for (auto _ : state) {
    if (pipeline) {
      TopKJoinSource inner = CheckedValue(
          TopKJoinSource::Create(ptrs[0], ptrs[1], min), "inner");
      TopKJoinSource outer = CheckedValue(
          TopKJoinSource::Create(&inner, ptrs[2], min), "outer");
      for (int i = 0; i < 10; ++i) {
        benchmark::DoNotOptimize(outer.NextSorted());
      }
    } else {
      TopKResult r = CheckedValue(ThresholdTopK(ptrs, *min, 10), "flat");
      benchmark::DoNotOptimize(r.items.data());
    }
  }
  state.SetLabel(pipeline ? "pipeline" : "flat-ta");
}
BENCHMARK(BM_PipelineVsFlat)->Arg(0)->Arg(1);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
