// E9 — precomputed pairwise distances (paper §2.1): for a small,
// rarely-updated collection ("a few thousand images"), caching all pairwise
// color distances removes quadratic-form evaluations from query time
// entirely. We compare three ways to answer "10 images most similar to
// image #i": full distance per candidate, the eigen-filter search, and the
// precomputed cache.

#include "bench_util.h"

#include <chrono>

#include "image/bounding.h"
#include "image/precompute.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;
constexpr size_t kImages = 2000;
constexpr size_t kK = 10;
constexpr int kQueries = 20;

struct Setup {
  ImageStore store;
  std::vector<Histogram> histograms;
};

Setup MakeSetup() {
  ImageStoreOptions options;
  options.num_images = kImages;
  options.palette_size = 64;
  options.seed = kSeed;
  Setup s{CheckedValue(ImageStore::Generate(options), "E9 store"), {}};
  for (const ImageRecord& rec : s.store.images()) {
    s.histograms.push_back(rec.histogram);
  }
  return s;
}

void PrintTables() {
  Banner("E9: precomputed distances (2000 images, 64-bin histograms, k=10)");
  Setup s = MakeSetup();
  const QuadraticFormDistance& qfd = s.store.color_distance();
  EigenFilter filter = CheckedValue(EigenFilter::Create(qfd, 3), "E9 filter");

  auto now = [] { return std::chrono::steady_clock::now(); };
  auto us = [](auto a, auto b) {
    return std::chrono::duration_cast<std::chrono::microseconds>(b - a)
               .count() /
           static_cast<double>(kQueries);
  };

  // Strategy 1: full distance to every candidate.
  auto t0 = now();
  size_t sink = 0;
  for (int q = 0; q < kQueries; ++q) {
    auto r = ExactKnn(qfd, s.histograms, s.histograms[q * 97 % kImages], kK);
    sink += r[0].first;
  }
  auto t1 = now();

  // Strategy 2: eigen-filtered search.
  size_t full_evals = 0;
  for (int q = 0; q < kQueries; ++q) {
    FilteredSearchStats stats;
    auto r = CheckedValue(
        FilteredKnn(qfd, filter, s.histograms,
                    s.histograms[q * 97 % kImages], kK, &stats),
        "E9 filtered");
    sink += r[0].first;
    full_evals += stats.full_distance_computations;
  }
  auto t2 = now();

  // Strategy 3: precomputed cache (build once, then O(N) scalar scans).
  auto tb0 = now();
  PairwiseDistanceCache cache =
      CheckedValue(PairwiseDistanceCache::Build(s.store), "E9 cache");
  auto tb1 = now();
  for (int q = 0; q < kQueries; ++q) {
    auto r = cache.Nearest(q * 97 % kImages, kK);
    sink += r[0].first;
  }
  auto t3 = now();
  benchmark::DoNotOptimize(sink);

  TablePrinter table({"strategy", "per-query-us", "dist-evals/query"});
  table.AddRow({"full-distance scan", TablePrinter::Num(us(t0, t1), 4),
                std::to_string(kImages)});
  table.AddRow({"eigen-filter (dim 3)", TablePrinter::Num(us(t1, t2), 4),
                TablePrinter::Num(
                    static_cast<double>(full_evals) / kQueries, 4)});
  table.AddRow({"precomputed cache", TablePrinter::Num(us(tb1, t3), 4),
                "0"});
  table.Print();
  std::cout << "One-time cache build: "
            << std::chrono::duration_cast<std::chrono::milliseconds>(tb1 -
                                                                     tb0)
                   .count()
            << " ms for " << kImages * (kImages - 1) / 2 << " pairs.\n"
            << "Expectation: cache answers with zero distance evaluations; "
               "the filter sits in between; both beat the full scan.\n";
}

void BM_QueryStrategy(benchmark::State& state) {
  static Setup s = MakeSetup();
  static PairwiseDistanceCache cache =
      CheckedValue(PairwiseDistanceCache::Build(s.store), "bench cache");
  static EigenFilter filter = CheckedValue(
      EigenFilter::Create(s.store.color_distance(), 3), "bench filter");
  const int which = static_cast<int>(state.range(0));
  size_t q = 0;
  for (auto _ : state) {
    size_t probe = (q++ * 97) % kImages;
    switch (which) {
      case 0: {
        auto r = ExactKnn(s.store.color_distance(), s.histograms,
                          s.histograms[probe], kK);
        benchmark::DoNotOptimize(r.data());
        break;
      }
      case 1: {
        auto r = CheckedValue(
            FilteredKnn(s.store.color_distance(), filter, s.histograms,
                        s.histograms[probe], kK),
            "bench filtered");
        benchmark::DoNotOptimize(r.data());
        break;
      }
      default: {
        auto r = cache.Nearest(probe, kK);
        benchmark::DoNotOptimize(r.data());
        break;
      }
    }
  }
  state.SetLabel(which == 0 ? "full" : which == 1 ? "filtered" : "cache");
}
BENCHMARK(BM_QueryStrategy)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
