// Shared scaffolding for the experiment binaries: every bench prints its
// paper-style result tables first (deterministic, recorded in
// EXPERIMENTS.md), then runs its google-benchmark timing section.

#ifndef FUZZYDB_BENCH_BENCH_UTIL_H_
#define FUZZYDB_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "json_report.h"
#include "sim/experiment.h"

namespace fuzzydb {

/// Prints a section banner.
inline void Banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Aborts the bench loudly if a Status is not OK (benches have no gtest).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status.ToString() << "\n";
    std::abort();
  }
}

template <typename T>
T CheckedValue(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status().ToString() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace fuzzydb

/// Defines main(): tables first, then benchmarks.
#define FUZZYDB_BENCH_MAIN(print_tables_fn)          \
  int main(int argc, char** argv) {                  \
    print_tables_fn();                               \
    ::benchmark::Initialize(&argc, argv);            \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();           \
    ::benchmark::Shutdown();                         \
    return 0;                                        \
  }

#endif  // FUZZYDB_BENCH_BENCH_UTIL_H_
