// Shared scaffolding for the experiment binaries: every bench prints its
// paper-style result tables first (deterministic, recorded in
// EXPERIMENTS.md), then runs its google-benchmark timing section.

#ifndef FUZZYDB_BENCH_BENCH_UTIL_H_
#define FUZZYDB_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.h"

namespace fuzzydb {

/// Prints a section banner.
inline void Banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Machine-readable bench output: a flat JSON object of "key": value pairs
/// (dotted keys for structure, e.g. "cascade.ops_per_sec"), written in one
/// shot so later PRs can track a perf trajectory across runs.
class JsonReport {
 public:
  void Set(const std::string& key, double value) {
    std::ostringstream os;
    os.precision(10);
    os << value;
    entries_.emplace_back(key, os.str());
  }
  void Set(const std::string& key, size_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void Set(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + value + "\"");
  }

  /// Writes `{ "k": v, ... }` to `path` and says so on stdout.
  void WriteFile(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return;
    }
    out << "{\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out << "  \"" << entries_[i].first << "\": " << entries_[i].second
          << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    out << "}\n";
    std::cout << "wrote " << path << " (" << entries_.size() << " metrics)\n";
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Aborts the bench loudly if a Status is not OK (benches have no gtest).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status.ToString() << "\n";
    std::abort();
  }
}

template <typename T>
T CheckedValue(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status().ToString() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace fuzzydb

/// Defines main(): tables first, then benchmarks.
#define FUZZYDB_BENCH_MAIN(print_tables_fn)          \
  int main(int argc, char** argv) {                  \
    print_tables_fn();                               \
    ::benchmark::Initialize(&argc, argv);            \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();           \
    ::benchmark::Shutdown();                         \
    return 0;                                        \
  }

#endif  // FUZZYDB_BENCH_BENCH_UTIL_H_
