// E1 — Theorem 4.1/4.2: A0's database access cost over m independent lists
// grows as N^((m-1)/m) * k^(1/m). We sweep N for m in {2,3,4} and k in
// {1,10,100}, fit the log-log slope, and compare with the predicted
// exponent (m-1)/m. The k-dependence is probed at fixed N.

#include <cmath>

#include "bench_util.h"
#include "middleware/fagin.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;

void PrintTables() {
  Banner("E1: A0 cost scaling vs Theorem 4.1/4.2 (cost ~ N^((m-1)/m) k^(1/m))");
  const std::vector<size_t> ns{1000, 3162, 10000, 31623, 100000};

  TablePrinter table(
      {"m", "k", "N=1e3", "N=10^3.5", "N=1e4", "N=10^4.5", "N=1e5",
       "fitted-exp", "theory-exp"});
  for (size_t m : {2u, 3u, 4u}) {
    for (size_t k : {1u, 10u, 100u}) {
      Result<std::vector<CostPoint>> points = SweepCost(
          [m](Rng* rng, size_t n) { return IndependentUniform(rng, n, m); },
          [](std::span<GradedSource* const> sources, size_t kk) {
            return FaginTopK(sources, *MinRule(), kk);
          },
          ns, m, k, /*trials=*/3, kSeed);
      std::vector<CostPoint> pts =
          CheckedValue(std::move(points), "E1 sweep");
      LinearFit fit = CheckedValue(FitCostExponent(pts), "E1 fit");
      std::vector<std::string> row{std::to_string(m), std::to_string(k)};
      for (const CostPoint& p : pts) {
        row.push_back(std::to_string(p.cost.total()));
      }
      row.push_back(TablePrinter::Num(fit.slope, 3));
      row.push_back(TablePrinter::Num(
          static_cast<double>(m - 1) / static_cast<double>(m), 3));
      table.AddRow(std::move(row));
    }
  }
  table.Print();

  Banner("E1b: k-dependence at N=1e5, m=2 (theory: cost ~ sqrt(k))");
  TablePrinter ktable({"k", "cost", "cost/sqrt(kN)"});
  for (size_t k : {1u, 4u, 16u, 64u, 256u}) {
    std::vector<CostPoint> pts = CheckedValue(
        SweepCost(
            [](Rng* rng, size_t n) { return IndependentUniform(rng, n, 2); },
            [](std::span<GradedSource* const> sources, size_t kk) {
              return FaginTopK(sources, *MinRule(), kk);
            },
            {100000}, 2, k, 3, kSeed),
        "E1b sweep");
    double cost = static_cast<double>(pts[0].cost.total());
    ktable.AddRow({std::to_string(k), TablePrinter::Num(cost, 6),
                   TablePrinter::Num(
                       cost / std::sqrt(static_cast<double>(k) * 100000.0),
                       3)});
  }
  ktable.Print();
}

void BM_FaginTopK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t m = static_cast<size_t>(state.range(1));
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, n, m);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "bench sources");
  std::vector<GradedSource*> ptrs = SourcePtrs(sources);
  ScoringRulePtr min = MinRule();
  uint64_t cost = 0;
  for (auto _ : state) {
    TopKResult r = CheckedValue(FaginTopK(ptrs, *min, 10), "bench run");
    cost = r.cost.total();
    benchmark::DoNotOptimize(r.items.data());
  }
  state.counters["access_cost"] = static_cast<double>(cost);
}
BENCHMARK(BM_FaginTopK)
    ->Args({10000, 2})
    ->Args({100000, 2})
    ->Args({100000, 3})
    ->Args({100000, 4});

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
