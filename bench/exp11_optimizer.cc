// E11 (ablation) — does the cost-based optimizer pick the right plan?
// For each (N, random-access price) cell we run *every* applicable
// algorithm, measure its true charged cost, and compare the optimizer's
// choice against the measured winner. This closes the loop on the paper's
// §4.2 "cost modeling issues": the Theorem-4.1 estimates are good enough to
// plan with.

#include <cmath>

#include "bench_util.h"
#include "middleware/combined.h"
#include "middleware/fagin.h"
#include "middleware/naive.h"
#include "middleware/nra.h"
#include "middleware/optimizer.h"
#include "middleware/threshold.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;
constexpr size_t kK = 10;

struct Measured {
  std::string name;
  double charged;
};

void PrintTables() {
  Banner("E11: optimizer plan choice vs measured winner (m=2, k=10)");
  TablePrinter table({"N", "rand-price", "chosen", "est-cost",
                      "measured-winner", "winner-cost", "chosen-cost",
                      "regret"});
  // E11b closes the loop for CA specifically: the considered-plan list now
  // carries "ca(h=N)" with the price-derived period, and its estimate must
  // sit in the same accuracy band as TA's and NRA's against measured cost.
  TablePrinter etable({"N", "rand-price", "plan", "est-cost",
                       "measured-cost", "est/measured"});
  QueryPtr query =
      Query::And({Query::Atomic("A", "x"), Query::Atomic("B", "y")});

  for (size_t n : {2000u, 50000u}) {
    Rng rng(kSeed + n);
    Workload w = IndependentUniform(&rng, n, 2);
    std::vector<VectorSource> sources =
        CheckedValue(w.MakeSources(), "E11 sources");
    std::vector<GradedSource*> ptrs = SourcePtrs(sources);
    ScoringRulePtr min = MinRule();

    AccessCost naive = CheckedValue(NaiveTopK(ptrs, *min, kK), "naive").cost;
    AccessCost a0 = CheckedValue(FaginTopK(ptrs, *min, kK), "a0").cost;
    AccessCost ta = CheckedValue(ThresholdTopK(ptrs, *min, kK), "ta").cost;
    AccessCost nra =
        CheckedValue(NoRandomAccessTopK(ptrs, *min, kK), "nra").cost;

    for (double price : {0.1, 1.0, 10.0, 100.0}) {
      // CA's period follows the price ratio, so it is re-run per price.
      size_t h = static_cast<size_t>(std::max(1.0, price));
      AccessCost ca =
          CheckedValue(CombinedTopK(ptrs, *min, kK, h), "ca").cost;
      std::vector<Measured> measured{
          {"naive", naive.Charged(price)},
          {"fagin-a0", a0.Charged(price)},
          {"ta", ta.Charged(price)},
          {"nra", nra.Charged(price)},
          {"ca", ca.Charged(price)},
      };
      const Measured* winner = &measured[0];
      for (const Measured& m : measured) {
        if (m.charged < winner->charged) winner = &m;
      }
      CostModel model;
      model.random_unit = price;
      PlanChoice choice =
          CheckedValue(ChoosePlan(*query, n, kK, model), "E11 plan");
      double chosen_cost = 0.0;
      for (const Measured& m : measured) {
        if (m.name == AlgorithmName(choice.algorithm)) {
          chosen_cost = m.charged;
        }
      }
      table.AddRow(
          {std::to_string(n), TablePrinter::Num(price, 4),
           AlgorithmName(choice.algorithm),
           TablePrinter::Num(choice.estimated_cost, 5), winner->name,
           TablePrinter::Num(winner->charged, 5),
           TablePrinter::Num(chosen_cost, 5),
           TablePrinter::Num(chosen_cost / winner->charged, 3)});

      // Estimate-vs-measured, read back off the considered list so the
      // "ca(h=N)" label is exercised the same way EXPLAIN consumes it.
      auto considered_estimate = [&](const std::string& base) {
        for (const auto& [label, est] : choice.considered) {
          if (ConsideredBaseName(label) == base) return est;
        }
        return std::nan("");
      };
      auto add_estimate_row = [&](const std::string& base, double charged) {
        etable.AddRow({std::to_string(n), TablePrinter::Num(price, 4), base,
                       TablePrinter::Num(considered_estimate(base), 5),
                       TablePrinter::Num(charged, 5),
                       TablePrinter::Num(considered_estimate(base) / charged,
                                         3)});
      };
      add_estimate_row("ta", ta.Charged(price));
      add_estimate_row("nra", nra.Charged(price));
      add_estimate_row("ca", ca.Charged(price));
    }
  }
  table.Print();
  Banner("E11b: estimate vs measured charged cost (CA accuracy band)");
  etable.Print();
  std::cout << "Expectation: the optimizer switches away from random-access "
               "plans as the price climbs, and regret (chosen/winner charged "
               "cost) stays below 2 in every cell. NRA's estimate is "
               "deliberately conservative (its stopping depth depends on how "
               "fast the rule's lower bounds converge — fast for min, slow "
               "in general), so at cheap random access the optimizer "
               "prefers A0/TA and pays at most the 2x modeling margin.\n"
               "E11b expectation: CA's est/measured ratio stays inside the "
               "band spanned by TA's and NRA's ratios in the same cell — the "
               "period-h formula is no worse a predictor than the Theorem "
               "4.1 formulas it interpolates.\n";
}

void BM_PlanChoice(benchmark::State& state) {
  QueryPtr query =
      Query::And({Query::Atomic("A", "x"), Query::Atomic("B", "y")});
  CostModel model;
  for (auto _ : state) {
    PlanChoice c =
        CheckedValue(ChoosePlan(*query, 100000, kK, model), "bench plan");
    benchmark::DoNotOptimize(c.estimated_cost);
  }
}
BENCHMARK(BM_PlanChoice);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
