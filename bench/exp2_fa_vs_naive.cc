// E2 — A0 vs the naive algorithm (paper §4.1): naive costs m·N; A0 costs
// ~sqrt(kN) at m=2, so the advantage grows without bound as N grows. The
// table reports both costs and the speedup factor.

#include "bench_util.h"
#include "middleware/fagin.h"
#include "middleware/naive.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;

void PrintTables() {
  Banner("E2: A0 vs naive, m=2, k=10 (naive = 2N; A0 ~ sqrt(kN))");
  TablePrinter table({"N", "naive", "fagin-a0", "a0-sorted", "a0-random",
                      "speedup"});
  for (size_t n : {1000u, 10000u, 100000u, 300000u}) {
    std::vector<CostPoint> naive = CheckedValue(
        SweepCost(
            [](Rng* rng, size_t nn) {
              return IndependentUniform(rng, nn, 2);
            },
            [](std::span<GradedSource* const> s, size_t k) {
              return NaiveTopK(s, *MinRule(), k);
            },
            {n}, 2, 10, 3, kSeed),
        "E2 naive");
    std::vector<CostPoint> fagin = CheckedValue(
        SweepCost(
            [](Rng* rng, size_t nn) {
              return IndependentUniform(rng, nn, 2);
            },
            [](std::span<GradedSource* const> s, size_t k) {
              return FaginTopK(s, *MinRule(), k);
            },
            {n}, 2, 10, 3, kSeed),
        "E2 fagin");
    double ratio = static_cast<double>(naive[0].cost.total()) /
                   static_cast<double>(fagin[0].cost.total());
    table.AddRow({std::to_string(n), std::to_string(naive[0].cost.total()),
                  std::to_string(fagin[0].cost.total()),
                  std::to_string(fagin[0].cost.sorted),
                  std::to_string(fagin[0].cost.random),
                  TablePrinter::Num(ratio, 4)});
  }
  table.Print();
  std::cout << "Expectation: speedup ~ 2N / (c*sqrt(10N)) grows like "
               "sqrt(N); A0 wins everywhere, by ~100x at N=3e5.\n";
}

void BM_NaiveVsFagin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool use_fagin = state.range(1) != 0;
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, n, 2);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "bench sources");
  std::vector<GradedSource*> ptrs = SourcePtrs(sources);
  ScoringRulePtr min = MinRule();
  for (auto _ : state) {
    TopKResult r = CheckedValue(
        use_fagin ? FaginTopK(ptrs, *min, 10) : NaiveTopK(ptrs, *min, 10),
        "bench run");
    benchmark::DoNotOptimize(r.items.data());
  }
}
BENCHMARK(BM_NaiveVsFagin)
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->ArgNames({"N", "fagin"});

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
