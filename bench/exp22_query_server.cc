// E22 — the multi-tenant query server under open-loop Poisson load
// (DESIGN §3j). A stream of top-k queries arrives with exponential
// inter-arrival times and is submitted to a QueryServer; the sweep is
// arrival rate (as a load factor of the measured serial service rate) ×
// query mix {conjunctive, disjunctive, weighted, join} × pool size.
//
// Per cell the harness reports p50/p99/p999 sojourn latency (completion
// minus *scheduled* arrival, so queueing delay is charged even when the
// submitter fell behind — no coordinated omission), measured throughput,
// the admission-rejection rate (TryPost refusals surfaced as explicit
// ResourceExhausted, never silent drops), and the plan/result cache hit
// ratio (~30% of the stream repeats a hot canonical key).
//
// Every completed answer is compared bit-for-bit against a serial
// ExecuteTopK of the same plan — the server's determinism contract: with
// serial per-query ParallelOptions, concurrency lives between queries, so
// mismatches must be zero at every pool size and load. A second section
// puts derived budgets (headroom × the plan's sorted-access estimate) on
// the adversarial PathologicalMiddle workload and cross-checks the
// truncated partial results between a pooled and an inline server.
//
// FUZZYDB_SMOKE=1 shrinks the config to a seconds-long sanity pass and
// skips the BENCH_server.json write.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/simd_dispatch.h"
#include "common/thread_pool.h"
#include "middleware/join.h"
#include "middleware/optimizer.h"
#include "server/query_server.h"
#include "sim/workload.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260807;
constexpr size_t kM = 3;
const size_t kColdKs[] = {3, 5, 8, 10};
constexpr size_t kHotK = 5;

struct BenchConfig {
  size_t n;
  size_t queries_per_cell;
  std::vector<std::pair<const char*, double>> loads;  // name, load factor
  bool write_json;
};

BenchConfig MakeConfig() {
  if (std::getenv("FUZZYDB_SMOKE") != nullptr) {
    return {60, 12, {{"sub", 0.8}}, false};
  }
  return {300, 120, {{"sub", 0.5}, {"over", 2.5}}, true};
}

const char* MixName(size_t mix) {
  const char* names[] = {"conj", "disj", "weighted", "join"};
  return names[mix % 4];
}

// The four tenant query shapes. `target` only perturbs the canonical cache
// key (source resolution is by attribute), which is how the stream mixes
// hot repeats with unique queries.
QueryPtr MixQuery(size_t mix, const std::string& target) {
  switch (mix % 4) {
    case 0:
      return Query::And(
          {Query::Atomic("A", target), Query::Atomic("B", target)});
    case 1:
      return Query::Or({Query::Atomic("A", target),
                        Query::Atomic("B", target),
                        Query::Atomic("C", target)});
    case 2: {
      Weighting theta =
          CheckedValue(Weighting::Create({0.7, 0.3}), "E22 weights");
      return CheckedValue(
          Query::WeightedAnd(
              {Query::Atomic("A", target), Query::Atomic("B", target)},
              theta),
          "E22 weighted query");
    }
    default:
      // The fuzzy merge as a join operator: the atom resolves to a
      // TopKJoinSource over two of the workload's columns.
      return Query::Atomic("J", target);
  }
}

// Per-query execution context: fresh sources (VectorSource carries cursor
// state, so concurrent queries never share instances), the join operator
// for the join mix, and a resolver over them. Outlives the ticket.
struct QueryCtx {
  std::unique_ptr<std::vector<VectorSource>> sources;
  std::unique_ptr<TopKJoinSource> join;
  SourceResolver resolver;
};

QueryCtx MakeCtx(const Workload& w, bool with_join) {
  QueryCtx ctx;
  ctx.sources = std::make_unique<std::vector<VectorSource>>(
      CheckedValue(w.MakeSources(), "E22 sources"));
  std::vector<VectorSource>* raw = ctx.sources.get();
  if (with_join) {
    ctx.join = std::make_unique<TopKJoinSource>(CheckedValue(
        TopKJoinSource::Create(&(*raw)[0], &(*raw)[1], MinRule(), "join"),
        "E22 join"));
  }
  TopKJoinSource* join = ctx.join.get();
  ctx.resolver = [raw, join](const Query& atom) -> Result<GradedSource*> {
    if (atom.attribute() == "A") return &(*raw)[0];
    if (atom.attribute() == "B") return &(*raw)[1];
    if (atom.attribute() == "C") return &(*raw)[2];
    if (atom.attribute() == "J" && join != nullptr) return join;
    return Status::NotFound("unknown attribute " + atom.attribute());
  };
  return ctx;
}

// The server's execution path run serially: same plan choice, same serial
// ParallelOptions — the reference every concurrent answer must match.
ExecutionResult SerialReference(size_t mix, const Workload& w, size_t k) {
  QueryCtx ctx = MakeCtx(w, mix % 4 == 3);
  QueryPtr query = MixQuery(mix, "ref");
  PlanChoice plan = CheckedValue(ChoosePlan(*query, w.n(), k, CostModel{}),
                                 "E22 reference plan");
  ExecutorOptions opts;
  opts.algorithm = plan.algorithm;
  opts.combined_period = plan.combined_period;
  return CheckedValue(ExecuteTopK(query, ctx.resolver, k, opts),
                      "E22 reference run");
}

bool Matches(const TopKResult& got, const ExecutionResult& ref) {
  if (got.items.size() != ref.topk.items.size()) return false;
  for (size_t i = 0; i < got.items.size(); ++i) {
    if (got.items[i].id != ref.topk.items[i].id) return false;
    if (got.items[i].grade != ref.topk.items[i].grade) return false;
  }
  return got.cost.sorted == ref.topk.cost.sorted &&
         got.cost.random == ref.topk.cost.random;
}

// Mean serial service time (seconds) of this mix — the rate calibration
// that turns load factors into arrival rates portably across hosts.
double CalibrateServiceSeconds(size_t mix, const Workload& w) {
  constexpr int kRuns = 12;
  QueryPtr query = MixQuery(mix, "calib");
  PlanChoice plan = CheckedValue(
      ChoosePlan(*query, w.n(), kHotK, CostModel{}), "E22 calibration plan");
  ExecutorOptions opts;
  opts.algorithm = plan.algorithm;
  opts.combined_period = plan.combined_period;
  // Fresh context per run (sources carry cursor state), but only the
  // ExecuteTopK portion is timed: that is the work a pool worker does per
  // admitted query, and hence the capacity the load factors scale.
  std::chrono::duration<double> total{0.0};
  for (int i = 0; i < kRuns; ++i) {
    QueryCtx ctx = MakeCtx(w, mix % 4 == 3);
    const auto t0 = std::chrono::steady_clock::now();
    CheckedValue(ExecuteTopK(query, ctx.resolver, kHotK, opts),
                 "E22 calibration run");
    total += std::chrono::steady_clock::now() - t0;
  }
  return std::max(total.count() / kRuns, 1e-7);
}

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(std::ceil(q * sorted.size()));
  idx = std::min(std::max<size_t>(idx, 1), sorted.size());
  return sorted[idx - 1];
}

struct CellResult {
  double offered_qps = 0.0;
  double throughput_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  double reject_rate = 0.0;
  double cache_hit_ratio = 0.0;
  uint64_t mismatches = 0;
};

CellResult RunCell(size_t mix, const Workload& w, size_t pool_executors,
                   double load, double service_s, const BenchConfig& cfg,
                   const std::vector<ExecutionResult>& refs_by_k,
                   uint64_t rng_salt) {
  // The queue is deliberately shallow relative to the stream so that
  // over-saturation visibly trips TryPost backpressure instead of
  // absorbing the whole cell's backlog.
  ThreadPool pool(pool_executors, 24);
  QueryServerOptions sopt;
  sopt.pool = &pool;
  sopt.cache_capacity = 256;
  CellResult cell;
  // Offered rate: load factor × the cell's serial capacity (workers × the
  // calibrated per-query service rate; an inline pool serves like one).
  const size_t servers = std::max<size_t>(pool.executors() - 1, 1);
  cell.offered_qps = load * static_cast<double>(servers) / service_s;

  QueryServer server(sopt);
  Rng rng(kSeed ^ rng_salt);
  struct Pending {
    std::shared_ptr<Ticket<ServedResult>> ticket;
    std::chrono::steady_clock::time_point arrival;
    size_t k_index;  // index into refs_by_k
  };
  std::vector<std::unique_ptr<QueryCtx>> ctxs;
  std::vector<Pending> pending;
  ctxs.reserve(cfg.queries_per_cell);
  pending.reserve(cfg.queries_per_cell);

  // Materialize every query's context and shape *before* the paced loop:
  // source construction is comparable in cost to execution, and doing it
  // inline would throttle the real offered rate below the sweep's target.
  struct Prepared {
    QueryPtr query;
    size_t k_index;  // index into refs_by_k
  };
  std::vector<Prepared> prepared;
  prepared.reserve(cfg.queries_per_cell);
  for (size_t i = 0; i < cfg.queries_per_cell; ++i) {
    // ~30% of the stream repeats one hot canonical key per mix (at the hot
    // k); the rest are unique keys that must execute.
    const bool hot = (i % 10) < 3;
    const size_t k_index = hot ? 1 : i % 4;  // kColdKs[1] == kHotK
    const std::string target = hot ? "hot" : "q" + std::to_string(i);
    ctxs.push_back(std::make_unique<QueryCtx>(MakeCtx(w, mix % 4 == 3)));
    prepared.push_back({MixQuery(mix, target), k_index});
  }

  const auto start = std::chrono::steady_clock::now();
  double offset_s = 0.0;
  for (size_t i = 0; i < cfg.queries_per_cell; ++i) {
    offset_s += -std::log(1.0 - rng.NextDouble()) / cell.offered_qps;
    const auto arrival =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(offset_s));
    if (arrival > std::chrono::steady_clock::now()) {
      std::this_thread::sleep_until(arrival);
    }
    const size_t k_index = prepared[i].k_index;
    Result<Submission> sub = server.Submit(
        std::move(prepared[i].query), kColdKs[k_index], ctxs[i]->resolver);
    if (!sub.ok()) {
      // Explicit backpressure: the query was refused up front, nothing was
      // enqueued. A silent drop would instead show up as a missing ticket.
      ++cell.rejected;
      continue;
    }
    pending.push_back({sub->ticket, arrival, k_index});
  }
  server.Drain();

  std::vector<double> sojourn_ms;
  sojourn_ms.reserve(pending.size());
  auto last_done = start;
  for (const Pending& p : pending) {
    const ServedResult& r = p.ticket->Wait();
    if (!r.status.ok() || !r.completion.ok() ||
        !Matches(r.topk, refs_by_k[p.k_index])) {
      ++cell.mismatches;
      continue;
    }
    ++cell.completed;
    last_done = std::max(last_done, r.completed_at);
    sojourn_ms.push_back(
        std::chrono::duration<double, std::milli>(r.completed_at - p.arrival)
            .count());
  }
  std::sort(sojourn_ms.begin(), sojourn_ms.end());
  cell.p50_ms = Percentile(sojourn_ms, 0.50);
  cell.p99_ms = Percentile(sojourn_ms, 0.99);
  cell.p999_ms = Percentile(sojourn_ms, 0.999);
  const double span_s =
      std::chrono::duration<double>(last_done - start).count();
  cell.throughput_qps =
      span_s > 0.0 ? static_cast<double>(cell.completed) / span_s : 0.0;
  const ServerStats stats = server.stats();
  cell.reject_rate = stats.submitted > 0
                         ? static_cast<double>(stats.rejected_queue_full +
                                               stats.rejected_cost) /
                               static_cast<double>(stats.submitted)
                         : 0.0;
  const CacheStats cache = server.cache_stats();
  const uint64_t lookups = cache.hits + cache.misses;
  cell.cache_hit_ratio =
      lookups > 0 ? static_cast<double>(cache.hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  return cell;
}

// Derived budgets on the adversarial instance: every query is truncated by
// headroom × the plan's sorted-access estimate, and the partial results of
// a pooled server must match an inline (serial) server bit for bit.
void BudgetSection(const BenchConfig& cfg, JsonReport* json) {
  Banner("E22b: derived budgets on PathologicalMiddle (headroom=1.5)");
  const Workload w = PathologicalMiddle(cfg.n);
  const QueryPtr query =
      Query::And({Query::Atomic("A", "t"), Query::Atomic("B", "t")});
  const size_t queries = std::max<size_t>(cfg.queries_per_cell / 4, 8);

  auto run = [&](ThreadPool* pool) {
    QueryServerOptions sopt;
    sopt.pool = pool;
    sopt.budget_headroom = 1.5;
    sopt.cache_results = false;  // every query executes (and truncates)
    QueryServer server(sopt);
    std::vector<std::unique_ptr<QueryCtx>> ctxs;
    std::vector<std::shared_ptr<Ticket<ServedResult>>> tickets;
    for (size_t i = 0; i < queries; ++i) {
      ctxs.push_back(std::make_unique<QueryCtx>(MakeCtx(w, false)));
      Submission sub = CheckedValue(
          server.Submit(query, kHotK, ctxs.back()->resolver),
          "E22b submit");
      tickets.push_back(sub.ticket);
    }
    server.Drain();
    std::vector<ServedResult> results;
    for (const auto& t : tickets) results.push_back(t->Wait());
    return results;
  };

  ThreadPool pool(3, 256);
  const std::vector<ServedResult> pooled = run(&pool);
  const std::vector<ServedResult> inline_run = run(nullptr);

  uint64_t truncated = 0;
  uint64_t mismatches = 0;
  uint64_t budget_sorted = 0;
  for (size_t i = 0; i < pooled.size(); ++i) {
    const ServedResult& a = pooled[i];
    const ServedResult& b = inline_run[i];
    if (!a.status.ok() || !b.status.ok()) {
      ++mismatches;
      continue;
    }
    if (a.completion.code() == StatusCode::kResourceExhausted) ++truncated;
    budget_sorted = a.topk.cost.sorted;
    const bool same =
        a.completion.code() == b.completion.code() &&
        a.topk.items.size() == b.topk.items.size() &&
        a.topk.cost.sorted == b.topk.cost.sorted &&
        a.topk.cost.random == b.topk.cost.random;
    if (!same) {
      ++mismatches;
      continue;
    }
    for (size_t r = 0; r < a.topk.items.size(); ++r) {
      if (a.topk.items[r].id != b.topk.items[r].id ||
          a.topk.items[r].grade != b.topk.items[r].grade) {
        ++mismatches;
        break;
      }
    }
  }

  TablePrinter table({"queries", "truncated", "consumed_sorted",
                      "pooled_vs_inline_mismatches"});
  table.AddRow({std::to_string(queries), std::to_string(truncated),
                std::to_string(budget_sorted), std::to_string(mismatches)});
  table.Print();
  json->Set("budget.queries", queries);
  json->Set("budget.truncated", truncated);
  json->Set("budget.consumed_sorted", budget_sorted);
  json->Set("budget.mismatches", mismatches);
}

void PrintTables() {
  const BenchConfig cfg = MakeConfig();
  Banner("E22: query server under open-loop Poisson load (n=" +
         std::to_string(cfg.n) + ", " +
         std::to_string(cfg.queries_per_cell) + " queries/cell)");

  Rng rng(kSeed);
  const Workload w = IndependentUniform(&rng, cfg.n, kM);

  std::vector<size_t> pools{1, 2, ThreadPool::HardwareConcurrency()};
  std::sort(pools.begin(), pools.end());
  pools.erase(std::unique(pools.begin(), pools.end()), pools.end());

  JsonReport json;
  json.Set("bench", std::string("exp22_query_server"));
  json.Set("config.n", cfg.n);
  json.Set("config.m", kM);
  json.Set("config.queries_per_cell", cfg.queries_per_cell);
  json.Set("config.seed", kSeed);
  json.Set("config.pool_sizes", pools.size());
  json.SetHostParallelism(
      std::max<size_t>(1, ThreadPool::HardwareConcurrency()));
  json.SetKernelDispatch(std::string(simd::Name(simd::Active())));

  TablePrinter table({"mix", "pool", "load", "offered_qps", "done", "rej%",
                      "hit%", "thruput_qps", "p50_ms", "p99_ms", "p999_ms",
                      "mismatch"});
  uint64_t total_mismatches = 0;
  uint64_t salt = 0;
  for (size_t mix = 0; mix < 4; ++mix) {
    std::vector<ExecutionResult> refs_by_k;
    refs_by_k.reserve(4);
    for (size_t k : kColdKs) refs_by_k.push_back(SerialReference(mix, w, k));
    const double service_s = CalibrateServiceSeconds(mix, w);
    json.Set(std::string(MixName(mix)) + ".serial_service_us",
             service_s * 1e6);
    for (size_t p : pools) {
      for (const auto& [load_name, load] : cfg.loads) {
        const CellResult cell = RunCell(mix, w, p, load, service_s, cfg,
                                        refs_by_k, ++salt);
        total_mismatches += cell.mismatches;
        table.AddRow({MixName(mix), std::to_string(p), load_name,
                      std::to_string(std::llround(cell.offered_qps)),
                      std::to_string(cell.completed),
                      TablePrinter::Num(100.0 * cell.reject_rate, 3),
                      TablePrinter::Num(100.0 * cell.cache_hit_ratio, 3),
                      std::to_string(std::llround(cell.throughput_qps)),
                      TablePrinter::Num(cell.p50_ms, 3),
                      TablePrinter::Num(cell.p99_ms, 3),
                      TablePrinter::Num(cell.p999_ms, 3),
                      std::to_string(cell.mismatches)});
        const std::string base = std::string(MixName(mix)) + ".pool" +
                                 std::to_string(p) + "." + load_name;
        json.Set(base + ".offered_qps", cell.offered_qps);
        json.Set(base + ".throughput_qps", cell.throughput_qps);
        json.Set(base + ".p50_ms", cell.p50_ms);
        json.Set(base + ".p99_ms", cell.p99_ms);
        json.Set(base + ".p999_ms", cell.p999_ms);
        json.Set(base + ".completed", cell.completed);
        json.Set(base + ".rejected", cell.rejected);
        json.Set(base + ".reject_rate", cell.reject_rate);
        json.Set(base + ".cache_hit_ratio", cell.cache_hit_ratio);
        json.Set(base + ".mismatches", cell.mismatches);
      }
    }
  }
  table.Print();

  BudgetSection(cfg, &json);

  json.Set("total_mismatches", total_mismatches);
  std::cout << "Expectation: zero mismatches — every admitted answer is "
               "bit-identical to a serial ExecuteTopK of the same plan at "
               "every pool size and load, budget truncations included. "
               "Saturated cells show queue-full rejections as explicit "
               "backpressure: done + rejected always equals the cell's "
               "stream, nothing dropped. (On a single-core host the "
               "submitter and workers share the core, so even nominally "
               "sub-saturated cells may reject — the host_parallelism "
               "stamp in the JSON flags this.) The hot 30% of the stream "
               "lands as cache hits.\n";
  if (cfg.write_json) json.WriteFileGuarded("BENCH_server.json");
}

// Timing section: submit-and-drain a burst through a two-executor server.
void BM_ServerBurst(benchmark::State& state) {
  const size_t pool_executors = static_cast<size_t>(state.range(0));
  Rng rng(kSeed);
  const Workload w = IndependentUniform(&rng, 100, kM);
  constexpr size_t kBurst = 32;
  for (auto _ : state) {
    ThreadPool pool(pool_executors, 128);
    QueryServerOptions sopt;
    sopt.pool = &pool;
    QueryServer server(sopt);
    std::vector<std::unique_ptr<QueryCtx>> ctxs;
    std::vector<std::shared_ptr<Ticket<ServedResult>>> tickets;
    for (size_t i = 0; i < kBurst; ++i) {
      ctxs.push_back(std::make_unique<QueryCtx>(MakeCtx(w, i % 4 == 3)));
      Result<Submission> sub =
          server.Submit(MixQuery(i, "q" + std::to_string(i)), 5,
                        ctxs.back()->resolver);
      if (sub.ok()) tickets.push_back(sub->ticket);
    }
    server.Drain();
    benchmark::DoNotOptimize(tickets.size());
  }
}
BENCHMARK(BM_ServerBurst)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
