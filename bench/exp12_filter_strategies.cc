// E12 (ablation) — the Chaudhuri–Gravano filter-condition simulation of A0
// (paper §4.1, [CG96]): a repository that only supports "score >= alpha"
// retrievals must guess the cutoff. Too optimistic a guess wastes rounds
// (every retry re-fetches from scratch); too pessimistic a guess fetches
// far more objects than A0 needs. We sweep the initial cutoff and the
// shrink factor and compare against true A0.

#include "bench_util.h"
#include "middleware/fagin.h"
#include "middleware/filtered.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;
constexpr size_t kN = 50000;
constexpr size_t kK = 10;

void PrintTables() {
  Banner("E12: filter-condition simulation of A0 (m=2, N=50000, k=10)");
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, kN, 2);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "E12 sources");
  std::vector<GradedSource*> ptrs = SourcePtrs(sources);
  ScoringRulePtr min = MinRule();

  TopKResult a0 = CheckedValue(FaginTopK(ptrs, *min, kK), "E12 a0");
  std::cout << "reference A0 cost: " << a0.cost.total() << "\n";

  TablePrinter table({"initial-alpha", "shrink", "rounds", "final-alpha",
                      "cost", "cost/a0"});
  for (double alpha0 : {0.999, 0.99, 0.9, 0.5}) {
    for (double shrink : {0.9, 0.5, 0.25}) {
      FilteredOptions options;
      options.initial_alpha = alpha0;
      options.shrink = shrink;
      FilteredStats stats;
      TopKResult r = CheckedValue(
          FilteredSimulationTopK(ptrs, *min, kK, options, &stats),
          "E12 filtered");
      table.AddRow({TablePrinter::Num(alpha0, 4),
                    TablePrinter::Num(shrink, 3),
                    std::to_string(stats.rounds),
                    TablePrinter::Num(stats.final_alpha, 4),
                    std::to_string(r.cost.total()),
                    TablePrinter::Num(static_cast<double>(r.cost.total()) /
                                          static_cast<double>(a0.cost.total()),
                                      3)});
    }
  }
  table.Print();

  // The model-based strategy: pick alpha from N, k, m assuming uniform-ish
  // grades instead of blind shrinking.
  TablePrinter est({"strategy", "safety", "rounds", "final-alpha", "cost",
                    "cost/a0"});
  for (double safety : {1.0, 2.0, 4.0, 8.0}) {
    FilteredOptions options;
    options.strategy = AlphaStrategy::kUniformEstimate;
    options.safety = safety;
    FilteredStats stats;
    TopKResult r = CheckedValue(
        FilteredSimulationTopK(ptrs, *min, kK, options, &stats),
        "E12 estimate");
    est.AddRow({"uniform-estimate", TablePrinter::Num(safety, 3),
                std::to_string(stats.rounds),
                TablePrinter::Num(stats.final_alpha, 4),
                std::to_string(r.cost.total()),
                TablePrinter::Num(static_cast<double>(r.cost.total()) /
                                      static_cast<double>(a0.cost.total()),
                                  3)});
  }
  est.Print();
  std::cout << "Expectation: all configurations return the identical top-k. "
               "Blind geometric shrink lands 7-35x off A0 (gentle shrink "
               "wastes rounds, coarse shrink overshoots the cutoff), while "
               "the model-based cutoff reaches ~1-3x of A0 in one or two "
               "rounds — the tuning trade [CG96] studies.\n";
}

void BM_FilteredSimulation(benchmark::State& state) {
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, kN, 2);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "bench sources");
  std::vector<GradedSource*> ptrs = SourcePtrs(sources);
  ScoringRulePtr min = MinRule();
  FilteredOptions options;
  options.initial_alpha =
      static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    TopKResult r = CheckedValue(
        FilteredSimulationTopK(ptrs, *min, kK, options), "bench run");
    benchmark::DoNotOptimize(r.items.data());
  }
}
BENCHMARK(BM_FilteredSimulation)->Arg(999)->Arg(900)->Arg(500);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
