// E7 — "various improvements can be made to algorithm A0" (paper §4.1): the
// Threshold Algorithm stops as soon as the threshold certifies the answer
// (instance optimal), and NRA trades random access away entirely. We compare
// all three across N and m.

#include "bench_util.h"
#include "middleware/fagin.h"
#include "middleware/nra.h"
#include "middleware/threshold.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;

void PrintTables() {
  Banner("E7: A0 vs TA vs NRA (independent uniform grades, k=10)");
  TablePrinter table({"N", "m", "a0", "ta", "nra", "ta/a0", "nra-random"});
  for (size_t n : {10000u, 100000u}) {
    for (size_t m : {2u, 3u}) {
      auto factory = [m](Rng* rng, size_t nn) {
        return IndependentUniform(rng, nn, m);
      };
      auto run = [&](const AlgorithmRunner& runner) {
        return CheckedValue(
            SweepCost(factory, runner, {n}, m, 10, 3, kSeed), "E7 sweep")[0];
      };
      CostPoint a0 = run([](std::span<GradedSource* const> s, size_t k) {
        return FaginTopK(s, *MinRule(), k);
      });
      CostPoint ta = run([](std::span<GradedSource* const> s, size_t k) {
        return ThresholdTopK(s, *MinRule(), k);
      });
      CostPoint nra = run([](std::span<GradedSource* const> s, size_t k) {
        return NoRandomAccessTopK(s, *MinRule(), k);
      });
      table.AddRow(
          {std::to_string(n), std::to_string(m),
           std::to_string(a0.cost.total()), std::to_string(ta.cost.total()),
           std::to_string(nra.cost.total()),
           TablePrinter::Num(static_cast<double>(ta.cost.total()) /
                                 static_cast<double>(a0.cost.total()),
                             3),
           std::to_string(nra.cost.random)});
    }
  }
  table.Print();
  std::cout << "Expectation: TA's sorted depth never exceeds A0's, so its "
               "total cost tracks A0 within a hair (ta/a0 ~ 1; TA spends one "
               "random probe per new object, A0 batches them). NRA stops at "
               "roughly half the total cost here and its random-access "
               "column is exactly 0 — the right choice when random access "
               "is impossible or expensive.\n";
}

void BM_Algorithms(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, 100000, 2);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "bench sources");
  std::vector<GradedSource*> ptrs = SourcePtrs(sources);
  ScoringRulePtr min = MinRule();
  for (auto _ : state) {
    Result<TopKResult> r = Status::Internal("unset");
    switch (which) {
      case 0:
        r = FaginTopK(ptrs, *min, 10);
        break;
      case 1:
        r = ThresholdTopK(ptrs, *min, 10);
        break;
      default:
        r = NoRandomAccessTopK(ptrs, *min, 10);
        break;
    }
    TopKResult v = CheckedValue(std::move(r), "bench run");
    benchmark::DoNotOptimize(v.items.data());
  }
  state.SetLabel(which == 0 ? "a0" : which == 1 ? "ta" : "nra");
}
BENCHMARK(BM_Algorithms)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
