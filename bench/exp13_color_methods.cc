// E13 (ablation) — the color-closeness methods of paper §2 compared:
// the Ioka/QBIC quadratic form (formula (1)), bin-wise L1 / histogram
// intersection, and Stricker–Orengo color moments. Taking the quadratic
// form as the reference ranking (it is the method the paper builds on), we
// measure each alternative's top-k agreement and its per-candidate cost in
// floating-point work.

#include <algorithm>

#include "bench_util.h"
#include "image/color_moments.h"
#include "image/quadratic_distance.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;
constexpr size_t kImages = 1500;
constexpr size_t kBins = 64;
constexpr size_t kK = 10;
constexpr int kQueries = 20;

// Top-k overlap |A ∩ B| / k between two rankings.
double OverlapAtK(const std::vector<size_t>& a, const std::vector<size_t>& b) {
  std::vector<size_t> sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::vector<size_t> common;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(common));
  return static_cast<double>(common.size()) / static_cast<double>(a.size());
}

template <typename DistanceFn>
std::vector<size_t> TopKBy(const DistanceFn& distance, size_t n, size_t k) {
  std::vector<std::pair<double, size_t>> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = {distance(i), i};
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k),
                    all.end());
  std::vector<size_t> out(k);
  for (size_t i = 0; i < k; ++i) out[i] = all[i].second;
  return out;
}

void PrintTables() {
  Banner("E13: color methods vs the quadratic form (1500 images, 64 bins, "
         "top-10 overlap over 20 queries)");
  Rng rng(kSeed);
  Palette palette = Palette::Uniform(kBins, &rng);
  QuadraticFormDistance qfd =
      CheckedValue(QuadraticFormDistance::Create(palette), "E13 qfd");
  std::vector<Histogram> db;
  std::vector<ColorMoments> moments;
  for (size_t i = 0; i < kImages; ++i) {
    db.push_back(RandomHistogram(&rng, kBins));
    moments.push_back(
        CheckedValue(ComputeColorMoments(palette, db.back()), "E13 moments"));
  }

  double overlap_l1 = 0.0, overlap_inter = 0.0, overlap_moments = 0.0;
  for (int q = 0; q < kQueries; ++q) {
    Histogram target = RandomHistogram(&rng, kBins);
    ColorMoments target_moments =
        CheckedValue(ComputeColorMoments(palette, target), "E13 target");
    std::vector<size_t> reference = TopKBy(
        [&](size_t i) { return qfd.Distance(db[i], target); }, kImages, kK);
    overlap_l1 += OverlapAtK(
        reference,
        TopKBy([&](size_t i) { return HistogramL1Distance(db[i], target); },
               kImages, kK));
    overlap_inter += OverlapAtK(
        reference,
        TopKBy([&](size_t i) {
          return 1.0 - HistogramIntersection(db[i], target);
        }, kImages, kK));
    overlap_moments += OverlapAtK(
        reference,
        TopKBy([&](size_t i) {
          return ColorMomentDistance(moments[i], target_moments);
        }, kImages, kK));
  }

  TablePrinter table({"method", "flops/candidate", "top-10 overlap vs "
                      "quadratic form"});
  table.AddRow({"quadratic form (1)", "O(bins^2) = ~4096 mul",
                "1 (reference)"});
  table.AddRow({"histogram L1", "O(bins) = 64 ops",
                TablePrinter::Num(overlap_l1 / kQueries, 3)});
  table.AddRow({"intersection", "O(bins) = 64 ops",
                TablePrinter::Num(overlap_inter / kQueries, 3)});
  table.AddRow({"color moments [SO95]", "O(9) after extraction",
                TablePrinter::Num(overlap_moments / kQueries, 3)});
  table.Print();
  std::cout << "Expectation: L1/intersection agree with each other but only "
               "partially with the quadratic form (they ignore cross-bin "
               "color similarity — the reason the paper builds on formula "
               "(1)); nine-number color moments recover a surprising share "
               "of the ranking at a tiny fraction of the cost, matching "
               "[SO95]'s argument.\n";
}

void BM_ColorDistance(benchmark::State& state) {
  Rng rng(kSeed);
  Palette palette = Palette::Uniform(kBins, &rng);
  QuadraticFormDistance qfd =
      CheckedValue(QuadraticFormDistance::Create(palette), "bench qfd");
  Histogram a = RandomHistogram(&rng, kBins);
  Histogram b = RandomHistogram(&rng, kBins);
  ColorMoments ma = CheckedValue(ComputeColorMoments(palette, a), "ma");
  ColorMoments mb = CheckedValue(ComputeColorMoments(palette, b), "mb");
  const int which = static_cast<int>(state.range(0));
  for (auto _ : state) {
    double d = 0.0;
    switch (which) {
      case 0:
        d = qfd.Distance(a, b);
        break;
      case 1:
        d = HistogramL1Distance(a, b);
        break;
      default:
        d = ColorMomentDistance(ma, mb);
        break;
    }
    benchmark::DoNotOptimize(d);
  }
  state.SetLabel(which == 0 ? "quadratic" : which == 1 ? "l1" : "moments");
}
BENCHMARK(BM_ColorDistance)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
