// E8 — the independence assumption (Theorems 4.1/4.2 assume independent
// subqueries) and its failure modes: positively correlated lists make A0
// cheaper (matches surface immediately), anti-correlated lists make it far
// more expensive, and the adversarial middle-crossing instance forces the
// provable linear lower bound the paper mentions in §6.

#include "bench_util.h"
#include "middleware/fagin.h"
#include "middleware/threshold.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;
constexpr size_t kN = 50000;
constexpr size_t kK = 10;

void PrintTables() {
  Banner("E8: correlation vs A0/TA cost (m=2, N=50000, k=10)");
  TablePrinter table({"workload", "a0-cost", "ta-cost", "a0/2N"});
  auto run_both = [&](const std::string& name, const WorkloadFactory& make) {
    CostPoint a0 = CheckedValue(
        SweepCost(make,
                  [](std::span<GradedSource* const> s, size_t k) {
                    return FaginTopK(s, *MinRule(), k);
                  },
                  {kN}, 2, kK, 3, kSeed),
        "E8 a0")[0];
    CostPoint ta = CheckedValue(
        SweepCost(make,
                  [](std::span<GradedSource* const> s, size_t k) {
                    return ThresholdTopK(s, *MinRule(), k);
                  },
                  {kN}, 2, kK, 3, kSeed),
        "E8 ta")[0];
    table.AddRow({name, std::to_string(a0.cost.total()),
                  std::to_string(ta.cost.total()),
                  TablePrinter::Num(static_cast<double>(a0.cost.total()) /
                                        (2.0 * kN),
                                    3)});
  };

  for (double rho : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    run_both("correlated rho=" + TablePrinter::Num(rho, 2),
             [rho](Rng* rng, size_t n) { return Correlated(rng, n, 2, rho); });
  }
  run_both("anti-correlated", [](Rng* rng, size_t n) {
    return AntiCorrelated(rng, n, 0.05);
  });
  run_both("pathological-middle",
           [](Rng*, size_t n) { return PathologicalMiddle(n); });
  table.Print();
  std::cout << "Expectation: cost falls monotonically as rho rises (rho=1 "
               "costs ~k per list); anti-correlation pushes cost toward "
               "linear; the pathological instance hits a0/2N ~ 1 — the "
               "provable linear lower bound.\n";
}

void BM_FaginByCorrelation(benchmark::State& state) {
  double rho = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(kSeed);
  Workload w = Correlated(&rng, kN, 2, rho);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "bench sources");
  std::vector<GradedSource*> ptrs = SourcePtrs(sources);
  ScoringRulePtr min = MinRule();
  for (auto _ : state) {
    TopKResult r = CheckedValue(FaginTopK(ptrs, *min, kK), "bench run");
    benchmark::DoNotOptimize(r.items.data());
  }
}
BENCHMARK(BM_FaginByCorrelation)->Arg(0)->Arg(50)->Arg(90);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
