// E4 — weighted queries (paper §5): the Fagin–Wimmers transform preserves
// monotonicity and strictness, so A0 stays correct and its cost stays in the
// same regime across the whole slider range. We sweep the color:shape
// importance ratio, verify the answers against the naive ground truth, and
// report the cost.

#include "bench_util.h"
#include "core/weights.h"
#include "middleware/fagin.h"
#include "middleware/naive.h"
#include "middleware/threshold.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;
constexpr size_t kN = 50000;
constexpr size_t kK = 10;

void PrintTables() {
  Banner("E4: A0/TA under Fagin-Wimmers weights (m=2, N=50000, k=10)");
  TablePrinter table({"theta1:theta2", "a0-cost", "ta-cost", "valid-topk",
                      "top1-id", "top1-grade"});
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, kN, 2);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "E4 sources");
  std::vector<GradedSource*> ptrs = SourcePtrs(sources);

  for (double theta1 : {0.50, 0.60, 0.70, 0.80, 0.90, 0.99}) {
    Weighting theta = CheckedValue(
        Weighting::Create({theta1, 1.0 - theta1}), "E4 weighting");
    ScoringRulePtr rule = WeightedRule(MinRule(), theta);
    GradedSet truth = CheckedValue(NaiveAllGrades(ptrs, *rule), "E4 truth");
    TopKResult r = CheckedValue(FaginTopK(ptrs, *rule, kK), "E4 fagin");
    TopKResult ta = CheckedValue(ThresholdTopK(ptrs, *rule, kK), "E4 ta");
    bool valid =
        IsValidTopK(r.items, truth, kK) && IsValidTopK(ta.items, truth, kK);
    table.AddRow({TablePrinter::Num(theta1, 2) + ":" +
                      TablePrinter::Num(1.0 - theta1, 2),
                  std::to_string(r.cost.total()),
                  std::to_string(ta.cost.total()), valid ? "yes" : "NO",
                  std::to_string(r.items[0].id),
                  TablePrinter::Num(r.items[0].grade, 4)});
  }
  table.Print();
  std::cout << "Expectation: valid-topk == yes in every row (correctness is "
               "inherited, paper §5). A0's sorted phase ignores the rule, so "
               "its cost is flat across the slider range; TA's threshold "
               "depends on the weighted rule, so its cost varies but stays "
               "below A0's.\n";
}

void BM_WeightedFagin(benchmark::State& state) {
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, kN, 2);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "bench sources");
  std::vector<GradedSource*> ptrs = SourcePtrs(sources);
  double theta1 = static_cast<double>(state.range(0)) / 100.0;
  Weighting theta = CheckedValue(
      Weighting::Create({theta1, 1.0 - theta1}), "bench weighting");
  ScoringRulePtr rule = WeightedRule(MinRule(), theta);
  for (auto _ : state) {
    TopKResult r = CheckedValue(FaginTopK(ptrs, *rule, kK), "bench run");
    benchmark::DoNotOptimize(r.items.data());
  }
}
BENCHMARK(BM_WeightedFagin)->Arg(50)->Arg(67)->Arg(90);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
