// E18 — parallel middleware execution (DESIGN §3e): TA with per-source
// sorted-access prefetch and pool-sharded batched random access, swept over
// source count m, prefetch depth, and pool size. Fagin's cost model charges
// access *counts*, not issue order, so the parallel layer may only change
// wall-clock time — every configuration is checked for bit-identical answers
// and per-source consumed access counts against the serial loop, and any
// mismatch is reported as a correctness failure, not a performance number.
//
// Access latency is what the pipeline overlaps, so each source carries a
// deterministic busy-work delay per access (a stand-in for a real
// subsystem's evaluation cost; paper §4 treats accesses as the expensive
// unit). With zero-latency in-memory sources the layer can only add
// overhead — that regime is what depth 0 / pool 1 rows show. Results land
// in BENCH_middleware.json; speedups measured on a 1-hardware-thread host
// are flagged "contention-only" in the caveat field.

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/simd_dispatch.h"
#include "common/thread_pool.h"
#include "middleware/parallel.h"
#include "middleware/threshold.h"
#include "middleware/vector_source.h"
#include "sim/workload.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260818;
constexpr size_t kN = 1500;
constexpr size_t kK = 10;
constexpr int kReps = 5;

// Deterministic busy work standing in for one access's subsystem-side cost
// (distance evaluation, page fetch, ...). ~1-2us per call at -O2.
double BusyWork(uint64_t salt) {
  double acc = static_cast<double>(salt % 97) * 1e-6;
  for (int i = 1; i <= 400; ++i) {
    acc += 1.0 / (static_cast<double>(i) + acc);
  }
  return acc * 1e-12;
}

// GradedSource decorator adding per-access busy work.
class SlowSource final : public GradedSource {
 public:
  explicit SlowSource(GradedSource* inner) : inner_(inner) {}
  size_t Size() const override { return inner_->Size(); }
  std::optional<GradedObject> NextSorted() override {
    benchmark::DoNotOptimize(BusyWork(1));
    return inner_->NextSorted();
  }
  void RestartSorted() override { inner_->RestartSorted(); }
  double RandomAccess(ObjectId id) override {
    benchmark::DoNotOptimize(BusyWork(id));
    return inner_->RandomAccess(id);
  }
  std::vector<GradedObject> AtLeast(double threshold) override {
    return inner_->AtLeast(threshold);
  }
  std::string name() const override { return "slow(" + inner_->name() + ")"; }

 private:
  GradedSource* inner_;
};

struct ConfigResult {
  double us = 0.0;
  size_t mismatches = 0;  // item/count divergences vs the serial reference
};

bool SameAnswer(const TopKResult& a, const TopKResult& b) {
  if (a.items.size() != b.items.size()) return false;
  for (size_t r = 0; r < a.items.size(); ++r) {
    if (a.items[r].id != b.items[r].id) return false;
    if (a.items[r].grade != b.items[r].grade) return false;
  }
  if (a.per_source.size() != b.per_source.size()) return false;
  for (size_t j = 0; j < a.per_source.size(); ++j) {
    if (a.per_source[j].sorted != b.per_source[j].sorted) return false;
    if (a.per_source[j].random != b.per_source[j].random) return false;
  }
  return true;
}

ConfigResult RunConfig(std::span<GradedSource* const> ptrs,
                       const TopKResult& reference,
                       const ParallelOptions& options) {
  ConfigResult out;
  auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    Result<TopKResult> r = ThresholdTopK(ptrs, *MinRule(), kK, options);
    CheckOk(r.status(), "E18 ThresholdTopK");
    if (!SameAnswer(*r, reference)) ++out.mismatches;
  }
  auto t1 = std::chrono::steady_clock::now();
  out.us =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() /
      1000.0 / static_cast<double>(kReps);
  return out;
}

void PrintTables() {
  const size_t hw =
      std::max<unsigned>(1, std::thread::hardware_concurrency());
  Banner("E18: parallel middleware TA — depth x pool x m sweep (n=" +
         std::to_string(kN) + ", k=" + std::to_string(kK) +
         ", ~us-scale per-access latency)");

  JsonReport json;
  json.Set("bench", std::string("exp18_parallel_middleware"));
  json.Set("config.n", kN);
  json.Set("config.k", kK);
  json.Set("config.reps", static_cast<size_t>(kReps));
  const bool contention_only = json.SetHostParallelism(hw);
  json.SetKernelDispatch(std::string(simd::Name(simd::Active())));
  const std::string caveat =
      contention_only
          ? "contention-only: 1 hardware thread, speedups are scheduling "
            "artifacts"
          : "in-process busy-work latency model; real subsystem latency "
            "shifts the crossover";
  json.Set("caveat", caveat);

  TablePrinter table({"m", "pool", "depth", "us/query", "speedup-vs-serial",
                      "mismatches"});
  Rng rng(kSeed);
  for (size_t m : {2u, 3u, 5u}) {
    Workload w = IndependentUniform(&rng, kN, m);
    std::vector<VectorSource> sources =
        CheckedValue(w.MakeSources(), "E18 sources");
    std::vector<SlowSource> slow;
    slow.reserve(m);
    std::vector<GradedSource*> ptrs;
    for (VectorSource& s : sources) {
      slow.emplace_back(&s);
      ptrs.push_back(&slow.back());
    }

    TopKResult reference = CheckedValue(
        ThresholdTopK(ptrs, *MinRule(), kK), "E18 serial reference");
    ConfigResult serial = RunConfig(ptrs, reference, ParallelOptions{});
    table.AddRow({std::to_string(m), "-", "0",
                  TablePrinter::Num(serial.us, 4), "1.000",
                  std::to_string(serial.mismatches)});
    // (built up with += to dodge a GCC-12 -Wrestrict false positive on
    // `const char* + std::string&&`)
    std::string mkey = "m";
    mkey += std::to_string(m);
    json.Set(mkey + ".serial.us_per_query", serial.us);
    json.Set(mkey + ".serial.mismatches", serial.mismatches);
    json.Set(mkey + ".serial.consumed_sorted", reference.cost.sorted);
    json.Set(mkey + ".serial.consumed_random", reference.cost.random);

    for (size_t pool_size : {1u, 2u, 4u}) {
      ThreadPool pool(pool_size);
      for (size_t depth : {0u, 1u, 8u, 64u}) {
        ParallelOptions options;
        options.pool = &pool;
        options.prefetch_depth = depth;
        ConfigResult r = RunConfig(ptrs, reference, options);
        table.AddRow({std::to_string(m), std::to_string(pool_size),
                      std::to_string(depth), TablePrinter::Num(r.us, 4),
                      TablePrinter::Num(serial.us / r.us, 3),
                      std::to_string(r.mismatches)});
        const std::string key = mkey + ".pool" + std::to_string(pool_size) +
                                ".depth" + std::to_string(depth);
        json.Set(key + ".us_per_query", r.us);
        json.Set(key + ".speedup_vs_serial", serial.us / r.us);
        json.Set(key + ".mismatches", r.mismatches);
      }
    }
  }
  table.Print();
  std::cout
      << "Expectation: zero mismatches in every row (the determinism "
         "contract), speedup > 1 for pool > 1 at depth >= 8 when the host "
         "has real parallelism, and depth 0 / pool 1 rows showing the "
         "overhead floor.\ncaveat: "
      << caveat << "\nhardware_concurrency = " << hw << "\n";
  json.WriteFileGuarded("BENCH_middleware.json");
}

void BM_SerialTa(benchmark::State& state) {
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, kN, 3);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "E18 bm sources");
  std::vector<GradedSource*> ptrs;
  for (VectorSource& s : sources) ptrs.push_back(&s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThresholdTopK(ptrs, *MinRule(), kK));
  }
}
BENCHMARK(BM_SerialTa)->Unit(benchmark::kMicrosecond);

void BM_ParallelTa(benchmark::State& state) {
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, kN, 3);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "E18 bm sources");
  std::vector<GradedSource*> ptrs;
  for (VectorSource& s : sources) ptrs.push_back(&s);
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  ParallelOptions options;
  options.pool = &pool;
  options.prefetch_depth = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThresholdTopK(ptrs, *MinRule(), kK, options));
  }
}
BENCHMARK(BM_ParallelTa)
    ->Args({2, 8})
    ->Args({4, 8})
    ->Args({4, 64})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
