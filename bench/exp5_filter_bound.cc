// E5 — the distance-bounding filter (paper §2.1, [HSE+95]): a short summary
// vector x̂ with d(x,y) >= d̂(x̂,ŷ) lets a top-k color search skip most full
// quadratic-form evaluations with zero false dismissals. We sweep histogram
// bins (the paper's typical 64/100/256) and filter dimension (the paper's
// summary is dimension 3).

#include <chrono>

#include "bench_util.h"
#include "image/bounding.h"
#include "image/indexed_search.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;
constexpr size_t kDatabase = 2000;
constexpr size_t kK = 10;
constexpr int kQueries = 10;

struct Setup {
  Palette palette;
  QuadraticFormDistance qfd;
  std::vector<Histogram> db;
};

Setup MakeSetup(size_t bins) {
  Rng rng(kSeed + bins);
  Setup s;
  s.palette = Palette::Uniform(bins, &rng);
  s.qfd = CheckedValue(QuadraticFormDistance::Create(s.palette), "E5 qfd");
  s.db.reserve(kDatabase);
  for (size_t i = 0; i < kDatabase; ++i) {
    s.db.push_back(RandomHistogram(&rng, bins));
  }
  return s;
}

void PrintTables() {
  Banner("E5: distance-bounding filter (top-10 of 2000 images)");
  JsonReport json;
  json.Set("bench", std::string("exp5_filter_bound"));
  json.Set("config.database", kDatabase);
  json.Set("config.k", kK);
  json.Set("config.queries", static_cast<size_t>(kQueries));
  TablePrinter table({"bins", "filter-dim", "energy", "full-dist-evals",
                      "of-N", "false-dismissals"});
  for (size_t bins : {64u, 100u, 256u}) {
    Setup s = MakeSetup(bins);
    Rng qrng(kSeed * 7 + bins);
    for (size_t dim : {1u, 3u, 8u}) {
      EigenFilter filter =
          CheckedValue(EigenFilter::Create(s.qfd, dim), "E5 filter");
      size_t total_full = 0;
      size_t dismissals = 0;
      std::vector<Histogram> targets;
      for (int q = 0; q < kQueries; ++q) {
        targets.push_back(RandomHistogram(&qrng, bins));
      }
      auto t0 = std::chrono::steady_clock::now();
      for (const Histogram& target : targets) {
        FilteredSearchStats stats;
        auto filtered = CheckedValue(
            FilteredKnn(s.qfd, filter, s.db, target, kK, &stats),
            "E5 search");
        benchmark::DoNotOptimize(filtered.data());
        total_full += stats.full_distance_computations;
      }
      auto t1 = std::chrono::steady_clock::now();
      for (const Histogram& target : targets) {
        auto filtered = CheckedValue(
            FilteredKnn(s.qfd, filter, s.db, target, kK), "E5 search");
        auto exact = ExactKnn(s.qfd, s.db, target, kK);
        for (size_t i = 0; i < exact.size(); ++i) {
          if (filtered[i].first != exact[i].first) ++dismissals;
        }
      }
      double avg_full =
          static_cast<double>(total_full) / static_cast<double>(kQueries);
      double us_per_query =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count() /
          1000.0 / static_cast<double>(kQueries);
      const std::string prefix =
          "filtered.bins" + std::to_string(bins) + ".dim" +
          std::to_string(dim);
      json.Set(prefix + ".captured_energy", filter.CapturedEnergy());
      json.Set(prefix + ".full_evals_per_query", avg_full);
      json.Set(prefix + ".us_per_query", us_per_query);
      json.Set(prefix + ".ops_per_sec", 1e6 / us_per_query);
      json.Set(prefix + ".false_dismissals", dismissals);
      table.AddRow({std::to_string(bins), std::to_string(dim),
                    TablePrinter::Num(filter.CapturedEnergy(), 3),
                    TablePrinter::Num(avg_full, 4),
                    TablePrinter::Num(avg_full / kDatabase * 100.0, 3) + "%",
                    std::to_string(dismissals)});
    }
  }
  table.Print();
  std::cout << "Expectation: false-dismissals == 0 everywhere (formula (2)); "
               "a dimension-3 summary already skips the vast majority of "
               "full quadratic-form evaluations.\n";

  // E5b: indexing the summaries (paper §2.1's "multidimensional index on
  // short color vectors") — the GEMINI pipeline vs the flat filter.
  Banner("E5b: flat filter vs R-tree-indexed summaries (64 bins, dim 3)");
  Setup s = MakeSetup(64);
  EigenFilter filter = CheckedValue(EigenFilter::Create(s.qfd, 3), "filter");
  GeminiIndex gemini =
      CheckedValue(GeminiIndex::Build(&s.qfd, filter, &s.db), "gemini");
  Rng qrng(kSeed * 11);
  size_t flat_bounds = 0, flat_full = 0, gem_bounds = 0, gem_full = 0;
  size_t mismatches = 0;
  for (int q = 0; q < kQueries; ++q) {
    Histogram target = RandomHistogram(&qrng, 64);
    FilteredSearchStats fs, gs;
    auto flat = CheckedValue(
        FilteredKnn(s.qfd, filter, s.db, target, kK, &fs), "flat");
    auto via_index = CheckedValue(gemini.Knn(target, kK, &gs), "gemini knn");
    for (size_t i = 0; i < flat.size(); ++i) {
      if (flat[i].first != via_index[i].first) ++mismatches;
    }
    flat_bounds += fs.bound_computations;
    flat_full += fs.full_distance_computations;
    gem_bounds += gs.bound_computations;
    gem_full += gs.full_distance_computations;
  }
  TablePrinter gtable({"pipeline", "summary-evals/query", "full-evals/query",
                       "mismatches"});
  gtable.AddRow({"flat filter",
                 TablePrinter::Num(
                     static_cast<double>(flat_bounds) / kQueries, 4),
                 TablePrinter::Num(
                     static_cast<double>(flat_full) / kQueries, 4),
                 "0"});
  gtable.AddRow({"gemini (rtree)",
                 TablePrinter::Num(
                     static_cast<double>(gem_bounds) / kQueries, 4),
                 TablePrinter::Num(
                     static_cast<double>(gem_full) / kQueries, 4),
                 std::to_string(mismatches)});
  gtable.Print();
  std::cout << "Expectation: identical answers (mismatches == 0); the "
               "R-tree inspects a fraction of the summaries the flat filter "
               "must score, at the same full-distance refinement count.\n";

  json.Set("gemini.flat_bound_evals_per_query",
           static_cast<double>(flat_bounds) / kQueries);
  json.Set("gemini.flat_full_evals_per_query",
           static_cast<double>(flat_full) / kQueries);
  json.Set("gemini.rtree_bound_evals_per_query",
           static_cast<double>(gem_bounds) / kQueries);
  json.Set("gemini.rtree_full_evals_per_query",
           static_cast<double>(gem_full) / kQueries);
  json.Set("gemini.mismatches", mismatches);
  json.WriteFile("BENCH_filter_bound.json");
}

void BM_FullDistance(benchmark::State& state) {
  Setup s = MakeSetup(static_cast<size_t>(state.range(0)));
  Rng rng(kSeed);
  Histogram target = RandomHistogram(&rng, s.palette.size());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.qfd.Distance(s.db[i++ % s.db.size()], target));
  }
}
BENCHMARK(BM_FullDistance)->Arg(64)->Arg(256);

void BM_BoundDistance(benchmark::State& state) {
  Setup s = MakeSetup(static_cast<size_t>(state.range(0)));
  EigenFilter filter = CheckedValue(EigenFilter::Create(s.qfd, 3), "filter");
  Rng rng(kSeed);
  Histogram target = RandomHistogram(&rng, s.palette.size());
  std::vector<double> ft = filter.Project(target);
  std::vector<std::vector<double>> projected;
  for (const Histogram& h : s.db) projected.push_back(filter.Project(h));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EigenFilter::BoundDistance(
        projected[i++ % projected.size()], ft));
  }
}
BENCHMARK(BM_BoundDistance)->Arg(64)->Arg(256);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
