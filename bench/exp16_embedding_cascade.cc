// E16 — the eigen-space embedding layer end to end: exact kNN through the
// O(k)-per-pair batched kernel vs the seed O(k^2)-per-pair quadratic-form
// scan, and the multi-level cascaded filter vs the two-level
// distance-bounding filter of E5. Every strategy is exact (recall 1.0, no
// false dismissals); the contest is purely how much full-precision work
// each avoids. Results also land in BENCH_embedding.json for the perf
// trajectory.

#include <chrono>
#include <cmath>
#include <thread>

#include "bench_util.h"
#include "common/simd_dispatch.h"
#include "image/bounding.h"
#include "image/cascade_tuner.h"
#include "image/embedding_store.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260805;
constexpr size_t kDatabase = 2000;
constexpr size_t kBins = 64;
constexpr size_t kK = 10;
constexpr int kQueries = 20;

struct Setup {
  Palette palette;
  QuadraticFormDistance qfd;
  std::vector<Histogram> db;
  EmbeddingStore embeddings;
  std::vector<Histogram> targets;
};

Setup MakeSetup() {
  Rng rng(kSeed);
  Setup s;
  s.palette = Palette::Uniform(kBins, &rng);
  s.qfd = CheckedValue(QuadraticFormDistance::Create(s.palette), "E16 qfd");
  s.db.reserve(kDatabase);
  for (size_t i = 0; i < kDatabase; ++i) {
    s.db.push_back(RandomHistogram(&rng, kBins));
  }
  s.embeddings =
      CheckedValue(EmbeddingStore::Build(s.qfd, s.db), "E16 embeddings");
  for (int q = 0; q < kQueries; ++q) {
    s.targets.push_back(RandomHistogram(&rng, kBins));
  }
  return s;
}

double MicrosPerQuery(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count() /
         1000.0 / static_cast<double>(kQueries);
}

// The seed kernel before this layer existed: one left-to-right scalar
// accumulator per row. A single FP accumulator is a loop-carried dependency
// the compiler cannot vectorize (FP addition is not associative), so this is
// the honest baseline for the lane-blocked kernel's speedup.
double ScalarSquaredDistance(const double* x, const double* y, size_t n) {
  double acc = 0.0;
  for (size_t j = 0; j < n; ++j) {
    const double d = x[j] - y[j];
    acc += d * d;
  }
  return acc;
}

void SeedScalarBatch(const EmbeddingStore& store, std::span<const double> t,
                     std::span<double> out) {
  for (size_t i = 0; i < store.size(); ++i) {
    out[i] = std::sqrt(ScalarSquaredDistance(store.Row(i).data(), t.data(),
                                             store.dim()));
  }
}

void PrintTables() {
  Banner("E16: embedding kernel & cascaded filter (top-10 of 2000 images, "
         "64 bins)");
  Setup s = MakeSetup();
  EigenFilter filter =
      CheckedValue(EigenFilter::Create(s.qfd, 3), "E16 filter");
  auto now = [] { return std::chrono::steady_clock::now(); };

  // Reference answers: the seed path (full quadratic form per candidate).
  std::vector<std::vector<std::pair<size_t, double>>> reference;
  auto t0 = now();
  for (const Histogram& target : s.targets) {
    reference.push_back(ExactKnn(s.qfd, s.db, target, kK));
  }
  auto t1 = now();
  double us_seed = MicrosPerQuery(t0, t1);

  // Embedded exact: one O(k^2) target projection + the batched O(k) kernel.
  size_t exact_mismatches = 0;
  t0 = now();
  for (const Histogram& target : s.targets) {
    benchmark::DoNotOptimize(
        s.embeddings.ExactKnn(s.qfd.Embed(target), kK));
  }
  t1 = now();
  double us_embedded = MicrosPerQuery(t0, t1);
  for (int q = 0; q < kQueries; ++q) {
    auto got = s.embeddings.ExactKnn(s.qfd.Embed(s.targets[q]), kK);
    for (size_t i = 0; i < kK; ++i) {
      if (got[i].first != reference[q][i].first) ++exact_mismatches;
    }
  }

  // Two-level filter (E5's strategy: 3-dim bound, O(k^2) refinement).
  size_t filtered_full = 0, filtered_mismatches = 0;
  t0 = now();
  for (int q = 0; q < kQueries; ++q) {
    FilteredSearchStats stats;
    auto got = CheckedValue(
        FilteredKnn(s.qfd, filter, s.db, s.targets[q], kK, &stats),
        "E16 filtered");
    filtered_full += stats.full_distance_computations;
    for (size_t i = 0; i < kK; ++i) {
      if (got[i].first != reference[q][i].first) ++filtered_mismatches;
    }
  }
  t1 = now();
  double us_filtered = MicrosPerQuery(t0, t1);

  // Multi-level cascade over the embeddings.
  CascadeStats cascade_stats;
  size_t cascade_mismatches = 0;
  t0 = now();
  for (int q = 0; q < kQueries; ++q) {
    auto got =
        s.embeddings.CascadeKnn(s.qfd.Embed(s.targets[q]), kK, {},
                                &cascade_stats);
    for (size_t i = 0; i < kK; ++i) {
      if (got[i].first != reference[q][i].first) ++cascade_mismatches;
    }
  }
  t1 = now();
  double us_cascade = MicrosPerQuery(t0, t1);

  auto per_query = [](size_t total) {
    return static_cast<double>(total) / static_cast<double>(kQueries);
  };
  TablePrinter table({"strategy", "us/query", "ops/sec", "full-evals/query",
                      "speedup-vs-seed", "mismatches"});
  auto add = [&](const std::string& name, double us, double full,
                 size_t mismatches) {
    table.AddRow({name, TablePrinter::Num(us, 4),
                  TablePrinter::Num(1e6 / us, 4), TablePrinter::Num(full, 4),
                  TablePrinter::Num(us_seed / us, 3),
                  std::to_string(mismatches)});
  };
  add("seed exact (O(k^2)/pair)", us_seed, kDatabase, 0);
  add("embedded exact (batch O(k))", us_embedded, kDatabase,
      exact_mismatches);
  add("two-level filter (dim 3)", us_filtered, per_query(filtered_full),
      filtered_mismatches);
  add("cascade (int8 + prefix 8, step 16)", us_cascade,
      per_query(cascade_stats.full_distance_computations),
      cascade_mismatches);
  table.Print();
  std::cout << "Expectation: zero mismatches everywhere (all strategies are "
               "exact); the batched embedded scan beats the seed exact scan "
               "by >= 5x, and the cascade carries fewer candidates to full "
               "precision than the two-level filter refines.\n";
  std::cout << "cascade refinement detail: "
            << per_query(cascade_stats.candidates_refined)
            << " candidates/query entered refinement, "
            << per_query(cascade_stats.dims_accumulated)
            << " dims/query accumulated past the prefix, "
            << per_query(cascade_stats.full_distance_computations)
            << " reached full depth (two-level filter: "
            << per_query(filtered_full) << " full O(k^2) evals/query).\n";

  // --- Batch-kernel detail: scalar seed loop vs the lane-blocked kernel,
  // then the same kernel sharded across thread pools of growing size. The
  // sharded scan must be *bit-identical* to the serial scan (the kernel's
  // lane split depends only on absolute dimension indices, and rows are
  // independent), so mismatches are counted bitwise, not with a tolerance.
  Banner("E16b: batch kernel — scalar baseline, vectorized serial, "
         "thread sweep");
  constexpr int kBatchReps = 50;
  std::vector<std::vector<double>> embedded;
  embedded.reserve(s.targets.size());
  for (const Histogram& target : s.targets) {
    embedded.push_back(s.qfd.Embed(target));
  }
  std::vector<double> out(s.embeddings.size());
  std::vector<double> serial_out(s.embeddings.size());
  auto time_batch = [&](auto&& fn) {
    auto a = now();
    for (int r = 0; r < kBatchReps; ++r) {
      for (const std::vector<double>& t : embedded) {
        fn(t);
        benchmark::DoNotOptimize(out.data());
      }
    }
    auto b = now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
               .count() /
           1000.0 / static_cast<double>(kBatchReps * embedded.size());
  };

  double us_scalar = time_batch(
      [&](const std::vector<double>& t) { SeedScalarBatch(s.embeddings, t, out); });
  double us_vector = time_batch(
      [&](const std::vector<double>& t) { s.embeddings.BatchDistances(t, out); });
  s.embeddings.BatchDistances(embedded[0], serial_out);

  const size_t hw = std::max<unsigned>(1, std::thread::hardware_concurrency());
  struct ThreadPoint {
    size_t threads;
    double us;
    size_t bitwise_mismatches;  // sharded BatchDistances vs serial
    size_t knn_mismatches;      // sharded Exact/CascadeKnn vs serial
  };
  std::vector<ThreadPoint> sweep;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ThreadPool pool(threads);
    ThreadPoint p{threads, 0.0, 0, 0};
    p.us = time_batch([&](const std::vector<double>& t) {
      s.embeddings.BatchDistances(t, out, &pool);
    });
    s.embeddings.BatchDistances(embedded[0], out, &pool);
    for (size_t i = 0; i < out.size(); ++i) {
      if (out[i] != serial_out[i]) ++p.bitwise_mismatches;
    }
    for (int q = 0; q < kQueries; ++q) {
      CascadeStats unused;
      if (s.embeddings.ExactKnn(embedded[q], kK) !=
              s.embeddings.ExactKnn(embedded[q], kK, &pool) ||
          s.embeddings.CascadeKnn(embedded[q], kK) !=
              s.embeddings.CascadeKnn(embedded[q], kK, {}, &unused, &pool)) {
        ++p.knn_mismatches;
      }
    }
    sweep.push_back(p);
  }

  TablePrinter ktable({"kernel", "us/pass", "Mrows/sec", "speedup-vs-scalar",
                       "bitwise-mismatches"});
  auto mrows = [](double us) {
    return static_cast<double>(kDatabase) / us;  // rows/us == Mrows/sec
  };
  ktable.AddRow({"seed scalar loop", TablePrinter::Num(us_scalar, 4),
                 TablePrinter::Num(mrows(us_scalar), 3), "1.000", "-"});
  ktable.AddRow({"lane-blocked serial", TablePrinter::Num(us_vector, 4),
                 TablePrinter::Num(mrows(us_vector), 3),
                 TablePrinter::Num(us_scalar / us_vector, 3), "-"});
  for (const ThreadPoint& p : sweep) {
    ktable.AddRow({"lane-blocked, pool " + std::to_string(p.threads),
                   TablePrinter::Num(p.us, 4), TablePrinter::Num(mrows(p.us), 3),
                   TablePrinter::Num(us_scalar / p.us, 3),
                   std::to_string(p.bitwise_mismatches)});
  }
  ktable.Print();
  std::cout << "hardware_concurrency = " << hw
            << "; pools wider than that add scheduling overhead, not "
               "speed. Sharded BatchDistances / ExactKnn / CascadeKnn are "
               "checked bit-identical against the serial kernels.\n";

  // --- Tuned cascade: pick (prefix_dim, step) for *this* spectrum from a
  // calibration sample, then re-run the query set with the tuned options.
  Banner("E16c: cascade auto-tuning");
  std::vector<std::vector<double>> calibration(
      embedded.begin(), embedded.begin() + std::min<size_t>(8, embedded.size()));
  CascadeTunerOptions tuner_options;
  tuner_options.k = kK;
  TunedCascade tuned = CascadeTuner::Tune(s.embeddings, s.qfd.eigenvalues(),
                                          calibration, tuner_options);

  CascadeStats tuned_stats;
  size_t tuned_mismatches = 0;
  t0 = now();
  for (int q = 0; q < kQueries; ++q) {
    auto got = s.embeddings.CascadeKnn(embedded[q], kK, tuned.options,
                                       &tuned_stats);
    for (size_t i = 0; i < kK; ++i) {
      if (got[i].first != reference[q][i].first) ++tuned_mismatches;
    }
  }
  t1 = now();
  double us_tuned = MicrosPerQuery(t0, t1);
  double default_cost =
      CascadeTuner::Cost(cascade_stats, CascadeOptions{}.prefix_dim,
                         s.embeddings.dim(), tuner_options.candidate_overhead,
                         kQueries);
  double tuned_cost = CascadeTuner::Cost(tuned_stats, tuned.options.prefix_dim,
                                         s.embeddings.dim(),
                                         tuner_options.candidate_overhead,
                                         kQueries);
  TablePrinter ttable({"config", "prefix", "step", "model-cost/query",
                       "us/query", "mismatches"});
  ttable.AddRow({"default", std::to_string(CascadeOptions{}.prefix_dim),
                 std::to_string(CascadeOptions{}.step),
                 TablePrinter::Num(default_cost, 4),
                 TablePrinter::Num(us_cascade, 4),
                 std::to_string(cascade_mismatches)});
  ttable.AddRow({"tuned", std::to_string(tuned.options.prefix_dim),
                 std::to_string(tuned.options.step),
                 TablePrinter::Num(tuned_cost, 4),
                 TablePrinter::Num(us_tuned, 4),
                 std::to_string(tuned_mismatches)});
  ttable.Print();
  std::cout << "tuner sweep: " << tuned.sweep.size()
            << " configurations on " << calibration.size()
            << " calibration queries; the tuned config's modeled cost is "
               "never worse than the default's on the calibration sample, "
               "and answers are identical by construction.\n";

  // --- Quantized tier: the identical cascade with the int8 level -1 off vs
  // on. Answers are bit-identical by construction (the quantized bound is
  // admissible — DESIGN §3g); the contest is bytes read per level, counted
  // by the store itself rather than modeled.
  Banner("E16d: quantized int8 tier — bytes scanned per cascade level");
  auto run_cascade = [&](bool use_quantized, CascadeStats* stats,
                         size_t* mismatches) {
    CascadeOptions options;
    options.use_quantized = use_quantized;
    auto a = now();
    for (int q = 0; q < kQueries; ++q) {
      auto got = s.embeddings.CascadeKnn(embedded[q], kK, options, stats);
      for (size_t i = 0; i < kK; ++i) {
        if (got[i].first != reference[q][i].first) ++*mismatches;
      }
    }
    auto b = now();
    return MicrosPerQuery(a, b);
  };
  CascadeStats float_stats, int8_stats;
  size_t float_mm = 0, int8_mm = 0;
  double us_float_cascade = run_cascade(false, &float_stats, &float_mm);
  double us_int8_cascade = run_cascade(true, &int8_stats, &int8_mm);
  // The level-0 baseline the tier replaces: a full-dimension float scan
  // touches every byte of every row.
  const double float_scan_bytes =
      static_cast<double>(kDatabase) * static_cast<double>(kBins) *
      static_cast<double>(sizeof(double));
  const double int8_level_bytes = per_query(int8_stats.bytes_scanned_quantized);
  const double bytes_reduction = float_scan_bytes / int8_level_bytes;

  TablePrinter qtable({"config", "us/query", "int8 B/query", "prefix B/query",
                       "refine B/query", "mismatches"});
  qtable.AddRow({"cascade, float levels only",
                 TablePrinter::Num(us_float_cascade, 4), "0",
                 TablePrinter::Num(per_query(float_stats.bytes_scanned_prefix), 1),
                 TablePrinter::Num(per_query(float_stats.bytes_scanned_refine), 1),
                 std::to_string(float_mm)});
  qtable.AddRow({"cascade, int8 level -1 on",
                 TablePrinter::Num(us_int8_cascade, 4),
                 TablePrinter::Num(int8_level_bytes, 1),
                 TablePrinter::Num(per_query(int8_stats.bytes_scanned_prefix), 1),
                 TablePrinter::Num(per_query(int8_stats.bytes_scanned_refine), 1),
                 std::to_string(int8_mm)});
  qtable.Print();
  std::cout << "kernel dispatch: " << simd::Name(simd::Active())
            << "; full-object ordering scan reads "
            << TablePrinter::Num(int8_level_bytes, 0)
            << " int8 B/query vs " << TablePrinter::Num(float_scan_bytes, 0)
            << " B/query for a full float scan — a "
            << TablePrinter::Num(bytes_reduction, 2)
            << "x reduction (must stay >= 3x); both variants return the "
               "reference answers bit-identically.\n";

  JsonReport json;
  json.Set("bench", std::string("exp16_embedding_cascade"));
  json.Set("config.database", kDatabase);
  json.Set("config.bins", kBins);
  json.Set("config.k", kK);
  json.Set("config.queries", static_cast<size_t>(kQueries));
  json.Set("seed_exact.us_per_query", us_seed);
  json.Set("seed_exact.ops_per_sec", 1e6 / us_seed);
  json.Set("seed_exact.full_evals_per_query", static_cast<double>(kDatabase));
  json.Set("embedded_exact.us_per_query", us_embedded);
  json.Set("embedded_exact.ops_per_sec", 1e6 / us_embedded);
  json.Set("embedded_exact.speedup_vs_seed", us_seed / us_embedded);
  json.Set("embedded_exact.mismatches", exact_mismatches);
  json.Set("filtered.us_per_query", us_filtered);
  json.Set("filtered.ops_per_sec", 1e6 / us_filtered);
  json.Set("filtered.full_evals_per_query", per_query(filtered_full));
  json.Set("filtered.mismatches", filtered_mismatches);
  json.Set("cascade.us_per_query", us_cascade);
  json.Set("cascade.ops_per_sec", 1e6 / us_cascade);
  json.Set("cascade.speedup_vs_seed", us_seed / us_cascade);
  json.Set("cascade.full_evals_per_query",
           per_query(cascade_stats.full_distance_computations));
  json.Set("cascade.candidates_refined_per_query",
           per_query(cascade_stats.candidates_refined));
  json.Set("cascade.dims_accumulated_per_query",
           per_query(cascade_stats.dims_accumulated));
  json.Set("cascade.mismatches", cascade_mismatches);
  json.SetHostParallelism(hw);
  json.Set("batch.scalar_us_per_pass", us_scalar);
  json.Set("batch.serial_us_per_pass", us_vector);
  json.Set("batch.serial_speedup_vs_scalar", us_scalar / us_vector);
  for (const ThreadPoint& p : sweep) {
    const std::string prefix = "batch.threads_" + std::to_string(p.threads);
    json.Set(prefix + ".us_per_pass", p.us);
    json.Set(prefix + ".speedup_vs_scalar", us_scalar / p.us);
    json.Set(prefix + ".speedup_vs_serial", us_vector / p.us);
    json.Set(prefix + ".bitwise_mismatches", p.bitwise_mismatches);
    json.Set(prefix + ".knn_mismatches", p.knn_mismatches);
  }
  json.SetKernelDispatch(std::string(simd::Name(simd::Active())));
  json.Set("cascade_float.us_per_query", us_float_cascade);
  json.Set("cascade_float.bytes_prefix_per_query",
           per_query(float_stats.bytes_scanned_prefix));
  json.Set("cascade_float.bytes_refine_per_query",
           per_query(float_stats.bytes_scanned_refine));
  json.Set("cascade_float.mismatches", float_mm);
  json.Set("qcascade.us_per_query", us_int8_cascade);
  json.Set("qcascade.bytes_quantized_per_query", int8_level_bytes);
  json.Set("qcascade.bytes_prefix_per_query",
           per_query(int8_stats.bytes_scanned_prefix));
  json.Set("qcascade.bytes_refine_per_query",
           per_query(int8_stats.bytes_scanned_refine));
  json.Set("qcascade.bound_computations_per_query",
           per_query(int8_stats.quantized_bound_computations));
  json.Set("qcascade.float_bounds_per_query",
           per_query(int8_stats.bound_computations));
  json.Set("qcascade.mismatches", int8_mm);
  // Storage-tier counters (DESIGN §3k): this experiment runs over the
  // RAM-resident store, so they must all be zero — the nonzero story is
  // E23's (BENCH_storage.json). Stamped here so the trajectory shows the
  // RAM baseline explicitly.
  json.Set("qcascade.bytes_read_disk_per_query",
           per_query(int8_stats.bytes_read_disk));
  json.Set("qcascade.buffer_pool_hits_per_query",
           per_query(int8_stats.buffer_pool_hits));
  json.Set("qcascade.buffer_pool_misses_per_query",
           per_query(int8_stats.buffer_pool_misses));
  json.Set("qcascade.buffer_pool_evictions_per_query",
           per_query(int8_stats.buffer_pool_evictions));
  json.Set("float_scan.bytes_per_query", float_scan_bytes);
  json.Set("qcascade.bytes_reduction_vs_float_scan", bytes_reduction);
  json.Set("tuned_cascade.prefix_dim", tuned.options.prefix_dim);
  json.Set("tuned_cascade.step", tuned.options.step);
  json.Set("tuned_cascade.use_quantized", tuned.options.use_quantized);
  json.Set("tuned_cascade.shards", tuned.shards);
  json.Set("tuned_cascade.model_cost_per_query", tuned_cost);
  json.Set("tuned_cascade.default_model_cost_per_query", default_cost);
  json.Set("tuned_cascade.us_per_query", us_tuned);
  json.Set("tuned_cascade.speedup_vs_seed", us_seed / us_tuned);
  json.Set("tuned_cascade.mismatches", tuned_mismatches);
  json.Set("tuned_cascade.sweep_size", tuned.sweep.size());
  json.WriteFileGuarded("BENCH_embedding.json");
}

void BM_SeedExactKnn(benchmark::State& state) {
  Setup s = MakeSetup();
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExactKnn(s.qfd, s.db, s.targets[q++ % s.targets.size()], kK));
  }
}
BENCHMARK(BM_SeedExactKnn)->Unit(benchmark::kMicrosecond);

void BM_EmbeddedExactKnn(benchmark::State& state) {
  Setup s = MakeSetup();
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.embeddings.ExactKnn(
        s.qfd.Embed(s.targets[q++ % s.targets.size()]), kK));
  }
}
BENCHMARK(BM_EmbeddedExactKnn)->Unit(benchmark::kMicrosecond);

void BM_CascadeKnn(benchmark::State& state) {
  Setup s = MakeSetup();
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.embeddings.CascadeKnn(
        s.qfd.Embed(s.targets[q++ % s.targets.size()]), kK));
  }
}
BENCHMARK(BM_CascadeKnn)->Unit(benchmark::kMicrosecond);

void BM_BatchDistances(benchmark::State& state) {
  Setup s = MakeSetup();
  std::vector<double> target = s.qfd.Embed(s.targets[0]);
  std::vector<double> out(s.embeddings.size());
  for (auto _ : state) {
    s.embeddings.BatchDistances(target, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BatchDistances)->Unit(benchmark::kMicrosecond);

void BM_BatchDistancesScalar(benchmark::State& state) {
  Setup s = MakeSetup();
  std::vector<double> target = s.qfd.Embed(s.targets[0]);
  std::vector<double> out(s.embeddings.size());
  for (auto _ : state) {
    SeedScalarBatch(s.embeddings, target, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BatchDistancesScalar)->Unit(benchmark::kMicrosecond);

void BM_BatchDistancesSharded(benchmark::State& state) {
  Setup s = MakeSetup();
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  std::vector<double> target = s.qfd.Embed(s.targets[0]);
  std::vector<double> out(s.embeddings.size());
  for (auto _ : state) {
    s.embeddings.BatchDistances(target, out, &pool);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BatchDistancesSharded)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
