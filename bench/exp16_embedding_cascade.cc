// E16 — the eigen-space embedding layer end to end: exact kNN through the
// O(k)-per-pair batched kernel vs the seed O(k^2)-per-pair quadratic-form
// scan, and the multi-level cascaded filter vs the two-level
// distance-bounding filter of E5. Every strategy is exact (recall 1.0, no
// false dismissals); the contest is purely how much full-precision work
// each avoids. Results also land in BENCH_embedding.json for the perf
// trajectory.

#include <chrono>

#include "bench_util.h"
#include "image/bounding.h"
#include "image/embedding_store.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260805;
constexpr size_t kDatabase = 2000;
constexpr size_t kBins = 64;
constexpr size_t kK = 10;
constexpr int kQueries = 20;

struct Setup {
  Palette palette;
  QuadraticFormDistance qfd;
  std::vector<Histogram> db;
  EmbeddingStore embeddings;
  std::vector<Histogram> targets;
};

Setup MakeSetup() {
  Rng rng(kSeed);
  Setup s;
  s.palette = Palette::Uniform(kBins, &rng);
  s.qfd = CheckedValue(QuadraticFormDistance::Create(s.palette), "E16 qfd");
  s.db.reserve(kDatabase);
  for (size_t i = 0; i < kDatabase; ++i) {
    s.db.push_back(RandomHistogram(&rng, kBins));
  }
  s.embeddings =
      CheckedValue(EmbeddingStore::Build(s.qfd, s.db), "E16 embeddings");
  for (int q = 0; q < kQueries; ++q) {
    s.targets.push_back(RandomHistogram(&rng, kBins));
  }
  return s;
}

double MicrosPerQuery(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count() /
         1000.0 / static_cast<double>(kQueries);
}

void PrintTables() {
  Banner("E16: embedding kernel & cascaded filter (top-10 of 2000 images, "
         "64 bins)");
  Setup s = MakeSetup();
  EigenFilter filter =
      CheckedValue(EigenFilter::Create(s.qfd, 3), "E16 filter");
  auto now = [] { return std::chrono::steady_clock::now(); };

  // Reference answers: the seed path (full quadratic form per candidate).
  std::vector<std::vector<std::pair<size_t, double>>> reference;
  auto t0 = now();
  for (const Histogram& target : s.targets) {
    reference.push_back(ExactKnn(s.qfd, s.db, target, kK));
  }
  auto t1 = now();
  double us_seed = MicrosPerQuery(t0, t1);

  // Embedded exact: one O(k^2) target projection + the batched O(k) kernel.
  size_t exact_mismatches = 0;
  t0 = now();
  for (const Histogram& target : s.targets) {
    benchmark::DoNotOptimize(
        s.embeddings.ExactKnn(s.qfd.Embed(target), kK));
  }
  t1 = now();
  double us_embedded = MicrosPerQuery(t0, t1);
  for (int q = 0; q < kQueries; ++q) {
    auto got = s.embeddings.ExactKnn(s.qfd.Embed(s.targets[q]), kK);
    for (size_t i = 0; i < kK; ++i) {
      if (got[i].first != reference[q][i].first) ++exact_mismatches;
    }
  }

  // Two-level filter (E5's strategy: 3-dim bound, O(k^2) refinement).
  size_t filtered_full = 0, filtered_mismatches = 0;
  t0 = now();
  for (int q = 0; q < kQueries; ++q) {
    FilteredSearchStats stats;
    auto got = CheckedValue(
        FilteredKnn(s.qfd, filter, s.db, s.targets[q], kK, &stats),
        "E16 filtered");
    filtered_full += stats.full_distance_computations;
    for (size_t i = 0; i < kK; ++i) {
      if (got[i].first != reference[q][i].first) ++filtered_mismatches;
    }
  }
  t1 = now();
  double us_filtered = MicrosPerQuery(t0, t1);

  // Multi-level cascade over the embeddings.
  CascadeStats cascade_stats;
  size_t cascade_mismatches = 0;
  t0 = now();
  for (int q = 0; q < kQueries; ++q) {
    auto got =
        s.embeddings.CascadeKnn(s.qfd.Embed(s.targets[q]), kK, {},
                                &cascade_stats);
    for (size_t i = 0; i < kK; ++i) {
      if (got[i].first != reference[q][i].first) ++cascade_mismatches;
    }
  }
  t1 = now();
  double us_cascade = MicrosPerQuery(t0, t1);

  auto per_query = [](size_t total) {
    return static_cast<double>(total) / static_cast<double>(kQueries);
  };
  TablePrinter table({"strategy", "us/query", "ops/sec", "full-evals/query",
                      "speedup-vs-seed", "mismatches"});
  auto add = [&](const std::string& name, double us, double full,
                 size_t mismatches) {
    table.AddRow({name, TablePrinter::Num(us, 4),
                  TablePrinter::Num(1e6 / us, 4), TablePrinter::Num(full, 4),
                  TablePrinter::Num(us_seed / us, 3),
                  std::to_string(mismatches)});
  };
  add("seed exact (O(k^2)/pair)", us_seed, kDatabase, 0);
  add("embedded exact (batch O(k))", us_embedded, kDatabase,
      exact_mismatches);
  add("two-level filter (dim 3)", us_filtered, per_query(filtered_full),
      filtered_mismatches);
  add("cascade (prefix 8, step 16)", us_cascade,
      per_query(cascade_stats.full_distance_computations),
      cascade_mismatches);
  table.Print();
  std::cout << "Expectation: zero mismatches everywhere (all strategies are "
               "exact); the batched embedded scan beats the seed exact scan "
               "by >= 5x, and the cascade carries fewer candidates to full "
               "precision than the two-level filter refines.\n";
  std::cout << "cascade refinement detail: "
            << per_query(cascade_stats.candidates_refined)
            << " candidates/query entered refinement, "
            << per_query(cascade_stats.dims_accumulated)
            << " dims/query accumulated past the prefix, "
            << per_query(cascade_stats.full_distance_computations)
            << " reached full depth (two-level filter: "
            << per_query(filtered_full) << " full O(k^2) evals/query).\n";

  JsonReport json;
  json.Set("bench", std::string("exp16_embedding_cascade"));
  json.Set("config.database", kDatabase);
  json.Set("config.bins", kBins);
  json.Set("config.k", kK);
  json.Set("config.queries", static_cast<size_t>(kQueries));
  json.Set("seed_exact.us_per_query", us_seed);
  json.Set("seed_exact.ops_per_sec", 1e6 / us_seed);
  json.Set("seed_exact.full_evals_per_query", static_cast<double>(kDatabase));
  json.Set("embedded_exact.us_per_query", us_embedded);
  json.Set("embedded_exact.ops_per_sec", 1e6 / us_embedded);
  json.Set("embedded_exact.speedup_vs_seed", us_seed / us_embedded);
  json.Set("embedded_exact.mismatches", exact_mismatches);
  json.Set("filtered.us_per_query", us_filtered);
  json.Set("filtered.ops_per_sec", 1e6 / us_filtered);
  json.Set("filtered.full_evals_per_query", per_query(filtered_full));
  json.Set("filtered.mismatches", filtered_mismatches);
  json.Set("cascade.us_per_query", us_cascade);
  json.Set("cascade.ops_per_sec", 1e6 / us_cascade);
  json.Set("cascade.speedup_vs_seed", us_seed / us_cascade);
  json.Set("cascade.full_evals_per_query",
           per_query(cascade_stats.full_distance_computations));
  json.Set("cascade.candidates_refined_per_query",
           per_query(cascade_stats.candidates_refined));
  json.Set("cascade.dims_accumulated_per_query",
           per_query(cascade_stats.dims_accumulated));
  json.Set("cascade.mismatches", cascade_mismatches);
  json.WriteFile("BENCH_embedding.json");
}

void BM_SeedExactKnn(benchmark::State& state) {
  Setup s = MakeSetup();
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExactKnn(s.qfd, s.db, s.targets[q++ % s.targets.size()], kK));
  }
}
BENCHMARK(BM_SeedExactKnn)->Unit(benchmark::kMicrosecond);

void BM_EmbeddedExactKnn(benchmark::State& state) {
  Setup s = MakeSetup();
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.embeddings.ExactKnn(
        s.qfd.Embed(s.targets[q++ % s.targets.size()]), kK));
  }
}
BENCHMARK(BM_EmbeddedExactKnn)->Unit(benchmark::kMicrosecond);

void BM_CascadeKnn(benchmark::State& state) {
  Setup s = MakeSetup();
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.embeddings.CascadeKnn(
        s.qfd.Embed(s.targets[q++ % s.targets.size()]), kK));
  }
}
BENCHMARK(BM_CascadeKnn)->Unit(benchmark::kMicrosecond);

void BM_BatchDistances(benchmark::State& state) {
  Setup s = MakeSetup();
  std::vector<double> target = s.qfd.Embed(s.targets[0]);
  std::vector<double> out(s.embeddings.size());
  for (auto _ : state) {
    s.embeddings.BatchDistances(target, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BatchDistances)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
