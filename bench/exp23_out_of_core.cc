// E23 — the out-of-core storage engine at scale (DESIGN §3k): a 10M-row
// column file (2.56 GB of float rows) served through a 256 MB buffer pool,
// an order of magnitude more data than RAM budget. Three claims, measured:
//
//   1. Tier asymmetry: with the RAM-resident int8 level −1 on, a cascade
//      query's disk traffic is survivor pages only — warm repeats read
//      *zero* disk bytes. With the tier off, every query streams the whole
//      float file through the pool. Same answers either way.
//   2. Bounded residency: peak RSS stays far below the file size — the
//      process never holds the float matrix (checked with getrusage, and
//      the run aborts if residency reaches the file size).
//   3. Pool behavior: the clock pool's hit rate against a Zipfian page
//      workload climbs with capacity along the classic concave curve —
//      measured on a real file, not simulated.
//
// Ingestion streams synthetic decaying-spectrum rows straight to the
// writer (constant memory; image generation at 10M rows would dominate the
// run on one core without exercising storage any harder).
//
// FUZZYDB_SMOKE=1 shrinks to a seconds-long pass (small N, tiny pool) that
// still pages; results land in BENCH_storage.json either way.

#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/simd_dispatch.h"
#include "storage/buffer_pool.h"
#include "storage/column_file.h"
#include "storage/paged_store.h"

namespace fuzzydb {
namespace {

using storage::BufferPool;
using storage::BufferPoolOptions;
using storage::BufferPoolStats;
using storage::ColumnFile;
using storage::ColumnFileOptions;
using storage::ColumnFileWriter;
using storage::PagedEmbeddingStore;
using storage::PagedStoreOptions;

constexpr uint64_t kSeed = 20260807;
constexpr size_t kDim = 32;  // stride 32 doubles = 256 B/row
constexpr size_t kK = 10;

struct Config {
  size_t n = 10'000'000;                      // 2.56 GB of rows
  size_t pool_bytes = 256ull * 1024 * 1024;   // 1/10 of the file
  size_t page_bytes = 64 * 1024;
  int int8_queries = 8;
  int float_queries = 2;  // each one streams the whole file
  size_t zipf_rows = 200'000;
  size_t zipf_probes = 50'000;
  bool smoke = false;
};

Config MakeConfig() {
  Config c;
  if (std::getenv("FUZZYDB_SMOKE") != nullptr) {
    c.smoke = true;
    c.n = 150'000;                 // 38 MB file...
    c.pool_bytes = 4 * 1024 * 1024;  // ...through a 4 MB pool: still pages
    c.int8_queries = 3;
    c.float_queries = 1;
    c.zipf_rows = 40'000;
    c.zipf_probes = 8'000;
  }
  return c;
}

// The synthetic spectrum: per-dimension scales decaying like an eigenbasis
// embedding's, so the cascade's prefix bounds have the structure they were
// built for.
std::vector<double> Spectrum() {
  std::vector<double> s(kDim);
  for (size_t j = 0; j < kDim; ++j) s[j] = std::exp(-0.18 * static_cast<double>(j));
  return s;
}

// Streams n decaying-spectrum rows into a column file. Constant memory:
// one row + one page + the writer's running quantization maxima.
double StreamRows(const std::string& path, size_t n, size_t page_bytes,
                  uint64_t seed) {
  ColumnFileOptions options;
  options.page_bytes = page_bytes;
  options.store_version = 23;
  options.metadata = Spectrum();
  auto writer =
      CheckedValue(ColumnFileWriter::Create(path, kDim, options), "E23 writer");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  const std::vector<double> spectrum = Spectrum();
  std::vector<double> row(kDim);
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < kDim; ++j) row[j] = unit(rng) * spectrum[j];
    CheckOk(writer->AppendRow(row), "E23 append");
  }
  CheckOk(writer->Finish(), "E23 finish");
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0)
             .count() /
         1000.0;
}

std::vector<std::vector<double>> MakeTargets(int count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  const std::vector<double> spectrum = Spectrum();
  std::vector<std::vector<double>> targets(count, std::vector<double>(kDim));
  for (auto& t : targets) {
    for (size_t j = 0; j < kDim; ++j) t[j] = unit(rng) * spectrum[j];
  }
  return targets;
}

double PeakRssBytes() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) * 1024.0;  // KB on Linux
}

struct QueryPoint {
  double cold_ms = 0;
  double warm_ms = 0;
  CascadeStats cold;
  CascadeStats warm;
};

double Ms(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::microseconds>(b - a).count() /
         1000.0;
}

// Runs each target cold (first touch) then warm (immediate repeat), with
// per-query pool-delta stats from the store itself.
std::vector<QueryPoint> RunQueries(const PagedEmbeddingStore& store,
                                   const std::vector<std::vector<double>>& ts,
                                   bool use_quantized) {
  CascadeOptions options;
  options.use_quantized = use_quantized;
  std::vector<QueryPoint> points;
  points.reserve(ts.size());
  for (const std::vector<double>& target : ts) {
    QueryPoint p;
    auto a = std::chrono::steady_clock::now();
    auto cold = store.CascadeKnn(target, kK, options, &p.cold);
    auto b = std::chrono::steady_clock::now();
    auto warm = store.CascadeKnn(target, kK, options, &p.warm);
    auto c = std::chrono::steady_clock::now();
    CheckOk(cold.status(), "E23 cold cascade");
    CheckOk(warm.status(), "E23 warm cascade");
    if (*cold != *warm) {
      std::cerr << "E23: cold and warm answers diverged\n";
      std::abort();
    }
    p.cold_ms = Ms(a, b);
    p.warm_ms = Ms(b, c);
    points.push_back(p);
  }
  return points;
}

struct Aggregate {
  double cold_ms = 0, warm_ms = 0;
  double cold_disk_bytes = 0, warm_disk_bytes = 0;
  double cold_hits = 0, cold_misses = 0, warm_hits = 0, warm_misses = 0;
  double warm_evictions = 0;
};

Aggregate Summarize(const std::vector<QueryPoint>& points) {
  Aggregate agg;
  const double q = static_cast<double>(points.size());
  for (const QueryPoint& p : points) {
    agg.cold_ms += p.cold_ms / q;
    agg.warm_ms += p.warm_ms / q;
    agg.cold_disk_bytes += static_cast<double>(p.cold.bytes_read_disk) / q;
    agg.warm_disk_bytes += static_cast<double>(p.warm.bytes_read_disk) / q;
    agg.cold_hits += static_cast<double>(p.cold.buffer_pool_hits) / q;
    agg.cold_misses += static_cast<double>(p.cold.buffer_pool_misses) / q;
    agg.warm_hits += static_cast<double>(p.warm.buffer_pool_hits) / q;
    agg.warm_misses += static_cast<double>(p.warm.buffer_pool_misses) / q;
    agg.warm_evictions += static_cast<double>(p.warm.buffer_pool_evictions) / q;
  }
  return agg;
}

double HitRate(double hits, double misses) {
  const double total = hits + misses;
  return total == 0 ? 1.0 : hits / total;
}

struct ZipfPoint {
  size_t pool_bytes;
  double hit_rate;
  double evictions;
};

// Zipfian page probes against a real file through pools of growing
// capacity: the clock sweep's hit rate must climb concavely toward 1.
std::vector<ZipfPoint> ZipfCurve(const std::string& path, const Config& cfg) {
  auto file = CheckedValue(ColumnFile::Open(path), "E23 zipf open");
  const uint64_t pages = file->num_pages();
  // Zipf(s=1.1) over pages, deterministic probe sequence shared by every
  // pool size so the curves are comparable point for point.
  std::vector<double> weights(pages);
  for (uint64_t p = 0; p < pages; ++p) {
    weights[p] = 1.0 / std::pow(static_cast<double>(p + 1), 1.1);
  }
  std::mt19937_64 rng(kSeed ^ 0x51f);
  std::discrete_distribution<uint64_t> zipf(weights.begin(), weights.end());
  std::vector<uint64_t> probes(cfg.zipf_probes);
  for (uint64_t& p : probes) p = zipf(rng);

  std::vector<ZipfPoint> curve;
  for (size_t mb : {1, 2, 4, 8, 16, 32, 64}) {
    BufferPoolOptions options;
    options.page_bytes = file->page_bytes();
    options.capacity_pages =
        std::max<size_t>(1, mb * 1024 * 1024 / file->page_bytes());
    BufferPool pool(options, [&file](uint64_t page, std::span<char> dest) {
      return file->ReadPage(page, dest);
    });
    for (uint64_t p : probes) {
      auto h = pool.Fetch(p);
      CheckOk(h.status(), "E23 zipf fetch");
    }
    const BufferPoolStats s = pool.stats();
    curve.push_back({mb * 1024 * 1024,
                     HitRate(static_cast<double>(s.hits),
                             static_cast<double>(s.misses)),
                     static_cast<double>(s.evictions)});
    if (curve.size() > 1 &&
        curve.back().hit_rate + 1e-9 < curve[curve.size() - 2].hit_rate) {
      std::cerr << "E23: hit rate fell as the pool grew — eviction bug\n";
      std::abort();
    }
  }
  file->Close();
  return curve;
}

void PrintTables() {
  const Config cfg = MakeConfig();
  Banner("E23: out-of-core storage — " + std::to_string(cfg.n) +
         " rows x dim " + std::to_string(kDim) + " through a " +
         std::to_string(cfg.pool_bytes / (1024 * 1024)) + " MB pool" +
         (cfg.smoke ? " [smoke]" : ""));

  const std::string path = "/tmp/fuzzydb_e23.fzdb";
  const std::string zipf_path = "/tmp/fuzzydb_e23_zipf.fzdb";
  const double ingest_s = StreamRows(path, cfg.n, cfg.page_bytes, kSeed);
  const double file_bytes =
      static_cast<double>(cfg.n) * kDim * sizeof(double);
  std::cout << "ingest: " << TablePrinter::Num(ingest_s, 2) << " s streamed ("
            << TablePrinter::Num(file_bytes / 1e9, 2)
            << " GB of rows written + one re-read pass for the int8 tier), "
               "constant memory.\n";

  PagedStoreOptions store_options;
  store_options.pool_bytes = cfg.pool_bytes;
  auto store = CheckedValue(PagedEmbeddingStore::Open(path, store_options),
                            "E23 open");

  const std::vector<std::vector<double>> int8_targets =
      MakeTargets(cfg.int8_queries, kSeed ^ 1);
  const std::vector<std::vector<double>> float_targets =
      MakeTargets(cfg.float_queries, kSeed ^ 2);

  const std::vector<QueryPoint> int8_points =
      RunQueries(*store, int8_targets, /*use_quantized=*/true);
  const std::vector<QueryPoint> float_points =
      RunQueries(*store, float_targets, /*use_quantized=*/false);
  const Aggregate int8 = Summarize(int8_points);
  const Aggregate flt = Summarize(float_points);

  // The headline contract: the int8 level is RAM-resident, so a warm query
  // — survivors retained by the pool — reads nothing from disk at all.
  for (const QueryPoint& p : int8_points) {
    if (p.warm.bytes_read_disk != 0) {
      std::cerr << "E23: warm int8 cascade read "
                << p.warm.bytes_read_disk << " disk bytes (expected 0)\n";
      std::abort();
    }
  }

  TablePrinter table({"mode", "cold ms/q", "warm ms/q", "cold disk MB/q",
                      "warm disk B/q", "warm pool hit-rate"});
  table.AddRow({"cascade, int8 level -1 on",
                TablePrinter::Num(int8.cold_ms, 2),
                TablePrinter::Num(int8.warm_ms, 2),
                TablePrinter::Num(int8.cold_disk_bytes / 1e6, 3),
                TablePrinter::Num(int8.warm_disk_bytes, 0),
                TablePrinter::Num(HitRate(int8.warm_hits, int8.warm_misses),
                                  4)});
  table.AddRow({"cascade, float levels only",
                TablePrinter::Num(flt.cold_ms, 2),
                TablePrinter::Num(flt.warm_ms, 2),
                TablePrinter::Num(flt.cold_disk_bytes / 1e6, 3),
                TablePrinter::Num(flt.warm_disk_bytes, 0),
                TablePrinter::Num(HitRate(flt.warm_hits, flt.warm_misses),
                                  4)});
  table.Print();
  std::cout << "Expectation: the int8 run's disk traffic is survivor pages "
               "only (warm = 0 bytes, asserted above); the float-only run "
               "streams every row page through the pool on every query — "
               "the tier placement, measured.\n";

  const double rss = PeakRssBytes();
  std::cout << "peak RSS " << TablePrinter::Num(rss / 1e9, 3) << " GB vs "
            << TablePrinter::Num(file_bytes / 1e9, 3)
            << " GB of rows on disk.\n";
  if (!cfg.smoke && rss >= file_bytes) {
    std::cerr << "E23: peak RSS reached the file size — residency leak\n";
    std::abort();
  }

  Banner("E23b: clock-pool hit rate vs capacity (Zipf page probes)");
  StreamRows(zipf_path, cfg.zipf_rows, cfg.page_bytes, kSeed ^ 3);
  const std::vector<ZipfPoint> curve = ZipfCurve(zipf_path, cfg);
  TablePrinter ztable({"pool MB", "hit rate", "evictions"});
  for (const ZipfPoint& p : curve) {
    ztable.AddRow({std::to_string(p.pool_bytes / (1024 * 1024)),
                   TablePrinter::Num(p.hit_rate, 4),
                   TablePrinter::Num(p.evictions, 0)});
  }
  ztable.Print();
  std::cout << "Expectation: monotone concave climb (asserted monotone); a "
              "pool holding the Zipf head serves most probes from RAM.\n";

  const size_t hw = std::max<unsigned>(1, std::thread::hardware_concurrency());
  JsonReport json;
  json.Set("bench", std::string("exp23_out_of_core"));
  json.Set("config.rows", cfg.n);
  json.Set("config.dim", kDim);
  json.Set("config.k", kK);
  json.Set("config.file_bytes", file_bytes);
  json.Set("config.pool_bytes", cfg.pool_bytes);
  json.Set("config.page_bytes", cfg.page_bytes);
  json.Set("config.smoke", cfg.smoke);
  json.Set("ingest.seconds", ingest_s);
  json.Set("ingest.rows_per_sec", static_cast<double>(cfg.n) / ingest_s);
  auto stamp = [&json](const std::string& prefix, const Aggregate& a) {
    json.Set(prefix + ".cold_ms_per_query", a.cold_ms);
    json.Set(prefix + ".warm_ms_per_query", a.warm_ms);
    json.Set(prefix + ".cold_disk_bytes_per_query", a.cold_disk_bytes);
    json.Set(prefix + ".warm_disk_bytes_per_query", a.warm_disk_bytes);
    json.Set(prefix + ".cold_pool_hit_rate",
             HitRate(a.cold_hits, a.cold_misses));
    json.Set(prefix + ".warm_pool_hit_rate",
             HitRate(a.warm_hits, a.warm_misses));
    json.Set(prefix + ".warm_pool_evictions_per_query", a.warm_evictions);
  };
  stamp("int8_cascade", int8);
  stamp("float_cascade", flt);
  // Per-level bytes for the int8 run (RAM-view bytes touched per tier, plus
  // the disk bytes those touches actually cost through the pool).
  const double q = static_cast<double>(int8_points.size());
  double bq = 0, bp = 0, br = 0;
  for (const QueryPoint& p : int8_points) {
    bq += static_cast<double>(p.cold.bytes_scanned_quantized) / q;
    bp += static_cast<double>(p.cold.bytes_scanned_prefix) / q;
    br += static_cast<double>(p.cold.bytes_scanned_refine) / q;
  }
  json.Set("int8_cascade.bytes_quantized_per_query", bq);
  json.Set("int8_cascade.bytes_prefix_per_query", bp);
  json.Set("int8_cascade.bytes_refine_per_query", br);
  json.Set("rss.peak_bytes", rss);
  json.Set("rss.peak_over_file", rss / file_bytes);
  for (const ZipfPoint& p : curve) {
    const std::string prefix =
        "zipf.pool_mb_" + std::to_string(p.pool_bytes / (1024 * 1024));
    json.Set(prefix + ".hit_rate", p.hit_rate);
    json.Set(prefix + ".evictions", p.evictions);
  }
  json.SetHostParallelism(hw);
  json.SetKernelDispatch(std::string(simd::Name(simd::Active())));
  json.WriteFileGuarded("BENCH_storage.json");

  store->Close();
  std::remove(path.c_str());
  std::remove(zipf_path.c_str());
}

// --- google-benchmark section: a small resident fixture so the timed loops
// measure steady-state paged queries, not ingestion. ---------------------

struct BmFixture {
  std::string path;
  std::unique_ptr<PagedEmbeddingStore> store;
  std::vector<std::vector<double>> targets;
};

BmFixture& SharedFixture() {
  static BmFixture* fx = [] {
    auto* f = new BmFixture();
    f->path = "/tmp/fuzzydb_e23_bm.fzdb";
    StreamRows(f->path, 50'000, 64 * 1024, kSeed ^ 9);
    PagedStoreOptions options;
    options.pool_bytes = 4 * 1024 * 1024;  // smaller than the 12.8 MB file
    f->store = CheckedValue(PagedEmbeddingStore::Open(f->path, options),
                            "E23 bm open");
    f->targets = MakeTargets(16, kSeed ^ 10);
    return f;
  }();
  return *fx;
}

void BM_PagedCascadeKnnInt8(benchmark::State& state) {
  BmFixture& fx = SharedFixture();
  CascadeOptions options;
  options.use_quantized = true;
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.store->CascadeKnn(
        fx.targets[q++ % fx.targets.size()], kK, options));
  }
}
BENCHMARK(BM_PagedCascadeKnnInt8)->Unit(benchmark::kMicrosecond);

void BM_PagedExactKnn(benchmark::State& state) {
  BmFixture& fx = SharedFixture();
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.store->ExactKnn(fx.targets[q++ % fx.targets.size()], kK));
  }
}
BENCHMARK(BM_PagedExactKnn)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
