// E3 — the disjunction shortcut (paper §4.1): for the standard fuzzy
// disjunction (max), top-k costs exactly m·k accesses, independent of the
// database size N — because max is monotone but not strict, the Θ(N^...)
// lower bound of Theorem 4.2 does not apply.

#include "bench_util.h"
#include "middleware/disjunction.h"
#include "middleware/threshold.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;

void PrintTables() {
  Banner("E3: max-disjunction shortcut, cost m*k independent of N");
  TablePrinter table({"N", "m", "k", "shortcut-cost", "m*k", "ta-cost"});
  for (size_t n : {1000u, 10000u, 100000u, 300000u}) {
    for (size_t m : {2u, 4u}) {
      for (size_t k : {10u, 100u}) {
        std::vector<CostPoint> shortcut = CheckedValue(
            SweepCost(
                [m](Rng* rng, size_t nn) {
                  return IndependentUniform(rng, nn, m);
                },
                [](std::span<GradedSource* const> s, size_t kk) {
                  return DisjunctionTopK(s, kk);
                },
                {n}, m, k, 3, kSeed),
            "E3 shortcut");
        // TA is correct for max too (monotone), but pays random accesses.
        std::vector<CostPoint> ta = CheckedValue(
            SweepCost(
                [m](Rng* rng, size_t nn) {
                  return IndependentUniform(rng, nn, m);
                },
                [](std::span<GradedSource* const> s, size_t kk) {
                  return ThresholdTopK(s, *MaxRule(), kk);
                },
                {n}, m, k, 3, kSeed),
            "E3 ta");
        table.AddRow({std::to_string(n), std::to_string(m),
                      std::to_string(k),
                      std::to_string(shortcut[0].cost.total()),
                      std::to_string(m * k),
                      std::to_string(ta[0].cost.total())});
      }
    }
  }
  table.Print();
  std::cout << "Expectation: shortcut-cost == m*k in every row, flat in N; "
               "TA pays extra random accesses.\n";
}

void BM_DisjunctionShortcut(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, n, 3);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "bench sources");
  std::vector<GradedSource*> ptrs = SourcePtrs(sources);
  for (auto _ : state) {
    TopKResult r = CheckedValue(DisjunctionTopK(ptrs, 10), "bench run");
    benchmark::DoNotOptimize(r.items.data());
  }
}
BENCHMARK(BM_DisjunctionShortcut)->Arg(10000)->Arg(300000);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
