// E21 — the R-tree sorted-access driver across the dimensionality curse
// (DESIGN §3h). The same color atomic query is answered three ways and the
// work is counted, per eigen-prefix dimensionality D in {2,...,32}:
//
//   - rtree driver: RtreeKnnSource streams certified releases straight out
//     of the GeminiIndex tree (node accesses + lazy exact refinements);
//   - cascade: EmbeddingStore::CascadeKnn, the batch multi-level filter;
//   - scan: ExactKnn, the full N-row float scan.
//
// The driver also runs as the color list of a two-source TA and CA query
// against a batch-graded reference backend; any divergence in items or
// bitwise grades is a mismatch count (expected 0 — the equivalence is
// enforced in tests/image_rtree_source_test, measured again here). The
// paper's curse (§2.1) shows up as node accesses per release growing with
// D while the driver's refinements track the consumed depth, not N; the
// numbers land in BENCH_rtree.json together with GeminiIndex's
// partial-refinement counters (the work pruned candidates cost, which the
// old stats dropped).

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/simd_dispatch.h"
#include "image/color.h"
#include "image/image_store.h"
#include "image/rtree_source.h"
#include "middleware/combined.h"
#include "middleware/threshold.h"
#include "middleware/vector_source.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260807;
constexpr size_t kN = 2000;
constexpr size_t kBins = 64;
constexpr size_t kK = 10;
constexpr int kQueries = 3;

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

struct AlgoTally {
  uint64_t sorted = 0;       // color-list sorted accesses consumed
  uint64_t random = 0;       // color-list random accesses
  uint64_t node_accesses = 0;
  uint64_t refinements = 0;
  uint64_t mismatches = 0;
};

void PrintTables() {
  Banner("E21: R-tree driver vs cascade vs scan across dimensionality "
         "(N=2000, bins=64, k=10)");

  Rng rng(kSeed);
  Palette palette = Palette::Uniform(kBins, &rng);
  QuadraticFormDistance qfd =
      CheckedValue(QuadraticFormDistance::Create(palette), "E21 qfd");
  std::vector<Histogram> db;
  db.reserve(kN);
  for (size_t i = 0; i < kN; ++i) db.push_back(RandomHistogram(&rng, kBins));

  // The second list of the two-source query: independent uniform grades,
  // identical for every backend and dimensionality.
  std::vector<GradedObject> other_items(kN);
  for (size_t i = 0; i < kN; ++i) {
    other_items[i] = {static_cast<ObjectId>(i), rng.NextDouble()};
  }
  VectorSource other =
      CheckedValue(VectorSource::Create(other_items, "Other"), "E21 other");

  std::vector<Histogram> targets;
  for (int q = 0; q < kQueries; ++q) {
    targets.push_back(RandomHistogram(&rng, kBins));
  }

  JsonReport json;
  json.Set("bench", std::string("exp21_rtree_driver"));
  json.Set("config.n", kN);
  json.Set("config.bins", kBins);
  json.Set("config.k", kK);
  json.Set("config.queries", static_cast<size_t>(kQueries));
  json.SetHostParallelism(
      std::max<unsigned>(1, std::thread::hardware_concurrency()));
  json.SetKernelDispatch(std::string(simd::Name(simd::Active())));

  TablePrinter table({"dim", "backend", "sorted", "random", "node-acc",
                      "refine", "full-dist", "mismatch"});
  uint64_t total_mismatches = 0;

  for (size_t dim : {2u, 4u, 8u, 16u, 24u, 32u}) {
    EigenFilter filter =
        CheckedValue(EigenFilter::Create(qfd, dim), "E21 filter");
    GeminiIndex index = CheckedValue(
        GeminiIndex::Build(&qfd, std::move(filter), &db), "E21 index");
    const std::string dkey = "dim" + std::to_string(dim);

    AlgoTally ta, ca;
    uint64_t cascade_bounds = 0, cascade_full = 0;
    uint64_t gemini_partial = 0, gemini_full = 0;

    for (const Histogram& target : targets) {
      // Batch reference backend: one O(bins^2) projection + N batched
      // distances, graded through the shared map.
      std::vector<double> target_embedding = qfd.Embed(target);
      std::vector<double> distances(kN);
      index.embeddings().BatchDistances(target_embedding, distances);
      std::vector<GradedObject> graded(kN);
      for (size_t i = 0; i < kN; ++i) {
        graded[i] = {static_cast<ObjectId>(i),
                     GradeFromDistance(distances[i], qfd.MaxDistance())};
      }
      VectorSource reference = CheckedValue(
          VectorSource::Create(graded, "Color~batch"), "E21 reference");
      RtreeKnnSource driver = CheckedValue(
          RtreeKnnSource::Create(&index, target), "E21 driver");

      std::vector<GradedSource*> ref_set{&reference, &other};
      std::vector<GradedSource*> drv_set{&driver, &other};

      struct Run {
        AlgoTally* tally;
        Result<TopKResult> (*run)(std::span<GradedSource* const>,
                                  const ScoringRule&, size_t,
                                  const ParallelOptions&);
      };
      const auto run_ca = +[](std::span<GradedSource* const> s,
                              const ScoringRule& r, size_t k,
                              const ParallelOptions& o) {
        return CombinedTopK(s, r, k, 2, o);
      };
      const auto run_ta = +[](std::span<GradedSource* const> s,
                              const ScoringRule& r, size_t k,
                              const ParallelOptions& o) {
        return ThresholdTopK(s, r, k, o);
      };
      for (const Run& r : {Run{&ta, run_ta}, Run{&ca, run_ca}}) {
        TopKResult golden = CheckedValue(
            r.run(ref_set, *MinRule(), kK, {}), "E21 golden");
        TopKResult got =
            CheckedValue(r.run(drv_set, *MinRule(), kK, {}), "E21 driver run");
        if (golden.items.size() != got.items.size()) {
          ++r.tally->mismatches;
        } else {
          for (size_t i = 0; i < golden.items.size(); ++i) {
            if (golden.items[i].id != got.items[i].id ||
                !BitEqual(golden.items[i].grade, got.items[i].grade)) {
              ++r.tally->mismatches;
            }
          }
        }
        r.tally->sorted += got.per_source[0].sorted;
        r.tally->random += got.per_source[0].random;
        r.tally->node_accesses += driver.stats().node_accesses;
        r.tally->refinements += driver.stats().refinements;
      }

      // The batch alternatives for the same atomic top-k.
      CascadeStats cstats;
      index.embeddings().CascadeKnn(target_embedding, kK,
                                    index.tuned_cascade(), &cstats);
      cascade_bounds += cstats.bound_computations;
      cascade_full += cstats.full_distance_computations;
      FilteredSearchStats gstats;
      auto gemini_knn = CheckedValue(index.Knn(target, kK, &gstats),
                                     "E21 gemini knn");
      benchmark::DoNotOptimize(gemini_knn);
      gemini_partial += gstats.partial_refinements;
      gemini_full += gstats.full_distance_computations;
    }

    const auto avg = [](uint64_t total) {
      return std::to_string(total / static_cast<uint64_t>(kQueries));
    };
    table.AddRow({std::to_string(dim), "rtree+ta", avg(ta.sorted),
                  avg(ta.random), avg(ta.node_accesses), avg(ta.refinements),
                  "-", std::to_string(ta.mismatches)});
    table.AddRow({std::to_string(dim), "rtree+ca-h2", avg(ca.sorted),
                  avg(ca.random), avg(ca.node_accesses), avg(ca.refinements),
                  "-", std::to_string(ca.mismatches)});
    table.AddRow({std::to_string(dim), "cascade", "-", "-", "-",
                  avg(cascade_bounds), avg(cascade_full), "-"});
    table.AddRow({std::to_string(dim), "scan", "-", "-", "-", "-",
                  std::to_string(kN), "-"});
    total_mismatches += ta.mismatches + ca.mismatches;

    const std::array<std::pair<const char*, const AlgoTally*>, 2> tallies{
        {{"ta", &ta}, {"ca_h2", &ca}}};
    for (const auto& [akey, tally] : tallies) {
      const std::string base = dkey + "." + akey;
      json.Set(base + ".sorted_accesses", tally->sorted);
      json.Set(base + ".random_accesses", tally->random);
      json.Set(base + ".node_accesses", tally->node_accesses);
      json.Set(base + ".refinements", tally->refinements);
      json.Set(base + ".mismatches", tally->mismatches);
    }
    json.Set(dkey + ".cascade.bound_computations", cascade_bounds);
    json.Set(dkey + ".cascade.full_refinements", cascade_full);
    json.Set(dkey + ".gemini.partial_refinements", gemini_partial);
    json.Set(dkey + ".gemini.full_refinements", gemini_full);
    json.Set(dkey + ".scan.rows",
             static_cast<uint64_t>(kN) * static_cast<uint64_t>(kQueries));
  }
  table.Print();

  json.Set("total_mismatches", total_mismatches);
  std::cout << "Expectation: zero mismatches — the driver's stream is "
               "bit-identical to the batch backend under TA and CA at every "
               "dimensionality. Node accesses per consumed prefix grow with "
               "dim (the paper's curse lives in the tree fan-out) while the "
               "driver's refinement count tracks the consumed depth, not N; "
               "partial_refinements >= full_refinements in the JSON shows "
               "the pruned-candidate work the old stats dropped.\n";
  json.WriteFileGuarded("BENCH_rtree.json");
}

void BM_RtreeDriverPrefix(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(kSeed);
  Palette palette = Palette::Uniform(kBins, &rng);
  QuadraticFormDistance qfd =
      CheckedValue(QuadraticFormDistance::Create(palette), "E21 bm qfd");
  std::vector<Histogram> db;
  for (size_t i = 0; i < kN; ++i) db.push_back(RandomHistogram(&rng, kBins));
  EigenFilter filter =
      CheckedValue(EigenFilter::Create(qfd, dim), "E21 bm filter");
  GeminiIndex index = CheckedValue(
      GeminiIndex::Build(&qfd, std::move(filter), &db), "E21 bm index");
  Histogram target = RandomHistogram(&rng, kBins);
  RtreeKnnSource driver = CheckedValue(RtreeKnnSource::Create(&index, target),
                                       "E21 bm driver");
  for (auto _ : state) {
    driver.RestartSorted();
    for (size_t i = 0; i < 2 * kK; ++i) {
      benchmark::DoNotOptimize(driver.NextSorted());
    }
  }
}
BENCHMARK(BM_RtreeDriverPrefix)->Arg(2)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
