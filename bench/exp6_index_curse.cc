// E6 — the dimensionality curse (paper §2.1): linear quadtrees and grid
// files "grow exponentially with the dimensionality"; R-trees are "more
// robust ... at least for dimensions up to around 20". We compare kNN work
// (structure accesses and distance computations) across dimensions against
// the linear-scan baseline.

#include <cmath>
#include <memory>

#include "bench_util.h"
#include "index/gridfile.h"
#include "index/rtree.h"
#include "index/zorder.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;
constexpr size_t kN = 20000;
constexpr size_t kK = 10;
constexpr int kQueries = 10;

std::vector<double> RandomPoint(Rng* rng, size_t dim) {
  std::vector<double> p(dim);
  for (double& c : p) c = rng->NextDouble();
  return p;
}

KnnStats AverageKnn(SpatialIndex* index, size_t dim) {
  Rng rng(kSeed * 3 + dim);
  KnnStats total;
  for (int q = 0; q < kQueries; ++q) {
    std::vector<double> query = RandomPoint(&rng, dim);
    CheckedValue(index->Knn(query, kK, &total), "E6 knn");
  }
  total.node_accesses /= kQueries;
  total.distance_computations /= kQueries;
  return total;
}

void PrintTables() {
  Banner("E6: dimensionality curse, kNN work per query (N=20000, k=10)");
  TablePrinter table({"dim", "structure", "node-accesses", "dist-evals",
                      "dense-directory"});
  for (size_t dim : {2u, 4u, 8u, 16u, 24u, 32u}) {
    Rng rng(kSeed + dim);
    RTree rtree(dim);
    GridFile grid(dim, 4);
    LinearQuadtree quadtree(dim);
    LinearScanIndex scan(dim);
    for (size_t i = 0; i < kN; ++i) {
      std::vector<double> p = RandomPoint(&rng, dim);
      CheckOk(rtree.Insert(i, p), "E6 rtree insert");
      CheckOk(grid.Insert(i, p), "E6 grid insert");
      CheckOk(quadtree.Insert(i, p), "E6 quadtree insert");
      CheckOk(scan.Insert(i, p), "E6 scan insert");
    }
    struct Row {
      SpatialIndex* index;
      std::string directory;
    };
    std::vector<Row> rows{
        {&rtree, "-"},
        {&grid, TablePrinter::Num(grid.VirtualDirectorySize(), 3)},
        {&quadtree,
         TablePrinter::Num(std::pow(static_cast<double>(1u << quadtree
                                                                  .bits_per_dim()),
                                    static_cast<double>(dim)),
                           3)},
        {&scan, "-"},
    };
    for (Row& row : rows) {
      KnnStats stats = AverageKnn(row.index, dim);
      table.AddRow({std::to_string(dim), row.index->name(),
                    std::to_string(stats.node_accesses),
                    std::to_string(stats.distance_computations),
                    row.directory});
    }
  }
  table.Print();
  std::cout << "Expectation: at low dimension every structure beats the "
               "scan; the dense grid/quadtree directory explodes "
               "exponentially (the curse), their pruning decays to nothing, "
               "and past ~16-20 dimensions the plain scan does the least "
               "total work — matching the paper's R-tree caveat.\n";
}

void BM_KnnByStructure(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const int which = static_cast<int>(state.range(1));
  Rng rng(kSeed + dim);
  std::unique_ptr<SpatialIndex> index;
  switch (which) {
    case 0:
      index = std::make_unique<RTree>(dim);
      break;
    case 1:
      index = std::make_unique<GridFile>(dim, 4);
      break;
    case 2:
      index = std::make_unique<LinearQuadtree>(dim);
      break;
    default:
      index = std::make_unique<LinearScanIndex>(dim);
      break;
  }
  for (size_t i = 0; i < kN; ++i) {
    CheckOk(index->Insert(i, RandomPoint(&rng, dim)), "bench insert");
  }
  std::vector<double> query = RandomPoint(&rng, dim);
  for (auto _ : state) {
    auto r = CheckedValue(index->Knn(query, kK, nullptr), "bench knn");
    benchmark::DoNotOptimize(r.data());
  }
  state.SetLabel(index->name());
}
BENCHMARK(BM_KnnByStructure)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 3})
    ->Args({16, 0})
    ->Args({16, 3})
    ->ArgNames({"dim", "structure"});

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
