// E10 — cost-measure robustness (paper §4): counting one unit per access is
// "somewhat controversial ... a single sorted access is probably much more
// expensive than a single random access", but the results "are shown to be
// fairly robust with respect to a choice of cost measure". We recharge the
// same runs under random-access unit prices from 0.1 to 100 and check that
// the algorithm ranking (who beats whom) is stable.

#include "bench_util.h"
#include "middleware/disjunction.h"
#include "middleware/fagin.h"
#include "middleware/naive.h"
#include "middleware/threshold.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;
constexpr size_t kN = 100000;
constexpr size_t kK = 10;

void PrintTables() {
  Banner("E10: charged cost under varying random-access price (m=2, "
         "N=100000, k=10; sorted access costs 1)");
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, kN, 2);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "E10 sources");
  std::vector<GradedSource*> ptrs = SourcePtrs(sources);
  ScoringRulePtr min = MinRule();

  AccessCost naive =
      CheckedValue(NaiveTopK(ptrs, *min, kK), "E10 naive").cost;
  AccessCost a0 = CheckedValue(FaginTopK(ptrs, *min, kK), "E10 a0").cost;
  AccessCost ta = CheckedValue(ThresholdTopK(ptrs, *min, kK), "E10 ta").cost;

  std::cout << "raw counts: naive sorted=" << naive.sorted
            << " random=" << naive.random << "; a0 sorted=" << a0.sorted
            << " random=" << a0.random << "; ta sorted=" << ta.sorted
            << " random=" << ta.random << "\n";

  TablePrinter table({"random-unit-price", "naive", "fagin-a0", "ta",
                      "a0-beats-naive", "ta-beats-a0"});
  for (double price : {0.1, 0.5, 1.0, 2.0, 10.0, 100.0}) {
    double cn = naive.Charged(price);
    double ca = a0.Charged(price);
    double ct = ta.Charged(price);
    table.AddRow({TablePrinter::Num(price, 4), TablePrinter::Num(cn, 6),
                  TablePrinter::Num(ca, 6), TablePrinter::Num(ct, 6),
                  ca < cn ? "yes" : "NO", ct <= ca ? "yes" : "no"});
  }
  table.Print();
  std::cout << "Expectation: a0-beats-naive stays yes across three orders "
               "of magnitude of random-access price — the paper's \"fairly "
               "robust with respect to a choice of cost measure\". Only at "
               "an extreme price (100 sorted accesses per random access) "
               "does the scan-only naive plan finally win, which is exactly "
               "the regime where an optimizer with \"a more realistic cost "
               "measure\" (paper §4) should switch plans.\n";
}

void BM_ChargedCostAccounting(benchmark::State& state) {
  // Measures the pure accounting overhead of CountingSource on sorted
  // access — it must be negligible next to the underlying source.
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, kN, 1);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "bench sources");
  AccessCost cost;
  for (auto _ : state) {
    CountingSource counted(&sources[0], &cost);
    counted.RestartSorted();
    while (counted.NextSorted().has_value()) {
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kN));
}
BENCHMARK(BM_ChargedCostAccounting);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
