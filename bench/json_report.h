// Machine-readable bench output: a flat JSON object of "key": value pairs
// (dotted keys for structure, e.g. "cascade.ops_per_sec"), written in one
// shot so later PRs can track a perf trajectory across runs.
//
// Standalone (no benchmark/gtest dependency) so the emitter itself is unit
// tested: earlier revisions wrote bare `nan`/`inf` tokens and raw strings,
// which silently produced invalid JSON the first time a metric divided by
// zero or a label contained a quote.

#ifndef FUZZYDB_BENCH_JSON_REPORT_H_
#define FUZZYDB_BENCH_JSON_REPORT_H_

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace fuzzydb {

// Thread-safe: the entry list is GUARDED_BY an annotated mutex, so bench
// sections running on pool threads may Set() into one shared report (the
// capability annotations make any unlocked access a compile error on
// Clang). Each method takes the lock once; none calls another under it.
class JsonReport {
 public:
  void Set(const std::string& key, double value) {
    // JSON has no nan/inf literals; emit null rather than corrupt the file.
    if (!std::isfinite(value)) {
      Append(key, "null");
      return;
    }
    std::ostringstream os;
    os.precision(10);
    os << value;
    Append(key, os.str());
  }
  void Set(const std::string& key, size_t value) {
    Append(key, std::to_string(value));
  }
  void Set(const std::string& key, bool value) {
    Append(key, value ? "true" : "false");
  }
  void Set(const std::string& key, const std::string& value) {
    Append(key, Quote(value));
  }

  /// Records the host's parallelism caveat machine-readably: every bench
  /// report carries hardware_concurrency and a boolean contention_only flag
  /// (true on 1-thread hosts, where parallel speedups are scheduling
  /// artifacts) so downstream tooling can refuse to compare across regimes.
  /// Returns the flag for callers that gate further output on it.
  bool SetHostParallelism(size_t hardware_concurrency) {
    const bool contention_only = hardware_concurrency <= 1;
    Set("config.hardware_concurrency", hardware_concurrency);
    Set("contention_only", contention_only);
    return contention_only;
  }

  /// Records which int8 block-SSD kernel the runtime dispatcher selected
  /// ("scalar" / "avx2" / "avx512vnni") next to the contention_only stamp:
  /// like parallelism, the SIMD tier is a host property downstream tooling
  /// must see before comparing cycle counts across runs.
  void SetKernelDispatch(const std::string& kernel) {
    Set("config.simd_dispatch", kernel);
  }

  /// The full `{ "k": v, ... }` document.
  std::string ToString() const {
    MutexLock lock(mu_);
    std::ostringstream out;
    out << "{\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out << "  " << Quote(entries_[i].first) << ": " << entries_[i].second
          << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    out << "}\n";
    return out.str();
  }

  size_t size() const {
    MutexLock lock(mu_);
    return entries_.size();
  }

  /// Raw serialized value recorded for `key` ("" if absent; last write wins).
  std::string Lookup(const std::string& key) const {
    MutexLock lock(mu_);
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->first == key) return it->second;
    }
    return "";
  }

  /// True when writing this report over `existing_content` would replace a
  /// real multi-core measurement with a contention-only one: the old file
  /// says `"contention_only": false` and the new report says true. Pure
  /// string predicate so the guard is unit-testable without touching disk.
  static bool WouldDowngrade(const std::string& existing_content,
                             bool new_contention_only) {
    return new_contention_only &&
           existing_content.find("\"contention_only\": false") !=
               std::string::npos;
  }

  /// Writes ToString() to `path` and says so on stdout.
  void WriteFile(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return;
    }
    out << ToString();
    std::cout << "wrote " << path << " (" << entries_.size() << " metrics)\n";
  }

  /// WriteFile, but refuses to silently downgrade: if `path` already holds a
  /// multi-core run and this report is contention-only (1 hardware thread),
  /// the report is diverted to `path + ".contention-only"` with a loud
  /// warning so the real numbers survive. Returns the path actually written.
  std::string WriteFileGuarded(const std::string& path) const {
    const bool contention_only = Lookup("contention_only") == "true";
    std::ifstream existing(path);
    if (existing) {
      std::stringstream buf;
      buf << existing.rdbuf();
      if (WouldDowngrade(buf.str(), contention_only)) {
        const std::string diverted = path + ".contention-only";
        std::cerr << "WARNING: " << path
                  << " holds a multi-core run; this host has 1 hardware "
                     "thread, so the contention-only report goes to "
                  << diverted << " instead of overwriting it\n";
        WriteFile(diverted);
        return diverted;
      }
    }
    WriteFile(path);
    return path;
  }

 private:
  // RFC 8259 string escaping: quote, backslash, and control characters.
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  void Append(const std::string& key, std::string value) {
    MutexLock lock(mu_);
    entries_.emplace_back(key, std::move(value));
  }

  mutable Mutex mu_;
  std::vector<std::pair<std::string, std::string>> entries_ GUARDED_BY(mu_);
};

}  // namespace fuzzydb

#endif  // FUZZYDB_BENCH_JSON_REPORT_H_
