// Machine-readable bench output: a flat JSON object of "key": value pairs
// (dotted keys for structure, e.g. "cascade.ops_per_sec"), written in one
// shot so later PRs can track a perf trajectory across runs.
//
// Standalone (no benchmark/gtest dependency) so the emitter itself is unit
// tested: earlier revisions wrote bare `nan`/`inf` tokens and raw strings,
// which silently produced invalid JSON the first time a metric divided by
// zero or a label contained a quote.

#ifndef FUZZYDB_BENCH_JSON_REPORT_H_
#define FUZZYDB_BENCH_JSON_REPORT_H_

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fuzzydb {

class JsonReport {
 public:
  void Set(const std::string& key, double value) {
    // JSON has no nan/inf literals; emit null rather than corrupt the file.
    if (!std::isfinite(value)) {
      entries_.emplace_back(key, "null");
      return;
    }
    std::ostringstream os;
    os.precision(10);
    os << value;
    entries_.emplace_back(key, os.str());
  }
  void Set(const std::string& key, size_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void Set(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, Quote(value));
  }

  /// The full `{ "k": v, ... }` document.
  std::string ToString() const {
    std::ostringstream out;
    out << "{\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out << "  " << Quote(entries_[i].first) << ": " << entries_[i].second
          << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    out << "}\n";
    return out.str();
  }

  size_t size() const { return entries_.size(); }

  /// Writes ToString() to `path` and says so on stdout.
  void WriteFile(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return;
    }
    out << ToString();
    std::cout << "wrote " << path << " (" << entries_.size() << " metrics)\n";
  }

 private:
  // RFC 8259 string escaping: quote, backslash, and control characters.
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_BENCH_JSON_REPORT_H_
