// E14 (ablation) — the shape-closeness methods the paper cites in §2
// (turning functions [ACH+90], moment invariants [KK97, TC91], Hausdorff
// distance [HRK92]) disagree exactly where their invariance groups differ.
// We measure (a) top-k agreement between methods on a synthetic shape
// collection and (b) each method's behaviour under the transforms it
// should / should not be invariant to.

#include "bench_util.h"
#include "image/qbic_source.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260706;
constexpr size_t kK = 10;

std::vector<ObjectId> TopIds(QbicShapeSource* src, size_t k) {
  src->RestartSorted();
  std::vector<ObjectId> out;
  for (size_t i = 0; i < k; ++i) {
    std::optional<GradedObject> next = src->NextSorted();
    if (!next.has_value()) break;
    out.push_back(next->id);
  }
  src->RestartSorted();
  return out;
}

double Overlap(const std::vector<ObjectId>& a,
               const std::vector<ObjectId>& b) {
  size_t common = 0;
  for (ObjectId id : a) {
    if (std::find(b.begin(), b.end(), id) != b.end()) ++common;
  }
  return static_cast<double>(common) / static_cast<double>(a.size());
}

void PrintTables() {
  Banner("E14: shape methods — top-10 agreement (800 synthetic shapes)");
  ImageStoreOptions options;
  options.num_images = 800;
  options.palette_size = 8;
  options.seed = kSeed;
  ImageStore store = CheckedValue(ImageStore::Generate(options), "store");
  Polygon target = Polygon::Regular(7, 1.2);

  QbicShapeSource turning = CheckedValue(
      QbicShapeSource::Create(&store, target, "t", 64,
                              ShapeMethod::kTurningFunction),
      "turning");
  QbicShapeSource hu = CheckedValue(
      QbicShapeSource::Create(&store, target, "hu", 64,
                              ShapeMethod::kHuMoments),
      "hu");
  QbicShapeSource hausdorff = CheckedValue(
      QbicShapeSource::Create(&store, target, "hd", 64,
                              ShapeMethod::kHausdorff),
      "hausdorff");

  std::vector<ObjectId> top_t = TopIds(&turning, kK);
  std::vector<ObjectId> top_h = TopIds(&hu, kK);
  std::vector<ObjectId> top_d = TopIds(&hausdorff, kK);

  TablePrinter agree({"pair", "top-10 overlap"});
  agree.AddRow({"turning vs hu-moments", TablePrinter::Num(
                                             Overlap(top_t, top_h), 3)});
  agree.AddRow({"turning vs hausdorff", TablePrinter::Num(
                                            Overlap(top_t, top_d), 3)});
  agree.AddRow({"hu-moments vs hausdorff",
                TablePrinter::Num(Overlap(top_h, top_d), 3)});
  agree.Print();

  Banner("E14b: invariance fingerprint (distance of a shape to its own "
         "transform; 0 = invariant)");
  Rng rng(kSeed);
  Polygon shape = Polygon::RandomStar(&rng, 9);
  auto turning_d = [&](const Polygon& other) {
    return TurningDistance(TurningFunction(shape, 64),
                           TurningFunction(other, 64));
  };
  auto hu_d = [&](const Polygon& other) {
    return HuMomentDistance(ComputeHuMoments(shape),
                            ComputeHuMoments(other));
  };
  auto hd_d = [&](const Polygon& other) {
    return HausdorffShapeDistance(shape, other, 64);
  };
  TablePrinter inv({"method", "translate", "rotate", "scale x2"});
  Polygon translated = shape.Translated(5.0, -2.0);
  Polygon rotated = shape.Rotated(0.9);
  Polygon scaled = shape.Scaled(2.0);
  inv.AddRow({"turning [ACH+90]", TablePrinter::Num(turning_d(translated), 3),
              TablePrinter::Num(turning_d(rotated), 3),
              TablePrinter::Num(turning_d(scaled), 3)});
  inv.AddRow({"hu-moments [KK97]", TablePrinter::Num(hu_d(translated), 3),
              TablePrinter::Num(hu_d(rotated), 3),
              TablePrinter::Num(hu_d(scaled), 3)});
  inv.AddRow({"hausdorff [HRK92]", TablePrinter::Num(hd_d(translated), 3),
              TablePrinter::Num(hd_d(rotated), 3),
              TablePrinter::Num(hd_d(scaled), 3)});
  inv.Print();
  std::cout << "Expectation: turning functions and Hu moments are invariant "
               "(0) to all three transforms; the Hausdorff method is "
               "translation-invariant only — so the three methods rank a "
               "scaled/rotated collection differently, which is why the "
               "paper surveys several and [MKL97, Mu91] compare them.\n";
}

void BM_ShapeDistance(benchmark::State& state) {
  Rng rng(kSeed);
  Polygon a = Polygon::RandomStar(&rng, 10);
  Polygon b = Polygon::RandomStar(&rng, 10);
  const int which = static_cast<int>(state.range(0));
  std::vector<double> ta = TurningFunction(a, 64), tb = TurningFunction(b, 64);
  HuMoments ha = ComputeHuMoments(a), hb = ComputeHuMoments(b);
  for (auto _ : state) {
    double d = 0.0;
    switch (which) {
      case 0:
        d = TurningDistance(ta, tb);
        break;
      case 1:
        d = HuMomentDistance(ha, hb);
        break;
      default:
        d = HausdorffShapeDistance(a, b, 64);
        break;
    }
    benchmark::DoNotOptimize(d);
  }
  state.SetLabel(which == 0 ? "turning" : which == 1 ? "hu" : "hausdorff");
}
BENCHMARK(BM_ShapeDistance)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
