// E19 — adaptive parallel execution (DESIGN §3f): the whole top-k stack
// (TA, NRA, CA) swept over prefetch depth x pool size x CA period h, against
// a latency-bearing source model, with one extra depth column chosen by
// DerivePrefetchDepth from the optimizer's cost estimate. Two claims are
// checked: (1) correctness — every parallel configuration is bit-identical
// to the serial run in items, grades, and per-source consumed access counts
// (any divergence is a mismatch count, not a perf number); (2) adaptivity —
// the derived depth's runtime lands near the best fixed depth of its
// pool-size row, so callers who leave depth at 0 don't need to hand-tune.
//
// Results land in BENCH_adaptive.json with a machine-readable
// "contention_only" flag: on a 1-hardware-thread host the zero-mismatch
// contract still holds (and is the point of running there), but speedups are
// scheduling artifacts and the guarded writer refuses to overwrite a real
// multi-core report with them.

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/simd_dispatch.h"
#include "common/thread_pool.h"
#include "middleware/combined.h"
#include "middleware/nra.h"
#include "middleware/optimizer.h"
#include "middleware/parallel.h"
#include "middleware/threshold.h"
#include "middleware/vector_source.h"
#include "sim/workload.h"

namespace fuzzydb {
namespace {

constexpr uint64_t kSeed = 20260805;
constexpr size_t kN = 1200;
constexpr size_t kM = 3;
constexpr size_t kK = 10;
constexpr int kReps = 3;

// Deterministic busy work standing in for one access's subsystem-side cost
// (same model as E18; paper §4 treats accesses as the expensive unit).
double BusyWork(uint64_t salt) {
  double acc = static_cast<double>(salt % 97) * 1e-6;
  for (int i = 1; i <= 400; ++i) {
    acc += 1.0 / (static_cast<double>(i) + acc);
  }
  return acc * 1e-12;
}

class SlowSource final : public GradedSource {
 public:
  explicit SlowSource(GradedSource* inner) : inner_(inner) {}
  size_t Size() const override { return inner_->Size(); }
  std::optional<GradedObject> NextSorted() override {
    benchmark::DoNotOptimize(BusyWork(1));
    return inner_->NextSorted();
  }
  void RestartSorted() override { inner_->RestartSorted(); }
  double RandomAccess(ObjectId id) override {
    benchmark::DoNotOptimize(BusyWork(id));
    return inner_->RandomAccess(id);
  }
  std::vector<GradedObject> AtLeast(double threshold) override {
    return inner_->AtLeast(threshold);
  }
  std::string name() const override { return "slow(" + inner_->name() + ")"; }

 private:
  GradedSource* inner_;
};

// One algorithm variant of the sweep: a name, the Algorithm tag (for
// DerivePrefetchDepth), and a runner closed over its CA period where needed.
struct Variant {
  std::string name;
  Algorithm algorithm;
  size_t h;  // CA period; ignored by TA/NRA
};

Result<TopKResult> RunVariant(const Variant& v,
                              std::span<GradedSource* const> ptrs,
                              const ParallelOptions& options) {
  switch (v.algorithm) {
    case Algorithm::kThreshold:
      return ThresholdTopK(ptrs, *MinRule(), kK, options);
    case Algorithm::kNoRandomAccess:
      return NoRandomAccessTopK(ptrs, *MinRule(), kK, options);
    default:
      return CombinedTopK(ptrs, *MinRule(), kK, v.h, options);
  }
}

bool SameAnswer(const TopKResult& a, const TopKResult& b) {
  if (a.items.size() != b.items.size()) return false;
  for (size_t r = 0; r < a.items.size(); ++r) {
    if (a.items[r].id != b.items[r].id) return false;
    if (a.items[r].grade != b.items[r].grade) return false;
  }
  if (a.per_source.size() != b.per_source.size()) return false;
  for (size_t j = 0; j < a.per_source.size(); ++j) {
    if (a.per_source[j].sorted != b.per_source[j].sorted) return false;
    if (a.per_source[j].random != b.per_source[j].random) return false;
  }
  return true;
}

struct ConfigResult {
  double us = 0.0;
  size_t mismatches = 0;
};

ConfigResult RunConfig(const Variant& v, std::span<GradedSource* const> ptrs,
                       const TopKResult& reference,
                       const ParallelOptions& options) {
  ConfigResult out;
  auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    Result<TopKResult> r = RunVariant(v, ptrs, options);
    CheckOk(r.status(), "E19 variant");
    if (!SameAnswer(*r, reference)) ++out.mismatches;
  }
  auto t1 = std::chrono::steady_clock::now();
  out.us =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() /
      1000.0 / static_cast<double>(kReps);
  return out;
}

void PrintTables() {
  const size_t hw =
      std::max<unsigned>(1, std::thread::hardware_concurrency());
  Banner("E19: adaptive parallel top-k — algorithm x depth x pool x h "
         "sweep (n=" + std::to_string(kN) + ", m=" + std::to_string(kM) +
         ", k=" + std::to_string(kK) + ")");

  JsonReport json;
  json.Set("bench", std::string("exp19_adaptive_parallel"));
  json.Set("config.n", kN);
  json.Set("config.m", kM);
  json.Set("config.k", kK);
  json.Set("config.reps", static_cast<size_t>(kReps));
  const bool contention_only = json.SetHostParallelism(hw);
  json.SetKernelDispatch(std::string(simd::Name(simd::Active())));

  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, kN, kM);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "E19 sources");
  std::vector<SlowSource> slow;
  slow.reserve(kM);
  std::vector<GradedSource*> ptrs;
  for (VectorSource& s : sources) {
    slow.emplace_back(&s);
    ptrs.push_back(&slow.back());
  }

  // The price model the adaptive layer plans with: sorted and random access
  // cost the same here (both pay one BusyWork call), so h derives to 1 and
  // the depth choice is driven purely by each algorithm's access mix.
  CostModel model;

  const std::vector<Variant> variants = {
      {"ta", Algorithm::kThreshold, 1},
      {"nra", Algorithm::kNoRandomAccess, 1},
      {"ca_h1", Algorithm::kCombined, 1},
      {"ca_h4", Algorithm::kCombined, 4},
      {"ca_h16", Algorithm::kCombined, 16},
  };
  const size_t fixed_depths[] = {1, 8, 64};

  TablePrinter table({"algo", "pool", "depth", "us/query",
                      "speedup-vs-serial", "mismatches"});
  size_t total_mismatches = 0;
  size_t adaptive_rows = 0;
  size_t adaptive_near_best = 0;

  for (const Variant& v : variants) {
    TopKResult reference = CheckedValue(
        RunVariant(v, ptrs, ParallelOptions{}), "E19 serial reference");
    ConfigResult serial = RunConfig(v, ptrs, reference, ParallelOptions{});
    table.AddRow({v.name, "-", "serial", TablePrinter::Num(serial.us, 4),
                  "1.000", std::to_string(serial.mismatches)});
    total_mismatches += serial.mismatches;
    // (built up with += to dodge a GCC-12 -Wrestrict false positive on
    // `const char* + std::string&&`)
    std::string vkey = "";
    vkey += v.name;
    json.Set(vkey + ".serial.us_per_query", serial.us);
    json.Set(vkey + ".serial.mismatches", serial.mismatches);

    for (size_t pool_size : {1u, 2u, 4u}) {
      ThreadPool pool(pool_size);
      const size_t derived = DerivePrefetchDepth(v.algorithm, kN, kM, kK,
                                                 model, pool.executors());
      double best_fixed_us = std::numeric_limits<double>::infinity();
      double derived_us = 0.0;
      const std::string pkey = vkey + ".pool" + std::to_string(pool_size);

      auto run_depth = [&](size_t depth, bool is_adaptive) {
        ParallelOptions options;
        options.pool = &pool;
        options.prefetch_depth = depth;
        ConfigResult r = RunConfig(v, ptrs, reference, options);
        total_mismatches += r.mismatches;
        std::string label;
        if (is_adaptive) {
          label += "adaptive(";
          label += std::to_string(depth);
          label += ")";
        } else {
          label = std::to_string(depth);
        }
        table.AddRow({v.name, std::to_string(pool_size), label,
                      TablePrinter::Num(r.us, 4),
                      TablePrinter::Num(serial.us / r.us, 3),
                      std::to_string(r.mismatches)});
        std::string dkey = pkey;
        if (is_adaptive) {
          dkey += ".adaptive";
        } else {
          dkey += ".depth";
          dkey += std::to_string(depth);
        }
        json.Set(dkey + ".us_per_query", r.us);
        json.Set(dkey + ".speedup_vs_serial", serial.us / r.us);
        json.Set(dkey + ".mismatches", r.mismatches);
        return r.us;
      };

      for (size_t depth : fixed_depths) {
        best_fixed_us = std::min(best_fixed_us, run_depth(depth, false));
      }
      derived_us = run_depth(derived, true);
      json.Set(pkey + ".adaptive.depth", derived);
      json.Set(pkey + ".adaptive.vs_best_fixed", derived_us / best_fixed_us);
      // "Near best": within 25% of the best fixed depth of this row. On a
      // contention-only host the timing side is noise, so the indicator is
      // reported but not expected to hold there.
      ++adaptive_rows;
      if (derived_us <= best_fixed_us * 1.25) ++adaptive_near_best;
    }
  }
  table.Print();

  json.Set("total_mismatches", total_mismatches);
  json.Set("adaptive.rows", adaptive_rows);
  json.Set("adaptive.near_best_rows", adaptive_near_best);
  std::cout << "Expectation: zero mismatches in every row — parallel TA, "
               "NRA, and CA (every h) are bit-identical to serial at every "
               "depth x pool. Adaptive depth lands within 25% of the best "
               "fixed depth in most rows ("
            << adaptive_near_best << "/" << adaptive_rows
            << " here); timing claims only hold with real parallelism "
               "(contention_only = "
            << (contention_only ? "true" : "false") << ").\n";
  json.WriteFileGuarded("BENCH_adaptive.json");
}

void BM_AdaptiveTa(benchmark::State& state) {
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, kN, kM);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "E19 bm sources");
  std::vector<GradedSource*> ptrs;
  for (VectorSource& s : sources) ptrs.push_back(&s);
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  CostModel model;
  ParallelOptions options;
  options.pool = &pool;
  options.prefetch_depth = DerivePrefetchDepth(Algorithm::kThreshold, kN, kM,
                                               kK, model, pool.executors());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThresholdTopK(ptrs, *MinRule(), kK, options));
  }
}
BENCHMARK(BM_AdaptiveTa)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_AdaptiveCa(benchmark::State& state) {
  Rng rng(kSeed);
  Workload w = IndependentUniform(&rng, kN, kM);
  std::vector<VectorSource> sources =
      CheckedValue(w.MakeSources(), "E19 bm sources");
  std::vector<GradedSource*> ptrs;
  for (VectorSource& s : sources) ptrs.push_back(&s);
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  CostModel model;
  model.random_unit = 4.0;  // h derives to 4
  ParallelOptions options;
  options.pool = &pool;
  options.prefetch_depth = DerivePrefetchDepth(Algorithm::kCombined, kN, kM,
                                               kK, model, pool.executors());
  const size_t h = DefaultCombinedPeriod(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CombinedTopK(ptrs, *MinRule(), kK, h, options));
  }
}
BENCHMARK(BM_AdaptiveCa)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fuzzydb

FUZZYDB_BENCH_MAIN(fuzzydb::PrintTables)
