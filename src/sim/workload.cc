#include "sim/workload.h"

#include <algorithm>
#include <cassert>

namespace fuzzydb {

namespace {

std::vector<ObjectId> SequentialIds(size_t n) {
  std::vector<ObjectId> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = i + 1;
  return ids;
}

}  // namespace

Result<std::vector<VectorSource>> Workload::MakeSources() const {
  return fuzzydb::MakeSources(ids, columns);
}

Workload IndependentUniform(Rng* rng, size_t n, size_t m) {
  Workload w;
  w.ids = SequentialIds(n);
  w.columns.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    w.columns.push_back(UniformGrades(rng, n));
  }
  return w;
}

Workload Correlated(Rng* rng, size_t n, size_t m, double rho) {
  assert(rho >= 0.0 && rho <= 1.0);
  Workload w;
  w.ids = SequentialIds(n);
  std::vector<double> base = UniformGrades(rng, n);
  w.columns.assign(m, std::vector<double>(n));
  for (size_t j = 0; j < m; ++j) {
    for (size_t i = 0; i < n; ++i) {
      w.columns[j][i] = rho * base[i] + (1.0 - rho) * rng->NextDouble();
    }
  }
  return w;
}

Workload AntiCorrelated(Rng* rng, size_t n, double noise) {
  Workload w;
  w.ids = SequentialIds(n);
  w.columns.assign(2, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    double g = rng->NextDouble();
    double jitter = (rng->NextDouble() - 0.5) * 2.0 * noise;
    w.columns[0][i] = g;
    w.columns[1][i] = std::clamp(1.0 - g + jitter, 0.0, 1.0);
  }
  return w;
}

Workload PathologicalMiddle(size_t n) {
  assert(n >= 2);
  Workload w;
  w.ids = SequentialIds(n);
  w.columns.assign(2, std::vector<double>(n));
  const double nd = static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double di = static_cast<double>(i);
    // List 1 descends with i; list 2 ascends with i. min(a, b) peaks at the
    // crossover i ≈ n/2, which sorted access reaches only after ~n/2 steps
    // from either end.
    w.columns[0][i] = 1.0 - di / (2.0 * nd);                // in (1/2, 1]
    w.columns[1][i] = 0.5 + (di + 0.5) / (2.0 * nd + 2.0);  // in (1/2, 1)
  }
  return w;
}

std::vector<double> ZeroOneColumn(Rng* rng, size_t n, double selectivity) {
  assert(selectivity >= 0.0 && selectivity <= 1.0);
  size_t matches = static_cast<size_t>(selectivity * static_cast<double>(n));
  std::vector<double> col(n, 0.0);
  for (size_t i = 0; i < matches; ++i) col[i] = 1.0;
  rng->Shuffle(&col);
  return col;
}

Workload QuantizedUniform(Rng* rng, size_t n, size_t m, size_t levels) {
  assert(levels >= 2);
  Workload w;
  w.ids = SequentialIds(n);
  w.columns.assign(m, std::vector<double>(n));
  const double denom = static_cast<double>(levels - 1);
  for (size_t j = 0; j < m; ++j) {
    for (size_t i = 0; i < n; ++i) {
      w.columns[j][i] =
          static_cast<double>(rng->NextBounded(levels)) / denom;
    }
  }
  return w;
}

Result<std::vector<VectorSource>> MakeTruncatedSources(
    const Workload& w, const std::vector<size_t>& keep) {
  if (keep.size() != w.m()) {
    return Status::InvalidArgument("keep.size() must equal workload m");
  }
  std::vector<VectorSource> sources;
  sources.reserve(w.m());
  for (size_t j = 0; j < w.m(); ++j) {
    std::vector<GradedObject> items;
    items.reserve(w.n());
    for (size_t i = 0; i < w.n(); ++i) {
      items.push_back({w.ids[i], w.columns[j][i]});
    }
    // Keep the top keep[j] under the sorted-access order (grade descending,
    // ties by id ascending) so truncation removes the list's tail.
    std::sort(items.begin(), items.end(),
              [](const GradedObject& a, const GradedObject& b) {
                if (a.grade != b.grade) return a.grade > b.grade;
                return a.id < b.id;
              });
    items.resize(std::min(keep[j], items.size()));
    Result<VectorSource> src =
        VectorSource::Create(std::move(items), "trunc" + std::to_string(j));
    if (!src.ok()) return src.status();
    sources.push_back(std::move(*src));
  }
  return sources;
}

}  // namespace fuzzydb
