#include "sim/experiment.h"

#include <iomanip>
#include <iostream>
#include <sstream>

namespace fuzzydb {

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2)
         << (c < row.size() ? row[c] : "");
    }
    os << "\n";
  };
  print_row(rows_[0]);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (size_t r = 1; r < rows_.size(); ++r) print_row(rows_[r]);
}

void TablePrinter::Print() const { Print(std::cout); }

Result<std::vector<CostPoint>> SweepCost(const WorkloadFactory& factory,
                                         const AlgorithmRunner& runner,
                                         const std::vector<size_t>& ns,
                                         size_t m, size_t k, size_t trials,
                                         uint64_t seed) {
  if (trials == 0) return Status::InvalidArgument("trials must be >= 1");
  std::vector<CostPoint> out;
  out.reserve(ns.size());
  for (size_t n : ns) {
    uint64_t total_sorted = 0, total_random = 0;
    for (size_t t = 0; t < trials; ++t) {
      Rng rng(seed + 1000003 * t + n);
      Workload w = factory(&rng, n);
      Result<std::vector<VectorSource>> sources = w.MakeSources();
      if (!sources.ok()) return sources.status();
      std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
      Result<TopKResult> r = runner(ptrs, k);
      if (!r.ok()) return r.status();
      total_sorted += r->cost.sorted;
      total_random += r->cost.random;
    }
    CostPoint p;
    p.n = n;
    p.m = m;
    p.k = k;
    p.cost.sorted = total_sorted / trials;
    p.cost.random = total_random / trials;
    out.push_back(p);
  }
  return out;
}

Result<LinearFit> FitCostExponent(const std::vector<CostPoint>& points) {
  std::vector<double> xs, ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const CostPoint& p : points) {
    xs.push_back(static_cast<double>(p.n));
    ys.push_back(static_cast<double>(p.cost.total()));
  }
  return FitPowerLaw(xs, ys);
}

std::vector<GradedSource*> SourcePtrs(std::vector<VectorSource>& sources) {
  std::vector<GradedSource*> out;
  out.reserve(sources.size());
  for (VectorSource& s : sources) out.push_back(&s);
  return out;
}

}  // namespace fuzzydb
