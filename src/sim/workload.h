// Synthetic grade-list workloads for the middleware experiments (paper §4).
// Theorem 4.1's probabilistic model has each subquery's grades independent
// across subqueries; the generators here produce that model plus the
// departures (correlation, anti-correlation, the adversarial instance) used
// to probe the assumption.

#ifndef FUZZYDB_SIM_WORKLOAD_H_
#define FUZZYDB_SIM_WORKLOAD_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "middleware/vector_source.h"

namespace fuzzydb {

/// n objects with m grade columns; columns[j][i] is object ids[i]'s grade
/// under subquery j.
struct Workload {
  std::vector<ObjectId> ids;
  std::vector<std::vector<double>> columns;

  size_t n() const { return ids.size(); }
  size_t m() const { return columns.size(); }

  /// Materializes one VectorSource per column.
  Result<std::vector<VectorSource>> MakeSources() const;
};

/// The paper's model: grades i.i.d. uniform on [0,1), independent across
/// subqueries.
Workload IndependentUniform(Rng* rng, size_t n, size_t m);

/// Positively correlated columns: grade_ij = rho*base_i + (1-rho)*u_ij with
/// base and u uniform. rho=0 reduces to independent; rho=1 makes all columns
/// identical (A0's sorted phase then finds matches immediately).
Workload Correlated(Rng* rng, size_t n, size_t m, double rho);

/// Two anti-correlated columns: grade2 ≈ 1 - grade1 plus `noise` jitter —
/// the hard regime for conjunctions, where good objects on one list are bad
/// on the other.
Workload AntiCorrelated(Rng* rng, size_t n, double noise = 0.05);

/// The adversarial two-list instance behind the paper's remark that "there
/// is a provable linear lower bound" (§6): list 1 descends from one end of
/// the object order and list 2 from the other, and the unique best object
/// under min sits in the middle, forcing every sorted-access algorithm to
/// descend ~n/2 deep on both lists. All grades are distinct.
Workload PathologicalMiddle(size_t n);

/// A 0/1 relational-style column with ~selectivity*n matching objects
/// shuffled among the rest (grades exactly 0 or 1).
std::vector<double> ZeroOneColumn(Rng* rng, size_t n, double selectivity);

/// Grades quantized to `levels` equally spaced values {0, 1/(L-1), ..., 1},
/// independent across subqueries. With levels << n every sorted list is a
/// storm of duplicate grades, exercising the tie-breaking and
/// threshold-plateau paths of the halting rules (levels >= 2).
Workload QuantizedUniform(Rng* rng, size_t n, size_t m, size_t levels);

/// Materializes sources where list j keeps only its top keep[j] objects
/// (0 = an empty list; values above n are clamped). Sorted access exhausts
/// early on a truncated list; RandomAccess grades the dropped objects 0, the
/// fuzzy convention for "not in this subsystem's answer". Models subsystems
/// with unequal answer-set sizes. keep.size() must equal w.m().
Result<std::vector<VectorSource>> MakeTruncatedSources(
    const Workload& w, const std::vector<size_t>& keep);

}  // namespace fuzzydb

#endif  // FUZZYDB_SIM_WORKLOAD_H_
