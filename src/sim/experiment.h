// Experiment harness shared by the bench binaries: cost sweeps over
// workloads, power-law exponent fitting against the paper's predictions, and
// fixed-width table printing for the paper-style output rows recorded in
// EXPERIMENTS.md.

#ifndef FUZZYDB_SIM_EXPERIMENT_H_
#define FUZZYDB_SIM_EXPERIMENT_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.h"
#include "middleware/topk.h"
#include "sim/workload.h"

namespace fuzzydb {

/// Fixed-width console table.
class TablePrinter {
 public:
  /// Column headers; widths adapt to the widest cell.
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a row (stringified cells; must match the header arity).
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant digits.
  static std::string Num(double v, int precision = 4);

  /// Renders the table with a header rule.
  void Print(std::ostream& os) const;
  /// Renders to stdout (keeps <iostream> out of this header).
  void Print() const;

 private:
  std::vector<std::vector<std::string>> rows_;  // rows_[0] is the header
};

/// One measured point of a cost sweep.
struct CostPoint {
  size_t n = 0;
  size_t m = 0;
  size_t k = 0;
  AccessCost cost;
};

/// Runs `algorithm` over freshly generated workloads for every n in `ns`,
/// averaging total access cost over `trials` seeds.
using WorkloadFactory = std::function<Workload(Rng*, size_t n)>;
using AlgorithmRunner = std::function<Result<TopKResult>(
    std::span<GradedSource* const>, size_t k)>;

Result<std::vector<CostPoint>> SweepCost(const WorkloadFactory& factory,
                                         const AlgorithmRunner& runner,
                                         const std::vector<size_t>& ns,
                                         size_t m, size_t k, size_t trials,
                                         uint64_t seed);

/// Fits cost ~ N^slope over a sweep (log-log least squares).
Result<LinearFit> FitCostExponent(const std::vector<CostPoint>& points);

/// Borrows raw pointers from a vector of sources (the span the algorithms
/// take).
std::vector<GradedSource*> SourcePtrs(std::vector<VectorSource>& sources);

}  // namespace fuzzydb

#endif  // FUZZYDB_SIM_EXPERIMENT_H_
