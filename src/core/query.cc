#include "core/query.h"

#include <cassert>
#include <sstream>

namespace fuzzydb {

QueryPtr Query::Atomic(std::string attribute, std::string target) {
  auto q = std::shared_ptr<Query>(new Query(Kind::kAtomic));
  q->attribute_ = std::move(attribute);
  q->target_ = std::move(target);
  return q;
}

QueryPtr Query::And(std::vector<QueryPtr> children, ScoringRulePtr rule) {
  assert(!children.empty());
  auto q = std::shared_ptr<Query>(new Query(Kind::kAnd));
  q->children_ = std::move(children);
  q->rule_ = std::move(rule);
  return q;
}

QueryPtr Query::Or(std::vector<QueryPtr> children, ScoringRulePtr rule) {
  assert(!children.empty());
  auto q = std::shared_ptr<Query>(new Query(Kind::kOr));
  q->children_ = std::move(children);
  q->rule_ = std::move(rule);
  return q;
}

Result<QueryPtr> Query::WeightedAnd(std::vector<QueryPtr> children,
                                    Weighting weights, ScoringRulePtr rule) {
  if (children.size() != weights.size()) {
    return Status::InvalidArgument(
        "weighted conjunction needs one weight per conjunct");
  }
  auto q = std::shared_ptr<Query>(new Query(Kind::kAnd));
  q->children_ = std::move(children);
  q->rule_ = WeightedRule(std::move(rule), weights);
  q->weights_ = std::move(weights);
  return QueryPtr(q);
}

Result<QueryPtr> Query::WeightedOr(std::vector<QueryPtr> children,
                                   Weighting weights, ScoringRulePtr rule) {
  if (children.size() != weights.size()) {
    return Status::InvalidArgument(
        "weighted disjunction needs one weight per disjunct");
  }
  auto q = std::shared_ptr<Query>(new Query(Kind::kOr));
  q->children_ = std::move(children);
  q->rule_ = WeightedRule(std::move(rule), weights);
  q->weights_ = std::move(weights);
  return QueryPtr(q);
}

QueryPtr Query::Not(QueryPtr child, NegationFn negation) {
  assert(child != nullptr);
  auto q = std::shared_ptr<Query>(new Query(Kind::kNot));
  q->children_.push_back(std::move(child));
  q->negation_ = std::move(negation);
  return q;
}

double Query::Grade(const GradeOracle& oracle, ObjectId id) const {
  switch (kind_) {
    case Kind::kAtomic:
      return oracle(*this, id);
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<double> scores;
      scores.reserve(children_.size());
      for (const QueryPtr& c : children_) {
        scores.push_back(c->Grade(oracle, id));
      }
      return rule_->Apply(scores);
    }
    case Kind::kNot:
      return negation_(children_[0]->Grade(oracle, id));
  }
  return 0.0;
}

void Query::CollectAtoms(std::vector<const Query*>* out) const {
  if (kind_ == Kind::kAtomic) {
    out->push_back(this);
    return;
  }
  for (const QueryPtr& c : children_) c->CollectAtoms(out);
}

size_t Query::NumAtoms() const {
  std::vector<const Query*> atoms;
  CollectAtoms(&atoms);
  return atoms.size();
}

bool Query::IsMonotone() const {
  switch (kind_) {
    case Kind::kAtomic:
      return true;
    case Kind::kNot:
      return false;
    case Kind::kAnd:
    case Kind::kOr:
      if (!rule_->monotone()) return false;
      for (const QueryPtr& c : children_) {
        if (!c->IsMonotone()) return false;
      }
      return true;
  }
  return false;
}

bool Query::IsStrict() const {
  switch (kind_) {
    case Kind::kAtomic:
      return true;
    case Kind::kNot:
      return false;
    case Kind::kAnd:
    case Kind::kOr:
      if (!rule_->strict()) return false;
      for (const QueryPtr& c : children_) {
        if (!c->IsStrict()) return false;
      }
      return true;
  }
  return false;
}

std::string Query::ToString() const {
  switch (kind_) {
    case Kind::kAtomic:
      return attribute_ + "='" + target_ + "'";
    case Kind::kNot:
      return "NOT(" + children_[0]->ToString() + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::ostringstream os;
      const char* op = (kind_ == Kind::kAnd) ? " AND" : " OR";
      os << "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) os << op << "[" << rule_->name() << "] ";
        os << children_[i]->ToString();
      }
      os << ")";
      return os.str();
    }
  }
  return "?";
}

}  // namespace fuzzydb
