// Fuzzy-set algebra over graded sets ([Za65], paper §3): union,
// intersection, and complement of graded sets under configurable
// conjunction/disjunction/negation rules. The standard min/max/1-x choices
// give Zadeh's original operations; any t-norm/co-norm pair gives the
// generalized ones. Objects absent from a set carry grade 0, so these are
// total operations over the union of supports.

#ifndef FUZZYDB_CORE_SET_OPS_H_
#define FUZZYDB_CORE_SET_OPS_H_

#include <vector>

#include "core/graded_set.h"
#include "core/scoring.h"
#include "core/tnorms.h"

namespace fuzzydb {

/// µ_A∪B(x) = s(µ_A(x), µ_B(x)); objects from either set appear.
/// Default: Zadeh max.
Result<GradedSet> FuzzyUnion(const GradedSet& a, const GradedSet& b,
                             const ScoringRulePtr& co_norm = MaxRule());

/// µ_A∩B(x) = t(µ_A(x), µ_B(x)); evaluated over the union of supports
/// (absent = 0, so under any t-norm the result's support is the
/// intersection of supports, but intermediate grades are kept explicit).
/// Default: Zadeh min.
Result<GradedSet> FuzzyIntersection(const GradedSet& a, const GradedSet& b,
                                    const ScoringRulePtr& t_norm = MinRule());

/// µ_Ā(x) = n(µ_A(x)) over a given universe of object ids (fuzzy
/// complements need an explicit universe: objects outside `a` have grade 0,
/// hence complement grade n(0)). Default: the standard negation 1-x.
Result<GradedSet> FuzzyComplement(const GradedSet& a,
                                  const std::vector<ObjectId>& universe,
                                  const NegationFn& negation =
                                      StandardNegation);

/// The α-cut: the crisp set {x : µ_A(x) >= alpha} as sorted ids — the
/// bridge from graded back to ordinary sets.
Result<std::vector<ObjectId>> AlphaCut(const GradedSet& a, double alpha);

/// Cardinality of a fuzzy set: Σ_x µ_A(x).
double FuzzyCardinality(const GradedSet& a);

/// Degree of subsethood |A ∩ B| / |A| (Kosko): 1 when A ⊆ B pointwise,
/// decreasing as A's mass escapes B. Returns 1 for empty/zero-mass A.
double Subsethood(const GradedSet& a, const GradedSet& b);

}  // namespace fuzzydb

#endif  // FUZZYDB_CORE_SET_OPS_H_
