// Triangular norms, co-norms, and negations (paper §3).
//
// A t-norm is a 2-ary scoring function on [0,1] satisfying ∧-conservation,
// monotonicity, commutativity, and associativity; a t-co-norm satisfies the
// dual ∨-conservation. Duality: s(x,y) = n(t(n(x), n(y))) for a strong
// negation n.

#ifndef FUZZYDB_CORE_TNORMS_H_
#define FUZZYDB_CORE_TNORMS_H_

#include <functional>
#include <string>

#include "common/status.h"

namespace fuzzydb {

/// A 2-ary scoring function on [0,1]^2.
using BinaryScoringFn = std::function<double(double, double)>;
/// A fuzzy negation on [0,1].
using NegationFn = std::function<double(double)>;

/// The t-norms discussed in the paper and its references [BD86, Mi89].
enum class TNormKind {
  kMinimum,      ///< Zadeh / Gödel: min(x,y) — the standard fuzzy conjunction.
  kProduct,      ///< Algebraic product: x*y.
  kLukasiewicz,  ///< Bounded difference: max(0, x+y-1).
  kHamacher,     ///< Hamacher product: xy/(x+y-xy), 0 at (0,0).
  kEinstein,     ///< Einstein product: xy/(1+(1-x)(1-y)).
  kDrastic,      ///< Drastic: min if an argument is 1, else 0.
};

/// The matching co-norms (De Morgan duals under standard negation).
enum class TCoNormKind {
  kMaximum,      ///< max(x,y) — the standard fuzzy disjunction.
  kProbSum,      ///< Probabilistic sum: x+y-xy.
  kLukasiewicz,  ///< Bounded sum: min(1, x+y).
  kHamacher,     ///< Hamacher sum: (x+y-2xy)/(1-xy), 1 at (1,1).
  kEinstein,     ///< Einstein sum: (x+y)/(1+xy).
  kDrastic,      ///< Drastic: max if an argument is 0, else 1.
};

/// Human-readable name, e.g. "min", "product".
std::string TNormName(TNormKind kind);
std::string TCoNormName(TCoNormKind kind);

/// Evaluates the t-norm / co-norm. Inputs are clamped to [0,1].
double ApplyTNorm(TNormKind kind, double x, double y);
double ApplyTCoNorm(TCoNormKind kind, double x, double y);

/// The co-norm dual to `kind` under standard negation (and vice versa).
TCoNormKind DualCoNorm(TNormKind kind);
TNormKind DualTNorm(TCoNormKind kind);

/// Builds the De Morgan dual s(x,y) = n(t(n(x), n(y))) of an arbitrary
/// 2-ary function under negation `n` [Al85, BD86].
BinaryScoringFn DeMorganDual(BinaryScoringFn t, NegationFn n);

/// The standard negation n(x) = 1 - x.
double StandardNegation(double x);
/// Sugeno negation n(x) = (1-x)/(1+lambda*x), lambda > -1; lambda=0 is
/// standard.
NegationFn SugenoNegation(double lambda);
/// Yager negation n(x) = (1 - x^p)^(1/p), p > 0; p=1 is standard.
NegationFn YagerNegation(double p);

/// Verifies the four t-norm axioms (∧-conservation, monotonicity,
/// commutativity, associativity) on a uniform grid of `grid_n`^2 (and ^3 for
/// associativity) points. Returns FailedPrecondition naming the violated
/// axiom, or OK. Used by the middleware to vet user-defined conjunctions
/// (Garlic issue, paper §4.2).
Status ValidateTNormAxioms(const BinaryScoringFn& t, int grid_n = 21,
                           double tol = 1e-9);

/// Same for the t-co-norm axioms (∨-conservation instead).
Status ValidateTCoNormAxioms(const BinaryScoringFn& s, int grid_n = 21,
                             double tol = 1e-9);

}  // namespace fuzzydb

#endif  // FUZZYDB_CORE_TNORMS_H_
