// Weighted scoring rules via the Fagin–Wimmers formula (paper §5, [FW97]).
//
// Given an underlying (symmetric) rule f and a weighting Θ = (θ1,...,θm)
// with θ1 >= ... >= θm >= 0 and Σθi = 1, the weighted score is
//
//   f_Θ(x1,...,xm) = Σ_{i=1..m} i · (θi − θ(i+1)) · f(x1,...,xi)
//
// with θ(m+1) = 0. This is the unique family satisfying
//   D1: equal weights reduce to the unweighted rule,
//   D2: zero-weight arguments can be dropped,
//   D3': local linearity in the weights.
// Monotonicity and strictness of f are inherited by f_Θ, so Fagin's
// algorithm remains correct and optimal in the weighted case.

#ifndef FUZZYDB_CORE_WEIGHTS_H_
#define FUZZYDB_CORE_WEIGHTS_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "core/scoring.h"

namespace fuzzydb {

/// A normalized importance vector: nonnegative entries summing to 1.
class Weighting {
 public:
  /// Validates: non-empty, all entries >= 0, sum within 1e-9 of 1.
  static Result<Weighting> Create(std::vector<double> theta);

  /// Scales arbitrary nonnegative, not-all-zero values (e.g. raw slider
  /// positions, paper §5) to sum to 1.
  static Result<Weighting> FromSliders(std::vector<double> raw);

  /// The uniform weighting (1/m, ..., 1/m).
  static Weighting Equal(size_t m);

  size_t size() const { return theta_.size(); }
  std::span<const double> values() const { return theta_; }
  double operator[](size_t i) const { return theta_[i]; }

  /// True iff θ1 >= θ2 >= ... >= θm (an "ordered" weighting, paper §5).
  bool IsOrdered() const;

  /// Convex combination α·this + (1−α)·other; sizes must match,
  /// α in [0,1]. Used to exercise local linearity (D3').
  Result<Weighting> Mix(const Weighting& other, double alpha) const;

 private:
  explicit Weighting(std::vector<double> theta) : theta_(std::move(theta)) {}
  std::vector<double> theta_;
};

/// Evaluates the Fagin–Wimmers formula directly: applies `base` to prefixes
/// of the scores re-ordered by weight descending (stable under ties — the
/// paper shows ties make the tied terms' coefficients vanish, so any tie
/// order gives the same value).
double FaginWimmersScore(const ScoringRule& base, const Weighting& weights,
                         std::span<const double> scores);

/// A ScoringRule computing f_Θ; Apply() requires scores.size() == Θ.size().
/// Inherits monotone()/strict() from the base rule ([FW97], paper §5).
ScoringRulePtr WeightedRule(ScoringRulePtr base, Weighting weights);

/// Yager's Ordered Weighted Averaging operator: Σ w_i · x_(i), where x_(i)
/// is the i-th LARGEST score. Weights attach to ranks rather than to
/// arguments (the complementary notion to the Fagin–Wimmers transform,
/// which weights arguments): w = (0,...,0,1) is min, (1,0,...,0) is max,
/// uniform weights are the arithmetic mean. Monotone always; strict iff the
/// last (smallest-score) weight is positive. Apply() requires
/// scores.size() == weights.size().
ScoringRulePtr OwaRule(Weighting weights);

}  // namespace fuzzydb

#endif  // FUZZYDB_CORE_WEIGHTS_H_
