// Graded ("fuzzy") sets: the answer model for multimedia queries (paper §3).
//
// A graded set is a set of (object, grade) pairs with grades in [0,1]; it
// generalizes both a relational result set (grades 0/1) and the sorted list a
// multimedia subsystem returns.

#ifndef FUZZYDB_CORE_GRADED_SET_H_
#define FUZZYDB_CORE_GRADED_SET_H_

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace fuzzydb {

/// Global object identifier. The middleware assumes a one-to-one id
/// correspondence across subsystems (the Garlic issue in paper §4.2); the
/// catalog module owns that mapping.
using ObjectId = uint64_t;

/// One element of a graded set.
struct GradedObject {
  ObjectId id = 0;
  /// Degree of match in [0, 1]; 1 is a perfect match.
  double grade = 0.0;

  bool operator==(const GradedObject& other) const = default;
};

/// Orders by grade descending, then id ascending (deterministic tie-break).
/// This is the canonical "sorted access" order.
bool GradeDescending(const GradedObject& a, const GradedObject& b);

/// A graded set over objects. Internally kept unsorted until asked; lookups
/// by id are O(1).
class GradedSet {
 public:
  GradedSet() = default;

  /// Builds from a list of pairs; duplicate ids are rejected.
  static Result<GradedSet> FromPairs(std::vector<GradedObject> pairs);

  /// Inserts or overwrites the grade of `id`. Grade must be in [0, 1].
  Status Insert(ObjectId id, double grade);

  /// Grade of `id`, or nullopt if absent. (By fuzzy-set convention an absent
  /// object has grade 0; callers choose how to treat absence.)
  std::optional<double> GradeOf(ObjectId id) const;

  bool Contains(ObjectId id) const { return index_.count(id) > 0; }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// All members in unspecified order.
  std::span<const GradedObject> items() const { return items_; }

  /// Members sorted by grade descending (ties by id ascending).
  std::vector<GradedObject> Sorted() const;

  /// The top-k members in sorted order (fewer if size() < k).
  std::vector<GradedObject> TopK(size_t k) const;

  /// Members with grade >= threshold, sorted.
  std::vector<GradedObject> AtLeast(double threshold) const;

  /// The support: ids with nonzero grade.
  std::vector<ObjectId> Support() const;

 private:
  std::vector<GradedObject> items_;
  std::unordered_map<ObjectId, size_t> index_;  // id -> position in items_
};

/// Checks that `result` is a valid top-k answer for the grades in `truth`:
/// it has min(k, |truth|) entries, each entry's grade matches `truth`, and no
/// omitted object has a strictly higher grade than any included one (ties may
/// be broken arbitrarily, per paper §4.1).
bool IsValidTopK(std::span<const GradedObject> result, const GradedSet& truth,
                 size_t k, double tol = 1e-12);

}  // namespace fuzzydb

#endif  // FUZZYDB_CORE_GRADED_SET_H_
