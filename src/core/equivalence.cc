#include "core/equivalence.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>

namespace fuzzydb {

namespace {

QueryPtr RandomTree(Rng* rng, const std::vector<std::string>& attrs,
                    size_t depth, const ScoringRulePtr& and_rule,
                    const ScoringRulePtr& or_rule) {
  if (depth == 0 || rng->NextBernoulli(0.35)) {
    const std::string& attr = attrs[rng->NextBounded(attrs.size())];
    return Query::Atomic(attr, "t");
  }
  size_t fanout = 2 + rng->NextBounded(2);
  std::vector<QueryPtr> children;
  children.reserve(fanout);
  for (size_t i = 0; i < fanout; ++i) {
    children.push_back(RandomTree(rng, attrs, depth - 1, and_rule, or_rule));
  }
  return rng->NextBernoulli(0.5)
             ? Query::And(std::move(children), and_rule)
             : Query::Or(std::move(children), or_rule);
}

// Deep-copies `node`, applying at most one rewrite at a uniformly chosen
// position (chosen via reservoir counting over combination nodes).
struct Rewriter {
  Rng* rng;
  ScoringRulePtr and_rule;
  ScoringRulePtr or_rule;
  size_t fresh_counter = 0;

  QueryPtr FreshAtom() {
    return Query::Atomic("__fresh" + std::to_string(fresh_counter++), "t");
  }

  QueryPtr Copy(const QueryPtr& node) {
    switch (node->kind()) {
      case Query::Kind::kAtomic:
        return Query::Atomic(node->attribute(), node->target());
      case Query::Kind::kNot:
        return Query::Not(Copy(node->children()[0]), node->negation());
      case Query::Kind::kAnd:
      case Query::Kind::kOr: {
        std::vector<QueryPtr> children;
        children.reserve(node->children().size());
        for (const QueryPtr& c : node->children()) {
          children.push_back(Copy(c));
        }
        return node->kind() == Query::Kind::kAnd
                   ? Query::And(std::move(children), and_rule)
                   : Query::Or(std::move(children), or_rule);
      }
    }
    return node;
  }

  // One random identity applied to a copy of `node` (which may be atomic).
  QueryPtr RewriteHere(const QueryPtr& node) {
    QueryPtr copy = Copy(node);
    switch (rng->NextBounded(4)) {
      case 0: {  // idempotence: A -> A AND A
        return Query::And({copy, Copy(node)}, and_rule);
      }
      case 1: {  // absorption: A -> A AND (A OR B), B fresh
        QueryPtr inner = Query::Or({Copy(node), FreshAtom()}, or_rule);
        return Query::And({copy, std::move(inner)}, and_rule);
      }
      case 2: {  // dual absorption: A -> A OR (A AND B), B fresh
        QueryPtr inner = Query::And({Copy(node), FreshAtom()}, and_rule);
        return Query::Or({copy, std::move(inner)}, or_rule);
      }
      default: {  // commutativity / distribution on combination nodes
        if (copy->kind() == Query::Kind::kAnd ||
            copy->kind() == Query::Kind::kOr) {
          std::vector<QueryPtr> children = copy->children();
          rng->Shuffle(&children);
          if (copy->kind() == Query::Kind::kAnd && children.size() == 2 &&
              children[1]->kind() == Query::Kind::kOr &&
              rng->NextBernoulli(0.5)) {
            // A AND (B OR C...) -> (A AND B) OR (A AND C) ...
            std::vector<QueryPtr> distributed;
            for (const QueryPtr& d : children[1]->children()) {
              distributed.push_back(
                  Query::And({Copy(children[0]), Copy(d)}, and_rule));
            }
            return Query::Or(std::move(distributed), or_rule);
          }
          return copy->kind() == Query::Kind::kAnd
                     ? Query::And(std::move(children), and_rule)
                     : Query::Or(std::move(children), or_rule);
        }
        // Atomic fallback: idempotence via OR.
        return Query::Or({copy, Copy(node)}, or_rule);
      }
    }
  }

  // Applies one rewrite at a random node of the tree.
  QueryPtr RewriteSomewhere(const QueryPtr& node) {
    // With probability proportional to subtree choice, descend.
    if (node->kind() != Query::Kind::kAtomic && rng->NextBernoulli(0.6)) {
      std::vector<QueryPtr> children = node->children();
      size_t pick = rng->NextBounded(children.size());
      children[pick] = RewriteSomewhere(children[pick]);
      for (size_t i = 0; i < children.size(); ++i) {
        if (i != pick) children[i] = Copy(children[i]);
      }
      return node->kind() == Query::Kind::kAnd
                 ? Query::And(std::move(children), and_rule)
                 : Query::Or(std::move(children), or_rule);
    }
    return RewriteHere(node);
  }
};

}  // namespace

QueryPtr RandomMonotoneQuery(Rng* rng, const std::vector<std::string>& attrs,
                             size_t max_depth, ScoringRulePtr and_rule,
                             ScoringRulePtr or_rule) {
  assert(!attrs.empty());
  return RandomTree(rng, attrs, max_depth, and_rule, or_rule);
}

QueryPtr RewriteEquivalent(const QueryPtr& query, Rng* rng, size_t steps,
                           ScoringRulePtr and_rule, ScoringRulePtr or_rule) {
  Rewriter rewriter{rng, std::move(and_rule), std::move(or_rule)};
  QueryPtr out = rewriter.Copy(query);
  for (size_t s = 0; s < steps; ++s) {
    out = rewriter.RewriteSomewhere(out);
  }
  return out;
}

QueryPtr WithRules(const QueryPtr& query, ScoringRulePtr and_rule,
                   ScoringRulePtr or_rule) {
  Rewriter rewriter{nullptr, std::move(and_rule), std::move(or_rule)};
  return rewriter.Copy(query);
}

namespace {

// One DNF monomial: the set of atom keys whose min it takes. Lexicographic
// set ordering makes the outer std::set<Term> print deterministically.
using Term = std::set<std::string>;

std::string AtomKey(const Query& atom) {
  // Attribute/target are length-prefixed so ("ab","c") never collides with
  // ("a","bc").
  return std::to_string(atom.attribute().size()) + ":" + atom.attribute() +
         "=" + std::to_string(atom.target().size()) + ":" + atom.target();
}

// True when `node` is a combination the distributive-lattice normal form is
// valid for: the standard unweighted rules of Theorem 3.1.
bool IsStandardNode(const Query& node) {
  if (node.weights().has_value()) return false;
  if (node.kind() == Query::Kind::kAnd) return node.rule()->name() == "min";
  if (node.kind() == Query::Kind::kOr) return node.rule()->name() == "max";
  return false;
}

// Drops every monomial that is a superset of another (absorption: a term
// can never win the max if a subset of it — a pointwise-greater min — is
// also present). The survivors form the unique antichain representation.
void ReduceAbsorption(std::set<Term>* terms) {
  for (auto it = terms->begin(); it != terms->end();) {
    bool absorbed = false;
    for (const Term& other : *terms) {
      if (&other != &*it && other.size() < it->size() &&
          std::includes(it->begin(), it->end(), other.begin(), other.end())) {
        absorbed = true;
        break;
      }
    }
    it = absorbed ? terms->erase(it) : ++it;
  }
}

// Reduced DNF of a standard min/max tree. False (and *terms left
// unspecified) when the monomial count passes `max_terms` — the caller
// falls back to the structural key.
bool Dnf(const Query& node, size_t max_terms, std::set<Term>* terms) {
  switch (node.kind()) {
    case Query::Kind::kAtomic:
      terms->insert(Term{AtomKey(node)});
      return true;
    case Query::Kind::kOr: {
      if (!IsStandardNode(node)) return false;
      for (const QueryPtr& c : node.children()) {
        std::set<Term> child;
        if (!Dnf(*c, max_terms, &child)) return false;
        terms->insert(child.begin(), child.end());
        if (terms->size() > max_terms) return false;
      }
      ReduceAbsorption(terms);
      return true;
    }
    case Query::Kind::kAnd: {
      if (!IsStandardNode(node)) return false;
      std::set<Term> acc{Term{}};  // the empty monomial: identity of AND
      for (const QueryPtr& c : node.children()) {
        std::set<Term> child;
        if (!Dnf(*c, max_terms, &child)) return false;
        std::set<Term> next;
        for (const Term& a : acc) {
          for (const Term& b : child) {
            Term merged = a;
            merged.insert(b.begin(), b.end());
            next.insert(std::move(merged));
            if (next.size() > max_terms) return false;
          }
        }
        acc = std::move(next);
      }
      ReduceAbsorption(&acc);
      *terms = std::move(acc);
      return true;
    }
    case Query::Kind::kNot:
      return false;  // not a lattice term; structural key territory
  }
  return false;
}

// Structure-preserving key: sound for any tree (rule names encode weights;
// child order kept because not every rule is symmetric).
std::string StructuralKey(const Query& node) {
  switch (node.kind()) {
    case Query::Kind::kAtomic:
      return AtomKey(node);
    case Query::Kind::kNot:
      // NegationFn is an opaque std::function; all shipped Not nodes use
      // the standard 1-x, which is what this key assumes.
      return "not(" + StructuralKey(*node.children()[0]) + ")";
    case Query::Kind::kAnd:
    case Query::Kind::kOr: {
      std::string out =
          node.kind() == Query::Kind::kAnd ? "and[" : "or[";
      out += node.rule()->name();
      out += "](";
      for (size_t i = 0; i < node.children().size(); ++i) {
        if (i > 0) out += ",";
        out += StructuralKey(*node.children()[i]);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace

std::string CanonicalKey(const QueryPtr& query, size_t max_terms) {
  assert(query != nullptr);
  std::set<Term> terms;
  if (Dnf(*query, max_terms, &terms)) {
    std::string out = "dnf:";
    for (const Term& t : terms) {
      out += "{";
      for (const std::string& a : t) {
        out += a;
        out += ";";
      }
      out += "}";
    }
    return out;
  }
  return "struct:" + StructuralKey(*query);
}

}  // namespace fuzzydb
