#include "core/equivalence.h"

#include <cassert>

namespace fuzzydb {

namespace {

QueryPtr RandomTree(Rng* rng, const std::vector<std::string>& attrs,
                    size_t depth, const ScoringRulePtr& and_rule,
                    const ScoringRulePtr& or_rule) {
  if (depth == 0 || rng->NextBernoulli(0.35)) {
    const std::string& attr = attrs[rng->NextBounded(attrs.size())];
    return Query::Atomic(attr, "t");
  }
  size_t fanout = 2 + rng->NextBounded(2);
  std::vector<QueryPtr> children;
  children.reserve(fanout);
  for (size_t i = 0; i < fanout; ++i) {
    children.push_back(RandomTree(rng, attrs, depth - 1, and_rule, or_rule));
  }
  return rng->NextBernoulli(0.5)
             ? Query::And(std::move(children), and_rule)
             : Query::Or(std::move(children), or_rule);
}

// Deep-copies `node`, applying at most one rewrite at a uniformly chosen
// position (chosen via reservoir counting over combination nodes).
struct Rewriter {
  Rng* rng;
  ScoringRulePtr and_rule;
  ScoringRulePtr or_rule;
  size_t fresh_counter = 0;

  QueryPtr FreshAtom() {
    return Query::Atomic("__fresh" + std::to_string(fresh_counter++), "t");
  }

  QueryPtr Copy(const QueryPtr& node) {
    switch (node->kind()) {
      case Query::Kind::kAtomic:
        return Query::Atomic(node->attribute(), node->target());
      case Query::Kind::kNot:
        return Query::Not(Copy(node->children()[0]), node->negation());
      case Query::Kind::kAnd:
      case Query::Kind::kOr: {
        std::vector<QueryPtr> children;
        children.reserve(node->children().size());
        for (const QueryPtr& c : node->children()) {
          children.push_back(Copy(c));
        }
        return node->kind() == Query::Kind::kAnd
                   ? Query::And(std::move(children), and_rule)
                   : Query::Or(std::move(children), or_rule);
      }
    }
    return node;
  }

  // One random identity applied to a copy of `node` (which may be atomic).
  QueryPtr RewriteHere(const QueryPtr& node) {
    QueryPtr copy = Copy(node);
    switch (rng->NextBounded(4)) {
      case 0: {  // idempotence: A -> A AND A
        return Query::And({copy, Copy(node)}, and_rule);
      }
      case 1: {  // absorption: A -> A AND (A OR B), B fresh
        QueryPtr inner = Query::Or({Copy(node), FreshAtom()}, or_rule);
        return Query::And({copy, std::move(inner)}, and_rule);
      }
      case 2: {  // dual absorption: A -> A OR (A AND B), B fresh
        QueryPtr inner = Query::And({Copy(node), FreshAtom()}, and_rule);
        return Query::Or({copy, std::move(inner)}, or_rule);
      }
      default: {  // commutativity / distribution on combination nodes
        if (copy->kind() == Query::Kind::kAnd ||
            copy->kind() == Query::Kind::kOr) {
          std::vector<QueryPtr> children = copy->children();
          rng->Shuffle(&children);
          if (copy->kind() == Query::Kind::kAnd && children.size() == 2 &&
              children[1]->kind() == Query::Kind::kOr &&
              rng->NextBernoulli(0.5)) {
            // A AND (B OR C...) -> (A AND B) OR (A AND C) ...
            std::vector<QueryPtr> distributed;
            for (const QueryPtr& d : children[1]->children()) {
              distributed.push_back(
                  Query::And({Copy(children[0]), Copy(d)}, and_rule));
            }
            return Query::Or(std::move(distributed), or_rule);
          }
          return copy->kind() == Query::Kind::kAnd
                     ? Query::And(std::move(children), and_rule)
                     : Query::Or(std::move(children), or_rule);
        }
        // Atomic fallback: idempotence via OR.
        return Query::Or({copy, Copy(node)}, or_rule);
      }
    }
  }

  // Applies one rewrite at a random node of the tree.
  QueryPtr RewriteSomewhere(const QueryPtr& node) {
    // With probability proportional to subtree choice, descend.
    if (node->kind() != Query::Kind::kAtomic && rng->NextBernoulli(0.6)) {
      std::vector<QueryPtr> children = node->children();
      size_t pick = rng->NextBounded(children.size());
      children[pick] = RewriteSomewhere(children[pick]);
      for (size_t i = 0; i < children.size(); ++i) {
        if (i != pick) children[i] = Copy(children[i]);
      }
      return node->kind() == Query::Kind::kAnd
                 ? Query::And(std::move(children), and_rule)
                 : Query::Or(std::move(children), or_rule);
    }
    return RewriteHere(node);
  }
};

}  // namespace

QueryPtr RandomMonotoneQuery(Rng* rng, const std::vector<std::string>& attrs,
                             size_t max_depth, ScoringRulePtr and_rule,
                             ScoringRulePtr or_rule) {
  assert(!attrs.empty());
  return RandomTree(rng, attrs, max_depth, and_rule, or_rule);
}

QueryPtr RewriteEquivalent(const QueryPtr& query, Rng* rng, size_t steps,
                           ScoringRulePtr and_rule, ScoringRulePtr or_rule) {
  Rewriter rewriter{rng, std::move(and_rule), std::move(or_rule)};
  QueryPtr out = rewriter.Copy(query);
  for (size_t s = 0; s < steps; ++s) {
    out = rewriter.RewriteSomewhere(out);
  }
  return out;
}

QueryPtr WithRules(const QueryPtr& query, ScoringRulePtr and_rule,
                   ScoringRulePtr or_rule) {
  Rewriter rewriter{nullptr, std::move(and_rule), std::move(or_rule)};
  return rewriter.Copy(query);
}

}  // namespace fuzzydb
