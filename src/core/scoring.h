// m-ary scoring functions (paper §3): combine the grades an object earns
// under m subqueries into one overall grade.
//
// The algorithmic results (Theorems 4.1/4.2) need only two properties of a
// rule — monotonicity (upper bound) and strictness (lower bound) — so every
// rule here declares both, and empirical checkers let the middleware vet
// user-defined rules the way the Garlic implementation had to (paper §4.2).

#ifndef FUZZYDB_CORE_SCORING_H_
#define FUZZYDB_CORE_SCORING_H_

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "core/tnorms.h"

namespace fuzzydb {

/// An m-ary scoring function [0,1]^m -> [0,1] accepting tuples of any
/// positive length (the loosened definition of paper §5).
class ScoringRule {
 public:
  virtual ~ScoringRule() = default;

  /// Overall score for one object's subquery scores; `scores` is non-empty.
  virtual double Apply(std::span<const double> scores) const = 0;

  /// Display name, e.g. "min" or "weighted[0.67,0.33](min)".
  virtual std::string name() const = 0;

  /// Declared monotone: x <= x' pointwise implies Apply(x) <= Apply(x').
  virtual bool monotone() const = 0;

  /// Declared strict: Apply(x) == 1 iff every component is 1.
  virtual bool strict() const = 0;
};

using ScoringRulePtr = std::shared_ptr<const ScoringRule>;

/// Standard fuzzy conjunction: min (Theorem 3.1 says it is the unique
/// logical-equivalence-preserving monotone conjunction).
ScoringRulePtr MinRule();
/// Standard fuzzy disjunction: max. Monotone but NOT strict — which is why
/// the mk disjunction shortcut beats the A0 lower bound (paper §4.1).
ScoringRulePtr MaxRule();
/// m-ary iteration t(t(...t(x1,x2)...), xm) of a 2-ary t-norm. Monotone and
/// strict for every t-norm (paper §3).
ScoringRulePtr TNormRule(TNormKind kind);
/// m-ary iteration of a t-co-norm; monotone, not strict.
ScoringRulePtr TCoNormRule(TCoNormKind kind);
/// Arithmetic mean — empirically effective [TZZ79] though not a t-norm (it
/// fails ∧-conservation); monotone and strict, so A0's bounds still apply.
ScoringRulePtr ArithmeticMeanRule();
/// Geometric mean (x1*...*xm)^(1/m); monotone and strict.
ScoringRulePtr GeometricMeanRule();
/// Harmonic mean; monotone and strict (0 if any component is 0).
ScoringRulePtr HarmonicMeanRule();
/// Lower median (element at index floor((m-1)/2) of the sorted scores);
/// monotone, not strict.
ScoringRulePtr MedianRule();

/// Wraps an arbitrary user-defined function with *claimed* properties; the
/// middleware re-checks the claims empirically before trusting them.
ScoringRulePtr UserDefinedRule(
    std::string name, std::function<double(std::span<const double>)> fn,
    bool claims_monotone, bool claims_strict);

/// Empirically tests monotonicity at arity `m`: draws `samples` random pairs
/// x <= x' (plus boundary tuples) and checks Apply(x) <= Apply(x') + tol.
/// Can only refute, never prove.
bool CheckMonotoneEmpirically(const ScoringRule& rule, size_t m,
                              size_t samples, Rng* rng, double tol = 1e-12);

/// Empirically tests strictness at arity `m`: Apply(1,...,1) must be 1, and
/// random tuples with at least one component < 1 must score < 1.
bool CheckStrictEmpirically(const ScoringRule& rule, size_t m, size_t samples,
                            Rng* rng, double tol = 1e-12);

}  // namespace fuzzydb

#endif  // FUZZYDB_CORE_SCORING_H_
