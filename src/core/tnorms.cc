#include "core/tnorms.h"

#include <algorithm>
#include <cmath>

namespace fuzzydb {

namespace {

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

std::string TNormName(TNormKind kind) {
  switch (kind) {
    case TNormKind::kMinimum:
      return "min";
    case TNormKind::kProduct:
      return "product";
    case TNormKind::kLukasiewicz:
      return "lukasiewicz";
    case TNormKind::kHamacher:
      return "hamacher";
    case TNormKind::kEinstein:
      return "einstein";
    case TNormKind::kDrastic:
      return "drastic";
  }
  return "unknown";
}

std::string TCoNormName(TCoNormKind kind) {
  switch (kind) {
    case TCoNormKind::kMaximum:
      return "max";
    case TCoNormKind::kProbSum:
      return "prob-sum";
    case TCoNormKind::kLukasiewicz:
      return "lukasiewicz";
    case TCoNormKind::kHamacher:
      return "hamacher";
    case TCoNormKind::kEinstein:
      return "einstein";
    case TCoNormKind::kDrastic:
      return "drastic";
  }
  return "unknown";
}

double ApplyTNorm(TNormKind kind, double x, double y) {
  x = Clamp01(x);
  y = Clamp01(y);
  switch (kind) {
    case TNormKind::kMinimum:
      return std::min(x, y);
    case TNormKind::kProduct:
      return x * y;
    case TNormKind::kLukasiewicz:
      return std::max(0.0, x + y - 1.0);
    case TNormKind::kHamacher: {
      double denom = x + y - x * y;
      if (denom == 0.0) return 0.0;  // x == y == 0
      return x * y / denom;
    }
    case TNormKind::kEinstein:
      return x * y / (1.0 + (1.0 - x) * (1.0 - y));
    case TNormKind::kDrastic:
      if (x == 1.0) return y;
      if (y == 1.0) return x;
      return 0.0;
  }
  return 0.0;
}

double ApplyTCoNorm(TCoNormKind kind, double x, double y) {
  x = Clamp01(x);
  y = Clamp01(y);
  switch (kind) {
    case TCoNormKind::kMaximum:
      return std::max(x, y);
    case TCoNormKind::kProbSum:
      return x + y - x * y;
    case TCoNormKind::kLukasiewicz:
      return std::min(1.0, x + y);
    case TCoNormKind::kHamacher: {
      // Near x or y == 1 the numerator and denominator are both ~(1-x) but
      // computed with different roundings, so the quotient can collapse to
      // 0; the exact value there is 1.
      if (x == 1.0 || y == 1.0) return 1.0;
      return Clamp01((x + y - 2.0 * x * y) / (1.0 - x * y));
    }
    case TCoNormKind::kEinstein:
      return (x + y) / (1.0 + x * y);
    case TCoNormKind::kDrastic:
      if (x == 0.0) return y;
      if (y == 0.0) return x;
      return 1.0;
  }
  return 1.0;
}

TCoNormKind DualCoNorm(TNormKind kind) {
  switch (kind) {
    case TNormKind::kMinimum:
      return TCoNormKind::kMaximum;
    case TNormKind::kProduct:
      return TCoNormKind::kProbSum;
    case TNormKind::kLukasiewicz:
      return TCoNormKind::kLukasiewicz;
    case TNormKind::kHamacher:
      return TCoNormKind::kHamacher;
    case TNormKind::kEinstein:
      return TCoNormKind::kEinstein;
    case TNormKind::kDrastic:
      return TCoNormKind::kDrastic;
  }
  return TCoNormKind::kMaximum;
}

TNormKind DualTNorm(TCoNormKind kind) {
  switch (kind) {
    case TCoNormKind::kMaximum:
      return TNormKind::kMinimum;
    case TCoNormKind::kProbSum:
      return TNormKind::kProduct;
    case TCoNormKind::kLukasiewicz:
      return TNormKind::kLukasiewicz;
    case TCoNormKind::kHamacher:
      return TNormKind::kHamacher;
    case TCoNormKind::kEinstein:
      return TNormKind::kEinstein;
    case TCoNormKind::kDrastic:
      return TNormKind::kDrastic;
  }
  return TNormKind::kMinimum;
}

BinaryScoringFn DeMorganDual(BinaryScoringFn t, NegationFn n) {
  return [t = std::move(t), n = std::move(n)](double x, double y) {
    return n(t(n(x), n(y)));
  };
}

double StandardNegation(double x) { return 1.0 - Clamp01(x); }

NegationFn SugenoNegation(double lambda) {
  return [lambda](double x) {
    x = Clamp01(x);
    return (1.0 - x) / (1.0 + lambda * x);
  };
}

NegationFn YagerNegation(double p) {
  return [p](double x) {
    x = Clamp01(x);
    return std::pow(1.0 - std::pow(x, p), 1.0 / p);
  };
}

namespace {

Status ValidateCommon(const BinaryScoringFn& f, int grid_n, double tol) {
  auto grid = [grid_n](int i) {
    return static_cast<double>(i) / static_cast<double>(grid_n - 1);
  };
  // Monotonicity in both arguments.
  for (int i = 0; i + 1 < grid_n; ++i) {
    for (int j = 0; j < grid_n; ++j) {
      if (f(grid(i), grid(j)) > f(grid(i + 1), grid(j)) + tol) {
        return Status::FailedPrecondition("monotonicity violated (arg 1)");
      }
      if (f(grid(j), grid(i)) > f(grid(j), grid(i + 1)) + tol) {
        return Status::FailedPrecondition("monotonicity violated (arg 2)");
      }
    }
  }
  // Commutativity.
  for (int i = 0; i < grid_n; ++i) {
    for (int j = 0; j < grid_n; ++j) {
      if (std::fabs(f(grid(i), grid(j)) - f(grid(j), grid(i))) > tol) {
        return Status::FailedPrecondition("commutativity violated");
      }
    }
  }
  // Associativity (coarser grid to keep O(n^3) small).
  int an = std::min(grid_n, 11);
  auto agrid = [an](int i) {
    return static_cast<double>(i) / static_cast<double>(an - 1);
  };
  for (int i = 0; i < an; ++i) {
    for (int j = 0; j < an; ++j) {
      for (int k = 0; k < an; ++k) {
        double lhs = f(f(agrid(i), agrid(j)), agrid(k));
        double rhs = f(agrid(i), f(agrid(j), agrid(k)));
        if (std::fabs(lhs - rhs) > tol) {
          return Status::FailedPrecondition("associativity violated");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateTNormAxioms(const BinaryScoringFn& t, int grid_n, double tol) {
  if (grid_n < 2) return Status::InvalidArgument("grid_n must be >= 2");
  if (std::fabs(t(0.0, 0.0)) > tol) {
    return Status::FailedPrecondition("conservation violated: t(0,0) != 0");
  }
  for (int i = 0; i < grid_n; ++i) {
    double x = static_cast<double>(i) / static_cast<double>(grid_n - 1);
    if (std::fabs(t(x, 1.0) - x) > tol || std::fabs(t(1.0, x) - x) > tol) {
      return Status::FailedPrecondition(
          "conservation violated: 1 is not the identity");
    }
  }
  return ValidateCommon(t, grid_n, tol);
}

Status ValidateTCoNormAxioms(const BinaryScoringFn& s, int grid_n, double tol) {
  if (grid_n < 2) return Status::InvalidArgument("grid_n must be >= 2");
  if (std::fabs(s(1.0, 1.0) - 1.0) > tol) {
    return Status::FailedPrecondition("conservation violated: s(1,1) != 1");
  }
  for (int i = 0; i < grid_n; ++i) {
    double x = static_cast<double>(i) / static_cast<double>(grid_n - 1);
    if (std::fabs(s(x, 0.0) - x) > tol || std::fabs(s(0.0, x) - x) > tol) {
      return Status::FailedPrecondition(
          "conservation violated: 0 is not the identity");
    }
  }
  return ValidateCommon(s, grid_n, tol);
}

}  // namespace fuzzydb
