#include "core/graded_set.h"

#include <algorithm>
#include <cmath>

namespace fuzzydb {

bool GradeDescending(const GradedObject& a, const GradedObject& b) {
  if (a.grade != b.grade) return a.grade > b.grade;
  return a.id < b.id;
}

Result<GradedSet> GradedSet::FromPairs(std::vector<GradedObject> pairs) {
  GradedSet out;
  out.items_.reserve(pairs.size());
  for (const GradedObject& p : pairs) {
    if (out.Contains(p.id)) {
      return Status::AlreadyExists("duplicate object id in graded set");
    }
    FUZZYDB_RETURN_NOT_OK(out.Insert(p.id, p.grade));
  }
  return out;
}

Status GradedSet::Insert(ObjectId id, double grade) {
  if (!(grade >= 0.0 && grade <= 1.0)) {
    return Status::InvalidArgument("grade must be in [0,1]");
  }
  auto it = index_.find(id);
  if (it != index_.end()) {
    items_[it->second].grade = grade;
    return Status::OK();
  }
  index_.emplace(id, items_.size());
  items_.push_back({id, grade});
  return Status::OK();
}

std::optional<double> GradedSet::GradeOf(ObjectId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return items_[it->second].grade;
}

std::vector<GradedObject> GradedSet::Sorted() const {
  std::vector<GradedObject> out = items_;
  std::sort(out.begin(), out.end(), GradeDescending);
  return out;
}

std::vector<GradedObject> GradedSet::TopK(size_t k) const {
  std::vector<GradedObject> out = items_;
  k = std::min(k, out.size());
  std::partial_sort(out.begin(), out.begin() + static_cast<long>(k), out.end(),
                    GradeDescending);
  out.resize(k);
  return out;
}

std::vector<GradedObject> GradedSet::AtLeast(double threshold) const {
  std::vector<GradedObject> out;
  for (const GradedObject& g : items_) {
    if (g.grade >= threshold) out.push_back(g);
  }
  std::sort(out.begin(), out.end(), GradeDescending);
  return out;
}

std::vector<ObjectId> GradedSet::Support() const {
  std::vector<ObjectId> out;
  for (const GradedObject& g : items_) {
    if (g.grade > 0.0) out.push_back(g.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool IsValidTopK(std::span<const GradedObject> result, const GradedSet& truth,
                 size_t k, double tol) {
  const size_t expect = std::min(k, truth.size());
  if (result.size() != expect) return false;
  double min_included = 1.0;
  std::unordered_map<ObjectId, bool> included;
  for (const GradedObject& r : result) {
    if (included.count(r.id)) return false;  // duplicate
    included[r.id] = true;
    std::optional<double> g = truth.GradeOf(r.id);
    if (!g.has_value()) return false;
    if (std::fabs(*g - r.grade) > tol) return false;
    min_included = std::min(min_included, *g);
  }
  for (const GradedObject& t : truth.items()) {
    if (!included.count(t.id) && t.grade > min_included + tol) return false;
  }
  return true;
}

}  // namespace fuzzydb
