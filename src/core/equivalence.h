// Logical equivalence of fuzzy queries (paper §3, Theorem 3.1).
//
// The standard min/max semantics has the property that logically equivalent
// AND/OR combinations get identical grades — "an optimizer can replace a
// query by a logically equivalent query, and be guaranteed of getting the
// same answer" — and Theorem 3.1 (Yager; Dubois–Prade) says min/max are the
// *unique* monotone rules with that property. This module provides
//   - a random generator of AND/OR query trees, and
//   - a rewriter applying lattice identities (commutativity, associativity
//     flattening, idempotence A = A∧A, absorption A = A∧(A∨B), and
//     distribution A∧(B∨C) = (A∧B)∨(A∧C)),
// so tests (and users) can check which scoring rules respect equivalence.

#ifndef FUZZYDB_CORE_EQUIVALENCE_H_
#define FUZZYDB_CORE_EQUIVALENCE_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "core/query.h"

namespace fuzzydb {

/// A random negation-free query tree over the given attributes, with
/// AND/OR nodes carrying the given rules (defaults: the standard min/max).
/// Every attribute is used at least once when depth allows.
QueryPtr RandomMonotoneQuery(Rng* rng, const std::vector<std::string>& attrs,
                             size_t max_depth = 3,
                             ScoringRulePtr and_rule = MinRule(),
                             ScoringRulePtr or_rule = MaxRule());

/// Applies `steps` random lattice-identity rewrites to `query`, returning a
/// *logically equivalent* tree (under the two-valued semantics, hence under
/// min/max by their equivalence preservation). Rewrites may introduce fresh
/// atoms (absorption adds A∧(A∨B) with a new B), whose grades are
/// irrelevant to the min/max value. The rewritten tree uses `and_rule` /
/// `or_rule` at every combination node.
QueryPtr RewriteEquivalent(const QueryPtr& query, Rng* rng, size_t steps,
                           ScoringRulePtr and_rule = MinRule(),
                           ScoringRulePtr or_rule = MaxRule());

/// Rebuilds the tree with different combination rules (same structure) —
/// used to evaluate one tree under min/max vs product/prob-sum etc.
QueryPtr WithRules(const QueryPtr& query, ScoringRulePtr and_rule,
                   ScoringRulePtr or_rule);

/// Canonical cache key for `query` (DESIGN §3j): two queries with the same
/// key are guaranteed the same answers on every database, so a plan/result
/// cache may serve one for the other.
///
/// For negation-free trees whose every combination node is the standard
/// unweighted min-AND / max-OR, the key is the reduced disjunctive normal
/// form over the atoms — the unique antichain-of-monomials representation
/// of a distributive-lattice term. By Theorem 3.1 min/max preserve logical
/// equivalence, so *every* chain of lattice rewrites (commutativity,
/// associativity, idempotence, absorption, distribution — exactly what
/// RewriteEquivalent applies) maps to the same key. The DNF can explode
/// exponentially on deep AND-of-OR alternation; past `max_terms` monomials
/// the key falls back to the structural form below.
///
/// Any other tree (a Not node, a weighted node, any non-min/max rule) gets
/// a structural key: rule names (which encode weights) plus the exact child
/// order. That is sound as long as rule names identify rule semantics —
/// true for every shipped rule, the same contract EXPLAIN output relies on;
/// callers registering UserDefinedRules under one name with different
/// functions must not share a cache across them.
std::string CanonicalKey(const QueryPtr& query, size_t max_terms = 4096);

}  // namespace fuzzydb

#endif  // FUZZYDB_CORE_EQUIVALENCE_H_
