// Fuzzy query AST: Boolean combinations of atomic queries (paper §3).
//
// Atomic queries are `X = t` (attribute, target); the example
//   (Artist='Beatles') AND (AlbumColor~'red')
// is And({Atomic("Artist","Beatles"), Atomic("AlbumColor","red")}, MinRule()).
// And/Or nodes carry a scoring rule (min/max by default, any t-norm/co-norm
// or mean otherwise) and optionally a Fagin–Wimmers weighting (paper §5).

#ifndef FUZZYDB_CORE_QUERY_H_
#define FUZZYDB_CORE_QUERY_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/graded_set.h"
#include "core/scoring.h"
#include "core/tnorms.h"
#include "core/weights.h"

namespace fuzzydb {

class Query;
using QueryPtr = std::shared_ptr<const Query>;

/// Supplies µ_A(x): the grade of object `id` under the atomic query `atom`.
/// Implementations typically consult a subsystem via random access.
using GradeOracle = std::function<double(const Query& atom, ObjectId id)>;

/// A node in a fuzzy query tree.
class Query {
 public:
  enum class Kind { kAtomic, kAnd, kOr, kNot };

  /// Atomic query `attribute = target` (or `attribute ~ target` for
  /// similarity predicates; the distinction lives in the subsystem).
  static QueryPtr Atomic(std::string attribute, std::string target);

  /// Conjunction under `rule` (default: the standard min).
  static QueryPtr And(std::vector<QueryPtr> children,
                      ScoringRulePtr rule = MinRule());

  /// Disjunction under `rule` (default: the standard max).
  static QueryPtr Or(std::vector<QueryPtr> children,
                     ScoringRulePtr rule = MaxRule());

  /// Weighted conjunction: applies the Fagin–Wimmers transform of `rule`
  /// with one weight per child. Fails if sizes mismatch.
  static Result<QueryPtr> WeightedAnd(std::vector<QueryPtr> children,
                                      Weighting weights,
                                      ScoringRulePtr rule = MinRule());
  /// Weighted disjunction.
  static Result<QueryPtr> WeightedOr(std::vector<QueryPtr> children,
                                     Weighting weights,
                                     ScoringRulePtr rule = MaxRule());

  /// Negation under `negation` (default: standard 1-x).
  static QueryPtr Not(QueryPtr child, NegationFn negation = StandardNegation);

  Kind kind() const { return kind_; }

  /// Atomic only.
  const std::string& attribute() const { return attribute_; }
  const std::string& target() const { return target_; }

  /// And/Or/Not children (Not has exactly one).
  const std::vector<QueryPtr>& children() const { return children_; }

  /// The effective combining rule for And/Or (already weight-wrapped for
  /// weighted nodes); null for atomic/not.
  const ScoringRulePtr& rule() const { return rule_; }

  /// The weighting on a weighted And/Or, if any.
  const std::optional<Weighting>& weights() const { return weights_; }

  /// The negation function on a Not node.
  const NegationFn& negation() const { return negation_; }

  /// Recursively evaluates µ_Q(id) given grades for the atoms.
  double Grade(const GradeOracle& oracle, ObjectId id) const;

  /// Appends pointers to all atomic descendants, left to right.
  void CollectAtoms(std::vector<const Query*>* out) const;

  /// Number of atomic descendants.
  size_t NumAtoms() const;

  /// True iff the tree contains no Not node and every combining rule is
  /// monotone — the precondition for Fagin's algorithm (paper §4.1).
  bool IsMonotone() const;

  /// True iff every combining rule in the tree is strict (needed for the
  /// matching lower bound, Theorem 4.2). Negation-free trees only.
  bool IsStrict() const;

  /// Printable form, e.g. "(Artist='Beatles' AND[min] AlbumColor='red')".
  std::string ToString() const;

 private:
  explicit Query(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string attribute_;
  std::string target_;
  std::vector<QueryPtr> children_;
  ScoringRulePtr rule_;
  std::optional<Weighting> weights_;
  NegationFn negation_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_CORE_QUERY_H_
