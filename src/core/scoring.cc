#include "core/scoring.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

namespace fuzzydb {

namespace {

class MinRuleImpl final : public ScoringRule {
 public:
  double Apply(std::span<const double> scores) const override {
    assert(!scores.empty());
    return *std::min_element(scores.begin(), scores.end());
  }
  std::string name() const override { return "min"; }
  bool monotone() const override { return true; }
  bool strict() const override { return true; }
};

class MaxRuleImpl final : public ScoringRule {
 public:
  double Apply(std::span<const double> scores) const override {
    assert(!scores.empty());
    return *std::max_element(scores.begin(), scores.end());
  }
  std::string name() const override { return "max"; }
  bool monotone() const override { return true; }
  bool strict() const override { return false; }
};

class TNormRuleImpl final : public ScoringRule {
 public:
  explicit TNormRuleImpl(TNormKind kind) : kind_(kind) {}
  double Apply(std::span<const double> scores) const override {
    assert(!scores.empty());
    double acc = scores[0];
    for (size_t i = 1; i < scores.size(); ++i) {
      acc = ApplyTNorm(kind_, acc, scores[i]);
    }
    return acc;
  }
  std::string name() const override { return TNormName(kind_); }
  bool monotone() const override { return true; }
  bool strict() const override { return true; }

 private:
  TNormKind kind_;
};

class TCoNormRuleImpl final : public ScoringRule {
 public:
  explicit TCoNormRuleImpl(TCoNormKind kind) : kind_(kind) {}
  double Apply(std::span<const double> scores) const override {
    assert(!scores.empty());
    double acc = scores[0];
    for (size_t i = 1; i < scores.size(); ++i) {
      acc = ApplyTCoNorm(kind_, acc, scores[i]);
    }
    return acc;
  }
  std::string name() const override { return TCoNormName(kind_); }
  bool monotone() const override { return true; }
  bool strict() const override { return false; }

 private:
  TCoNormKind kind_;
};

class ArithmeticMeanImpl final : public ScoringRule {
 public:
  double Apply(std::span<const double> scores) const override {
    assert(!scores.empty());
    double s = 0.0;
    for (double x : scores) s += x;
    return s / static_cast<double>(scores.size());
  }
  std::string name() const override { return "avg"; }
  bool monotone() const override { return true; }
  bool strict() const override { return true; }
};

class GeometricMeanImpl final : public ScoringRule {
 public:
  double Apply(std::span<const double> scores) const override {
    assert(!scores.empty());
    double prod = 1.0;
    for (double x : scores) prod *= x;
    return std::pow(prod, 1.0 / static_cast<double>(scores.size()));
  }
  std::string name() const override { return "geomean"; }
  bool monotone() const override { return true; }
  bool strict() const override { return true; }
};

class HarmonicMeanImpl final : public ScoringRule {
 public:
  double Apply(std::span<const double> scores) const override {
    assert(!scores.empty());
    double inv = 0.0;
    for (double x : scores) {
      if (x == 0.0) return 0.0;
      inv += 1.0 / x;
    }
    return static_cast<double>(scores.size()) / inv;
  }
  std::string name() const override { return "harmonic"; }
  bool monotone() const override { return true; }
  bool strict() const override { return true; }
};

class MedianRuleImpl final : public ScoringRule {
 public:
  double Apply(std::span<const double> scores) const override {
    assert(!scores.empty());
    std::vector<double> s(scores.begin(), scores.end());
    size_t mid = (s.size() - 1) / 2;  // lower median
    std::nth_element(s.begin(), s.begin() + static_cast<long>(mid), s.end());
    return s[mid];
  }
  std::string name() const override { return "median"; }
  bool monotone() const override { return true; }
  bool strict() const override { return false; }
};

class UserDefinedRuleImpl final : public ScoringRule {
 public:
  UserDefinedRuleImpl(std::string name,
                      std::function<double(std::span<const double>)> fn,
                      bool monotone, bool strict)
      : name_(std::move(name)),
        fn_(std::move(fn)),
        monotone_(monotone),
        strict_(strict) {}
  double Apply(std::span<const double> scores) const override {
    return fn_(scores);
  }
  std::string name() const override { return name_; }
  bool monotone() const override { return monotone_; }
  bool strict() const override { return strict_; }

 private:
  std::string name_;
  std::function<double(std::span<const double>)> fn_;
  bool monotone_ = false;
  bool strict_ = false;
};

}  // namespace

ScoringRulePtr MinRule() { return std::make_shared<MinRuleImpl>(); }
ScoringRulePtr MaxRule() { return std::make_shared<MaxRuleImpl>(); }
ScoringRulePtr TNormRule(TNormKind kind) {
  return std::make_shared<TNormRuleImpl>(kind);
}
ScoringRulePtr TCoNormRule(TCoNormKind kind) {
  return std::make_shared<TCoNormRuleImpl>(kind);
}
ScoringRulePtr ArithmeticMeanRule() {
  return std::make_shared<ArithmeticMeanImpl>();
}
ScoringRulePtr GeometricMeanRule() {
  return std::make_shared<GeometricMeanImpl>();
}
ScoringRulePtr HarmonicMeanRule() {
  return std::make_shared<HarmonicMeanImpl>();
}
ScoringRulePtr MedianRule() { return std::make_shared<MedianRuleImpl>(); }

ScoringRulePtr UserDefinedRule(
    std::string name, std::function<double(std::span<const double>)> fn,
    bool claims_monotone, bool claims_strict) {
  return std::make_shared<UserDefinedRuleImpl>(
      std::move(name), std::move(fn), claims_monotone, claims_strict);
}

bool CheckMonotoneEmpirically(const ScoringRule& rule, size_t m,
                              size_t samples, Rng* rng, double tol) {
  std::vector<double> lo(m), hi(m);
  for (size_t s = 0; s < samples; ++s) {
    for (size_t i = 0; i < m; ++i) {
      double a = rng->NextDouble();
      double b = rng->NextDouble();
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    if (rule.Apply(lo) > rule.Apply(hi) + tol) return false;
  }
  // Boundary: all-zeros <= anything <= all-ones.
  std::fill(lo.begin(), lo.end(), 0.0);
  std::fill(hi.begin(), hi.end(), 1.0);
  for (size_t s = 0; s < samples / 4 + 1; ++s) {
    std::vector<double> mid(m);
    for (size_t i = 0; i < m; ++i) mid[i] = rng->NextDouble();
    if (rule.Apply(lo) > rule.Apply(mid) + tol) return false;
    if (rule.Apply(mid) > rule.Apply(hi) + tol) return false;
  }
  return true;
}

bool CheckStrictEmpirically(const ScoringRule& rule, size_t m, size_t samples,
                            Rng* rng, double tol) {
  std::vector<double> ones(m, 1.0);
  if (std::fabs(rule.Apply(ones) - 1.0) > tol) return false;
  std::vector<double> x(m);
  for (size_t s = 0; s < samples; ++s) {
    // Mix components that are exactly 1 with interior values — strictness
    // violations typically need some coordinates pinned at the maximum
    // (e.g. max(1, 0.3) == 1) — then force at least one coordinate well
    // below 1.
    for (size_t i = 0; i < m; ++i) {
      x[i] = rng->NextBernoulli(0.5) ? 1.0 : rng->NextDouble();
    }
    x[rng->NextBounded(m)] = 0.5 * rng->NextDouble();
    if (rule.Apply(x) >= 1.0 - tol) return false;
  }
  return true;
}

}  // namespace fuzzydb
