#include "core/weights.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <numeric>
#include <sstream>

namespace fuzzydb {

Result<Weighting> Weighting::Create(std::vector<double> theta) {
  if (theta.empty()) {
    return Status::InvalidArgument("weighting must be non-empty");
  }
  double sum = 0.0;
  for (double t : theta) {
    if (t < 0.0) return Status::InvalidArgument("weights must be >= 0");
    sum += t;
  }
  if (std::fabs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("weights must sum to 1");
  }
  return Weighting(std::move(theta));
}

Result<Weighting> Weighting::FromSliders(std::vector<double> raw) {
  if (raw.empty()) {
    return Status::InvalidArgument("weighting must be non-empty");
  }
  double sum = 0.0;
  for (double t : raw) {
    if (t < 0.0) return Status::InvalidArgument("slider values must be >= 0");
    sum += t;
  }
  if (sum <= 0.0) {
    return Status::InvalidArgument("at least one slider must be positive");
  }
  for (double& t : raw) t /= sum;
  return Weighting(std::move(raw));
}

Weighting Weighting::Equal(size_t m) {
  assert(m > 0);
  return Weighting(std::vector<double>(m, 1.0 / static_cast<double>(m)));
}

bool Weighting::IsOrdered() const {
  for (size_t i = 0; i + 1 < theta_.size(); ++i) {
    if (theta_[i] < theta_[i + 1]) return false;
  }
  return true;
}

Result<Weighting> Weighting::Mix(const Weighting& other, double alpha) const {
  if (other.size() != size()) {
    return Status::InvalidArgument("weighting size mismatch in Mix");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0,1]");
  }
  std::vector<double> out(size());
  for (size_t i = 0; i < size(); ++i) {
    out[i] = alpha * theta_[i] + (1.0 - alpha) * other.theta_[i];
  }
  return Weighting(std::move(out));
}

double FaginWimmersScore(const ScoringRule& base, const Weighting& weights,
                         std::span<const double> scores) {
  const size_t m = weights.size();
  assert(scores.size() == m);
  // Sort argument indices by weight descending (stable: ties keep original
  // order; tied terms get zero coefficients so the choice is immaterial).
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&weights](size_t a, size_t b) {
    return weights[a] > weights[b];
  });

  std::vector<double> prefix;
  prefix.reserve(m);
  double total = 0.0;
  for (size_t i = 0; i < m; ++i) {
    prefix.push_back(scores[order[i]]);
    double theta_i = weights[order[i]];
    double theta_next = (i + 1 < m) ? weights[order[i + 1]] : 0.0;
    double coeff = static_cast<double>(i + 1) * (theta_i - theta_next);
    if (coeff == 0.0) continue;  // skips evaluating f on dead prefixes (D2)
    total += coeff * base.Apply(prefix);
  }
  return total;
}

namespace {

class WeightedRuleImpl final : public ScoringRule {
 public:
  WeightedRuleImpl(ScoringRulePtr base, Weighting weights)
      : base_(std::move(base)), weights_(std::move(weights)) {}

  double Apply(std::span<const double> scores) const override {
    return FaginWimmersScore(*base_, weights_, scores);
  }

  std::string name() const override {
    std::ostringstream os;
    os << "weighted[";
    for (size_t i = 0; i < weights_.size(); ++i) {
      if (i) os << ",";
      os << weights_[i];
    }
    os << "](" << base_->name() << ")";
    return os.str();
  }

  bool monotone() const override { return base_->monotone(); }
  bool strict() const override {
    // Strictness is inherited when every argument carries positive weight;
    // a zero-weight argument is dropped by D2 and can no longer force the
    // score below 1, so the weighted rule is strict in its full argument
    // list only if all weights are positive.
    if (!base_->strict()) return false;
    for (size_t i = 0; i < weights_.size(); ++i) {
      if (weights_[i] == 0.0) return false;
    }
    return true;
  }

 private:
  ScoringRulePtr base_;
  Weighting weights_;
};

}  // namespace

ScoringRulePtr WeightedRule(ScoringRulePtr base, Weighting weights) {
  return std::make_shared<WeightedRuleImpl>(std::move(base),
                                            std::move(weights));
}

namespace {

class OwaRuleImpl final : public ScoringRule {
 public:
  explicit OwaRuleImpl(Weighting weights) : weights_(std::move(weights)) {}

  double Apply(std::span<const double> scores) const override {
    assert(scores.size() == weights_.size());
    std::vector<double> sorted(scores.begin(), scores.end());
    std::sort(sorted.begin(), sorted.end(), std::greater<double>());
    double total = 0.0;
    for (size_t i = 0; i < sorted.size(); ++i) {
      total += weights_[i] * sorted[i];
    }
    return total;
  }

  std::string name() const override {
    std::ostringstream os;
    os << "owa[";
    for (size_t i = 0; i < weights_.size(); ++i) {
      if (i) os << ",";
      os << weights_[i];
    }
    os << "]";
    return os.str();
  }

  bool monotone() const override { return true; }
  bool strict() const override {
    // Strict iff the smallest score carries positive weight: otherwise a
    // tuple with one sub-1 entry and 1s elsewhere still sums to 1.
    return weights_[weights_.size() - 1] > 0.0;
  }

 private:
  Weighting weights_;
};

}  // namespace

ScoringRulePtr OwaRule(Weighting weights) {
  return std::make_shared<OwaRuleImpl>(std::move(weights));
}

}  // namespace fuzzydb
