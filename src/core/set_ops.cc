#include "core/set_ops.h"

#include <algorithm>
#include <array>
#include <unordered_set>

namespace fuzzydb {

namespace {

// Union of supports (all member ids of either set, each once).
std::vector<ObjectId> UnionOfIds(const GradedSet& a, const GradedSet& b) {
  std::vector<ObjectId> ids;
  ids.reserve(a.size() + b.size());
  for (const GradedObject& g : a.items()) ids.push_back(g.id);
  for (const GradedObject& g : b.items()) {
    if (!a.Contains(g.id)) ids.push_back(g.id);
  }
  return ids;
}

}  // namespace

Result<GradedSet> FuzzyUnion(const GradedSet& a, const GradedSet& b,
                             const ScoringRulePtr& co_norm) {
  if (co_norm == nullptr) return Status::InvalidArgument("null co-norm");
  GradedSet out;
  for (ObjectId id : UnionOfIds(a, b)) {
    std::array<double, 2> grades{a.GradeOf(id).value_or(0.0),
                                 b.GradeOf(id).value_or(0.0)};
    FUZZYDB_RETURN_NOT_OK(out.Insert(id, co_norm->Apply(grades)));
  }
  return out;
}

Result<GradedSet> FuzzyIntersection(const GradedSet& a, const GradedSet& b,
                                    const ScoringRulePtr& t_norm) {
  if (t_norm == nullptr) return Status::InvalidArgument("null t-norm");
  GradedSet out;
  for (ObjectId id : UnionOfIds(a, b)) {
    std::array<double, 2> grades{a.GradeOf(id).value_or(0.0),
                                 b.GradeOf(id).value_or(0.0)};
    FUZZYDB_RETURN_NOT_OK(out.Insert(id, t_norm->Apply(grades)));
  }
  return out;
}

Result<GradedSet> FuzzyComplement(const GradedSet& a,
                                  const std::vector<ObjectId>& universe,
                                  const NegationFn& negation) {
  if (negation == nullptr) return Status::InvalidArgument("null negation");
  // Every member of `a` must belong to the universe, or the complement
  // would silently drop mass.
  std::unordered_set<ObjectId> in_universe(universe.begin(), universe.end());
  if (in_universe.size() != universe.size()) {
    return Status::InvalidArgument("universe contains duplicate ids");
  }
  for (const GradedObject& g : a.items()) {
    if (!in_universe.count(g.id)) {
      return Status::InvalidArgument(
          "set member " + std::to_string(g.id) + " is outside the universe");
    }
  }
  GradedSet out;
  for (ObjectId id : universe) {
    FUZZYDB_RETURN_NOT_OK(
        out.Insert(id, negation(a.GradeOf(id).value_or(0.0))));
  }
  return out;
}

Result<std::vector<ObjectId>> AlphaCut(const GradedSet& a, double alpha) {
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must be in [0,1]");
  }
  std::vector<ObjectId> out;
  for (const GradedObject& g : a.items()) {
    if (g.grade >= alpha) out.push_back(g.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double FuzzyCardinality(const GradedSet& a) {
  double total = 0.0;
  for (const GradedObject& g : a.items()) total += g.grade;
  return total;
}

double Subsethood(const GradedSet& a, const GradedSet& b) {
  double mass_a = FuzzyCardinality(a);
  if (mass_a <= 0.0) return 1.0;
  double mass_in_b = 0.0;
  for (const GradedObject& g : a.items()) {
    mass_in_b += std::min(g.grade, b.GradeOf(g.id).value_or(0.0));
  }
  return mass_in_b / mass_a;
}

}  // namespace fuzzydb
