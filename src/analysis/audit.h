// Shared report type for the paper-invariant property auditors (DESIGN §3d).
//
// An auditor verifies one of the algebraic contracts the paper's theorems
// are conditional on (t-norm axioms, De Morgan duality, scoring-rule
// monotonicity/strictness, cascade lower-bounding, sorted-access order) on
// randomized inputs. Auditors can only refute, never prove — but every
// refutation comes with a concrete witness so the report is actionable: the
// exact inputs, the values computed from them, and which contract they
// break.

#ifndef FUZZYDB_ANALYSIS_AUDIT_H_
#define FUZZYDB_ANALYSIS_AUDIT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace fuzzydb {

/// One refuted contract with its witness.
struct AuditFinding {
  /// The contract violated, e.g. "monotonicity" or "lower-bound".
  std::string contract;
  /// Witness detail: inputs, computed values, and the failed comparison.
  std::string detail;
};

/// The outcome of auditing one subject (a rule, a norm pair, a cascade).
class AuditReport {
 public:
  explicit AuditReport(std::string subject) : subject_(std::move(subject)) {}

  /// True iff no contract was refuted.
  bool ok() const { return findings_.empty(); }

  const std::string& subject() const { return subject_; }
  const std::vector<AuditFinding>& findings() const { return findings_; }
  size_t checks_run() const { return checks_run_; }

  /// Records one executed check (pass or fail).
  void CountCheck() { ++checks_run_; }
  /// Records a refutation with its witness.
  void Fail(std::string contract, std::string detail);

  /// Merges another report's counters and findings (prefixing the other
  /// subject onto each finding's contract tag).
  void Absorb(const AuditReport& other);

  /// "audit(<subject>): OK, N checks" or a multi-line failure listing.
  std::string ToString() const;

  /// OK, or FailedPrecondition carrying ToString() — the form the
  /// middleware uses to reject a bad registration outright.
  Status ToStatus() const;

 private:
  std::string subject_;
  size_t checks_run_ = 0;
  std::vector<AuditFinding> findings_;
};

/// Formats a score tuple as "[0.25, 1, 0.5]" for witness messages.
std::string FormatTuple(const std::vector<double>& values);

}  // namespace fuzzydb

#endif  // FUZZYDB_ANALYSIS_AUDIT_H_
