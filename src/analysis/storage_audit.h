// Paging-equivalence auditor (DESIGN §3k): refutes, with witnesses, any
// divergence between a disk-backed PagedEmbeddingStore and the RAM-resident
// EmbeddingStore over the same rows.
//
// The tentpole claim of the storage engine is that paging is a memory-
// hierarchy change, never a semantic one: at every page size, pool size,
// and shard count, the paged store answers bit-identically to the RAM
// store. The shared kernels (image/knn_kernel.h) make that true by
// construction for the arithmetic; this auditor checks the whole stack —
// file geometry, row bytes, the quantized tier's persisted parts, batch
// distances, exact and cascaded top-k including tie order, and the
// determinism of the paged store against itself across pool/shard
// configurations. Auditors refute, never prove; every finding carries the
// first diverging row/rank and both values.

#ifndef FUZZYDB_ANALYSIS_STORAGE_AUDIT_H_
#define FUZZYDB_ANALYSIS_STORAGE_AUDIT_H_

#include <span>
#include <vector>

#include "analysis/audit.h"
#include "image/embedding_store.h"
#include "storage/paged_store.h"

namespace fuzzydb {

struct StorageAuditOptions {
  /// Query targets to compare under (full-dimension embeddings). At least
  /// one is required.
  std::vector<std::vector<double>> targets;
  size_t k = 10;
  /// Shard counts to sweep (serial is always included).
  std::vector<size_t> shard_counts = {2, 3};
  /// Cascade settings exercised with and without the quantized tier.
  CascadeOptions cascade;
};

/// Audits `paged` against `ram` (which must hold the same rows, e.g. from
/// PagedEmbeddingStore::LoadToMemory or the original ingest source):
///   - geometry: size/dim/stride agreement, stride = RowStride(dim);
///   - rows: bit-equal bytes for a deterministic sample of rows;
///   - quantized tier: persisted scales/residuals/codes equal rebuilt ones;
///   - BatchDistances / ExactKnn / CascadeKnn: bitwise-equal outputs
///     (indices, order, and double bits) for every target, serial and at
///     every shard count in `options`, cascade with quantized on and off;
///   - paged-vs-paged determinism across shard counts.
AuditReport AuditPagingEquivalence(const storage::PagedEmbeddingStore& paged,
                                   const EmbeddingStore& ram,
                                   const StorageAuditOptions& options);

}  // namespace fuzzydb

#endif  // FUZZYDB_ANALYSIS_STORAGE_AUDIT_H_
