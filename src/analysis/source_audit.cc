#include "analysis/source_audit.h"

#include <cmath>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "common/random.h"

namespace fuzzydb {

AuditReport AuditSortedAccess(GradedSource* source,
                              const SourceAuditOptions& options) {
  AuditReport report(source->name());
  source->RestartSorted();

  std::vector<GradedObject> streamed;
  std::unordered_set<ObjectId> ids;
  std::optional<GradedObject> prev;
  for (size_t n = 0; n < options.max_items; ++n) {
    std::optional<GradedObject> next = source->NextSorted();
    if (!next.has_value()) break;
    report.CountCheck();
    if (!(next->grade >= 0.0 && next->grade <= 1.0)) {
      std::ostringstream out;
      out << "position " << n << ": object " << next->id << " has grade "
          << next->grade << " outside [0, 1]";
      report.Fail("grade range", out.str());
      break;
    }
    if (prev.has_value() && GradeDescending(*next, *prev)) {
      std::ostringstream out;
      out << "position " << n << ": object " << next->id << " (grade "
          << next->grade << ") streamed after object " << prev->id
          << " (grade " << prev->grade
          << ") but sorts before it — sorted access must be grade-"
             "descending with ties by id ascending";
      report.Fail("sorted order", out.str());
      break;
    }
    if (!ids.insert(next->id).second) {
      std::ostringstream out;
      out << "position " << n << ": object " << next->id
          << " streamed twice";
      report.Fail("duplicate id", out.str());
      break;
    }
    streamed.push_back(*next);
    prev = next;
  }

  report.CountCheck();
  if (streamed.size() > source->Size()) {
    std::ostringstream out;
    out << "stream delivered " << streamed.size()
        << " objects but Size() is " << source->Size();
    report.Fail("stream length", out.str());
  }

  if (!streamed.empty()) {
    Rng rng(options.seed);
    const size_t probes = std::min(options.random_probes, streamed.size());
    for (size_t p = 0; p < probes; ++p) {
      const GradedObject& obj =
          streamed[static_cast<size_t>(rng.NextBounded(streamed.size()))];
      report.CountCheck();
      const double grade = source->RandomAccess(obj.id);
      if (std::abs(grade - obj.grade) > options.tol) {
        std::ostringstream out;
        out << "object " << obj.id << ": RandomAccess says " << grade
            << " but sorted access streamed " << obj.grade;
        report.Fail("random-access consistency", out.str());
        break;
      }
    }
  }

  source->RestartSorted();
  return report;
}

AuditReport AuditSourceEquivalence(GradedSource* actual,
                                   GradedSource* reference,
                                   const SourceAuditOptions& options) {
  AuditReport report(actual->name() + " == " + reference->name());
  report.CountCheck();
  if (actual->Size() != reference->Size()) {
    std::ostringstream out;
    out << "Size() mismatch: " << actual->Size() << " vs "
        << reference->Size();
    report.Fail("size", out.str());
    return report;
  }

  actual->RestartSorted();
  reference->RestartSorted();
  std::vector<GradedObject> streamed;
  for (size_t n = 0; n < options.max_items; ++n) {
    std::optional<GradedObject> a = actual->NextSorted();
    std::optional<GradedObject> r = reference->NextSorted();
    report.CountCheck();
    if (a.has_value() != r.has_value()) {
      std::ostringstream out;
      out << "position " << n << ": " << (a ? "actual" : "reference")
          << " streams on while the other is exhausted";
      report.Fail("stream length", out.str());
      break;
    }
    if (!a.has_value()) break;
    if (a->id != r->id) {
      std::ostringstream out;
      out << "position " << n << ": actual streams object " << a->id
          << " but reference streams " << r->id;
      report.Fail("stream order", out.str());
      break;
    }
    // Bit equality, not tolerance: both backends claim the identical grade
    // arithmetic, and the middleware determinism harness depends on it.
    if (!(a->grade == r->grade) ||
        std::signbit(a->grade) != std::signbit(r->grade)) {
      std::ostringstream out;
      out.precision(17);
      out << "position " << n << ": object " << a->id << " graded "
          << a->grade << " by actual but " << r->grade << " by reference";
      report.Fail("grade equality", out.str());
      break;
    }
    streamed.push_back(*a);
  }

  if (report.ok() && !streamed.empty()) {
    Rng rng(options.seed);
    const size_t probes = std::min(options.random_probes, streamed.size());
    for (size_t p = 0; p < probes; ++p) {
      const GradedObject& obj =
          streamed[static_cast<size_t>(rng.NextBounded(streamed.size()))];
      report.CountCheck();
      const double a = actual->RandomAccess(obj.id);
      const double r = reference->RandomAccess(obj.id);
      if (!(a == obj.grade) || !(r == obj.grade)) {
        std::ostringstream out;
        out.precision(17);
        out << "object " << obj.id << ": streamed grade " << obj.grade
            << " but RandomAccess says " << a << " (actual) / " << r
            << " (reference)";
        report.Fail("random-access equivalence", out.str());
        break;
      }
    }
  }

  actual->RestartSorted();
  reference->RestartSorted();
  return report;
}

}  // namespace fuzzydb
