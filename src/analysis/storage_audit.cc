#include "analysis/storage_audit.h"

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

namespace fuzzydb {

namespace {

// Bitwise double identity — the contract is stronger than ==: it also
// distinguishes -0.0 from 0.0 and would catch any re-association that
// happens to round the same on most inputs.
bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

std::string Bits(double v) {
  return std::to_string(v) + " (0x" +
         std::to_string(std::bit_cast<uint64_t>(v)) + ")";
}

using Knn = std::vector<std::pair<size_t, double>>;

// First divergence between two top-k answers, as a witness; empty when
// bitwise identical (indices, order, distance bits).
void CompareKnn(AuditReport* report, const std::string& contract,
                const std::string& context, const Knn& expected,
                const Knn& got) {
  report->CountCheck();
  if (expected.size() != got.size()) {
    report->Fail(contract, context + ": answer sizes differ, " +
                               std::to_string(expected.size()) + " vs " +
                               std::to_string(got.size()));
    return;
  }
  for (size_t r = 0; r < expected.size(); ++r) {
    if (expected[r].first != got[r].first ||
        !SameBits(expected[r].second, got[r].second)) {
      report->Fail(contract,
                   context + ": first divergence at rank " + std::to_string(r) +
                       ": expected (idx " + std::to_string(expected[r].first) +
                       ", d " + Bits(expected[r].second) + "), got (idx " +
                       std::to_string(got[r].first) + ", d " +
                       Bits(got[r].second) + ")");
      return;
    }
  }
}

void CompareCascadeWork(AuditReport* report, const std::string& context,
                        const CascadeStats& ram, const CascadeStats& paged) {
  report->CountCheck();
  // The arithmetic counters are deterministic in (rows, query, options,
  // shard split) and independent of the memory hierarchy; the pool
  // counters are intentionally excluded (they are the hierarchy).
  if (ram.quantized_bound_computations != paged.quantized_bound_computations ||
      ram.bound_computations != paged.bound_computations ||
      ram.candidates_refined != paged.candidates_refined ||
      ram.full_distance_computations != paged.full_distance_computations ||
      ram.dims_accumulated != paged.dims_accumulated) {
    report->Fail("cascade-work",
                 context + ": refinement counters diverge between RAM and " +
                     "paged cascade (same rows, same options)");
  }
}

}  // namespace

AuditReport AuditPagingEquivalence(const storage::PagedEmbeddingStore& paged,
                                   const EmbeddingStore& ram,
                                   const StorageAuditOptions& options) {
  AuditReport report("paging-equivalence");

  // --- Geometry -----------------------------------------------------------
  report.CountCheck();
  if (paged.size() != ram.size() || paged.dim() != ram.dim() ||
      paged.stride() != ram.stride()) {
    report.Fail("geometry", "size/dim/stride disagree: paged (" +
                                std::to_string(paged.size()) + ", " +
                                std::to_string(paged.dim()) + ", " +
                                std::to_string(paged.stride()) + ") vs ram (" +
                                std::to_string(ram.size()) + ", " +
                                std::to_string(ram.dim()) + ", " +
                                std::to_string(ram.stride()) + ")");
    return report;  // nothing downstream is comparable
  }
  report.CountCheck();
  if (paged.stride() != EmbeddingStore::RowStride(paged.dim())) {
    report.Fail("geometry", "on-disk stride " + std::to_string(paged.stride()) +
                                " is not RowStride(dim) = " +
                                std::to_string(
                                    EmbeddingStore::RowStride(paged.dim())));
  }

  // --- Row bytes ----------------------------------------------------------
  // Every page, every row, every payload double, compared bitwise through
  // the raw page-read path (no pool, no kernels) — divergence here blames
  // the file, divergence only below blames the machinery.
  {
    const size_t page_bytes = paged.pool().page_bytes();
    const size_t rows_per_page = page_bytes / (paged.stride() * sizeof(double));
    std::vector<char> page(page_bytes);
    const uint64_t pages =
        (paged.size() + rows_per_page - 1) / rows_per_page;
    for (uint64_t p = 0; p < pages && report.ok(); ++p) {
      report.CountCheck();
      Status read = paged.ReadPage(p, page);
      if (!read.ok()) {
        report.Fail("row-bytes", "ReadPage(" + std::to_string(p) +
                                     ") failed: " + read.ToString());
        break;
      }
      const size_t begin = p * rows_per_page;
      const size_t n = std::min(rows_per_page, paged.size() - begin);
      for (size_t i = 0; i < n; ++i) {
        const double* disk = reinterpret_cast<const double*>(
            page.data() + i * paged.stride() * sizeof(double));
        std::span<const double> mem = ram.Row(begin + i);
        if (std::memcmp(disk, mem.data(), mem.size() * sizeof(double)) != 0) {
          report.Fail("row-bytes", "row " + std::to_string(begin + i) +
                                       " bytes differ between file and RAM");
          break;
        }
      }
    }
  }

  // --- Quantized tier -----------------------------------------------------
  report.CountCheck();
  if (paged.has_quantized() != ram.has_quantized()) {
    report.Fail("quantized-parts", "tier presence disagrees: paged " +
                                       std::to_string(paged.has_quantized()) +
                                       " vs ram " +
                                       std::to_string(ram.has_quantized()));
  } else if (paged.has_quantized()) {
    const QuantizedStore& qp = paged.quantized();
    const QuantizedStore& qr = ram.quantized();
    report.CountCheck();
    bool parts_equal =
        qp.size() == qr.size() && qp.dim() == qr.dim() &&
        qp.scales().size() == qr.scales().size() &&
        std::memcmp(qp.scales().data(), qr.scales().data(),
                    qr.scales().size() * sizeof(double)) == 0 &&
        std::memcmp(qp.residuals().data(), qr.residuals().data(),
                    qr.residuals().size() * sizeof(double)) == 0;
    for (size_t i = 0; parts_equal && i < qr.size(); ++i) {
      parts_equal = std::memcmp(qp.RowCodes(i).data(), qr.RowCodes(i).data(),
                                qr.RowCodes(i).size()) == 0;
    }
    if (!parts_equal) {
      report.Fail("quantized-parts",
                  "persisted int8 tier differs from the tier rebuilt from "
                  "the same rows (scales, residuals, or codes)");
    }
  }

  // --- Query surface ------------------------------------------------------
  for (size_t t = 0; t < options.targets.size(); ++t) {
    const std::vector<double>& target = options.targets[t];
    const std::string tag = "target " + std::to_string(t);

    // BatchDistances, serial then sharded.
    std::vector<double> expected(ram.size());
    ram.BatchDistances(target, expected);
    std::vector<size_t> shard_sweep = {1};
    shard_sweep.insert(shard_sweep.end(), options.shard_counts.begin(),
                       options.shard_counts.end());
    for (size_t shards : shard_sweep) {
      std::vector<double> got(ram.size());
      report.CountCheck();
      Status st = paged.BatchDistances(target, got, nullptr, shards);
      if (!st.ok()) {
        report.Fail("batch-distances",
                    tag + ": paged BatchDistances failed: " + st.ToString());
        continue;
      }
      for (size_t i = 0; i < expected.size(); ++i) {
        if (!SameBits(expected[i], got[i])) {
          report.Fail("batch-distances",
                      tag + ", shards=" + std::to_string(shards) +
                          ": first divergence at row " + std::to_string(i) +
                          ": " + Bits(expected[i]) + " vs " + Bits(got[i]));
          break;
        }
      }
    }

    // ExactKnn against RAM, across shard counts.
    const Knn exact_expected = ram.ExactKnn(target, options.k);
    for (size_t shards : shard_sweep) {
      Result<Knn> got = paged.ExactKnn(target, options.k, nullptr, shards);
      if (!got.ok()) {
        report.CountCheck();
        report.Fail("exact-knn",
                    tag + ": paged ExactKnn failed: " + got.status().ToString());
        continue;
      }
      CompareKnn(&report, "exact-knn",
                 tag + ", shards=" + std::to_string(shards), exact_expected,
                 *got);
    }

    // CascadeKnn with the quantized level −1 on and off; the answers must
    // also match ExactKnn (the cascade's own no-false-dismissals contract).
    for (bool use_quantized : {true, false}) {
      CascadeOptions cascade = options.cascade;
      cascade.use_quantized = use_quantized;
      const std::string mode =
          tag + (use_quantized ? ", int8 on" : ", int8 off");
      CascadeStats ram_stats;
      const Knn cascade_expected =
          ram.CascadeKnn(target, options.k, cascade, &ram_stats);
      CompareKnn(&report, "cascade-vs-exact", mode, exact_expected,
                 cascade_expected);
      for (size_t shards : shard_sweep) {
        CascadeStats paged_stats;
        Result<Knn> got = paged.CascadeKnn(target, options.k, cascade,
                                           &paged_stats, nullptr, shards);
        if (!got.ok()) {
          report.CountCheck();
          report.Fail("cascade-knn", mode + ": paged CascadeKnn failed: " +
                                         got.status().ToString());
          continue;
        }
        CompareKnn(&report, "cascade-knn",
                   mode + ", shards=" + std::to_string(shards),
                   cascade_expected, *got);
        if (shards == 1) {
          CompareCascadeWork(&report, mode, ram_stats, paged_stats);
        }
      }
    }
  }
  return report;
}

}  // namespace fuzzydb
