#include "analysis/audit.h"

#include <sstream>
#include <utility>

namespace fuzzydb {

void AuditReport::Fail(std::string contract, std::string detail) {
  findings_.push_back({std::move(contract), std::move(detail)});
}

void AuditReport::Absorb(const AuditReport& other) {
  checks_run_ += other.checks_run_;
  for (const AuditFinding& f : other.findings_) {
    findings_.push_back({other.subject_ + ": " + f.contract, f.detail});
  }
}

std::string AuditReport::ToString() const {
  std::ostringstream out;
  if (ok()) {
    out << "audit(" << subject_ << "): OK, " << checks_run_ << " checks";
    return out.str();
  }
  out << "audit(" << subject_ << "): " << findings_.size()
      << " contract violation(s) in " << checks_run_ << " checks";
  for (const AuditFinding& f : findings_) {
    out << "\n  [" << f.contract << "] " << f.detail;
  }
  return out.str();
}

Status AuditReport::ToStatus() const {
  if (ok()) return Status::OK();
  return Status::FailedPrecondition(ToString());
}

std::string FormatTuple(const std::vector<double>& values) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ", ";
    out << values[i];
  }
  out << "]";
  return out.str();
}

}  // namespace fuzzydb
