// Auditor for the parallel-execution equivalence contract (DESIGN §3e): a
// parallel A0/TA/NRA run must return exactly the serial answer — same top-k
// objects, bitwise-identical grades, identical per-source consumed access
// counts — and its access *log* at each inner source must be the serial log
// extended by at most `prefetch_depth` speculative sorted accesses, with the
// random-access sequence untouched. Theorems 4.1/4.2 charge access counts,
// not issue order, so any divergence here is a middleware bug, not a
// scheduling artifact. Like every auditor it can only refute, never prove,
// but each refutation carries a concrete witness (source index, log
// position, the two access records that differ).

#ifndef FUZZYDB_ANALYSIS_PARALLEL_AUDIT_H_
#define FUZZYDB_ANALYSIS_PARALLEL_AUDIT_H_

#include <span>
#include <vector>

#include "analysis/audit.h"
#include "common/sync.h"
#include "middleware/parallel.h"
#include "middleware/source.h"
#include "middleware/topk.h"

namespace fuzzydb {

/// Everything one source was asked, in issue order.
struct AccessLog {
  /// Sorted accesses that returned an object (exhausted pulls not recorded).
  std::vector<GradedObject> sorted;
  /// Random-access probe ids.
  std::vector<ObjectId> random;
};

/// Decorator that records every access against an inner source. Thread-safe:
/// the parallel layer may probe from pool threads, so all recording — and
/// every call into the (single-threaded) inner source, Size() included —
/// happens under an internal mutex; GUARDED_BY/PT_GUARDED_BY make Clang
/// prove it. RestartSorted does NOT clear the log — a log spans the whole
/// run, restarts included.
class AccessLogSource final : public GradedSource {
 public:
  explicit AccessLogSource(GradedSource* inner) : inner_(inner) {}

  /// Snapshot of the log so far.
  AccessLog log() const;

  size_t Size() const override;
  std::optional<GradedObject> NextSorted() override;
  void RestartSorted() override;
  double RandomAccess(ObjectId id) override;
  std::vector<GradedObject> AtLeast(double threshold) override;
  std::string name() const override;

 private:
  mutable Mutex mu_;
  GradedSource* const inner_ PT_GUARDED_BY(mu_);
  AccessLog log_ GUARDED_BY(mu_);
};

/// Which algorithm the auditor replays.
enum class AuditedAlgorithm { kFagin, kThreshold, kNoRandomAccess, kCombined };

/// Knobs for the equivalence audit.
struct ParallelAuditOptions {
  size_t k = 10;
  /// The parallel configuration under audit (serial() configs are legal and
  /// must trivially pass).
  ParallelOptions parallel;
  /// CA's random-access period (kCombined only). 2 mixes sorted rounds and
  /// random resolutions in one log, which is the interesting regime.
  size_t combined_period = 2;
};

/// Runs `algorithm` twice over `sources` — once serially, once under
/// `options.parallel` — with per-source access logging, and audits:
///   - answer equivalence: same ids, bitwise-same grades, same grades_exact;
///   - per-source consumed sorted/random counts equal;
///   - the serial sorted log is a prefix of the parallel log, extended by at
///     most prefetch_depth speculative accesses per source;
///   - random-access sequences identical per source.
/// The sources' sorted cursors are restarted by the runs themselves.
AuditReport AuditParallelEquivalence(std::span<GradedSource* const> sources,
                                     const ScoringRule& rule,
                                     AuditedAlgorithm algorithm,
                                     const ParallelAuditOptions& options);

/// Join-pipeline variant: builds the binary join of `left` and `right`
/// twice — serial and under `options.parallel` — drains up to `emit`
/// objects from each, and audits the same contract: bit-identical emitted
/// streams, identical per-input random-access sequences, and the serial
/// sorted log a prefix of the parallel one with overhang ≤ prefetch depth.
/// (A pull round issues the round's two cross-probes after both heads are
/// pulled, in both modes, so the per-input sequences agree exactly.)
AuditReport AuditJoinParallelEquivalence(GradedSource* left,
                                         GradedSource* right,
                                         ScoringRulePtr rule, size_t emit,
                                         const ParallelAuditOptions& options);

}  // namespace fuzzydb

#endif  // FUZZYDB_ANALYSIS_PARALLEL_AUDIT_H_
