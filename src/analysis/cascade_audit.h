// Auditors for the cascade filter's admissibility contract ([HSE+95],
// paper formula (2) generalized): a filter level with cheap distance d̂ is
// free of false dismissals iff d̂(x,y) <= d(x,y) for every pair. The
// embedding cascade gets this from the spectral structure (every prefix of
// the eigen-space embedding lower-bounds the full distance); user-supplied
// levels must be vetted before they are trusted, or every CascadeKnn top-k
// claim silently voids.

#ifndef FUZZYDB_ANALYSIS_CASCADE_AUDIT_H_
#define FUZZYDB_ANALYSIS_CASCADE_AUDIT_H_

#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "analysis/audit.h"
#include "image/embedding_store.h"
#include "image/quadratic_distance.h"

namespace fuzzydb {

/// Knobs for the cascade auditors.
struct CascadeAuditOptions {
  /// Random histogram pairs audited per level.
  size_t pairs = 128;
  /// Slack allowed before declaring a bound inadmissible. 0 by default:
  /// prefix sums of non-negative terms are exactly monotone in floating
  /// point, so the embedding cascade needs none.
  double tol = 0.0;
  /// PRNG seed — audits are deterministic given options.
  uint64_t seed = 0xca5cade5ULL;
};

/// A candidate filter level: a cheap distance claimed to lower-bound the
/// exact one.
using HistogramDistanceFn =
    std::function<double(const Histogram&, const Histogram&)>;

/// Audits one claimed lower bound against the exact distance on random
/// histogram pairs of the given bin count. Witnesses carry the pair index,
/// both distances, and the margin by which the bound overshoots.
AuditReport AuditFilterLowerBound(std::string_view subject,
                                  const HistogramDistanceFn& cheap,
                                  const HistogramDistanceFn& exact,
                                  size_t bins,
                                  const CascadeAuditOptions& options = {});

/// Audits the embedding cascade itself: for random histogram pairs, every
/// prefix level in `levels` (empty: {1, 2, 3, dim/4, dim/2, dim}) must
/// lower-bound the exact quadratic-form distance, and deeper prefixes must
/// dominate shallower ones (the cascade's refinement monotonicity).
AuditReport AuditCascadeLevels(const QuadraticFormDistance& qfd,
                               std::vector<size_t> levels = {},
                               const CascadeAuditOptions& options = {});

/// End-to-end equivalence audit: CascadeKnn must return exactly ExactKnn's
/// answer (same indices, same order, bit-identical distances) for random
/// query targets against `store`, across several (prefix, step)
/// configurations including the given one. This is the Theorem-4.1-style
/// "the filter changed costs, never answers" contract for the kernel layer.
AuditReport AuditCascadeEquivalence(const EmbeddingStore& store, size_t k,
                                    const CascadeOptions& production_options,
                                    const CascadeAuditOptions& options = {});

/// Audits the int8 quantized tier (the cascade's level −1, DESIGN §3g)
/// directly against its admissibility claim: for random query targets —
/// perturbed stored rows, plus deliberately far-out-of-range targets that
/// force query-side code clamping — QuantizedStore::LowerBound2 must never
/// exceed the exact squared embedding distance, for every stored row, with
/// zero tolerance (the bound's safety margin is its own responsibility). A
/// store without the companion fails its precondition check rather than
/// vacuously passing.
AuditReport AuditQuantizedLowerBound(const EmbeddingStore& store,
                                     const CascadeAuditOptions& options = {});

}  // namespace fuzzydb

#endif  // FUZZYDB_ANALYSIS_CASCADE_AUDIT_H_
