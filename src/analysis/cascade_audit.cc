#include "analysis/cascade_audit.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "common/random.h"
#include "common/squared_distance.h"

namespace fuzzydb {

namespace {

// Squared prefix distance over the first `prefix` embedding dimensions,
// accumulated exactly as the cascade kernel accumulates it.
double PrefixSquared(std::span<const double> ex, std::span<const double> ey,
                     size_t prefix) {
  SquaredDistanceAccumulator acc;
  acc.Accumulate(ex.data(), ey.data(), 0, prefix);
  return acc.Total();
}

}  // namespace

AuditReport AuditFilterLowerBound(std::string_view subject,
                                  const HistogramDistanceFn& cheap,
                                  const HistogramDistanceFn& exact,
                                  size_t bins,
                                  const CascadeAuditOptions& options) {
  AuditReport report{std::string(subject)};
  Rng rng(options.seed);
  for (size_t p = 0; p < options.pairs; ++p) {
    const Histogram x = RandomHistogram(&rng, bins);
    const Histogram y = RandomHistogram(&rng, bins);
    report.CountCheck();
    const double cheap_d = cheap(x, y);
    const double exact_d = exact(x, y);
    if (cheap_d > exact_d + options.tol) {
      std::ostringstream out;
      out << "pair " << p << ": cheap distance " << cheap_d
          << " exceeds exact distance " << exact_d << " by "
          << (cheap_d - exact_d)
          << " — the level can falsely dismiss true neighbors [HSE+95]";
      report.Fail("lower-bound", out.str());
    }
  }
  // The identity pair must bound itself: d̂(x,x) <= d(x,x).
  const Histogram x = RandomHistogram(&rng, bins);
  report.CountCheck();
  if (cheap(x, x) > exact(x, x) + options.tol) {
    std::ostringstream out;
    out << "identity pair: cheap " << cheap(x, x) << " > exact " << exact(x, x);
    report.Fail("lower-bound", out.str());
  }
  return report;
}

AuditReport AuditCascadeLevels(const QuadraticFormDistance& qfd,
                               std::vector<size_t> levels,
                               const CascadeAuditOptions& options) {
  const size_t dim = qfd.dimension();
  AuditReport report("cascade levels (dim " + std::to_string(dim) + ")");
  if (levels.empty()) {
    levels = {1, 2, 3, std::max<size_t>(dim / 4, 1),
              std::max<size_t>(dim / 2, 1), dim};
  }
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  for (size_t& level : levels) level = std::clamp<size_t>(level, 1, dim);

  Rng rng(options.seed);
  for (size_t p = 0; p < options.pairs; ++p) {
    const Histogram hx = RandomHistogram(&rng, dim);
    const Histogram hy = RandomHistogram(&rng, dim);
    const std::vector<double> ex = qfd.Embed(hx);
    const std::vector<double> ey = qfd.Embed(hy);
    const double exact_d = qfd.Distance(hx, hy);
    const double exact_sq = exact_d * exact_d;
    double prev_sq = 0.0;
    for (size_t level : levels) {
      report.CountCheck();
      const double level_sq = PrefixSquared(ex, ey, level);
      // Against the exact distance: roundoff between the embedded and the
      // direct quadratic form is eigensolver-level, so allow a relative
      // epsilon on top of the caller's slack.
      const double slack = options.tol + 1e-9 * (1.0 + exact_sq);
      if (level_sq > exact_sq + slack) {
        std::ostringstream out;
        out << "pair " << p << ", prefix " << level << ": bound^2 "
            << level_sq << " exceeds exact d^2 " << exact_sq
            << " — prefix levels must never overshoot (formula (2))";
        report.Fail("lower-bound", out.str());
      }
      // Refinement monotonicity is exact: prefix sums of non-negative
      // terms cannot decrease as the prefix grows.
      if (level_sq + options.tol < prev_sq) {
        std::ostringstream out;
        out << "pair " << p << ", prefix " << level << ": bound^2 "
            << level_sq << " fell below the shallower level's " << prev_sq;
        report.Fail("refinement monotonicity", out.str());
      }
      prev_sq = level_sq;
    }
  }
  return report;
}

AuditReport AuditCascadeEquivalence(const EmbeddingStore& store, size_t k,
                                    const CascadeOptions& production_options,
                                    const CascadeAuditOptions& options) {
  AuditReport report("cascade == exact top-k");
  if (store.size() == 0 || k == 0) return report;
  Rng rng(options.seed);

  std::vector<CascadeOptions> configs = {production_options,
                                         {/*prefix_dim=*/1, /*step=*/1},
                                         {store.dim(), /*step=*/4}};
  // Every config with the int8 level -1 flipped the other way: equivalence
  // must hold regardless of whether the quantized tier is engaged.
  const size_t base_configs = configs.size();
  for (size_t c = 0; c < base_configs; ++c) {
    CascadeOptions flipped = configs[c];
    flipped.use_quantized = !flipped.use_quantized;
    configs.push_back(flipped);
  }
  const size_t queries = std::max<size_t>(options.pairs / 8, 2);
  std::vector<double> target(store.dim());
  for (size_t q = 0; q < queries; ++q) {
    // Random targets in the embedded space's bounding box: perturb a
    // random stored row so queries land where the data lives.
    std::span<const double> row =
        store.Row(static_cast<size_t>(rng.NextBounded(store.size())));
    for (size_t j = 0; j < store.dim(); ++j) {
      target[j] = row[j] + 0.1 * (rng.NextDouble() - 0.5);
    }
    const auto exact = store.ExactKnn(target, k);
    for (const CascadeOptions& config : configs) {
      report.CountCheck();
      const auto cascade = store.CascadeKnn(target, k, config);
      if (cascade.size() != exact.size()) {
        std::ostringstream out;
        out << "query " << q << " (prefix " << config.prefix_dim << ", step "
            << config.step << ", int8 " << (config.use_quantized ? "on" : "off")
            << "): cascade returned " << cascade.size()
            << " results, exact returned " << exact.size();
        report.Fail("equivalence", out.str());
        continue;
      }
      for (size_t i = 0; i < exact.size(); ++i) {
        if (cascade[i].first != exact[i].first ||
            cascade[i].second != exact[i].second) {
          std::ostringstream out;
          out << "query " << q << " (prefix " << config.prefix_dim
              << ", step " << config.step << ", int8 "
              << (config.use_quantized ? "on" : "off") << "), rank " << i
              << ": cascade ("
              << cascade[i].first << ", " << cascade[i].second
              << ") != exact (" << exact[i].first << ", " << exact[i].second
              << ")";
          report.Fail("equivalence", out.str());
          break;
        }
      }
    }
  }
  return report;
}

AuditReport AuditQuantizedLowerBound(const EmbeddingStore& store,
                                     const CascadeAuditOptions& options) {
  AuditReport report("quantized level -1 lower bound");
  report.CountCheck();
  if (!store.has_quantized() || store.size() == 0) {
    report.Fail("precondition",
                "store carries no int8 companion to audit — build it with "
                "BuildQuantized() before trusting use_quantized");
    return report;
  }
  const QuantizedStore& quantized = store.quantized();
  Rng rng(options.seed);
  const size_t queries = std::max<size_t>(options.pairs / 8, 2);
  std::vector<double> target(store.dim());
  for (size_t q = 0; q < queries; ++q) {
    std::span<const double> row =
        store.Row(static_cast<size_t>(rng.NextBounded(store.size())));
    // Odd queries leave the data's range entirely, forcing query-side code
    // clamping; clamping may only weaken the bound, never break it.
    const double blow_up = (q % 2 == 1) ? 1000.0 : 1.0;
    for (size_t j = 0; j < store.dim(); ++j) {
      target[j] = blow_up * (row[j] + 0.1 * (rng.NextDouble() - 0.5));
    }
    const QuantizedStore::EncodedQuery encoded =
        quantized.EncodeQuery(target);
    for (size_t i = 0; i < store.size(); ++i) {
      report.CountCheck();
      const double bound_sq = quantized.LowerBound2(encoded, i);
      SquaredDistanceAccumulator acc;
      acc.Accumulate(store.Row(i).data(), target.data(), 0, store.dim());
      const double exact_sq = acc.Total();
      if (bound_sq > exact_sq) {
        std::ostringstream out;
        out << "query " << q << ", row " << i << ": quantized bound^2 "
            << bound_sq << " exceeds exact d^2 " << exact_sq << " by "
            << (bound_sq - exact_sq)
            << " — level -1 can falsely dismiss true neighbors";
        report.Fail("lower-bound", out.str());
      }
    }
  }
  return report;
}

}  // namespace fuzzydb
