// Auditor for the GradedSource access contract (paper §4): sorted access
// must stream grades in non-increasing order with ties broken by id
// ascending, every grade must be a valid fuzzy grade in [0,1], and random
// access must agree with what the stream delivered. A0/TA/NRA's correctness
// proofs all assume this — a subsystem that mis-sorts silently breaks every
// top-k answer, which is exactly the kind of integration bug the Garlic
// middleware hit (paper §4.2).

#ifndef FUZZYDB_ANALYSIS_SOURCE_AUDIT_H_
#define FUZZYDB_ANALYSIS_SOURCE_AUDIT_H_

#include "analysis/audit.h"
#include "middleware/source.h"

namespace fuzzydb {

/// Knobs for the source auditor.
struct SourceAuditOptions {
  /// Cap on the number of sorted accesses performed (the stream is drained
  /// up to this many items).
  size_t max_items = 100000;
  /// Streamed objects re-probed through RandomAccess for consistency.
  size_t random_probes = 64;
  /// Tolerance for the RandomAccess-vs-stream grade comparison.
  double tol = 0.0;
  /// PRNG seed for probe selection.
  uint64_t seed = 0x50a6ce5eedULL;
};

/// Drains `source`'s sorted stream (after RestartSorted) and audits order,
/// grade range, duplicate ids, stream length vs Size(), and RandomAccess
/// consistency on sampled streamed objects. The cursor is restarted again
/// before returning, so the source is reusable afterwards.
AuditReport AuditSortedAccess(GradedSource* source,
                              const SourceAuditOptions& options = {});

/// Audits that two sources answer the *same* atomic query: their sorted
/// streams must agree item by item — same ids, bit-equal grades, same
/// length — and each one's RandomAccess must reproduce the other's streamed
/// grades exactly on sampled objects. This is the equivalence leg for
/// alternative sorted-access backends (e.g. the incremental R-tree driver
/// vs the batch-graded QbicColorSource): different access paths, provably
/// one graded set. Both cursors are restarted before and after.
AuditReport AuditSourceEquivalence(GradedSource* actual,
                                   GradedSource* reference,
                                   const SourceAuditOptions& options = {});

}  // namespace fuzzydb

#endif  // FUZZYDB_ANALYSIS_SOURCE_AUDIT_H_
