// Randomized auditors for the t-norm / t-co-norm axioms and De Morgan
// duality (paper §3, Theorem 3.1; axioms of [BD86, Mi89]).
//
// core/tnorms.h already grid-validates the axioms at registration time;
// these auditors complement that with randomized sampling (which reaches
// points no fixed grid contains) and with witness-carrying reports, and add
// the duality contract s(x,y) = n(t(n(x),n(y))) that the grid validator
// does not cover.

#ifndef FUZZYDB_ANALYSIS_NORM_AUDIT_H_
#define FUZZYDB_ANALYSIS_NORM_AUDIT_H_

#include <string_view>

#include "analysis/audit.h"
#include "core/tnorms.h"

namespace fuzzydb {

/// Knobs for the norm auditors.
struct NormAuditOptions {
  /// Random samples per axiom (boundary points are always added).
  size_t samples = 256;
  /// Comparison tolerance for the equational axioms.
  double tol = 1e-9;
  /// PRNG seed — audits are deterministic given options.
  uint64_t seed = 0x5eed0a7d17ULL;
};

/// Audits the four t-norm axioms — ∧-conservation t(x,1)=x, monotonicity,
/// commutativity, associativity — on random points plus the {0,1} corners.
AuditReport AuditTNorm(const BinaryScoringFn& t, std::string_view name,
                       const NormAuditOptions& options = {});

/// Dual audit for a t-co-norm: ∨-conservation s(x,0)=x instead.
AuditReport AuditTCoNorm(const BinaryScoringFn& s, std::string_view name,
                         const NormAuditOptions& options = {});

/// Audits De Morgan duality: s(x,y) = n(t(n(x),n(y))) for all sampled x,y,
/// and that the negation is strong (involutive, n(n(x)) = x).
AuditReport AuditDeMorganPair(const BinaryScoringFn& t,
                              const BinaryScoringFn& s, const NegationFn& n,
                              std::string_view pair_name,
                              const NormAuditOptions& options = {});

/// Audits every registered TNormKind / TCoNormKind: axioms for each, plus
/// duality of each (kind, DualCoNorm(kind)) pair under standard negation.
/// The report absorbs one sub-report per audited subject.
AuditReport AuditRegisteredNormPairs(const NormAuditOptions& options = {});

}  // namespace fuzzydb

#endif  // FUZZYDB_ANALYSIS_NORM_AUDIT_H_
