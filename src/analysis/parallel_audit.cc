#include "analysis/parallel_audit.h"

#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>

#include "middleware/combined.h"
#include "middleware/fagin.h"
#include "middleware/join.h"
#include "middleware/nra.h"
#include "middleware/threshold.h"

namespace fuzzydb {

AccessLog AccessLogSource::log() const {
  MutexLock lock(mu_);
  return log_;
}

size_t AccessLogSource::Size() const {
  // Under the mutex like every other inner call: the annotation migration
  // surfaced that this was the one path reaching the single-threaded inner
  // source without the serializing lock.
  MutexLock lock(mu_);
  return inner_->Size();
}

std::optional<GradedObject> AccessLogSource::NextSorted() {
  MutexLock lock(mu_);
  std::optional<GradedObject> next = inner_->NextSorted();
  if (next.has_value()) log_.sorted.push_back(*next);
  return next;
}

void AccessLogSource::RestartSorted() {
  MutexLock lock(mu_);
  inner_->RestartSorted();
}

double AccessLogSource::RandomAccess(ObjectId id) {
  MutexLock lock(mu_);
  log_.random.push_back(id);
  return inner_->RandomAccess(id);
}

std::vector<GradedObject> AccessLogSource::AtLeast(double threshold) {
  MutexLock lock(mu_);
  return inner_->AtLeast(threshold);
}

std::string AccessLogSource::name() const {
  MutexLock lock(mu_);
  return "logged(" + inner_->name() + ")";
}

namespace {

const char* AlgorithmTag(AuditedAlgorithm algorithm) {
  switch (algorithm) {
    case AuditedAlgorithm::kFagin:
      return "fagin-a0";
    case AuditedAlgorithm::kThreshold:
      return "ta";
    case AuditedAlgorithm::kNoRandomAccess:
      return "nra";
    case AuditedAlgorithm::kCombined:
      return "ca";
  }
  return "unknown";
}

Result<TopKResult> RunOnce(AuditedAlgorithm algorithm,
                           std::span<GradedSource* const> sources,
                           const ScoringRule& rule, size_t k,
                           const ParallelOptions& options,
                           size_t combined_period) {
  switch (algorithm) {
    case AuditedAlgorithm::kFagin:
      return FaginTopK(sources, rule, k, options);
    case AuditedAlgorithm::kThreshold:
      return ThresholdTopK(sources, rule, k, options);
    case AuditedAlgorithm::kNoRandomAccess:
      return NoRandomAccessTopK(sources, rule, k, options);
    case AuditedAlgorithm::kCombined:
      return CombinedTopK(sources, rule, k, combined_period, options);
  }
  return Status::Internal("unknown algorithm");
}

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

std::string DescribeObject(const GradedObject& g) {
  std::ostringstream out;
  out << "(id=" << g.id << ", grade=" << g.grade << ")";
  return out.str();
}

}  // namespace

AuditReport AuditParallelEquivalence(std::span<GradedSource* const> sources,
                                     const ScoringRule& rule,
                                     AuditedAlgorithm algorithm,
                                     const ParallelAuditOptions& options) {
  AuditReport report(std::string("parallel-equivalence/") +
                     AlgorithmTag(algorithm));
  const size_t m = sources.size();

  // Two independently logged runs over the same raw sources. The runs
  // restart every sorted cursor up front, so back-to-back execution is safe.
  std::vector<std::unique_ptr<AccessLogSource>> serial_logged;
  serial_logged.reserve(m);
  for (GradedSource* s : sources) {
    serial_logged.push_back(std::make_unique<AccessLogSource>(s));
  }
  std::vector<GradedSource*> serial_ptrs;
  for (auto& s : serial_logged) serial_ptrs.push_back(s.get());
  Result<TopKResult> serial =
      RunOnce(algorithm, serial_ptrs, rule, options.k, ParallelOptions{},
              options.combined_period);

  std::vector<std::unique_ptr<AccessLogSource>> parallel_logged;
  parallel_logged.reserve(m);
  for (GradedSource* s : sources) {
    parallel_logged.push_back(std::make_unique<AccessLogSource>(s));
  }
  std::vector<GradedSource*> parallel_ptrs;
  for (auto& s : parallel_logged) parallel_ptrs.push_back(s.get());
  Result<TopKResult> parallel =
      RunOnce(algorithm, parallel_ptrs, rule, options.k, options.parallel,
              options.combined_period);

  report.CountCheck();
  if (serial.ok() != parallel.ok()) {
    report.Fail("status",
                std::string("serial ") +
                    (serial.ok() ? "OK" : serial.status().ToString()) +
                    " vs parallel " +
                    (parallel.ok() ? "OK" : parallel.status().ToString()));
    return report;
  }
  if (!serial.ok()) return report;  // both failed identically: equivalent

  // Answer equivalence: ids in rank order, bitwise grades, exactness flag.
  report.CountCheck();
  if (serial->items.size() != parallel->items.size()) {
    std::ostringstream out;
    out << "serial returned " << serial->items.size() << " items, parallel "
        << parallel->items.size();
    report.Fail("top-k-size", out.str());
  } else {
    for (size_t r = 0; r < serial->items.size(); ++r) {
      report.CountCheck();
      const GradedObject& a = serial->items[r];
      const GradedObject& b = parallel->items[r];
      if (a.id != b.id || !BitEqual(a.grade, b.grade)) {
        std::ostringstream out;
        out << "rank " << r << ": serial " << DescribeObject(a)
            << " vs parallel " << DescribeObject(b);
        report.Fail("top-k-item", out.str());
      }
    }
  }
  report.CountCheck();
  if (serial->grades_exact != parallel->grades_exact) {
    report.Fail("grades-exact",
                std::string("serial ") +
                    (serial->grades_exact ? "true" : "false") +
                    " vs parallel " +
                    (parallel->grades_exact ? "true" : "false"));
  }

  // Consumed access accounting must be schedule-independent. (The
  // speculative overhang AccessCost::prefetched is explicitly exempt.)
  if (serial->per_source.size() == m && parallel->per_source.size() == m) {
    for (size_t j = 0; j < m; ++j) {
      report.CountCheck();
      const AccessCost& sc = serial->per_source[j];
      const AccessCost& pc = parallel->per_source[j];
      if (sc.sorted != pc.sorted || sc.random != pc.random) {
        std::ostringstream out;
        out << "source " << j << ": serial consumed (sorted=" << sc.sorted
            << ", random=" << sc.random << ") vs parallel (sorted="
            << pc.sorted << ", random=" << pc.random << ")";
        report.Fail("consumed-count", out.str());
      }
    }
  } else {
    report.CountCheck();
    std::ostringstream out;
    out << "expected per-source cost for " << m << " sources, got serial="
        << serial->per_source.size()
        << " parallel=" << parallel->per_source.size();
    report.Fail("per-source-cost", out.str());
  }

  // Log equivalence at the raw source: the parallel sorted log must extend
  // the serial one by at most prefetch_depth speculative items, and the
  // random sequence must match exactly.
  const size_t depth = options.parallel.prefetch_depth;
  for (size_t j = 0; j < m; ++j) {
    AccessLog s_log = serial_logged[j]->log();
    AccessLog p_log = parallel_logged[j]->log();

    report.CountCheck();
    if (p_log.sorted.size() < s_log.sorted.size() ||
        p_log.sorted.size() > s_log.sorted.size() + depth) {
      std::ostringstream out;
      out << "source " << j << ": serial issued " << s_log.sorted.size()
          << " sorted accesses, parallel " << p_log.sorted.size()
          << " (allowed overhang <= " << depth << ")";
      report.Fail("sorted-overhang", out.str());
    }
    size_t shared = std::min(s_log.sorted.size(), p_log.sorted.size());
    for (size_t p = 0; p < shared; ++p) {
      const GradedObject& a = s_log.sorted[p];
      const GradedObject& b = p_log.sorted[p];
      if (a.id != b.id || !BitEqual(a.grade, b.grade)) {
        std::ostringstream out;
        out << "source " << j << " position " << p << ": serial "
            << DescribeObject(a) << " vs parallel " << DescribeObject(b);
        report.Fail("sorted-prefix", out.str());
        break;  // one witness per source is enough
      }
    }

    report.CountCheck();
    if (s_log.random != p_log.random) {
      size_t p = 0;
      while (p < s_log.random.size() && p < p_log.random.size() &&
             s_log.random[p] == p_log.random[p]) {
        ++p;
      }
      std::ostringstream out;
      out << "source " << j << ": random sequences diverge at position " << p
          << " (serial len " << s_log.random.size() << ", parallel len "
          << p_log.random.size() << ")";
      report.Fail("random-sequence", out.str());
    }
  }

  return report;
}

namespace {

// One logged drain of the binary join: up to `emit` objects off the top.
struct JoinDrain {
  bool ok = false;
  std::string error;
  std::vector<GradedObject> stream;
  AccessLog left_log;
  AccessLog right_log;
};

JoinDrain DrainJoin(GradedSource* left, GradedSource* right,
                    ScoringRulePtr rule, size_t emit,
                    const ParallelOptions& parallel) {
  JoinDrain out;
  AccessLogSource logged_left(left);
  AccessLogSource logged_right(right);
  {
    Result<TopKJoinSource> join = TopKJoinSource::Create(
        &logged_left, &logged_right, std::move(rule), "audited-join",
        parallel);
    if (!join.ok()) {
      out.error = join.status().ToString();
      return out;
    }
    for (size_t i = 0; i < emit; ++i) {
      std::optional<GradedObject> next = join->NextSorted();
      if (!next.has_value()) break;
      out.stream.push_back(*next);
    }
  }  // join (and its prefetch pipelines) quiesce before the logs snapshot
  out.left_log = logged_left.log();
  out.right_log = logged_right.log();
  out.ok = true;
  return out;
}

}  // namespace

AuditReport AuditJoinParallelEquivalence(GradedSource* left,
                                         GradedSource* right,
                                         ScoringRulePtr rule, size_t emit,
                                         const ParallelAuditOptions& options) {
  AuditReport report("parallel-equivalence/join");

  JoinDrain serial = DrainJoin(left, right, rule, emit, ParallelOptions{});
  JoinDrain parallel = DrainJoin(left, right, rule, emit, options.parallel);

  report.CountCheck();
  if (serial.ok != parallel.ok) {
    report.Fail("status", std::string("serial ") +
                              (serial.ok ? "OK" : serial.error) +
                              " vs parallel " +
                              (parallel.ok ? "OK" : parallel.error));
    return report;
  }
  if (!serial.ok) return report;  // both refused identically: equivalent

  // Emitted stream equivalence: the join's output order is part of its
  // GradedSource contract, so it must be bit-identical, not just set-equal.
  report.CountCheck();
  if (serial.stream.size() != parallel.stream.size()) {
    std::ostringstream out;
    out << "serial emitted " << serial.stream.size() << " objects, parallel "
        << parallel.stream.size();
    report.Fail("stream-size", out.str());
  } else {
    for (size_t r = 0; r < serial.stream.size(); ++r) {
      report.CountCheck();
      const GradedObject& a = serial.stream[r];
      const GradedObject& b = parallel.stream[r];
      if (a.id != b.id || !BitEqual(a.grade, b.grade)) {
        std::ostringstream out;
        out << "position " << r << ": serial " << DescribeObject(a)
            << " vs parallel " << DescribeObject(b);
        report.Fail("stream-item", out.str());
        break;  // one witness is enough
      }
    }
  }

  // Per-input log equivalence, same rules as the flat algorithms: random
  // sequences untouched, sorted logs prefix-equal with ≤ depth overhang.
  const size_t depth = options.parallel.prefetch_depth;
  const AccessLog* serial_logs[2] = {&serial.left_log, &serial.right_log};
  const AccessLog* parallel_logs[2] = {&parallel.left_log,
                                       &parallel.right_log};
  const char* side[2] = {"left", "right"};
  for (size_t j = 0; j < 2; ++j) {
    const AccessLog& s_log = *serial_logs[j];
    const AccessLog& p_log = *parallel_logs[j];

    report.CountCheck();
    if (p_log.sorted.size() < s_log.sorted.size() ||
        p_log.sorted.size() > s_log.sorted.size() + depth) {
      std::ostringstream out;
      out << side[j] << " input: serial issued " << s_log.sorted.size()
          << " sorted accesses, parallel " << p_log.sorted.size()
          << " (allowed overhang <= " << depth << ")";
      report.Fail("sorted-overhang", out.str());
    }
    size_t shared = std::min(s_log.sorted.size(), p_log.sorted.size());
    for (size_t p = 0; p < shared; ++p) {
      const GradedObject& a = s_log.sorted[p];
      const GradedObject& b = p_log.sorted[p];
      if (a.id != b.id || !BitEqual(a.grade, b.grade)) {
        std::ostringstream out;
        out << side[j] << " input position " << p << ": serial "
            << DescribeObject(a) << " vs parallel " << DescribeObject(b);
        report.Fail("sorted-prefix", out.str());
        break;
      }
    }

    report.CountCheck();
    if (s_log.random != p_log.random) {
      size_t p = 0;
      while (p < s_log.random.size() && p < p_log.random.size() &&
             s_log.random[p] == p_log.random[p]) {
        ++p;
      }
      std::ostringstream out;
      out << side[j] << " input: random sequences diverge at position " << p
          << " (serial len " << s_log.random.size() << ", parallel len "
          << p_log.random.size() << ")";
      report.Fail("random-sequence", out.str());
    }
  }

  return report;
}

}  // namespace fuzzydb
