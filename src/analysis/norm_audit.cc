#include "analysis/norm_audit.h"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"

namespace fuzzydb {

namespace {

// Random samples plus every {0, ½, 1} corner — the corners are where the
// conservation axioms and the drastic norms' discontinuities live.
std::vector<double> SamplePoints(Rng* rng, size_t samples) {
  std::vector<double> pts = {0.0, 0.5, 1.0};
  pts.reserve(samples + 3);
  for (size_t i = 0; i < samples; ++i) pts.push_back(rng->NextDouble());
  return pts;
}

std::string Witness(std::initializer_list<double> inputs, double got,
                    double want, double tol) {
  std::ostringstream out;
  out << "at " << FormatTuple(std::vector<double>(inputs)) << ": got " << got
      << ", want " << want << " (tol " << tol << ")";
  return out.str();
}

// The axioms shared by t-norms and t-co-norms; `unit` is 1 for a t-norm
// (t(x,1) = x) and 0 for a t-co-norm (s(x,0) = x).
AuditReport AuditNormAxioms(const BinaryScoringFn& f, std::string_view name,
                            double unit, const NormAuditOptions& options) {
  AuditReport report{std::string(name)};
  Rng rng(options.seed);
  const std::vector<double> pts = SamplePoints(&rng, options.samples);
  const double tol = options.tol;
  const char* conservation =
      unit == 1.0 ? "conservation t(x,1)=x" : "conservation s(x,0)=x";

  for (double x : pts) {
    report.CountCheck();
    const double fx = f(x, unit);
    if (std::abs(fx - x) > tol) {
      report.Fail(conservation, Witness({x, unit}, fx, x, tol));
    }
  }
  for (size_t i = 0; i + 1 < pts.size() && report.ok(); i += 2) {
    const double x = pts[i];
    const double y = pts[i + 1];
    report.CountCheck();
    const double fxy = f(x, y);
    const double fyx = f(y, x);
    if (std::abs(fxy - fyx) > tol) {
      report.Fail("commutativity", Witness({x, y}, fxy, fyx, tol));
    }
    // Monotonicity in the first argument: compare against a dominating x'.
    const double xp = x + (1.0 - x) * rng.NextDouble();
    report.CountCheck();
    const double fxpy = f(xp, y);
    if (fxy > fxpy + tol) {
      std::ostringstream out;
      out << "f(" << x << ", " << y << ") = " << fxy << " > f(" << xp << ", "
          << y << ") = " << fxpy << " though " << x << " <= " << xp;
      report.Fail("monotonicity", out.str());
    }
  }
  for (size_t i = 0; i + 2 < pts.size() && report.ok(); i += 3) {
    const double x = pts[i];
    const double y = pts[i + 1];
    const double z = pts[i + 2];
    report.CountCheck();
    const double left = f(f(x, y), z);
    const double right = f(x, f(y, z));
    if (std::abs(left - right) > tol) {
      report.Fail("associativity", Witness({x, y, z}, left, right, tol));
    }
  }
  return report;
}

}  // namespace

AuditReport AuditTNorm(const BinaryScoringFn& t, std::string_view name,
                       const NormAuditOptions& options) {
  return AuditNormAxioms(t, name, /*unit=*/1.0, options);
}

AuditReport AuditTCoNorm(const BinaryScoringFn& s, std::string_view name,
                         const NormAuditOptions& options) {
  return AuditNormAxioms(s, name, /*unit=*/0.0, options);
}

AuditReport AuditDeMorganPair(const BinaryScoringFn& t,
                              const BinaryScoringFn& s, const NegationFn& n,
                              std::string_view pair_name,
                              const NormAuditOptions& options) {
  AuditReport report{std::string(pair_name)};
  Rng rng(options.seed);
  const std::vector<double> pts = SamplePoints(&rng, options.samples);
  const double tol = options.tol;

  for (double x : pts) {
    report.CountCheck();
    const double nnx = n(n(x));
    if (std::abs(nnx - x) > tol) {
      report.Fail("strong negation n(n(x))=x", Witness({x}, nnx, x, tol));
    }
  }
  for (size_t i = 0; i + 1 < pts.size() && report.ok(); i += 2) {
    const double x = pts[i];
    const double y = pts[i + 1];
    report.CountCheck();
    const double direct = s(x, y);
    const double dual = n(t(n(x), n(y)));
    if (std::abs(direct - dual) > tol) {
      std::ostringstream out;
      out << "s(" << x << ", " << y << ") = " << direct
          << " but n(t(n(x),n(y))) = " << dual << " (tol " << tol << ")";
      report.Fail("De Morgan duality", out.str());
    }
  }
  return report;
}

AuditReport AuditRegisteredNormPairs(const NormAuditOptions& options) {
  AuditReport report("registered norm/conorm pairs");
  constexpr TNormKind kKinds[] = {
      TNormKind::kMinimum,   TNormKind::kProduct, TNormKind::kLukasiewicz,
      TNormKind::kHamacher,  TNormKind::kEinstein, TNormKind::kDrastic,
  };
  for (TNormKind kind : kKinds) {
    const TCoNormKind dual = DualCoNorm(kind);
    auto t = [kind](double x, double y) { return ApplyTNorm(kind, x, y); };
    auto s = [dual](double x, double y) { return ApplyTCoNorm(dual, x, y); };
    report.Absorb(AuditTNorm(t, "tnorm:" + TNormName(kind), options));
    report.Absorb(AuditTCoNorm(s, "conorm:" + TCoNormName(dual), options));
    report.Absorb(AuditDeMorganPair(
        t, s, StandardNegation,
        "dual:" + TNormName(kind) + "/" + TCoNormName(dual), options));
  }
  return report;
}

}  // namespace fuzzydb
