#include "analysis/scoring_audit.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/random.h"
#include "core/weights.h"

namespace fuzzydb {

namespace {

std::string PairWitness(const std::vector<double>& lo,
                        const std::vector<double>& hi, double flo,
                        double fhi) {
  std::ostringstream out;
  out << "Apply(" << FormatTuple(lo) << ") = " << flo << " > Apply("
      << FormatTuple(hi) << ") = " << fhi
      << " though the first tuple is pointwise <= the second";
  return out.str();
}

}  // namespace

AuditReport AuditScoringRule(const ScoringRule& rule,
                             const ScoringAuditOptions& options) {
  AuditReport report(rule.name());
  Rng rng(options.seed);
  const size_t m = std::max<size_t>(options.arity, 1);
  std::vector<double> lo(m);
  std::vector<double> hi(m);

  // Range: scores must land in [0,1] for random and corner tuples.
  for (size_t s = 0; s < options.samples; ++s) {
    for (size_t i = 0; i < m; ++i) lo[i] = rng.NextDouble();
    report.CountCheck();
    const double v = rule.Apply(lo);
    if (!(v >= 0.0 && v <= 1.0)) {
      std::ostringstream out;
      out << "Apply(" << FormatTuple(lo) << ") = " << v
          << " falls outside [0, 1]";
      report.Fail("range", out.str());
      break;
    }
  }

  if (rule.monotone()) {
    // Random dominated pairs: lo <= hi pointwise.
    for (size_t s = 0; s < options.samples && report.ok(); ++s) {
      for (size_t i = 0; i < m; ++i) {
        const double a = rng.NextDouble();
        const double b = rng.NextDouble();
        lo[i] = std::min(a, b);
        hi[i] = std::max(a, b);
      }
      report.CountCheck();
      const double flo = rule.Apply(lo);
      const double fhi = rule.Apply(hi);
      if (flo > fhi + options.tol) {
        report.Fail("monotonicity (declared monotone() == true)",
                    PairWitness(lo, hi, flo, fhi));
      }
    }
    // Boundary: all-zeros <= random <= all-ones.
    std::fill(lo.begin(), lo.end(), 0.0);
    const double f0 = rule.Apply(lo);
    std::fill(hi.begin(), hi.end(), 1.0);
    const double f1 = rule.Apply(hi);
    for (size_t s = 0; s < options.samples / 4 + 1 && report.ok(); ++s) {
      std::vector<double> mid(m);
      for (size_t i = 0; i < m; ++i) mid[i] = rng.NextDouble();
      report.CountCheck();
      const double fm = rule.Apply(mid);
      if (f0 > fm + options.tol) {
        report.Fail("monotonicity (declared monotone() == true)",
                    PairWitness(lo, mid, f0, fm));
      } else if (fm > f1 + options.tol) {
        report.Fail("monotonicity (declared monotone() == true)",
                    PairWitness(mid, hi, fm, f1));
      }
    }
  }

  if (rule.strict() && report.ok()) {
    std::fill(hi.begin(), hi.end(), 1.0);
    report.CountCheck();
    const double f1 = rule.Apply(hi);
    if (std::abs(f1 - 1.0) > options.tol) {
      std::ostringstream out;
      out << "Apply(" << FormatTuple(hi) << ") = " << f1
          << ", want 1 (tol " << options.tol << ")";
      report.Fail("strictness (declared strict() == true)", out.str());
    }
    for (size_t s = 0; s < options.samples && report.ok(); ++s) {
      // Mix exact-1 components with interior values (strictness failures
      // usually need coordinates pinned at the maximum), then force one
      // coordinate well below 1.
      std::vector<double> t(m);
      for (size_t i = 0; i < m; ++i) {
        t[i] = rng.NextBernoulli(0.5) ? 1.0 : rng.NextDouble();
      }
      const size_t drop = static_cast<size_t>(rng.NextBounded(m));
      t[drop] = 0.5 * rng.NextDouble();
      report.CountCheck();
      const double ft = rule.Apply(t);
      if (ft >= 1.0 - options.tol) {
        std::ostringstream out;
        out << "Apply(" << FormatTuple(t) << ") = " << ft
            << " though component " << drop << " is " << t[drop]
            << " < 1; a strict rule must score below 1";
        report.Fail("strictness (declared strict() == true)", out.str());
      }
    }
  }
  return report;
}

AuditReport AuditShippedScoringRules(const ScoringAuditOptions& options) {
  AuditReport report("shipped scoring rules");
  std::vector<ScoringRulePtr> rules = {
      MinRule(),
      MaxRule(),
      ArithmeticMeanRule(),
      GeometricMeanRule(),
      HarmonicMeanRule(),
      MedianRule(),
  };
  for (TNormKind kind :
       {TNormKind::kMinimum, TNormKind::kProduct, TNormKind::kLukasiewicz,
        TNormKind::kHamacher, TNormKind::kEinstein, TNormKind::kDrastic}) {
    rules.push_back(TNormRule(kind));
  }
  for (TCoNormKind kind :
       {TCoNormKind::kMaximum, TCoNormKind::kProbSum,
        TCoNormKind::kLukasiewicz, TCoNormKind::kHamacher,
        TCoNormKind::kEinstein, TCoNormKind::kDrastic}) {
    rules.push_back(TCoNormRule(kind));
  }

  for (size_t arity : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    ScoringAuditOptions opt = options;
    opt.arity = arity;
    for (const ScoringRulePtr& rule : rules) {
      report.Absorb(AuditScoringRule(*rule, opt));
    }
    // Weighted (Fagin–Wimmers) and OWA instances at this arity.
    std::vector<double> raw(arity);
    for (size_t i = 0; i < arity; ++i) {
      raw[i] = static_cast<double>(arity - i);
    }
    Result<Weighting> theta = Weighting::FromSliders(raw);
    if (theta.ok()) {
      report.Absorb(AuditScoringRule(*WeightedRule(MinRule(), *theta), opt));
      report.Absorb(
          AuditScoringRule(*WeightedRule(ArithmeticMeanRule(), *theta), opt));
      report.Absorb(AuditScoringRule(*OwaRule(Weighting::Equal(arity)), opt));
    }
  }
  return report;
}

}  // namespace fuzzydb
