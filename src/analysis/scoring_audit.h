// Auditor for the two scoring-rule properties Theorems 4.1/4.2 are
// conditional on: monotonicity (the A0/TA/NRA upper bound needs it) and
// strictness (the optimality lower bound needs it). Every rule declares
// both via ScoringRule::monotone()/strict(); the auditor re-checks the
// declarations empirically — the same vetting the Garlic middleware had to
// apply to user-defined rules (paper §4.2) — and reports witnesses.

#ifndef FUZZYDB_ANALYSIS_SCORING_AUDIT_H_
#define FUZZYDB_ANALYSIS_SCORING_AUDIT_H_

#include "analysis/audit.h"
#include "core/scoring.h"

namespace fuzzydb {

/// Knobs for the scoring-rule auditor.
struct ScoringAuditOptions {
  /// Arity at which the rule is exercised.
  size_t arity = 4;
  /// Random dominated pairs / strictness probes drawn.
  size_t samples = 512;
  /// Tolerance for the monotonicity comparison.
  double tol = 1e-12;
  /// PRNG seed — audits are deterministic given options.
  uint64_t seed = 0x5c0416a9d1ULL;
};

/// Audits `rule` at options.arity:
///   - range: Apply always lands in [0, 1];
///   - monotonicity (if declared): random dominated pairs x <= x' must give
///     Apply(x) <= Apply(x') + tol, plus the {0,1}-corner boundaries;
///   - strictness (if declared): Apply(1,...,1) = 1 and every random tuple
///     with at least one component < 1 must score < 1.
/// A declared-but-refuted property yields a witness naming both tuples and
/// both scores, so the registrant can see exactly which inputs break it.
AuditReport AuditScoringRule(const ScoringRule& rule,
                             const ScoringAuditOptions& options = {});

/// Audits every shipped rule family (min/max, all t-norm and co-norm
/// iterations, means, median, examples of Fagin–Wimmers weighted rules and
/// OWA) at arities {1, 2, 4, 7}.
AuditReport AuditShippedScoringRules(const ScoringAuditOptions& options = {});

}  // namespace fuzzydb

#endif  // FUZZYDB_ANALYSIS_SCORING_AUDIT_H_
