#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace fuzzydb {

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double Percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Result<LinearFit> FitLinear(std::span<const double> xs,
                            std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("FitLinear: size mismatch");
  }
  if (xs.size() < 2) {
    return Status::InvalidArgument("FitLinear: need at least 2 points");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    return Status::InvalidArgument("FitLinear: constant x values");
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0.0) {
    fit.r2 = 1.0;  // ys constant and perfectly explained by intercept
  } else {
    double ss_res = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r2 = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

Result<LinearFit> FitPowerLaw(std::span<const double> xs,
                              std::span<const double> ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0.0) {
      return Status::InvalidArgument("FitPowerLaw: non-positive x");
    }
    lx[i] = std::log(xs[i]);
  }
  for (size_t i = 0; i < ys.size(); ++i) {
    if (ys[i] <= 0.0) {
      return Status::InvalidArgument("FitPowerLaw: non-positive y");
    }
    ly[i] = std::log(ys[i]);
  }
  return FitLinear(lx, ly);
}

}  // namespace fuzzydb
