#include "common/random.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace fuzzydb {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return cached_gauss_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_gauss_ = r * std::sin(theta);
  have_gauss_ = true;
  return r * std::cos(theta);
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  assert(n >= 1);
  // Rejection sampling (Devroye); handles s = 1 via the limit form.
  const double nd = static_cast<double>(n);
  auto h_integral = [s](double x) {
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_integral_inv = [s](double x) {
    if (s == 1.0) return std::exp(x);
    return std::pow(1.0 + x * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(nd + 0.5);
  for (;;) {
    double u = h_x1 + NextDouble() * (h_n - h_x1);
    double x = h_integral_inv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    double kd = static_cast<double>(k);
    // Accept when u falls inside the histogram column of rank k
    // (rejection-inversion, Devroye).
    if (u >= h_integral(kd + 0.5) - std::pow(kd, -s)) return k;
  }
}

std::vector<double> UniformGrades(Rng* rng, size_t n) {
  std::vector<double> out(n);
  for (double& g : out) g = rng->NextDouble();
  return out;
}

std::vector<size_t> RandomPermutation(Rng* rng, size_t n) {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = i;
  rng->Shuffle(&out);
  return out;
}

}  // namespace fuzzydb
