#include "common/status.h"

namespace fuzzydb {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace fuzzydb
