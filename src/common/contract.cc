#include "common/contract.h"

#include <cstdio>
#include <cstdlib>

namespace fuzzydb {

namespace {

void DefaultHandler(const char* file, int line, const char* expr,
                    const std::string& message) {
  std::fprintf(stderr, "%s:%d: contract violated: %s — %s\n", file, line,
               expr, message.c_str());
  std::fflush(stderr);
  std::abort();
}

ContractViolationHandler g_handler = nullptr;

}  // namespace

ContractViolationHandler SetContractViolationHandler(
    ContractViolationHandler handler) {
  ContractViolationHandler previous = g_handler;
  g_handler = handler;
  return previous;
}

namespace internal {

void ContractFail(const char* file, int line, const char* expr,
                  const std::string& message) {
  (g_handler != nullptr ? g_handler : DefaultHandler)(file, line, expr,
                                                      message);
}

}  // namespace internal
}  // namespace fuzzydb
