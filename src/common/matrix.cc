#include "common/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/squared_distance.h"

namespace fuzzydb {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs(At(i, j) - At(j, i)) > tol) return false;
    }
  }
  return true;
}

std::vector<double> Matrix::Mul(std::span<const double> x) const {
  assert(x.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = data_.data() + i * cols_;
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += row[j] * x[j];
    out[i] = acc;
  }
  return out;
}

double Matrix::QuadraticForm(std::span<const double> x) const {
  assert(rows_ == cols_ && x.size() == rows_);
  double acc = 0.0;
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = data_.data() + i * cols_;
    double inner = 0.0;
    for (size_t j = 0; j < cols_; ++j) inner += row[j] * x[j];
    acc += x[i] * inner;
  }
  return acc;
}

Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                int max_sweeps, double tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Jacobi eigensolver requires square matrix");
  }
  if (!a.IsSymmetric(1e-9)) {
    return Status::InvalidArgument("Jacobi eigensolver requires symmetry");
  }
  const size_t n = a.rows();
  Matrix m = a;                    // working copy, driven to diagonal
  Matrix v = Matrix::Identity(n);  // accumulated rotations (rows=eigvec later)

  auto off_diag = [&m, n]() {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i)
      for (size_t j = i + 1; j < n; ++j) s += m.At(i, j) * m.At(i, j);
    return std::sqrt(s);
  };

  for (int sweep = 0; sweep < max_sweeps && off_diag() > tol; ++sweep) {
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = m.At(p, q);
        if (std::fabs(apq) <= tol * 1e-3) continue;
        double app = m.At(p, p);
        double aqq = m.At(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        // Apply rotation J(p, q, theta): M <- J^T M J, V <- V J.
        for (size_t i = 0; i < n; ++i) {
          double mip = m.At(i, p);
          double miq = m.At(i, q);
          m.At(i, p) = c * mip - s * miq;
          m.At(i, q) = s * mip + c * miq;
        }
        for (size_t j = 0; j < n; ++j) {
          double mpj = m.At(p, j);
          double mqj = m.At(q, j);
          m.At(p, j) = c * mpj - s * mqj;
          m.At(q, j) = s * mpj + c * mqj;
        }
        for (size_t i = 0; i < n; ++i) {
          double vip = v.At(i, p);
          double viq = v.At(i, q);
          v.At(i, p) = c * vip - s * viq;
          v.At(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Extract and sort by eigenvalue descending.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = m.At(i, i);
  std::sort(order.begin(), order.end(),
            [&diag](size_t x, size_t y) { return diag[x] > diag[y]; });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t r = 0; r < n; ++r) {
    size_t src = order[r];
    out.values[r] = diag[src];
    for (size_t i = 0; i < n; ++i) out.vectors.At(r, i) = v.At(i, src);
  }
  return out;
}

double Norm2(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double Dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double EuclideanDistance(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  // Shares the lane-blocked kernel with the batched embedding scans so that
  // a distance computed here is bit-identical to the same row's entry from
  // EmbeddingStore::BatchDistances.
  return std::sqrt(SquaredDistance(a.data(), b.data(), a.size()));
}

}  // namespace fuzzydb
