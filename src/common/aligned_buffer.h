// A fixed-size, cache-line-aligned array of doubles. Row-major feature
// buffers (e.g. the eigen-space embeddings of image/embedding_store.h) live
// in one of these so batched scans walk contiguous, 64-byte-aligned memory —
// the layout the compiler's vectorizer and the prefetcher both want.

#ifndef FUZZYDB_COMMON_ALIGNED_BUFFER_H_
#define FUZZYDB_COMMON_ALIGNED_BUFFER_H_

#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <span>
#include <utility>

namespace fuzzydb {

/// Owning buffer of `size()` doubles whose storage starts on a 64-byte
/// boundary. Value-semantic (deep copy); zero-initialized.
class AlignedBuffer {
 public:
  /// Alignment of the first element, in bytes (one x86 cache line; also the
  /// natural alignment for 512-bit vector loads).
  static constexpr size_t kAlignment = 64;

  AlignedBuffer() = default;

  explicit AlignedBuffer(size_t size) : size_(size) {
    if (size_ == 0) return;
    // aligned_alloc requires the byte size to be a multiple of the alignment.
    const size_t bytes =
        (size_ * sizeof(double) + kAlignment - 1) / kAlignment * kAlignment;
    data_ = static_cast<double*>(std::aligned_alloc(kAlignment, bytes));
    assert(data_ != nullptr);
    std::memset(data_, 0, bytes);
  }

  AlignedBuffer(const AlignedBuffer& other) : AlignedBuffer(other.size_) {
    if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(double));
  }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) *this = AlignedBuffer(other);
    return *this;
  }
  AlignedBuffer(AlignedBuffer&& other) noexcept
      : size_(std::exchange(other.size_, 0)),
        data_(std::exchange(other.data_, nullptr)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      std::free(data_);
      size_ = std::exchange(other.size_, 0);
      data_ = std::exchange(other.data_, nullptr);
    }
    return *this;
  }
  ~AlignedBuffer() { std::free(data_); }

  size_t size() const { return size_; }
  double* data() { return data_; }
  const double* data() const { return data_; }

  double& operator[](size_t i) { return data_[i]; }
  double operator[](size_t i) const { return data_[i]; }

  std::span<double> span() { return {data_, size_}; }
  std::span<const double> span() const { return {data_, size_}; }

 private:
  size_t size_ = 0;
  double* data_ = nullptr;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_ALIGNED_BUFFER_H_
