// A fixed-size, cache-line-aligned array. Row-major feature buffers (the
// eigen-space embeddings of image/embedding_store.h, the int8 codes of
// image/quantized_store.h) live in one of these so batched scans walk
// contiguous, 64-byte-aligned memory — the layout the vectorizer, the
// explicit SIMD kernels (aligned 512-bit loads), and the prefetcher all
// want.
//
// The alignment is a hard guarantee, not a fast path: allocation failure
// aborts instead of degrading to an unaligned or null buffer (the release
// builds used to carry only an assert here, which compiled away exactly
// when the guarantee mattered), the byte size is rounded up to a whole
// number of cache lines so full-cacheline block kernels may read to the
// end of the last line, and the padding is zeroed so doing so is defined.

#ifndef FUZZYDB_COMMON_ALIGNED_BUFFER_H_
#define FUZZYDB_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <span>
#include <type_traits>
#include <utility>

namespace fuzzydb {

/// Owning buffer of `size()` elements of trivially-copyable type T whose
/// storage starts on a 64-byte boundary and spans whole cache lines.
/// Value-semantic (deep copy); zero-initialized, including line padding.
template <typename T>
class AlignedArray {
 public:
  /// Alignment of the first element, in bytes (one x86 cache line; also the
  /// natural alignment for 512-bit vector loads).
  static constexpr size_t kAlignment = 64;
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedArray memcpy/memsets its storage");
  static_assert(kAlignment % alignof(T) == 0 && sizeof(T) <= kAlignment,
                "element alignment must divide the cache-line alignment");

  AlignedArray() = default;

  explicit AlignedArray(size_t size) : size_(size) {
    if (size_ == 0) return;
    // aligned_alloc requires the byte size to be a multiple of the
    // alignment; rounding up also makes whole-cacheline reads of the final
    // block defined.
    const size_t bytes =
        (size_ * sizeof(T) + kAlignment - 1) / kAlignment * kAlignment;
    data_ = static_cast<T*>(std::aligned_alloc(kAlignment, bytes));
    if (data_ == nullptr) std::abort();  // the guarantee is unconditional
    std::memset(data_, 0, bytes);
  }

  AlignedArray(const AlignedArray& other) : AlignedArray(other.size_) {
    if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(T));
  }
  AlignedArray& operator=(const AlignedArray& other) {
    if (this != &other) *this = AlignedArray(other);
    return *this;
  }
  AlignedArray(AlignedArray&& other) noexcept
      : size_(std::exchange(other.size_, 0)),
        data_(std::exchange(other.data_, nullptr)) {}
  AlignedArray& operator=(AlignedArray&& other) noexcept {
    if (this != &other) {
      std::free(data_);
      size_ = std::exchange(other.size_, 0);
      data_ = std::exchange(other.data_, nullptr);
    }
    return *this;
  }
  ~AlignedArray() { std::free(data_); }

  size_t size() const { return size_; }
  T* data() { return data_; }
  const T* data() const { return data_; }

  T& operator[](size_t i) { return data_[i]; }
  T operator[](size_t i) const { return data_[i]; }

  std::span<T> span() { return {data_, size_}; }
  std::span<const T> span() const { return {data_, size_}; }

 private:
  size_t size_ = 0;
  T* data_ = nullptr;
};

/// The double-precision instantiation every float feature buffer uses.
using AlignedBuffer = AlignedArray<double>;

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_ALIGNED_BUFFER_H_
