// A small fixed-size thread pool driving blocking parallel-for loops — the
// execution substrate for the sharded embedding kernels
// (image/embedding_store.h), the middleware prefetch/batch layer
// (middleware/parallel.h), and any other data-parallel scan.
//
// Design points:
//   - ParallelFor(n, fn) blocks until every fn(i) has returned; the calling
//     thread participates, so a pool of E executors spawns E-1 workers and
//     ThreadPool(1) degenerates to a plain serial loop with no threads.
//   - Work is claimed index-by-index under the pool mutex: shards are the
//     unit of scheduling, so callers should pass a handful of coarse shards
//     per executor, not one index per element.
//   - Concurrent ParallelFor calls from different threads serialize (one job
//     at a time); nested calls from inside fn are not allowed.
//   - TryPost enqueues a fire-and-forget task onto a *bounded* queue; when
//     the queue is full (or the pool has no workers) it refuses, which is
//     the backpressure signal: the caller runs the work itself instead of
//     piling up unbounded speculative tasks. Blocking jobs take priority
//     over queued tasks, so prefetching never delays a ParallelFor.
//   - All state is mutex/condvar protected (no lock-free cleverness), which
//     keeps the pool ThreadSanitizer-clean by construction — and, since the
//     migration to the annotated sync layer, provably lock-disciplined at
//     compile time: every job/queue field is GUARDED_BY(mu_), so an access
//     outside the lock is a -Wthread-safety error on Clang (DESIGN §3i).

#ifndef FUZZYDB_COMMON_THREAD_POOL_H_
#define FUZZYDB_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace fuzzydb {

/// Minimal task-submission interface. Schedule() runs `task` now (inline, on
/// the calling thread) or later (on any thread); every accepted task runs
/// exactly once, and implementations must not drop tasks silently while
/// callers can still observe their effects. The indirection exists so tests
/// can inject hostile schedulers (deferred, shuffled) under the middleware
/// prefetch layer.
class TaskExecutor {
 public:
  virtual ~TaskExecutor() = default;
  virtual void Schedule(std::function<void()> task) = 0;
};

/// A TaskExecutor that always runs the task inline on the calling thread.
/// Stateless; Get() returns a process-wide instance.
class InlineExecutor final : public TaskExecutor {
 public:
  void Schedule(std::function<void()> task) override { task(); }
  static InlineExecutor* Get();
};

/// Fixed pool of worker threads for blocking parallel loops plus a bounded
/// queue of fire-and-forget tasks.
class ThreadPool : public TaskExecutor {
 public:
  /// A pool with `num_executors` total executors: the calling thread plus
  /// `num_executors - 1` workers. 0 is treated as 1 (fully serial).
  /// `max_queued_tasks` bounds the TryPost queue.
  explicit ThreadPool(size_t num_executors, size_t max_queued_tasks = 64);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors, counting the thread that calls ParallelFor.
  size_t executors() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), spread across the executors; returns
  /// once all calls have completed. `fn` must not throw and must not call
  /// ParallelFor on the same pool (jobs from *different* threads are safe
  /// and simply serialize).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Enqueues `task` to run on a worker thread. Returns false — without
  /// running or keeping the task — when the queue is at max_queued_tasks,
  /// the pool has no workers, or the pool is shut down; that refusal is the
  /// backpressure signal. Tasks still queued when Shutdown() (or the
  /// destructor) runs are drained, not dropped: refusal-after-stop plus
  /// drain-before-join is what lets a submitter reason "either my TryPost
  /// returned false, or my task ran".
  bool TryPost(std::function<void()> task);

  /// Stops accepting tasks, drains the queue, and joins the workers.
  /// Idempotent; the destructor calls it. After Shutdown, TryPost refuses
  /// and ParallelFor still works (degenerating to a serial loop on the
  /// calling thread, which claims every index itself).
  void Shutdown();

  /// TaskExecutor: TryPost, falling back to running inline on refusal (the
  /// backpressure path — the submitter absorbs the work itself).
  void Schedule(std::function<void()> task) override;

  /// Queued (not yet started) TryPost tasks; test/diagnostic aid.
  size_t queued_tasks() const;

  /// Process-wide shared pool sized to the hardware concurrency (always at
  /// least one executor). Never destroyed before exit.
  static ThreadPool* Shared();

  /// std::thread::hardware_concurrency clamped to >= 1 (the standard allows
  /// 0 for "unknown"). The single definition of "is this host actually
  /// parallel" — bench reports derive their contention_only flag from it.
  static size_t HardwareConcurrency();

 private:
  void WorkerLoop();

  mutable Mutex mu_;
  CondVar job_cv_;   // workers: a new job or task is ready
  CondVar done_cv_;  // submitters: job finished / slot free
  // null = no job
  const std::function<void(size_t)>* job_fn_ GUARDED_BY(mu_) = nullptr;
  size_t job_n_ GUARDED_BY(mu_) = 0;     // total indices in the current job
  size_t job_next_ GUARDED_BY(mu_) = 0;  // next unclaimed index
  size_t job_done_ GUARDED_BY(mu_) = 0;  // indices whose fn() has returned
  // bumps per job so workers never re-enter one
  uint64_t job_id_ GUARDED_BY(mu_) = 0;
  // TryPost queue (bounded)
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  const size_t max_queued_tasks_;
  bool stop_ GUARDED_BY(mu_) = false;
  // Written only before the workers start and joined in the destructor;
  // never touched by a worker, so it needs no guard.
  std::vector<std::thread> workers_;
};

/// Contiguous index range [begin, end) of one shard.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Splits [0, n) into `shards` near-equal contiguous ranges (the first
/// n % shards ranges get one extra element). Deterministic in (n, shards)
/// only — the basis for bit-identical sharded scans at any thread count.
/// Empty ranges are kept so indices align with shard numbers.
std::vector<ShardRange> MakeShards(size_t n, size_t shards);

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_THREAD_POOL_H_
