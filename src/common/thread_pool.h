// A small fixed-size thread pool driving blocking parallel-for loops — the
// execution substrate for the sharded embedding kernels
// (image/embedding_store.h) and any other data-parallel scan.
//
// Design points:
//   - ParallelFor(n, fn) blocks until every fn(i) has returned; the calling
//     thread participates, so a pool of E executors spawns E-1 workers and
//     ThreadPool(1) degenerates to a plain serial loop with no threads.
//   - Work is claimed index-by-index under the pool mutex: shards are the
//     unit of scheduling, so callers should pass a handful of coarse shards
//     per executor, not one index per element.
//   - Concurrent ParallelFor calls from different threads serialize (one job
//     at a time); nested calls from inside fn are not allowed.
//   - All state is mutex/condvar protected (no lock-free cleverness), which
//     keeps the pool ThreadSanitizer-clean by construction.

#ifndef FUZZYDB_COMMON_THREAD_POOL_H_
#define FUZZYDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fuzzydb {

/// Fixed pool of worker threads for blocking parallel loops.
class ThreadPool {
 public:
  /// A pool with `num_executors` total executors: the calling thread plus
  /// `num_executors - 1` workers. 0 is treated as 1 (fully serial).
  explicit ThreadPool(size_t num_executors);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors, counting the thread that calls ParallelFor.
  size_t executors() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), spread across the executors; returns
  /// once all calls have completed. `fn` must not throw and must not call
  /// ParallelFor on the same pool (jobs from *different* threads are safe
  /// and simply serialize).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Process-wide shared pool sized to the hardware concurrency (always at
  /// least one executor). Never destroyed before exit.
  static ThreadPool* Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable job_cv_;   // workers: a new job is available
  std::condition_variable done_cv_;  // submitters: job finished / slot free
  const std::function<void(size_t)>* job_fn_ = nullptr;  // null = no job
  size_t job_n_ = 0;     // total indices in the current job
  size_t job_next_ = 0;  // next unclaimed index
  size_t job_done_ = 0;  // indices whose fn() has returned
  uint64_t job_id_ = 0;  // bumps per job so workers never re-enter one
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Contiguous index range [begin, end) of one shard.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Splits [0, n) into `shards` near-equal contiguous ranges (the first
/// n % shards ranges get one extra element). Deterministic in (n, shards)
/// only — the basis for bit-identical sharded scans at any thread count.
/// Empty ranges are kept so indices align with shard numbers.
std::vector<ShardRange> MakeShards(size_t n, size_t shards);

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_THREAD_POOL_H_
