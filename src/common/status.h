// Status / Result error model (Arrow/RocksDB idiom): recoverable errors are
// returned as values, never thrown across library boundaries.

#ifndef FUZZYDB_COMMON_STATUS_H_
#define FUZZYDB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace fuzzydb {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kCancelled,
  kDeadlineExceeded,
  kDataLoss,
};

/// Return value describing success or a recoverable failure.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// human-readable message. Statuses are cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory for the OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Unrecoverable corruption of stored data (bad checksum, short read of a
  /// region the header promised): the bytes on disk do not say what their
  /// header claims. Distinct from InvalidArgument (a well-formed request for
  /// something that is not a column file at all).
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>", for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status; analogous to arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status: `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status out of the enclosing function.
#define FUZZYDB_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::fuzzydb::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_STATUS_H_
