// Ticket<T>: a one-shot completion handle (DESIGN §3j).
//
// The query server hands one Ticket per admitted query: the submitter holds
// the handle, a pool worker (or the submitter itself, on the inline path)
// completes it exactly once, and any number of threads may Wait on it. It is
// a deliberately tiny subset of std::future — no continuations, no shared
// state allocation contract, no exceptions — built directly on the annotated
// sync layer (common/sync.h) so the lock discipline is compiler-checked:
// `value_` and `done_` are GUARDED_BY(mu_), and every access path is inside
// a MutexLock.
//
// Completion is first-wins: concurrent Complete calls race benignly, the
// first one publishes its value and returns true, the rest return false and
// their values are discarded. That is exactly the cancel-vs-worker race the
// server has (a cancelled query may still be completed by the worker that
// was already running it); first-wins makes the race an ordering question,
// never a torn value.

#ifndef FUZZYDB_COMMON_TICKET_H_
#define FUZZYDB_COMMON_TICKET_H_

#include <optional>
#include <utility>

#include "common/sync.h"

namespace fuzzydb {

/// One-shot, thread-safe completion handle for a value of type T.
template <typename T>
class Ticket {
 public:
  Ticket() = default;
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;

  /// Publishes `value` if the ticket is still open. Returns true for the
  /// (unique) call that completed the ticket, false when a previous
  /// completion already won — the losing value is discarded.
  bool Complete(T value) {
    {
      MutexLock lock(mu_);
      if (done_) return false;
      value_ = std::move(value);
      done_ = true;
      // Under the lock on purpose: a waiter that observed done_ may return
      // and destroy the ticket; notifying a destroyed condvar is
      // use-after-free (same hazard as ThreadPool::TryPost).
      cv_.NotifyAll();
    }
    return true;
  }

  /// Blocks until the ticket completes, then returns a reference to the
  /// value. The reference stays valid for the ticket's lifetime (the value
  /// is never overwritten — completion is one-shot).
  const T& Wait() const {
    MutexLock lock(mu_);
    while (!done_) cv_.Wait(mu_, lock);
    return *value_;
  }

  /// Non-blocking probe: the value if completed, nullopt otherwise (copies —
  /// callers that poll then read should Wait instead).
  std::optional<T> TryGet() const {
    MutexLock lock(mu_);
    if (!done_) return std::nullopt;
    return *value_;
  }

  /// True once a Complete call has won.
  bool done() const {
    MutexLock lock(mu_);
    return done_;
  }

 private:
  mutable Mutex mu_;
  mutable CondVar cv_;
  std::optional<T> value_ GUARDED_BY(mu_);
  bool done_ GUARDED_BY(mu_) = false;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_TICKET_H_
