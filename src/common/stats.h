// Summary statistics and the log-log slope fit used by the experiment
// harness to estimate cost-scaling exponents (Theorem 4.1/4.2).

#ifndef FUZZYDB_COMMON_STATS_H_
#define FUZZYDB_COMMON_STATS_H_

#include <span>
#include <vector>

#include "common/status.h"

namespace fuzzydb {

/// Arithmetic mean; returns 0 for an empty span.
double Mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 if fewer than two values.
double StdDev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]; requires non-empty input.
double Percentile(std::vector<double> xs, double p);

/// Least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination of the fit.
  double r2 = 0.0;
};

/// Ordinary least squares; requires xs.size() == ys.size() >= 2 and
/// non-constant xs.
Result<LinearFit> FitLinear(std::span<const double> xs,
                            std::span<const double> ys);

/// Fits log(y) = slope*log(x) + c, i.e. the exponent of a power law
/// y ~ x^slope. Requires strictly positive inputs.
Result<LinearFit> FitPowerLaw(std::span<const double> xs,
                              std::span<const double> ys);

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_STATS_H_
