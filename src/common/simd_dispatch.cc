#include "common/simd_dispatch.h"

#include <cassert>
#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FUZZYDB_SIMD_X86 1
#include <immintrin.h>
#endif

namespace fuzzydb {
namespace simd {

namespace {

void BlockSsdScalar(const int8_t* x, const int8_t* y, size_t n,
                    int32_t* out) {
  assert(n % kBlockDim == 0);
  for (size_t b = 0; b * kBlockDim < n; ++b) {
    int32_t acc = 0;
    for (size_t j = b * kBlockDim; j < (b + 1) * kBlockDim; ++j) {
      const int32_t d = static_cast<int32_t>(x[j]) - static_cast<int32_t>(y[j]);
      acc += d * d;
    }
    out[b] = acc;
  }
}

#if defined(FUZZYDB_SIMD_X86)

// Horizontal sum of 4 int32 lanes.
__attribute__((target("avx2"))) int32_t HSum4(__m128i v) {
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(v);
}

// Two 16-code blocks per 256-bit vector. maddubs and madd are in-lane, so
// block b lands in the low 128-bit lane and block b+1 in the high one.
// Operand bounds (codes in ±kInt8CodeMax): diff in [-126, 126] — no int8
// wrap in sub_epi8, |diff| fits both maddubs operands, pair sums < 2^15.
__attribute__((target("avx2"))) void BlockSsdAvx2(const int8_t* x,
                                                  const int8_t* y, size_t n,
                                                  int32_t* out) {
  assert(n % kBlockDim == 0);
  const size_t blocks = n / kBlockDim;
  size_t b = 0;
  for (; b + 2 <= blocks; b += 2) {
    const __m256i vx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(x + b * kBlockDim));
    const __m256i vy = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(y + b * kBlockDim));
    const __m256i diff = _mm256_sub_epi8(vx, vy);
    const __m256i ad = _mm256_abs_epi8(diff);
    const __m256i sq = _mm256_maddubs_epi16(ad, ad);  // 16 x s16 pair sums
    const __m256i s32 = _mm256_madd_epi16(sq, _mm256_set1_epi16(1));
    out[b] = HSum4(_mm256_castsi256_si128(s32));
    out[b + 1] = HSum4(_mm256_extracti128_si256(s32, 1));
  }
  if (b < blocks) {  // odd trailing block: same arithmetic, one 128-bit lane
    const __m128i vx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(x + b * kBlockDim));
    const __m128i vy = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(y + b * kBlockDim));
    const __m128i diff = _mm_sub_epi8(vx, vy);
    const __m128i ad = _mm_abs_epi8(diff);
    const __m128i sq = _mm_maddubs_epi16(ad, ad);
    out[b] = HSum4(_mm_madd_epi16(sq, _mm_set1_epi16(1)));
  }
}

// GCC's avx512 cast/extract intrinsics expand through a deliberately
// uninitialized __Y temporary (avxintrin.h), tripping -Wmaybe-uninitialized
// under -Werror; the value is never actually read.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) int32_t
HSum8Vnni(__m256i v) {
  const __m128i sum =
      _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  __m128i s = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

// Two 16-code blocks per iteration: sign-extend 32 int8 codes to int16,
// subtract, then one vpdpwssd accumulates diff*diff pairs into int32 lanes.
// cvtepi8_epi16 is sequential, so s16 lanes 0..15 are block b and 16..31
// are block b+1; dpwssd pairs in-order, so s32 lanes 0..7 / 8..15 split the
// same way.
__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) void
BlockSsdAvx512Vnni(const int8_t* x, const int8_t* y, size_t n, int32_t* out) {
  assert(n % kBlockDim == 0);
  const size_t blocks = n / kBlockDim;
  size_t b = 0;
  for (; b + 2 <= blocks; b += 2) {
    const __m256i bx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(x + b * kBlockDim));
    const __m256i by = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(y + b * kBlockDim));
    const __m512i diff =
        _mm512_sub_epi16(_mm512_cvtepi8_epi16(bx), _mm512_cvtepi8_epi16(by));
    const __m512i acc =
        _mm512_dpwssd_epi32(_mm512_setzero_si512(), diff, diff);
    out[b] = HSum8Vnni(_mm512_castsi512_si256(acc));
    out[b + 1] = HSum8Vnni(_mm512_extracti64x4_epi64(acc, 1));
  }
  if (b < blocks) {  // odd trailing block via the 256-bit VNNI form
    const __m128i bx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(x + b * kBlockDim));
    const __m128i by = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(y + b * kBlockDim));
    const __m256i diff =
        _mm256_sub_epi16(_mm256_cvtepi8_epi16(bx), _mm256_cvtepi8_epi16(by));
    out[b] = HSum8Vnni(_mm256_dpwssd_epi32(_mm256_setzero_si256(), diff, diff));
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // FUZZYDB_SIMD_X86

Level DetectUncached() {
#if defined(FUZZYDB_SIMD_X86)
  if (__builtin_cpu_supports("avx512vnni") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512bw")) {
    return Level::kAvx512Vnni;
  }
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

Level ActiveUncached() {
  Level level = Detect();
  // Runs once, under Active()'s magic-static init, before any worker thread
  // exists — and nothing in the process ever setenv()s — so the getenv
  // race concurrency-mt-unsafe guards against cannot occur here.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* forced = std::getenv("FUZZYDB_SIMD");
  if (forced != nullptr) {
    if (std::optional<Level> parsed = Parse(forced); parsed.has_value()) {
      // Clamp to hardware: forcing can narrow the ISA, never exceed it.
      if (*parsed < level) level = *parsed;
    }
  }
  return level;
}

}  // namespace

Level Detect() {
  static const Level cached = DetectUncached();
  return cached;
}

Level Active() {
  static const Level cached = ActiveUncached();
  return cached;
}

BlockSsdFn ResolveBlockSsd(Level level) {
#if defined(FUZZYDB_SIMD_X86)
  switch (level) {
    case Level::kAvx512Vnni:
      return BlockSsdAvx512Vnni;
    case Level::kAvx2:
      return BlockSsdAvx2;
    case Level::kScalar:
      return BlockSsdScalar;
  }
#else
  (void)level;
#endif
  return BlockSsdScalar;
}

BlockSsdFn ActiveBlockSsd() {
  static const BlockSsdFn cached = ResolveBlockSsd(Active());
  return cached;
}

std::string_view Name(Level level) {
  switch (level) {
    case Level::kAvx512Vnni:
      return "avx512vnni";
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
      return "scalar";
  }
  return "scalar";
}

std::optional<Level> Parse(std::string_view text) {
  if (text == "scalar") return Level::kScalar;
  if (text == "avx2") return Level::kAvx2;
  if (text == "avx512" || text == "avx512vnni") return Level::kAvx512Vnni;
  return std::nullopt;
}

}  // namespace simd
}  // namespace fuzzydb
