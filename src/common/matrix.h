// Small dense linear algebra: just enough for quadratic-form distances and
// the eigen-projection distance-bounding filter (Jacobi symmetric
// eigensolver). Not a general-purpose BLAS.

#ifndef FUZZYDB_COMMON_MATRIX_H_
#define FUZZYDB_COMMON_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"

namespace fuzzydb {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// Zero-filled rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// n x n identity.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Row r as a contiguous span.
  std::span<const double> Row(size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// True iff |At(i,j) - At(j,i)| <= tol for all i, j (requires square).
  bool IsSymmetric(double tol = 1e-12) const;

  /// Matrix-vector product; `x.size()` must equal cols().
  std::vector<double> Mul(std::span<const double> x) const;

  /// Quadratic form x^T * this * x; `x.size()` must equal rows() == cols().
  double QuadraticForm(std::span<const double> x) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Eigen-decomposition of a symmetric matrix: A = V diag(values) V^T.
struct EigenDecomposition {
  /// Eigenvalues, sorted descending.
  std::vector<double> values;
  /// Column i of `vectors` (as rows of this matrix: vectors.Row(i)) is the
  /// unit eigenvector for values[i].
  Matrix vectors;  // row i = eigenvector i
};

/// Cyclic Jacobi rotation eigensolver for symmetric matrices.
///
/// Converges for any symmetric input; returns InvalidArgument for non-square
/// or non-symmetric matrices. Cost O(n^3) per sweep; fine for n <= ~512.
Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                int max_sweeps = 64,
                                                double tol = 1e-12);

/// Euclidean norm of v.
double Norm2(std::span<const double> v);
/// Dot product; spans must be the same length.
double Dot(std::span<const double> a, std::span<const double> b);
/// Euclidean distance between equal-length vectors.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_MATRIX_H_
