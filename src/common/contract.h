// Paper-invariant contract macros (DESIGN §3d).
//
// The algorithmic guarantees of the paper are conditional: Theorems 4.1/4.2
// hold only for monotone (and, for the lower bound, strict) scoring rules,
// Theorem 3.1 only for t-norm/co-norm pairs satisfying the Bellman–Giertz
// axioms, and the cascade filter is dismissal-free only while every cheap
// level lower-bounds the exact distance [HSE+95]. FUZZYDB_DCHECK /
// FUZZYDB_INVARIANT let the hot loops assert those conditions inline:
// compiled to real checks when the build sets -DFUZZYDB_CHECKS=ON (debug and
// the CI "checks" leg), compiled to nothing in release builds — the
// expressions stay type-checked but are never evaluated.

#ifndef FUZZYDB_COMMON_CONTRACT_H_
#define FUZZYDB_COMMON_CONTRACT_H_

#include <string>

namespace fuzzydb {

/// Handler invoked on a failed contract check. The default prints
/// "file:line: contract violated: <expr> — <message>" to stderr and aborts;
/// tests install a capturing handler (which may throw to unwind).
using ContractViolationHandler = void (*)(const char* file, int line,
                                          const char* expr,
                                          const std::string& message);

/// Installs `handler` and returns the previous one. nullptr restores the
/// default abort handler. Not thread-safe; intended for test setup.
ContractViolationHandler SetContractViolationHandler(
    ContractViolationHandler handler);

/// True iff this translation unit was compiled with contract checks on.
constexpr bool ContractChecksEnabled() {
#ifdef FUZZYDB_ENABLE_CHECKS
  return true;
#else
  return false;
#endif
}

namespace internal {

/// Dispatches to the installed handler (default: print + abort).
void ContractFail(const char* file, int line, const char* expr,
                  const std::string& message);

}  // namespace internal
}  // namespace fuzzydb

#ifdef FUZZYDB_ENABLE_CHECKS
#define FUZZYDB_DCHECK(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::fuzzydb::internal::ContractFail(__FILE__, __LINE__, #cond, (msg));  \
    }                                                                       \
  } while (false)
#else
// Dead branch: the condition and message stay compiled (so checked code
// cannot rot) but are never evaluated and fold away entirely.
#define FUZZYDB_DCHECK(cond, msg)    \
  do {                               \
    if (false) {                     \
      static_cast<void>(cond);       \
      static_cast<void>(msg);        \
    }                                \
  } while (false)
#endif

/// Alias of FUZZYDB_DCHECK for checks that encode a *paper invariant*
/// (threshold monotonicity, lower-bounding filters, sorted-stream order)
/// rather than a local programming precondition.
#define FUZZYDB_INVARIANT(cond, msg) FUZZYDB_DCHECK(cond, msg)

#endif  // FUZZYDB_COMMON_CONTRACT_H_
