#include "common/thread_pool.h"

#include <algorithm>

namespace fuzzydb {

InlineExecutor* InlineExecutor::Get() {
  static InlineExecutor executor;
  return &executor;
}

ThreadPool::ThreadPool(size_t num_executors, size_t max_queued_tasks)
    : max_queued_tasks_(max_queued_tasks) {
  const size_t workers = num_executors > 1 ? num_executors - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    job_cv_.NotifyAll();
  }
  // Idempotent for sequential callers: a joined thread is not joinable.
  // A workerless pool never accepted tasks; with workers, WorkerLoop drains
  // the queue before honoring stop_, so nothing is left behind.
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

bool ThreadPool::TryPost(std::function<void()> task) {
  MutexLock lock(mu_);
  if (stop_ || workers_.empty() || tasks_.size() >= max_queued_tasks_) {
    return false;
  }
  tasks_.push_back(std::move(task));
  // Notify while still holding mu_: once TryPost returns true the caller may
  // observe the task's effect and destroy the pool, and a notify on a freed
  // condvar is use-after-free. Under the lock, the destructor's stop_ write
  // cannot interleave before this wakeup.
  job_cv_.NotifyOne();
  return true;
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (!TryPost(task)) task();
}

size_t ThreadPool::queued_tasks() const {
  MutexLock lock(mu_);
  return tasks_.size();
}

// Condition waits are spelled as explicit while loops rather than predicate
// lambdas throughout: the analysis checks a lambda as its own function,
// which cannot prove it holds mu_, so guarded reads inside one would fail
// -Wthread-safety (and rightly — nothing ties the lambda to the lock).
void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  MutexLock lock(mu_);
  // One job at a time: queue behind any job another thread is running.
  while (job_fn_ != nullptr) done_cv_.Wait(mu_, lock);
  job_fn_ = &fn;
  job_n_ = n;
  job_next_ = 0;
  job_done_ = 0;
  ++job_id_;
  job_cv_.NotifyAll();
  // The submitting thread is an executor too.
  while (job_next_ < job_n_) {
    const size_t i = job_next_++;
    lock.Unlock();
    fn(i);
    lock.Lock();
    ++job_done_;
  }
  while (job_done_ != job_n_) done_cv_.Wait(mu_, lock);
  job_fn_ = nullptr;
  done_cv_.NotifyAll();  // wake both queued submitters and nobody else
}

void ThreadPool::WorkerLoop() {
  MutexLock lock(mu_);
  uint64_t seen_job = 0;
  while (true) {
    while (!(stop_ || !tasks_.empty() ||
             (job_fn_ != nullptr && job_id_ != seen_job))) {
      job_cv_.Wait(mu_, lock);
    }
    // Blocking ParallelFor jobs take priority over fire-and-forget tasks:
    // a submitter is waiting on the job, nobody waits on a queued task.
    if (job_fn_ != nullptr && job_id_ != seen_job) {
      seen_job = job_id_;
      const std::function<void(size_t)>* fn = job_fn_;
      while (job_fn_ == fn && job_next_ < job_n_) {
        const size_t i = job_next_++;
        lock.Unlock();
        (*fn)(i);
        lock.Lock();
        if (++job_done_ == job_n_) done_cv_.NotifyAll();
      }
      continue;
    }
    if (!tasks_.empty()) {
      std::function<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.Unlock();
      task();
      lock.Lock();
      continue;
    }
    if (stop_) return;  // only once the task queue has drained
  }
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(HardwareConcurrency());
  return pool;
}

size_t ThreadPool::HardwareConcurrency() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

std::vector<ShardRange> MakeShards(size_t n, size_t shards) {
  shards = std::max<size_t>(shards, 1);
  std::vector<ShardRange> out(shards);
  const size_t base = n / shards;
  const size_t extra = n % shards;
  size_t begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t len = base + (s < extra ? 1 : 0);
    out[s] = {begin, begin + len};
    begin += len;
  }
  return out;
}

}  // namespace fuzzydb
