#include "common/thread_pool.h"

#include <algorithm>

namespace fuzzydb {

InlineExecutor* InlineExecutor::Get() {
  static InlineExecutor executor;
  return &executor;
}

ThreadPool::ThreadPool(size_t num_executors, size_t max_queued_tasks)
    : max_queued_tasks_(max_queued_tasks) {
  const size_t workers = num_executors > 1 ? num_executors - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // A workerless pool never accepted tasks; with workers, WorkerLoop drains
  // the queue before honoring stop_, so nothing is left behind.
}

bool ThreadPool::TryPost(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || workers_.empty() || tasks_.size() >= max_queued_tasks_) {
      return false;
    }
    tasks_.push_back(std::move(task));
  }
  job_cv_.notify_one();
  return true;
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (!TryPost(task)) task();
}

size_t ThreadPool::queued_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  // One job at a time: queue behind any job another thread is running.
  done_cv_.wait(lock, [this] { return job_fn_ == nullptr; });
  job_fn_ = &fn;
  job_n_ = n;
  job_next_ = 0;
  job_done_ = 0;
  ++job_id_;
  job_cv_.notify_all();
  // The submitting thread is an executor too.
  while (job_next_ < job_n_) {
    const size_t i = job_next_++;
    lock.unlock();
    fn(i);
    lock.lock();
    ++job_done_;
  }
  done_cv_.wait(lock, [this] { return job_done_ == job_n_; });
  job_fn_ = nullptr;
  done_cv_.notify_all();  // wake both queued submitters and nobody else
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen_job = 0;
  while (true) {
    job_cv_.wait(lock, [&] {
      return stop_ || !tasks_.empty() ||
             (job_fn_ != nullptr && job_id_ != seen_job);
    });
    // Blocking ParallelFor jobs take priority over fire-and-forget tasks:
    // a submitter is waiting on the job, nobody waits on a queued task.
    if (job_fn_ != nullptr && job_id_ != seen_job) {
      seen_job = job_id_;
      const std::function<void(size_t)>* fn = job_fn_;
      while (job_fn_ == fn && job_next_ < job_n_) {
        const size_t i = job_next_++;
        lock.unlock();
        (*fn)(i);
        lock.lock();
        if (++job_done_ == job_n_) done_cv_.notify_all();
      }
      continue;
    }
    if (!tasks_.empty()) {
      std::function<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      task();
      lock.lock();
      continue;
    }
    if (stop_) return;  // only once the task queue has drained
  }
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(HardwareConcurrency());
  return pool;
}

size_t ThreadPool::HardwareConcurrency() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

std::vector<ShardRange> MakeShards(size_t n, size_t shards) {
  shards = std::max<size_t>(shards, 1);
  std::vector<ShardRange> out(shards);
  const size_t base = n / shards;
  const size_t extra = n % shards;
  size_t begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t len = base + (s < extra ? 1 : 0);
    out[s] = {begin, begin + len};
    begin += len;
  }
  return out;
}

}  // namespace fuzzydb
