// Runtime dispatch for the int8 quantized-distance kernels (DESIGN §3g).
//
// Three implementations of one contract — blockwise sums of squared int8
// differences — selected once per process from CPUID plus an optional
// FUZZYDB_SIMD environment override:
//
//   kScalar      portable lane-free int32 loop; the only path on non-x86.
//   kAvx2        _mm256_maddubs_epi16 over |diff| bytes: 32 codes per op.
//                Sound because codes are clamped to ±kInt8CodeMax = ±63, so
//                diffs fit int8 without wrap, |diff| <= 126 fits both the
//                unsigned and the signed maddubs operand, and each s16 pair
//                sum is <= 2 * 126^2 = 31752 < 2^15 (no saturation).
//   kAvx512Vnni  vpdpwssd (AVX-512 VNNI) over sign-extended int16 diffs:
//                32 codes per 512-bit op, int32 accumulation in one
//                instruction. Guarded: compiled only on x86-64 GCC/Clang,
//                selected only when CPUID reports avx512vnni+vl+bw.
//
// The dispatch choice can never change answers: every kernel performs the
// same exact integer arithmetic (int32 sums of int8 difference squares are
// associative and overflow-free by the operand bounds above), so all three
// are bit-identical, not merely close. Tests compare them element-wise; the
// benches stamp the active level into their JSON reports so every measured
// number is attributable to the ISA it ran on.
//
// Forcing a path (CI runs the matrix): FUZZYDB_SIMD=scalar|avx2|avx512.
// A request the CPU cannot honor falls back to the best supported level at
// or below it — forcing can only narrow, never fake, the instruction set.

#ifndef FUZZYDB_COMMON_SIMD_DISPATCH_H_
#define FUZZYDB_COMMON_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace fuzzydb {
namespace simd {

/// Kernel implementations, ordered by width: clamping a request means
/// taking the min with what CPUID reports.
enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512Vnni = 2,
};

/// Dimensions per quantization block: the granularity of both the per-block
/// scale factors (image/quantized_store.h) and the kernel's output sums.
/// 16 int8 codes = one 128-bit lane, the unit all three kernels agree on.
constexpr size_t kBlockDim = 16;

/// Largest magnitude of a stored int8 code. ±63 rather than ±127 so the
/// AVX2 path's maddubs operands stay in range (see file comment): one sign
/// bit of headroom buys a 32-codes-per-instruction kernel.
constexpr int kInt8CodeMax = 63;

/// Blockwise squared-difference sums: out[b] = sum over j in block b of
/// (x[j] - y[j])^2, exact int32. `n` must be a multiple of kBlockDim and
/// `out` must have n / kBlockDim entries. Codes must be in
/// [-kInt8CodeMax, kInt8CodeMax]. Every Level computes bit-identical out[].
using BlockSsdFn = void (*)(const int8_t* x, const int8_t* y, size_t n,
                            int32_t* out);

/// The widest level this CPU supports (CPUID; kScalar on non-x86 builds).
Level Detect();

/// Detect() clamped by the FUZZYDB_SIMD environment override, computed once
/// per process. This is the level production kernels run at.
Level Active();

/// Kernel for an explicit level — for the bit-identity tests and the forced
/// CI legs. `level` must not exceed Detect() or the call may fault.
BlockSsdFn ResolveBlockSsd(Level level);

/// The production kernel: ResolveBlockSsd(Active()), cached.
BlockSsdFn ActiveBlockSsd();

/// "scalar", "avx2", "avx512vnni" — the bench-report stamp.
std::string_view Name(Level level);

/// Parses "scalar" / "avx2" / "avx512" / "avx512vnni" (the override
/// grammar); nullopt for anything else.
std::optional<Level> Parse(std::string_view text);

}  // namespace simd
}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_SIMD_DISPATCH_H_
