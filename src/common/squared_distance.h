// The vectorizable squared-Euclidean-distance kernel shared by every
// embedding code path (common/matrix.cc, image/embedding_store.cc,
// image/indexed_search.cc).
//
// The accumulation is *lane-blocked*: lane l of the accumulator holds the
// partial sum of (x[j]-y[j])^2 over the indices j with j % kLanes == l, each
// lane summed in ascending-j order, and the final reduction over lanes uses
// one fixed tree. Because lane membership depends only on the absolute index
// j, accumulating [a,b) and then [b,c) leaves the accumulator bit-identical
// to accumulating [a,c) in one call, for any split point — the property the
// cascade's arbitrary refinement checkpoints, the sharded batch kernels, and
// the serial paths all rely on to return bit-identical answers.
//
// The lane structure is also exactly what the auto-vectorizer wants: the hot
// loop is a fixed-width block of independent fused multiply-adds over
// restrict-qualified unit-stride pointers (kLanes = 8 doubles = four SSE2 /
// two AVX2 / one AVX-512 register), with no cross-iteration dependence
// inside a block. Build with -DFUZZYDB_NATIVE_ARCH=ON to let the compiler
// use the widest vectors the host supports.

#ifndef FUZZYDB_COMMON_SQUARED_DISTANCE_H_
#define FUZZYDB_COMMON_SQUARED_DISTANCE_H_

#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
#define FUZZYDB_RESTRICT __restrict__
#else
#define FUZZYDB_RESTRICT
#endif

namespace fuzzydb {

/// Split-invariant accumulation state for one squared distance. Value
/// semantics; zero-initialized; carry it across refinement checkpoints.
struct SquaredDistanceAccumulator {
  /// Fixed accumulation width (see file comment); part of the numeric
  /// contract, not a tuning knob: changing it changes low-order bits.
  static constexpr size_t kLanes = 8;

  double lanes[kLanes] = {};

  /// Adds (x[j] - y[j])^2 for j in [begin, end) to the lane sums.
  inline void Accumulate(const double* FUZZYDB_RESTRICT x,
                         const double* FUZZYDB_RESTRICT y, size_t begin,
                         size_t end) {
    size_t j = begin;
    // Peel to a lane boundary so each full block maps offset l to lane l.
    for (; j < end && j % kLanes != 0; ++j) {
      const double d = x[j] - y[j];
      lanes[j % kLanes] += d * d;
    }
    for (; j + kLanes <= end; j += kLanes) {
      for (size_t l = 0; l < kLanes; ++l) {  // the vector block
        const double d = x[j + l] - y[j + l];
        lanes[l] += d * d;
      }
    }
    for (; j < end; ++j) {
      const double d = x[j] - y[j];
      lanes[j % kLanes] += d * d;
    }
  }

  /// The accumulated sum — a valid lower bound on the full squared distance
  /// mid-row, the exact squared distance at full depth. Fixed reduction
  /// tree: equal lane states always reduce to the same double.
  inline double Total() const {
    return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
           ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  }
};

/// |x - y|^2 over n dimensions in one call.
inline double SquaredDistance(const double* FUZZYDB_RESTRICT x,
                              const double* FUZZYDB_RESTRICT y, size_t n) {
  SquaredDistanceAccumulator acc;
  acc.Accumulate(x, y, 0, n);
  return acc.Total();
}

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_SQUARED_DISTANCE_H_
