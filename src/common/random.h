// Deterministic pseudo-random generation for workloads and property tests.
//
// We carry our own generator (xoshiro256++) instead of <random> engines so
// that workloads are reproducible byte-for-byte across standard libraries —
// experiment tables in EXPERIMENTS.md depend on that.

#ifndef FUZZYDB_COMMON_RANDOM_H_
#define FUZZYDB_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fuzzydb {

/// xoshiro256++ PRNG seeded via SplitMix64; not cryptographic.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` using SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound), bound > 0 (rejection-free Lemire trick).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (one value per call; caches the pair).
  double NextGaussian();

  /// Zipf-distributed rank in [1, n] with exponent `s` (inverse-CDF over a
  /// precomputable harmonic table is avoided; uses rejection sampling).
  uint64_t NextZipf(uint64_t n, double s);

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool have_gauss_ = false;
  double cached_gauss_ = 0.0;
};

/// Returns n i.i.d. uniform [0,1) grades.
std::vector<double> UniformGrades(Rng* rng, size_t n);

/// Returns a random permutation of {0, 1, ..., n-1}.
std::vector<size_t> RandomPermutation(Rng* rng, size_t n);

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_RANDOM_H_
