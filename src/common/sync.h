// Capability-annotated synchronization layer (DESIGN §3i).
//
// Every mutex-discipline invariant in the concurrent stack — the ThreadPool
// job/task queues, the PrefetchSource ring buffer, the AccessLogSource log,
// the RtreeKnnSource refinement cache, the JsonReport entry list — used to
// be checked only dynamically, by whatever schedules the TSan leg happened
// to hit. Clang's Thread Safety Analysis ("C/C++ Thread Safety Analysis",
// Hutchins et al., -Wthread-safety) proves lock-held-before-access at
// compile time instead: shared state is declared GUARDED_BY its mutex,
// functions that expect the lock held declare REQUIRES, and any access path
// that cannot prove the capability is a compile error under the checks
// build (-Werror). Off Clang the macros expand to nothing and the wrappers
// compile down to the std primitives they hold.
//
// House rule (enforced by scripts/lint.sh): src/ code outside this header
// never names std::mutex / std::lock_guard / std::unique_lock /
// std::condition_variable directly — it uses Mutex / MutexLock / CondVar so
// the annotations cannot be bypassed by accident.
//
// tests/thread_safety/ holds the compile-fail harness proving the gate
// actually fires: snippets that read guarded state without the lock, skip a
// REQUIRES, double-acquire, or release an unheld mutex MUST fail to compile
// under -Wthread-safety -Werror (and a positive snippet must pass).

#ifndef FUZZYDB_COMMON_SYNC_H_
#define FUZZYDB_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Annotation macros — the standard set from the Clang Thread Safety
// Analysis documentation. No-ops on compilers without the attribute.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FUZZYDB_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef FUZZYDB_THREAD_ANNOTATION_
#define FUZZYDB_THREAD_ANNOTATION_(x)  // not Clang: expands to nothing
#endif

// Declares a class to be a capability (e.g. CAPABILITY("mutex")).
#define CAPABILITY(x) FUZZYDB_THREAD_ANNOTATION_(capability(x))
// Declares an RAII class that acquires on construction, releases on
// destruction.
#define SCOPED_CAPABILITY FUZZYDB_THREAD_ANNOTATION_(scoped_lockable)
// Data member readable/writable only while the capability is held.
#define GUARDED_BY(x) FUZZYDB_THREAD_ANNOTATION_(guarded_by(x))
// Pointer member whose *pointee* is protected by the capability.
#define PT_GUARDED_BY(x) FUZZYDB_THREAD_ANNOTATION_(pt_guarded_by(x))
// Lock-ordering declarations (deadlock prevention).
#define ACQUIRED_BEFORE(...) \
  FUZZYDB_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  FUZZYDB_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
// Caller must hold the capability exclusively (resp. at least shared).
#define REQUIRES(...) \
  FUZZYDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  FUZZYDB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
// Function acquires / releases the capability and holds it past return
// (resp. expects it held on entry and releases it).
#define ACQUIRE(...) \
  FUZZYDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  FUZZYDB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  FUZZYDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  FUZZYDB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
// Function acquires the capability only when returning `ret`.
#define TRY_ACQUIRE(...) \
  FUZZYDB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
// Caller must NOT hold the capability (non-reentrant deadlock guard).
#define EXCLUDES(...) FUZZYDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
// Runtime assertion that the capability is held (trust anchor).
#define ASSERT_CAPABILITY(x) FUZZYDB_THREAD_ANNOTATION_(assert_capability(x))
// Function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) FUZZYDB_THREAD_ANNOTATION_(lock_returned(x))
// Escape hatch: disables the analysis for one function. Every use must
// carry a comment saying why the analysis cannot see the invariant.
#define NO_THREAD_SAFETY_ANALYSIS \
  FUZZYDB_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace fuzzydb {

class CondVar;

/// std::mutex with the capability attribute: GUARDED_BY(mu_) on a member
/// makes every unlocked access a compile error under -Wthread-safety.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over a Mutex (RAII std::unique_lock underneath). Supports
/// mid-scope Unlock()/Lock() pairs — the analysis tracks the capability
/// through them — and is what CondVar waits release.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporary release inside the scope (e.g. running a task the lock must
  /// not cover); the destructor still releases only what is held.
  void Unlock() RELEASE() { lock_.unlock(); }
  void Lock() ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock. Wait takes both the
/// Mutex (so REQUIRES can prove the caller holds it) and the MutexLock
/// whose underlying lock the wait atomically releases and reacquires.
///
/// No predicate overload on purpose: a lambda is analyzed as its own
/// function, which cannot prove it holds the caller's mutex, so guarded
/// reads inside it would (rightly) fail the analysis. Spell the loop out:
///
///     MutexLock lock(mu_);
///     while (!ready_) cv_.Wait(mu_, lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock` (which must hold `mu`) and blocks until
  /// notified; reacquires before returning. Spurious wakeups possible —
  /// always wait in a while loop.
  void Wait(Mutex& mu, MutexLock& lock) REQUIRES(mu) {
    static_cast<void>(mu);
    cv_.wait(lock.lock_);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_SYNC_H_
