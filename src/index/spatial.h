// Multidimensional access methods (paper §2.1). The paper discusses linear
// quadtrees and grid files (whose directories "grow exponentially with the
// dimensionality"), and R-trees ("more robust ... at least for dimensions up
// to around 20"). All three are implemented behind this interface so the
// dimensionality-curse experiment (E6) can compare them against a linear
// scan on equal terms.

#ifndef FUZZYDB_INDEX_SPATIAL_H_
#define FUZZYDB_INDEX_SPATIAL_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/graded_set.h"

namespace fuzzydb {

/// Work counters for one kNN query.
struct KnnStats {
  /// Index structure units inspected: R-tree nodes, grid/quadtree cells, or
  /// scan chunks — the structure-access currency of the curse experiment.
  size_t node_accesses = 0;
  /// Exact point-distance computations performed.
  size_t distance_computations = 0;
};

/// One kNN answer entry.
struct KnnNeighbor {
  ObjectId id = 0;
  double distance = 0.0;
};

/// A point index over [0,1]^dim with Euclidean kNN.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Adds a point; its size must equal dimension() and coordinates must lie
  /// in [0, 1].
  virtual Status Insert(ObjectId id, std::span<const double> point) = 0;

  /// The k nearest neighbours of `query`, ascending by distance (ties by
  /// id). `stats` (optional) receives work counters.
  virtual Result<std::vector<KnnNeighbor>> Knn(std::span<const double> query,
                                               size_t k,
                                               KnnStats* stats) const = 0;

  virtual size_t dimension() const = 0;
  virtual size_t size() const = 0;
  virtual std::string name() const = 0;
};

/// Shared argument validation for Insert implementations.
Status ValidatePoint(std::span<const double> point, size_t dim);

/// Squared Euclidean distance.
double SquaredDistance(std::span<const double> a, std::span<const double> b);

/// Baseline: brute-force scan (no structure, N distance computations).
class LinearScanIndex final : public SpatialIndex {
 public:
  explicit LinearScanIndex(size_t dim) : dim_(dim) {}

  Status Insert(ObjectId id, std::span<const double> point) override;
  Result<std::vector<KnnNeighbor>> Knn(std::span<const double> query, size_t k,
                                       KnnStats* stats) const override;
  size_t dimension() const override { return dim_; }
  size_t size() const override { return ids_.size(); }
  std::string name() const override { return "scan"; }

 private:
  size_t dim_;
  std::vector<ObjectId> ids_;
  std::vector<double> coords_;  // row-major points
};

}  // namespace fuzzydb

#endif  // FUZZYDB_INDEX_SPATIAL_H_
