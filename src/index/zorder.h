// Linear quadtree [Sa89] (paper §2.1): space is cut into a fixed-depth
// 2^bits-per-axis grid and cells are linearized along the Z-order
// (Morton) curve, stored as one sorted array — the classic "linear"
// representation. Like the grid file, cell count is exponential in the
// dimension; the curse shows in how many cells a kNN must inspect.

#ifndef FUZZYDB_INDEX_ZORDER_H_
#define FUZZYDB_INDEX_ZORDER_H_

#include <cstdint>
#include <vector>

#include "index/spatial.h"

namespace fuzzydb {

/// Interleaves `coords` (each < 2^bits) into a Morton code; dim*bits must be
/// <= 60.
uint64_t MortonEncode(std::span<const uint32_t> coords, unsigned bits);

/// Inverse of MortonEncode.
std::vector<uint32_t> MortonDecode(uint64_t code, size_t dim, unsigned bits);

/// Z-order linear quadtree over [0,1]^dim.
class LinearQuadtree final : public SpatialIndex {
 public:
  /// `bits_per_dim` levels of subdivision per axis; dim * bits_per_dim must
  /// be <= 60 (pass 0 to auto-pick the largest feasible value up to 4).
  explicit LinearQuadtree(size_t dim, unsigned bits_per_dim = 0);

  Status Insert(ObjectId id, std::span<const double> point) override;
  Result<std::vector<KnnNeighbor>> Knn(std::span<const double> query, size_t k,
                                       KnnStats* stats) const override;
  size_t dimension() const override { return dim_; }
  size_t size() const override { return entries_.size(); }
  std::string name() const override { return "zquadtree"; }

  unsigned bits_per_dim() const { return bits_; }

  /// Number of distinct occupied Z-cells.
  size_t OccupiedCells() const;

 private:
  struct Entry {
    uint64_t code;
    ObjectId id;
    std::vector<double> point;
  };

  // Keeps entries_ sorted by (code, id); called lazily before queries.
  void EnsureSorted() const;
  double CellMinDist2(uint64_t code, std::span<const double> point) const;

  size_t dim_;
  unsigned bits_;
  mutable std::vector<Entry> entries_;
  mutable bool sorted_ = true;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_INDEX_ZORDER_H_
