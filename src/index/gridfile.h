// Grid file [NHS84] (paper §2.1). The directory partitions [0,1]^dim into
// buckets^dim cells; its size is exponential in the dimension — exactly the
// "dimensionality curse" the paper warns about. We keep the directory sparse
// (only occupied cells are materialized) so the structure stays buildable at
// high dimension, but the degradation still shows: with random data almost
// every point gets a private cell, and kNN must touch nearly all of them.

#ifndef FUZZYDB_INDEX_GRIDFILE_H_
#define FUZZYDB_INDEX_GRIDFILE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/spatial.h"

namespace fuzzydb {

/// Fixed-resolution grid file over [0,1]^dim.
class GridFile final : public SpatialIndex {
 public:
  /// `buckets_per_dim` >= 2 partitions each axis uniformly.
  GridFile(size_t dim, size_t buckets_per_dim = 4);

  Status Insert(ObjectId id, std::span<const double> point) override;
  Result<std::vector<KnnNeighbor>> Knn(std::span<const double> query, size_t k,
                                       KnnStats* stats) const override;
  size_t dimension() const override { return dim_; }
  size_t size() const override { return size_; }
  std::string name() const override { return "gridfile"; }

  /// Number of directory cells actually materialized.
  size_t OccupiedCells() const { return cells_.size(); }

  /// buckets^dim — the directory size a dense grid file would need
  /// (returned as double; it overflows integers quickly, which is the
  /// point).
  double VirtualDirectorySize() const;

 private:
  struct Entry {
    ObjectId id;
    std::vector<double> point;
  };
  struct CellHash {
    size_t operator()(const std::vector<uint32_t>& key) const;
  };

  std::vector<uint32_t> CellOf(std::span<const double> point) const;
  // Squared distance from `point` to the closed cell `key`.
  double CellMinDist2(const std::vector<uint32_t>& key,
                      std::span<const double> point) const;

  size_t dim_;
  size_t buckets_;
  std::unordered_map<std::vector<uint32_t>, std::vector<Entry>, CellHash>
      cells_;
  size_t size_ = 0;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_INDEX_GRIDFILE_H_
