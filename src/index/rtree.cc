#include "index/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>

#include "common/contract.h"

namespace fuzzydb {

Rect::Rect(std::span<const double> point)
    : lo_(point.begin(), point.end()), hi_(point.begin(), point.end()) {}

void Rect::Extend(const Rect& other) {
  if (lo_.empty()) {
    *this = other;
    return;
  }
  for (size_t i = 0; i < lo_.size(); ++i) {
    lo_[i] = std::min(lo_[i], other.lo_[i]);
    hi_[i] = std::max(hi_[i], other.hi_[i]);
  }
}

double Rect::Volume() const {
  // An empty (default-constructed) rect covers nothing: volume 0, not the
  // empty product 1 — otherwise Enlargement against an empty MBR goes
  // negative and ChooseLeaf/PickSeeds preferences invert.
  if (lo_.empty()) return 0.0;
  double v = 1.0;
  for (size_t i = 0; i < lo_.size(); ++i) v *= hi_[i] - lo_[i];
  return v;
}

double Rect::Enlargement(const Rect& other) const {
  Rect merged = *this;
  merged.Extend(other);
  const double enlargement = merged.Volume() - Volume();
  // Extend only grows extents and floating-point multiply is monotone in
  // each non-negative factor, so the merged volume can never round below
  // the original — a negative enlargement means a broken MBR.
  FUZZYDB_DCHECK(enlargement >= 0.0,
                 "negative MBR enlargement " + std::to_string(enlargement));
  return enlargement;
}

double Rect::MinDist2(std::span<const double> point) const {
  double s = 0.0;
  for (size_t i = 0; i < lo_.size(); ++i) {
    double d = 0.0;
    if (point[i] < lo_[i]) {
      d = lo_[i] - point[i];
    } else if (point[i] > hi_[i]) {
      d = point[i] - hi_[i];
    }
    s += d * d;
  }
  return s;
}

struct RTree::Node {
  bool leaf = true;
  Rect mbr;
  // Leaf payload.
  std::vector<ObjectId> ids;
  std::vector<std::vector<double>> points;
  // Internal payload.
  std::vector<std::unique_ptr<Node>> children;

  size_t NumEntries() const { return leaf ? ids.size() : children.size(); }

  void RecomputeMbr() {
    mbr = Rect();
    if (leaf) {
      for (const auto& p : points) mbr.Extend(Rect(p));
    } else {
      for (const auto& c : children) mbr.Extend(c->mbr);
    }
  }
};

struct RTree::SplitResult {
  std::unique_ptr<Node> right;  // null when no split happened
};

RTree::RTree(size_t dim, size_t max_entries)
    : dim_(dim),
      max_entries_(std::max<size_t>(max_entries, 4)),
      min_entries_(std::max<size_t>(max_entries, 4) / 2),
      root_(std::make_unique<Node>()) {}

RTree::~RTree() = default;

namespace {

// Guttman quadratic PickSeeds over a set of rectangles: the pair wasting the
// most volume if grouped together.
std::pair<size_t, size_t> PickSeeds(const std::vector<Rect>& rects) {
  size_t best_a = 0, best_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t a = 0; a < rects.size(); ++a) {
    for (size_t b = a + 1; b < rects.size(); ++b) {
      Rect merged = rects[a];
      merged.Extend(rects[b]);
      double waste = merged.Volume() - rects[a].Volume() - rects[b].Volume();
      if (waste > worst) {
        worst = waste;
        best_a = a;
        best_b = b;
      }
    }
  }
  return {best_a, best_b};
}

}  // namespace

RTree::SplitResult RTree::SplitNode(Node* node) {
  // Collect entry rectangles.
  const size_t n = node->NumEntries();
  std::vector<Rect> rects(n);
  for (size_t i = 0; i < n; ++i) {
    rects[i] = node->leaf ? Rect(node->points[i]) : node->children[i]->mbr;
  }
  auto [seed_a, seed_b] = PickSeeds(rects);

  std::vector<int> group(n, -1);  // 0 = stay, 1 = move right
  group[seed_a] = 0;
  group[seed_b] = 1;
  Rect mbr_a = rects[seed_a], mbr_b = rects[seed_b];
  size_t count_a = 1, count_b = 1;
  size_t remaining = n - 2;

  while (remaining > 0) {
    // Force-assign when one group must take all remaining to reach min fill.
    if (count_a + remaining == min_entries_) {
      for (size_t i = 0; i < n; ++i) {
        if (group[i] == -1) {
          group[i] = 0;
          mbr_a.Extend(rects[i]);
        }
      }
      break;
    }
    if (count_b + remaining == min_entries_) {
      for (size_t i = 0; i < n; ++i) {
        if (group[i] == -1) {
          group[i] = 1;
          mbr_b.Extend(rects[i]);
        }
      }
      break;
    }
    // PickNext: the entry with the largest preference difference.
    size_t pick = n;
    double best_diff = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (group[i] != -1) continue;
      double diff = std::fabs(mbr_a.Enlargement(rects[i]) -
                              mbr_b.Enlargement(rects[i]));
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    assert(pick < n);
    double ea = mbr_a.Enlargement(rects[pick]);
    double eb = mbr_b.Enlargement(rects[pick]);
    bool to_a = ea < eb ||
                (ea == eb && (mbr_a.Volume() < mbr_b.Volume() ||
                              (mbr_a.Volume() == mbr_b.Volume() &&
                               count_a <= count_b)));
    if (to_a) {
      group[pick] = 0;
      mbr_a.Extend(rects[pick]);
      ++count_a;
    } else {
      group[pick] = 1;
      mbr_b.Extend(rects[pick]);
      ++count_b;
    }
    --remaining;
  }

  // Materialize the right node and compact the left in place.
  auto right = std::make_unique<Node>();
  right->leaf = node->leaf;
  if (node->leaf) {
    std::vector<ObjectId> keep_ids;
    std::vector<std::vector<double>> keep_points;
    for (size_t i = 0; i < n; ++i) {
      if (group[i] == 1) {
        right->ids.push_back(node->ids[i]);
        right->points.push_back(std::move(node->points[i]));
      } else {
        keep_ids.push_back(node->ids[i]);
        keep_points.push_back(std::move(node->points[i]));
      }
    }
    node->ids = std::move(keep_ids);
    node->points = std::move(keep_points);
  } else {
    std::vector<std::unique_ptr<Node>> keep;
    for (size_t i = 0; i < n; ++i) {
      if (group[i] == 1) {
        right->children.push_back(std::move(node->children[i]));
      } else {
        keep.push_back(std::move(node->children[i]));
      }
    }
    node->children = std::move(keep);
  }
  node->RecomputeMbr();
  right->RecomputeMbr();
  return SplitResult{std::move(right)};
}

RTree::SplitResult RTree::InsertRecursive(Node* node, ObjectId id,
                                          std::span<const double> point) {
  if (node->leaf) {
    node->ids.push_back(id);
    node->points.emplace_back(point.begin(), point.end());
    node->mbr.Extend(Rect(point));
    if (node->NumEntries() > max_entries_) return SplitNode(node);
    return SplitResult{nullptr};
  }

  // ChooseLeaf: least enlargement, ties by smaller volume.
  Rect prect(point);
  size_t best = 0;
  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_volume = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node->children.size(); ++i) {
    double e = node->children[i]->mbr.Enlargement(prect);
    double v = node->children[i]->mbr.Volume();
    if (e < best_enlarge || (e == best_enlarge && v < best_volume)) {
      best_enlarge = e;
      best_volume = v;
      best = i;
    }
  }

  SplitResult child_split =
      InsertRecursive(node->children[best].get(), id, point);
  node->mbr.Extend(prect);
  if (child_split.right != nullptr) {
    node->children.push_back(std::move(child_split.right));
    if (node->NumEntries() > max_entries_) return SplitNode(node);
  }
  return SplitResult{nullptr};
}

Status RTree::Insert(ObjectId id, std::span<const double> point) {
  FUZZYDB_RETURN_NOT_OK(ValidatePoint(point, dim_));
  SplitResult top = InsertRecursive(root_.get(), id, point);
  if (top.right != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(top.right));
    new_root->RecomputeMbr();
    root_ = std::move(new_root);
  }
  ++size_;
  return Status::OK();
}

Status RTree::BulkLoadStr(std::vector<ObjectId> ids,
                          std::vector<double> points) {
  if (points.size() != ids.size() * dim_) {
    return Status::InvalidArgument("points must hold ids.size()*dim coords");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    FUZZYDB_RETURN_NOT_OK(
        ValidatePoint({points.data() + i * dim_, dim_}, dim_));
  }

  // Build leaves by Sort-Tile-Recursive: recursively sort the remaining
  // entries by the next coordinate and cut into equal tiles, one dimension
  // at a time, then pack max_entries_ entries per leaf.
  std::vector<size_t> order(ids.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const auto leaf_capacity = static_cast<double>(max_entries_);
  std::function<void(std::span<size_t>, size_t,
                     std::vector<std::unique_ptr<Node>>*)>
      tile = [&](std::span<size_t> slice, size_t axis,
                 std::vector<std::unique_ptr<Node>>* leaves) {
        if (slice.size() <= max_entries_ || axis >= dim_) {
          for (size_t start = 0; start < slice.size();
               start += max_entries_) {
            auto leaf = std::make_unique<Node>();
            leaf->leaf = true;
            size_t end = std::min(start + max_entries_, slice.size());
            for (size_t i = start; i < end; ++i) {
              size_t e = slice[i];
              leaf->ids.push_back(ids[e]);
              leaf->points.emplace_back(points.begin() + e * dim_,
                                        points.begin() + (e + 1) * dim_);
            }
            leaf->RecomputeMbr();
            leaves->push_back(std::move(leaf));
          }
          return;
        }
        std::sort(slice.begin(), slice.end(), [&](size_t a, size_t b) {
          return points[a * dim_ + axis] < points[b * dim_ + axis];
        });
        // Number of vertical slabs so that each slab holds about
        // sqrt-progressively balanced tiles (classic STR slab count).
        double n_leaves = std::ceil(static_cast<double>(slice.size()) /
                                    leaf_capacity);
        auto slabs = static_cast<size_t>(std::ceil(std::pow(
            n_leaves, 1.0 / static_cast<double>(dim_ - axis))));
        slabs = std::max<size_t>(1, slabs);
        size_t per_slab =
            (slice.size() + slabs - 1) / slabs;
        for (size_t start = 0; start < slice.size(); start += per_slab) {
          size_t end = std::min(start + per_slab, slice.size());
          tile(slice.subspan(start, end - start), axis + 1, leaves);
        }
      };

  std::vector<std::unique_ptr<Node>> level;
  if (!ids.empty()) tile(order, 0, &level);

  // Pack upward until a single root remains.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> next;
    for (size_t start = 0; start < level.size(); start += max_entries_) {
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      size_t end = std::min(start + max_entries_, level.size());
      for (size_t i = start; i < end; ++i) {
        parent->children.push_back(std::move(level[i]));
      }
      parent->RecomputeMbr();
      next.push_back(std::move(parent));
    }
    level = std::move(next);
  }

  if (level.empty()) {
    root_ = std::make_unique<Node>();
  } else {
    root_ = std::move(level.front());
  }
  size_ = ids.size();
  return Status::OK();
}

Result<std::vector<KnnNeighbor>> RTree::Knn(std::span<const double> query,
                                            size_t k, KnnStats* stats) const {
  FUZZYDB_RETURN_NOT_OK(ValidatePoint(query, dim_));
  if (k == 0) return Status::InvalidArgument("k must be >= 1");

  // Best-first search: a priority queue of nodes ordered by MBR mindist,
  // interleaved with a result heap of found points.
  struct QueueEntry {
    double min_dist2;
    const Node* node;
    bool operator>(const QueueEntry& other) const {
      return min_dist2 > other.min_dist2;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      frontier;
  frontier.push({root_->mbr.MinDist2(query), root_.get()});

  // The result heap keys on SQUARED distance, the same space the frontier
  // prunes in. Storing sqrt(d2) and re-squaring it for the prune loses an
  // ulp both ways: when sqrt rounds down, the re-squared k-th "distance"
  // undershoots the true d2 and the strict > break can discard a subtree
  // holding a true neighbour (a tie that should have won on id). The sqrt
  // happens exactly once, on the returned neighbours.
  struct Candidate {
    double dist2 = 0.0;
    ObjectId id = 0;
  };
  auto worse = [](const Candidate& a, const Candidate& b) {
    if (a.dist2 != b.dist2) return a.dist2 < b.dist2;
    return a.id < b.id;
  };
  std::priority_queue<Candidate, std::vector<Candidate>, decltype(worse)>
      best(worse);  // max-heap: top is the worst of the kept k

  KnnStats local;
  while (!frontier.empty()) {
    QueueEntry entry = frontier.top();
    frontier.pop();
    if (best.size() >= k && entry.min_dist2 > best.top().dist2) {
      break;  // nothing closer remains
    }
    ++local.node_accesses;
    const Node* node = entry.node;
    if (node->leaf) {
      for (size_t i = 0; i < node->ids.size(); ++i) {
        double d2 = SquaredDistance(node->points[i], query);
        ++local.distance_computations;
        Candidate cand{d2, node->ids[i]};
        if (best.size() < k) {
          best.push(cand);
        } else if (worse(cand, best.top())) {
          best.pop();
          best.push(cand);
        }
      }
    } else {
      for (const auto& child : node->children) {
        frontier.push({child->mbr.MinDist2(query), child.get()});
      }
    }
  }

  std::vector<KnnNeighbor> out(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    out[i] = {best.top().id, std::sqrt(best.top().dist2)};
    best.pop();
  }
  if (stats != nullptr) {
    stats->node_accesses += local.node_accesses;
    stats->distance_computations += local.distance_computations;
  }
  return out;
}

size_t RTree::Height() const {
  size_t h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

// Mixed priority queue of tree nodes (keyed by MBR mindist) and resolved
// point entries (keyed by exact distance): popping an entry before any node
// certifies it as the next nearest neighbour. Every key is a SQUARED
// distance — the same space batch Knn orders and prunes in — and sqrt runs
// exactly once on each emitted neighbour, so the iterator's stream prefix
// agrees with Knn(k) bit for bit at every k.
struct RTree::NearestIterator::Frontier {
  struct Item {
    double key = 0.0;        // squared distance
    const Node* node = nullptr;  // null for a resolved point entry
    KnnNeighbor entry;           // valid when node == nullptr
    bool operator>(const Item& other) const {
      if (key != other.key) return key > other.key;
      // Deterministic ties: expand nodes BEFORE emitting an equal-key
      // resolved entry. A subtree whose mindist equals the entry's distance
      // may still hold a point at exactly that distance with a smaller id;
      // only once every such subtree is expanded do all tied points sit in
      // the queue as entries, which then pop in ascending-id order —
      // matching batch Knn's global (d2, id) sort.
      if ((node == nullptr) != (other.node == nullptr)) {
        return node == nullptr;
      }
      return entry.id > other.entry.id;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue;
};

RTree::NearestIterator::NearestIterator(const RTree* tree,
                                        std::span<const double> query)
    : tree_(tree),
      query_(query.begin(), query.end()),
      frontier_(std::make_shared<Frontier>()) {
  frontier_->queue.push(
      {tree_->root_->mbr.MinDist2(query_), tree_->root_.get(), {}});
}

std::optional<KnnNeighbor> RTree::NearestIterator::Next() {
  auto& queue = frontier_->queue;
  while (!queue.empty()) {
    Frontier::Item item = queue.top();
    queue.pop();
    if (item.node == nullptr) return item.entry;
    ++stats_.node_accesses;
    if (item.node->leaf) {
      for (size_t i = 0; i < item.node->ids.size(); ++i) {
        double d2 = SquaredDistance(item.node->points[i], query_);
        ++stats_.distance_computations;
        queue.push({d2, nullptr,
                    {item.node->ids[i], std::sqrt(d2)}});
      }
    } else {
      for (const auto& child : item.node->children) {
        queue.push({child->mbr.MinDist2(query_), child.get(), {}});
      }
    }
  }
  return std::nullopt;
}

}  // namespace fuzzydb
