#include "index/zorder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace fuzzydb {

uint64_t MortonEncode(std::span<const uint32_t> coords, unsigned bits) {
  assert(coords.size() * bits <= 60);
  uint64_t code = 0;
  unsigned out_bit = 0;
  for (unsigned b = 0; b < bits; ++b) {
    for (size_t d = 0; d < coords.size(); ++d) {
      code |= static_cast<uint64_t>((coords[d] >> b) & 1u) << out_bit;
      ++out_bit;
    }
  }
  return code;
}

std::vector<uint32_t> MortonDecode(uint64_t code, size_t dim, unsigned bits) {
  std::vector<uint32_t> coords(dim, 0);
  unsigned in_bit = 0;
  for (unsigned b = 0; b < bits; ++b) {
    for (size_t d = 0; d < dim; ++d) {
      coords[d] |= static_cast<uint32_t>((code >> in_bit) & 1u) << b;
      ++in_bit;
    }
  }
  return coords;
}

LinearQuadtree::LinearQuadtree(size_t dim, unsigned bits_per_dim)
    : dim_(dim), bits_(bits_per_dim) {
  if (bits_ == 0) {
    bits_ = 4;
    while (bits_ > 1 && dim_ * bits_ > 60) --bits_;
  }
  assert(dim_ * bits_ <= 60);
}

Status LinearQuadtree::Insert(ObjectId id, std::span<const double> point) {
  FUZZYDB_RETURN_NOT_OK(ValidatePoint(point, dim_));
  const uint32_t cells = 1u << bits_;
  std::vector<uint32_t> coords(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    auto idx = static_cast<uint32_t>(point[i] * cells);
    coords[i] = std::min(idx, cells - 1);
  }
  entries_.push_back({MortonEncode(coords, bits_), id,
                      std::vector<double>(point.begin(), point.end())});
  sorted_ = false;
  return Status::OK();
}

void LinearQuadtree::EnsureSorted() const {
  if (sorted_) return;
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              if (a.code != b.code) return a.code < b.code;
              return a.id < b.id;
            });
  sorted_ = true;
}

double LinearQuadtree::CellMinDist2(uint64_t code,
                                    std::span<const double> point) const {
  std::vector<uint32_t> coords = MortonDecode(code, dim_, bits_);
  const double w = 1.0 / static_cast<double>(1u << bits_);
  double s = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    double lo = static_cast<double>(coords[i]) * w;
    double hi = lo + w;
    double d = 0.0;
    if (point[i] < lo) {
      d = lo - point[i];
    } else if (point[i] > hi) {
      d = point[i] - hi;
    }
    s += d * d;
  }
  return s;
}

Result<std::vector<KnnNeighbor>> LinearQuadtree::Knn(
    std::span<const double> query, size_t k, KnnStats* stats) const {
  FUZZYDB_RETURN_NOT_OK(ValidatePoint(query, dim_));
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  EnsureSorted();

  // Group the sorted array into runs of equal Morton code ("cells"), rank
  // them by mindist to the query, then open best-first.
  struct CellRun {
    double mind2 = 0.0;
    size_t begin = 0;
    size_t end = 0;
  };
  std::vector<CellRun> runs;
  for (size_t i = 0; i < entries_.size();) {
    size_t j = i;
    while (j < entries_.size() && entries_[j].code == entries_[i].code) ++j;
    runs.push_back({CellMinDist2(entries_[i].code, query), i, j});
    i = j;
  }
  std::sort(runs.begin(), runs.end(),
            [](const CellRun& a, const CellRun& b) {
              return a.mind2 < b.mind2;
            });

  KnnStats local;
  local.node_accesses += runs.size();  // linear directory examination

  auto worse = [](const KnnNeighbor& a, const KnnNeighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  };
  std::vector<KnnNeighbor> best;
  double kth2 = std::numeric_limits<double>::infinity();
  for (const CellRun& run : runs) {
    if (best.size() >= k && run.mind2 > kth2) break;
    ++local.node_accesses;  // run opened
    for (size_t i = run.begin; i < run.end; ++i) {
      double d2 = SquaredDistance(entries_[i].point, query);
      ++local.distance_computations;
      KnnNeighbor cand{entries_[i].id, std::sqrt(d2)};
      if (best.size() < k) {
        best.push_back(cand);
      } else if (worse(cand, *std::max_element(best.begin(), best.end(),
                                               worse))) {
        *std::max_element(best.begin(), best.end(), worse) = cand;
      } else {
        continue;
      }
      if (best.size() == k) {
        kth2 = 0.0;
        for (const KnnNeighbor& n : best) {
          kth2 = std::max(kth2, n.distance * n.distance);
        }
      }
    }
  }

  std::sort(best.begin(), best.end(), worse);
  if (best.size() > k) best.resize(k);
  if (stats != nullptr) {
    stats->node_accesses += local.node_accesses;
    stats->distance_computations += local.distance_computations;
  }
  return best;
}

size_t LinearQuadtree::OccupiedCells() const {
  EnsureSorted();
  size_t count = 0;
  for (size_t i = 0; i < entries_.size();) {
    size_t j = i;
    while (j < entries_.size() && entries_[j].code == entries_[i].code) ++j;
    ++count;
    i = j;
  }
  return count;
}

}  // namespace fuzzydb
