#include "index/gridfile.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fuzzydb {

size_t GridFile::CellHash::operator()(
    const std::vector<uint32_t>& key) const {
  // FNV-1a over the packed indices.
  uint64_t h = 1469598103934665603ULL;
  for (uint32_t v : key) {
    for (int b = 0; b < 4; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ULL;
    }
  }
  return static_cast<size_t>(h);
}

GridFile::GridFile(size_t dim, size_t buckets_per_dim)
    : dim_(dim), buckets_(std::max<size_t>(buckets_per_dim, 2)) {}

std::vector<uint32_t> GridFile::CellOf(std::span<const double> point) const {
  std::vector<uint32_t> key(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    auto idx = static_cast<size_t>(point[i] * static_cast<double>(buckets_));
    key[i] = static_cast<uint32_t>(std::min(idx, buckets_ - 1));
  }
  return key;
}

double GridFile::CellMinDist2(const std::vector<uint32_t>& key,
                              std::span<const double> point) const {
  const double w = 1.0 / static_cast<double>(buckets_);
  double s = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    double lo = static_cast<double>(key[i]) * w;
    double hi = lo + w;
    double d = 0.0;
    if (point[i] < lo) {
      d = lo - point[i];
    } else if (point[i] > hi) {
      d = point[i] - hi;
    }
    s += d * d;
  }
  return s;
}

Status GridFile::Insert(ObjectId id, std::span<const double> point) {
  FUZZYDB_RETURN_NOT_OK(ValidatePoint(point, dim_));
  cells_[CellOf(point)].push_back(
      {id, std::vector<double>(point.begin(), point.end())});
  ++size_;
  return Status::OK();
}

Result<std::vector<KnnNeighbor>> GridFile::Knn(std::span<const double> query,
                                               size_t k,
                                               KnnStats* stats) const {
  FUZZYDB_RETURN_NOT_OK(ValidatePoint(query, dim_));
  if (k == 0) return Status::InvalidArgument("k must be >= 1");

  // Examine occupied cells in ascending mindist order; stop opening buckets
  // once a cell cannot contain anything closer than the current k-th best.
  std::vector<std::pair<double, const std::vector<Entry>*>> order;
  order.reserve(cells_.size());
  for (const auto& [key, bucket] : cells_) {
    order.emplace_back(CellMinDist2(key, query), &bucket);
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  KnnStats local;
  local.node_accesses += order.size();  // directory examination

  auto worse = [](const KnnNeighbor& a, const KnnNeighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  };
  std::vector<KnnNeighbor> best;
  double kth2 = std::numeric_limits<double>::infinity();
  for (const auto& [mind2, bucket] : order) {
    if (best.size() >= k && mind2 > kth2) break;
    ++local.node_accesses;  // bucket open
    for (const Entry& e : *bucket) {
      double d2 = SquaredDistance(e.point, query);
      ++local.distance_computations;
      KnnNeighbor cand{e.id, std::sqrt(d2)};
      if (best.size() < k) {
        best.push_back(cand);
        if (best.size() == k) {
          kth2 = 0.0;
          for (const KnnNeighbor& n : best) {
            kth2 = std::max(kth2, n.distance * n.distance);
          }
        }
      } else if (worse(cand, *std::max_element(best.begin(), best.end(),
                                               worse))) {
        *std::max_element(best.begin(), best.end(), worse) = cand;
        kth2 = 0.0;
        for (const KnnNeighbor& n : best) {
          kth2 = std::max(kth2, n.distance * n.distance);
        }
      }
    }
  }

  std::sort(best.begin(), best.end(), worse);
  if (best.size() > k) best.resize(k);
  if (stats != nullptr) {
    stats->node_accesses += local.node_accesses;
    stats->distance_computations += local.distance_computations;
  }
  return best;
}

double GridFile::VirtualDirectorySize() const {
  return std::pow(static_cast<double>(buckets_), static_cast<double>(dim_));
}

}  // namespace fuzzydb
