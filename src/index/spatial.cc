#include "index/spatial.h"

#include <algorithm>
#include <cmath>

namespace fuzzydb {

Status ValidatePoint(std::span<const double> point, size_t dim) {
  if (point.size() != dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  for (double c : point) {
    if (!(c >= 0.0 && c <= 1.0)) {
      return Status::InvalidArgument("coordinates must lie in [0,1]");
    }
  }
  return Status::OK();
}

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

Status LinearScanIndex::Insert(ObjectId id, std::span<const double> point) {
  FUZZYDB_RETURN_NOT_OK(ValidatePoint(point, dim_));
  ids_.push_back(id);
  coords_.insert(coords_.end(), point.begin(), point.end());
  return Status::OK();
}

Result<std::vector<KnnNeighbor>> LinearScanIndex::Knn(
    std::span<const double> query, size_t k, KnnStats* stats) const {
  FUZZYDB_RETURN_NOT_OK(ValidatePoint(query, dim_));
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  std::vector<KnnNeighbor> all(ids_.size());
  for (size_t i = 0; i < ids_.size(); ++i) {
    std::span<const double> p(coords_.data() + i * dim_, dim_);
    all[i] = {ids_[i], std::sqrt(SquaredDistance(p, query))};
  }
  if (stats != nullptr) {
    stats->node_accesses += 1;  // the single sequential "structure"
    stats->distance_computations += ids_.size();
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k), all.end(),
                    [](const KnnNeighbor& a, const KnnNeighbor& b) {
                      if (a.distance != b.distance) {
                        return a.distance < b.distance;
                      }
                      return a.id < b.id;
                    });
  all.resize(k);
  return all;
}

}  // namespace fuzzydb
