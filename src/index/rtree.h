// R-tree [Gut84, BKSS90-style usage in paper §2.1] with Guttman's quadratic
// split and best-first (Hjaltason–Samet) kNN search.

#ifndef FUZZYDB_INDEX_RTREE_H_
#define FUZZYDB_INDEX_RTREE_H_

#include <memory>
#include <optional>

#include "index/spatial.h"

namespace fuzzydb {

/// Axis-aligned bounding rectangle in `dim` dimensions.
class Rect {
 public:
  Rect() = default;
  /// Degenerate rectangle covering a single point.
  explicit Rect(std::span<const double> point);

  /// Grows to cover `other`.
  void Extend(const Rect& other);

  /// Hypervolume (product of extents).
  double Volume() const;

  /// Volume increase required to cover `other`.
  double Enlargement(const Rect& other) const;

  /// Squared minimum distance from `point` to this rectangle (0 inside).
  double MinDist2(std::span<const double> point) const;

  size_t dim() const { return lo_.size(); }
  const std::vector<double>& lo() const { return lo_; }
  const std::vector<double>& hi() const { return hi_; }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

/// Point R-tree with configurable node capacity.
class RTree final : public SpatialIndex {
 public:
  /// `max_entries` >= 4; min fill is max_entries / 2.
  explicit RTree(size_t dim, size_t max_entries = 16);
  ~RTree() override;

  Status Insert(ObjectId id, std::span<const double> point) override;

  /// Sort-Tile-Recursive bulk load: replaces the current contents with a
  /// packed tree built from `ids`/`points` (row-major, ids.size()*dim
  /// coordinates). Packed trees have near-full leaves and much tighter
  /// MBRs than insertion-built ones, so kNN touches fewer nodes.
  Status BulkLoadStr(std::vector<ObjectId> ids, std::vector<double> points);
  Result<std::vector<KnnNeighbor>> Knn(std::span<const double> query, size_t k,
                                       KnnStats* stats) const override;
  size_t dimension() const override { return dim_; }
  size_t size() const override { return size_; }
  std::string name() const override { return "rtree"; }

  /// Tree height (1 = root is a leaf). For tests.
  size_t Height() const;

  /// Incremental nearest-neighbour iteration (Hjaltason–Samet): neighbours
  /// stream out in ascending distance order, one at a time, exploring only
  /// as much of the tree as each step requires — the enabler for
  /// filter-and-refine pipelines where the stopping rank is not known in
  /// advance.
  class NearestIterator {
   public:
    /// The tree must outlive the iterator and not be modified while
    /// iterating. `query` is copied.
    NearestIterator(const RTree* tree, std::span<const double> query);

    /// The next nearest neighbour, or nullopt when exhausted.
    std::optional<KnnNeighbor> Next();

    /// Work counters so far.
    const KnnStats& stats() const { return stats_; }

   private:
    struct Frontier;
    const RTree* tree_;
    std::vector<double> query_;
    std::shared_ptr<Frontier> frontier_;
    KnnStats stats_;
  };

 private:
  struct Node;
  struct SplitResult;
  friend class NearestIterator;

  SplitResult InsertRecursive(Node* node, ObjectId id,
                              std::span<const double> point);
  SplitResult SplitNode(Node* node);

  size_t dim_;
  size_t max_entries_;
  size_t min_entries_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_INDEX_RTREE_H_
