// Per-query execution budgets and cooperative cancellation (DESIGN §3j).
//
// The paper's algorithms run to their halting condition; a serving layer
// cannot afford that for every tenant. An AccessGovernor sits between one
// query's CountingSources and their sorted streams and *truncates* them when
// the query has spent its budget (or was cancelled, or passed its deadline):
// every subsequent NextSorted reports exhausted. That reuses the PR-2
// exhausted-source semantics — TA/A0/NRA/CA already treat an exhausted list
// as an all-zeros tail and halt with the correct top-k *of the consumed
// prefix* — so an interrupted query degrades to a well-defined partial
// result instead of aborting, and ExecuteTopK surfaces the interruption as
// ExecutionResult::completion (never as a failed Result).
//
// Determinism: the budget is charged on *consumed* sorted accesses, above
// the prefetch layer, in the algorithm's own (serial) consumption order —
// speculative PrefetchSource fetches below the gate never touch it. A fixed
// budget therefore truncates at exactly the same access prefix at every
// pool size and prefetch depth, so partial answers are bit-identical to a
// serial run with the same budget (enforced by tests/server_query_server_
// test.cc). Cancellation and deadlines are inherently timing-dependent:
// *whether* they fire is a race, but the result is always some consumed
// prefix's top-k, and the completion Status says which interruption won.

#ifndef FUZZYDB_MIDDLEWARE_BUDGET_H_
#define FUZZYDB_MIDDLEWARE_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"

namespace fuzzydb {

/// Gate for one query's sorted-access consumption. Thread-safe (atomics
/// only, no locks): the consuming algorithm calls AdmitSorted from its own
/// thread while Cancel may arrive from any other.
class AccessGovernor {
 public:
  /// `sorted_budget` bounds the consumed sorted accesses across all of the
  /// query's sources; 0 means unlimited. `deadline`, when set, truncates
  /// the streams once the steady clock passes it.
  explicit AccessGovernor(
      uint64_t sorted_budget = 0,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt)
      : budget_(sorted_budget), deadline_(deadline) {}

  AccessGovernor(const AccessGovernor&) = delete;
  AccessGovernor& operator=(const AccessGovernor&) = delete;

  /// Requests cooperative cancellation: every later AdmitSorted refuses, so
  /// the query's sorted streams all report exhausted and the algorithm
  /// halts with the prefix top-k. Safe from any thread, idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Charges one consumed sorted access. False — permanently, for every
  /// list — once the query is cancelled, past its deadline, or out of
  /// budget; the refusal reason is latched for CompletionStatus().
  bool AdmitSorted() {
    if (cancelled_.load(std::memory_order_relaxed)) {
      cancel_refused_.store(true, std::memory_order_relaxed);
      return false;
    }
    if (deadline_.has_value() &&
        std::chrono::steady_clock::now() >= *deadline_) {
      deadline_refused_.store(true, std::memory_order_relaxed);
      return false;
    }
    if (budget_ != 0) {
      // The consuming algorithm is single-threaded per query, but Cancel and
      // stats readers are not; CAS keeps the countdown exact regardless.
      uint64_t spent = spent_.load(std::memory_order_relaxed);
      do {
        if (spent >= budget_) {
          budget_refused_.store(true, std::memory_order_relaxed);
          return false;
        }
      } while (!spent_.compare_exchange_weak(spent, spent + 1,
                                             std::memory_order_relaxed));
      return true;
    }
    spent_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Consumed sorted accesses admitted so far.
  uint64_t spent() const { return spent_.load(std::memory_order_relaxed); }

  /// The configured budget (0 = unlimited).
  uint64_t budget() const { return budget_; }

  /// True iff some sorted access was refused (the run ended partial).
  bool interrupted() const {
    return cancel_refused_.load(std::memory_order_relaxed) ||
           deadline_refused_.load(std::memory_order_relaxed) ||
           budget_refused_.load(std::memory_order_relaxed);
  }

  /// OK for an uninterrupted run; otherwise the documented partial-result
  /// Status (precedence: Cancelled > DeadlineExceeded > ResourceExhausted).
  /// The returned items are still a correct top-k of the consumed prefix —
  /// this Status marks the answer partial, it does not mark the run failed.
  Status CompletionStatus() const {
    if (cancel_refused_.load(std::memory_order_relaxed)) {
      return Status::Cancelled(
          "query cancelled after " + std::to_string(spent()) +
          " consumed sorted accesses; items are the top-k of the consumed "
          "prefix");
    }
    if (deadline_refused_.load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded(
          "query deadline passed after " + std::to_string(spent()) +
          " consumed sorted accesses; items are the top-k of the consumed "
          "prefix");
    }
    if (budget_refused_.load(std::memory_order_relaxed)) {
      return Status::ResourceExhausted(
          "sorted-access budget of " + std::to_string(budget_) +
          " exhausted; items are the top-k of the consumed prefix");
    }
    return Status::OK();
  }

 private:
  const uint64_t budget_;
  const std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::atomic<uint64_t> spent_{0};
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> cancel_refused_{false};
  std::atomic<bool> deadline_refused_{false};
  std::atomic<bool> budget_refused_{false};
};

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_BUDGET_H_
