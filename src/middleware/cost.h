// Database access cost (paper §4): sorted accesses + random accesses, with a
// charged variant for the "more realistic cost measure" discussion — the
// paper notes a single sorted access is probably much more expensive than a
// single random access, and that the results are robust to the choice.

#ifndef FUZZYDB_MIDDLEWARE_COST_H_
#define FUZZYDB_MIDDLEWARE_COST_H_

#include <algorithm>
#include <cstdint>
#include <optional>

#include "common/contract.h"
#include "middleware/budget.h"
#include "middleware/source.h"

namespace fuzzydb {

/// Measured per-emit costs of an index-driven sorted-access backend
/// (image/rtree_source.h), calibrated from KnnStats / RtreeSourceStats on a
/// probe query: what one released stream item costs the R-tree driver,
/// priced in the same units as CostModel. The dimensionality curse lives in
/// the per-emit counts — high-dimensional trees expand many nodes per
/// release, and the calibrated numbers carry that into the plan choice
/// instead of a closed-form guess.
struct IndexDriverCalibration {
  /// Eigen-prefix dimensionality of the tree the numbers were measured on.
  size_t dim = 0;
  /// R-tree nodes expanded per released stream item.
  double node_accesses_per_emit = 1.0;
  /// Exact full-embedding refinements per released stream item.
  double refinements_per_emit = 1.0;
  /// Price of one node expansion (relative to sorted_unit = one precomputed
  /// sorted access).
  double node_unit = 1.0;
  /// Price of one exact refinement.
  double refine_unit = 1.0;

  /// The charged price of one sorted access served by the driver.
  double EmitUnit() const {
    return node_accesses_per_emit * node_unit +
           refinements_per_emit * refine_unit;
  }
};

/// Per-access prices, in arbitrary cost units. Consumed by the optimizer's
/// estimates, by CA's default random-access period, and by the adaptive
/// prefetch-depth heuristic (DESIGN §3f).
struct CostModel {
  /// Cost of one sorted access.
  double sorted_unit = 1.0;
  /// Cost of one random access. Paper §4: in real systems this is usually
  /// cheaper than a sorted access for an indexed subsystem, or far more
  /// expensive when the subsystem must recompute a similarity score.
  double random_unit = 1.0;
  /// When set, one of the query's sorted streams can be served by the
  /// incremental R-tree driver at these calibrated prices, and ChoosePlan
  /// weighs "rtree(dim=D)" against the precomputed-list plans.
  std::optional<IndexDriverCalibration> index_driver;
};

/// CA's random-access period h derived from the price ratio: spend one
/// random-access resolution every h ≈ random_unit/sorted_unit sorted rounds,
/// so the random budget tracks the sorted budget in charged cost. Never
/// below 1 (h→0 is TA's regime, which CA reaches at h = 1 already).
inline size_t DefaultCombinedPeriod(const CostModel& model) {
  return static_cast<size_t>(std::max(
      1.0, model.random_unit / std::max(model.sorted_unit, 1e-9)));
}

/// Counts of the two access modes, plus the speculative work the prefetch
/// layer did on the algorithm's behalf.
struct AccessCost {
  uint64_t sorted = 0;
  uint64_t random = 0;
  /// Sorted accesses a PrefetchSource issued ahead of consumption that the
  /// algorithm never popped. Kept out of `sorted` (and `total()`) so the
  /// Theorem 4.1 cost claims stay stated in consumed accesses — the counts
  /// the serial loop would have issued — while the speculative overhang is
  /// still visible instead of silently hidden. Schedule-dependent: two runs
  /// may waste different amounts even though `sorted`/`random` are
  /// bit-identical.
  uint64_t prefetched = 0;

  /// The paper's database access cost: sorted + random. Excludes
  /// `prefetched` (see above).
  uint64_t total() const { return sorted + random; }

  /// Every inner access actually issued, speculation included — what the
  /// subsystems really served, as opposed to what the cost model charges.
  uint64_t total_issued() const { return sorted + random + prefetched; }

  /// Charged cost with a per-random-access unit price relative to one
  /// sorted access costing 1 (paper §4's "more realistic cost measure").
  double Charged(double random_unit_cost) const {
    return static_cast<double>(sorted) +
           random_unit_cost * static_cast<double>(random);
  }

  AccessCost& operator+=(const AccessCost& other) {
    sorted += other.sorted;
    random += other.random;
    prefetched += other.prefetched;
    return *this;
  }
};

/// Decorator that charges every access on an underlying source to an
/// AccessCost tally. Filter access (AtLeast) is charged one sorted access
/// per returned object, matching the Chaudhuri–Gravano cost model.
///
/// When a shared AccessGovernor is attached (middleware/budget.h), every
/// sorted access is admitted through it first; a refusal makes this stream
/// report exhausted from then on, which the algorithms already handle as an
/// all-zeros tail — the budget/cancellation truncation point. Random and
/// filter access stay ungated: grades for already-discovered objects must
/// remain exact or the partial top-k would be wrong, not just short.
class CountingSource final : public GradedSource {
 public:
  /// `inner` and `cost` must outlive this wrapper.
  CountingSource(GradedSource* inner, AccessCost* cost)
      : inner_(inner), cost_(cost) {}

  /// Attaches the per-query budget/cancellation gate (null detaches). The
  /// governor is shared across the query's sources and must outlive them.
  void set_governor(AccessGovernor* governor) { governor_ = governor; }

  size_t Size() const override { return inner_->Size(); }

  std::optional<GradedObject> NextSorted() override {
    if (governor_ != nullptr && !governor_->AdmitSorted()) {
      return std::nullopt;  // budget/cancel/deadline: stream ends here
    }
    std::optional<GradedObject> next = inner_->NextSorted();
    if (next.has_value()) {
      ++cost_->sorted;
      FUZZYDB_DCHECK(
          next->grade >= 0.0 && next->grade <= 1.0,
          "source '" + inner_->name() + "' streamed grade outside [0,1]");
      // Every middleware algorithm routes sorted access through this
      // wrapper, so one check covers A0/TA/NRA/CA alike: the stream must be
      // grade-descending with ties by id ascending (paper §4) or the
      // halting thresholds below are meaningless.
      FUZZYDB_INVARIANT(
          !prev_streamed_.has_value() ||
              !GradeDescending(*next, *prev_streamed_),
          "source '" + inner_->name() +
              "' violated sorted-access order: object " +
              std::to_string(next->id) + " (grade " +
              std::to_string(next->grade) + ") after object " +
              std::to_string(prev_streamed_->id) + " (grade " +
              std::to_string(prev_streamed_->grade) + ")");
      prev_streamed_ = *next;
    }
    return next;
  }

  void RestartSorted() override {
    prev_streamed_.reset();
    inner_->RestartSorted();
  }

  double RandomAccess(ObjectId id) override {
    ++cost_->random;
    return inner_->RandomAccess(id);
  }

  std::vector<GradedObject> AtLeast(double threshold) override {
    std::vector<GradedObject> out = inner_->AtLeast(threshold);
    cost_->sorted += out.size();
    return out;
  }

  std::string name() const override { return inner_->name(); }

 private:
  GradedSource* inner_;
  AccessCost* cost_;
  AccessGovernor* governor_ = nullptr;
  // Last streamed object, for the sorted-order contract check.
  std::optional<GradedObject> prev_streamed_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_COST_H_
