// Collapses a whole monotone query tree into a single m-ary scoring rule
// over its atoms. Compositions of monotone rules are monotone, so nested
// Boolean combinations — e.g. (A AND[min] (B OR[max] C)) — can be answered
// by A0/TA directly over the m atom sources, instead of materializing
// intermediate graded sets.

#ifndef FUZZYDB_MIDDLEWARE_COMPOSITE_RULE_H_
#define FUZZYDB_MIDDLEWARE_COMPOSITE_RULE_H_

#include "core/query.h"
#include "core/scoring.h"

namespace fuzzydb {

/// A scoring rule whose arguments are the grades of `query`'s atoms in
/// CollectAtoms (left-to-right) order. Keeps `query` alive via shared
/// ownership. monotone()/strict() reflect the tree's structure.
ScoringRulePtr CompositeQueryRule(QueryPtr query);

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_COMPOSITE_RULE_H_
