// The obvious baseline from paper §4.1: stream every list in full (database
// access cost m·N), compute every object's overall grade, keep the top k.
// Correct for any scoring rule, monotone or not.

#ifndef FUZZYDB_MIDDLEWARE_NAIVE_H_
#define FUZZYDB_MIDDLEWARE_NAIVE_H_

#include "middleware/topk.h"

namespace fuzzydb {

/// Full-scan top-k: sorted access to every object on every list, then one
/// rule evaluation per object. Never uses random access.
Result<TopKResult> NaiveTopK(std::span<GradedSource* const> sources,
                             const ScoringRule& rule, size_t k);

/// Full materialization of the query's graded set (every object with its
/// overall grade) — the ground truth used by tests and experiment checks.
Result<GradedSet> NaiveAllGrades(std::span<GradedSource* const> sources,
                                 const ScoringRule& rule);

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_NAIVE_H_
