// The restricted subsystem interface of the middleware model (paper §4).
//
// A subsystem (QBIC, a relational engine, ...) exposes a graded set for one
// atomic query through exactly two modes:
//   - sorted access: objects stream out one by one in grade-descending order;
//   - random access: the grade of a given object id on demand.
// Everything the middleware algorithms may do is expressed against this
// interface, and the cost model counts these calls.

#ifndef FUZZYDB_MIDDLEWARE_SOURCE_H_
#define FUZZYDB_MIDDLEWARE_SOURCE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/graded_set.h"

namespace fuzzydb {

/// One subsystem's graded answer to one atomic query.
class GradedSource {
 public:
  virtual ~GradedSource() = default;

  /// Number of objects this source can grade (the database size N).
  virtual size_t Size() const = 0;

  /// Sorted access: the next object in grade-descending order (ties by id
  /// ascending), or nullopt when exhausted.
  virtual std::optional<GradedObject> NextSorted() = 0;

  /// Rewinds the sorted-access cursor to the top of the list ("continue
  /// where we left off" is the default; restart is explicit).
  virtual void RestartSorted() = 0;

  /// Random access: the grade of `id`; 0.0 for unknown objects (fuzzy-set
  /// convention: absent means grade 0).
  virtual double RandomAccess(ObjectId id) = 0;

  /// Filter access [CG96]: all objects with grade >= threshold, sorted
  /// descending. Used by the Chaudhuri–Gravano simulation of A0 for
  /// repositories that only support filter conditions.
  virtual std::vector<GradedObject> AtLeast(double threshold) = 0;

  /// Diagnostic label, e.g. "Color='red'".
  virtual std::string name() const { return "source"; }
};

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_SOURCE_H_
