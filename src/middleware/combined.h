// CA — the Combined Algorithm. The paper's §4 cost discussion ("a single
// sorted access is probably much more expensive than a single random
// access" — or the reverse) implies neither TA (random access per new
// object) nor NRA (none at all) is right for every price; the follow-up
// middleware work resolves this with an algorithm parameterized by the
// price ratio h = cost(random) / cost(sorted): run NRA-style rounds, but
// every h rounds spend one random-access batch resolving the most promising
// unresolved candidate. h -> 0 behaves like TA; h -> infinity degenerates
// to NRA.

#ifndef FUZZYDB_MIDDLEWARE_COMBINED_H_
#define FUZZYDB_MIDDLEWARE_COMBINED_H_

#include "middleware/parallel.h"
#include "middleware/topk.h"

namespace fuzzydb {

/// Runs CA with random-access period `h` (>= 1): one candidate is fully
/// resolved by random access every h parallel sorted rounds. Requires a
/// monotone rule. Returned grades are exact for resolved winners and
/// certified lower bounds otherwise (`grades_exact` reports which).
Result<TopKResult> CombinedTopK(std::span<GradedSource* const> sources,
                                const ScoringRule& rule, size_t k,
                                size_t h = 1);

/// Parallel CA (DESIGN §3f): the NRA-style sorted rounds run over
/// PrefetchSource pipelines and the every-h-rounds resolution batches its
/// (at most one per source) random probes through ResolveProbes. Per-source
/// access sequences — and therefore consumed counts, bounds, and the
/// returned top k — are identical to the serial loop at any prefetch depth
/// and pool size; only AccessCost::prefetched varies.
Result<TopKResult> CombinedTopK(std::span<GradedSource* const> sources,
                                const ScoringRule& rule, size_t k, size_t h,
                                const ParallelOptions& parallel);

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_COMBINED_H_
