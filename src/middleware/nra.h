// NRA — No Random Access. Some repositories (paper §4: "it may be possible
// to obtain data from some multimedia repositories in only limited ways")
// support sorted access only. NRA answers top-k using sorted access alone by
// maintaining, for every seen object, a certified interval
// [lower, upper] for its overall grade:
//   lower = rule(known grades, missing -> 0)
//   upper = rule(known grades, missing -> last grade seen on that list)
// and stopping when k objects' lower bounds dominate every other object's
// upper bound (including the bound for entirely unseen objects).

#ifndef FUZZYDB_MIDDLEWARE_NRA_H_
#define FUZZYDB_MIDDLEWARE_NRA_H_

#include "middleware/parallel.h"
#include "middleware/topk.h"

namespace fuzzydb {

/// Runs NRA. Requires a monotone rule. The returned items are a correct
/// top-k *set*; `grades_exact` is false when some winner still has unknown
/// per-list grades, in which case its reported grade is the certified lower
/// bound.
Result<TopKResult> NoRandomAccessTopK(std::span<GradedSource* const> sources,
                                      const ScoringRule& rule, size_t k);

/// NRA with the parallel execution layer (DESIGN §3e): per-source sorted
/// prefetch (NRA has no random accesses to batch). Bit-identical result and
/// per-source consumed access counts versus the serial variant at every
/// depth and pool size.
Result<TopKResult> NoRandomAccessTopK(std::span<GradedSource* const> sources,
                                      const ScoringRule& rule, size_t k,
                                      const ParallelOptions& options);

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_NRA_H_
