// The disjunction shortcut (paper §4.1): when the scoring function is max —
// the standard fuzzy disjunction A1 ∨ ... ∨ Am — the top k answers can be
// found with database access cost exactly m·k, *independent of N*: take the
// top k of each list under sorted access; the overall top k are among those
// m·k candidates, and each candidate's max over the lists where it appeared
// is its true overall grade for at least one valid top-k answer.
//
// max is monotone but not strict, which is why this beats the Θ(N^((m-1)/m))
// lower bound of Theorem 4.2 (the lower bound needs strictness).

#ifndef FUZZYDB_MIDDLEWARE_DISJUNCTION_H_
#define FUZZYDB_MIDDLEWARE_DISJUNCTION_H_

#include "middleware/parallel.h"
#include "middleware/topk.h"

namespace fuzzydb {

/// Top-k under the max rule with cost m·min(k, N) and no random accesses.
Result<TopKResult> DisjunctionTopK(std::span<GradedSource* const> sources,
                                   size_t k);

/// Parallel shortcut (DESIGN §3f): the m per-list top-k scans are fully
/// independent, so a pool runs them concurrently (one source per task, with
/// optional prefetch pipelines underneath); the per-list candidates are then
/// merged serially in source order, which is exactly the serial loop's
/// insertion sequence. Answers, per-source consumed counts, and tie-breaks
/// are identical to the serial shortcut at any pool size.
Result<TopKResult> DisjunctionTopK(std::span<GradedSource* const> sources,
                                   size_t k, const ParallelOptions& parallel);

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_DISJUNCTION_H_
