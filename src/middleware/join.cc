#include "middleware/join.h"

#include <array>

namespace fuzzydb {

Result<TopKJoinSource> TopKJoinSource::Create(GradedSource* left,
                                              GradedSource* right,
                                              ScoringRulePtr rule,
                                              std::string label,
                                              const ParallelOptions& parallel) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("null join input");
  }
  if (left->Size() != right->Size()) {
    return Status::InvalidArgument(
        "join inputs must grade the same object universe");
  }
  if (rule == nullptr) return Status::InvalidArgument("null rule");
  if (!rule->monotone()) {
    return Status::FailedPrecondition(
        "the top-k join requires a monotone rule: " + rule->name());
  }
  TopKJoinSource join;
  join.left_ = left;
  join.right_ = right;
  if (parallel.prefetch_depth > 0) {
    TaskExecutor* executor = parallel.EffectiveExecutor();
    join.left_prefetch_ = std::make_unique<PrefetchSource>(
        left, parallel.prefetch_depth, executor);
    join.right_prefetch_ = std::make_unique<PrefetchSource>(
        right, parallel.prefetch_depth, executor);
    join.left_ = join.left_prefetch_.get();
    join.right_ = join.right_prefetch_.get();
  }
  join.rule_ = std::move(rule);
  join.label_ = std::move(label);
  join.RestartSorted();
  return join;
}

void TopKJoinSource::RestartSorted() {
  left_->RestartSorted();
  right_->RestartSorted();
  candidates_ = {};
  seen_.clear();
  last_left_ = 1.0;
  last_right_ = 1.0;
  left_done_ = false;
  right_done_ = false;
}

double TopKJoinSource::Threshold() const {
  if (left_done_ && right_done_) return 0.0;  // nothing unseen remains
  std::array<double, 2> bounds{last_left_, last_right_};
  return rule_->Apply(bounds);
}

bool TopKJoinSource::PullRound() {
  if (left_done_ && right_done_) return false;
  // Pull both heads, then resolve the round's cross-probes on the calling
  // thread. Not on the pool: in a composed pipeline this round may already
  // be running inside a prefetch fill task, and a blocking ParallelFor from
  // there inverts lock order against a probe that needs the fill task's
  // prefetch mutex — see the class comment. Candidates are pushed
  // left-then-right — the serial discovery order.
  std::optional<GradedObject> l;
  std::optional<GradedObject> r;
  if (!left_done_) {
    l = left_->NextSorted();
    if (l.has_value()) {
      last_left_ = l->grade;
    } else {
      left_done_ = true;
    }
  }
  if (!right_done_) {
    r = right_->NextSorted();
    if (r.has_value()) {
      last_right_ = r->grade;
    } else {
      right_done_ = true;
    }
  }
  // Dedup in serial discovery order (left head first): if both heads name
  // the same object, only the left probe survives.
  const bool probe_left = l.has_value() && seen_.insert(l->id).second;
  const bool probe_right = r.has_value() && seen_.insert(r->id).second;
  double other_for_left = 0.0;   // right's grade for the left head
  double other_for_right = 0.0;  // left's grade for the right head
  if (probe_left) other_for_left = right_->RandomAccess(l->id);
  if (probe_right) other_for_right = left_->RandomAccess(r->id);
  if (probe_left) {
    std::array<double, 2> scores{l->grade, other_for_left};
    candidates_.push({l->id, rule_->Apply(scores)});
  }
  if (probe_right) {
    std::array<double, 2> scores{other_for_right, r->grade};
    candidates_.push({r->id, rule_->Apply(scores)});
  }
  return true;
}

std::optional<GradedObject> TopKJoinSource::NextSorted() {
  for (;;) {
    if (!candidates_.empty() &&
        candidates_.top().grade >= Threshold()) {
      GradedObject out = candidates_.top();
      candidates_.pop();
      return out;
    }
    if (!PullRound()) {
      // Inputs exhausted: everything left in the heap is certified.
      if (candidates_.empty()) return std::nullopt;
      GradedObject out = candidates_.top();
      candidates_.pop();
      return out;
    }
  }
}

double TopKJoinSource::RandomAccess(ObjectId id) {
  std::array<double, 2> scores{left_->RandomAccess(id),
                               right_->RandomAccess(id)};
  return rule_->Apply(scores);
}

std::vector<GradedObject> TopKJoinSource::AtLeast(double threshold) {
  RestartSorted();
  std::vector<GradedObject> out;
  while (std::optional<GradedObject> next = NextSorted()) {
    if (next->grade < threshold) break;
    out.push_back(*next);
  }
  RestartSorted();
  return out;
}

}  // namespace fuzzydb
