#include "middleware/join.h"

#include <array>

namespace fuzzydb {

Result<TopKJoinSource> TopKJoinSource::Create(GradedSource* left,
                                              GradedSource* right,
                                              ScoringRulePtr rule,
                                              std::string label) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("null join input");
  }
  if (left->Size() != right->Size()) {
    return Status::InvalidArgument(
        "join inputs must grade the same object universe");
  }
  if (rule == nullptr) return Status::InvalidArgument("null rule");
  if (!rule->monotone()) {
    return Status::FailedPrecondition(
        "the top-k join requires a monotone rule: " + rule->name());
  }
  TopKJoinSource join;
  join.left_ = left;
  join.right_ = right;
  join.rule_ = std::move(rule);
  join.label_ = std::move(label);
  join.RestartSorted();
  return join;
}

void TopKJoinSource::RestartSorted() {
  left_->RestartSorted();
  right_->RestartSorted();
  candidates_ = {};
  seen_.clear();
  last_left_ = 1.0;
  last_right_ = 1.0;
  left_done_ = false;
  right_done_ = false;
}

double TopKJoinSource::Threshold() const {
  if (left_done_ && right_done_) return 0.0;  // nothing unseen remains
  std::array<double, 2> bounds{last_left_, last_right_};
  return rule_->Apply(bounds);
}

bool TopKJoinSource::PullRound() {
  if (left_done_ && right_done_) return false;
  auto process = [this](const GradedObject& obj, bool from_left) {
    if (from_left) {
      last_left_ = obj.grade;
    } else {
      last_right_ = obj.grade;
    }
    if (!seen_.insert(obj.id).second) return;
    double other = from_left ? right_->RandomAccess(obj.id)
                             : left_->RandomAccess(obj.id);
    std::array<double, 2> scores = from_left
                                       ? std::array<double, 2>{obj.grade,
                                                               other}
                                       : std::array<double, 2>{other,
                                                               obj.grade};
    candidates_.push({obj.id, rule_->Apply(scores)});
  };
  if (!left_done_) {
    std::optional<GradedObject> next = left_->NextSorted();
    if (next.has_value()) {
      process(*next, /*from_left=*/true);
    } else {
      left_done_ = true;
    }
  }
  if (!right_done_) {
    std::optional<GradedObject> next = right_->NextSorted();
    if (next.has_value()) {
      process(*next, /*from_left=*/false);
    } else {
      right_done_ = true;
    }
  }
  return true;
}

std::optional<GradedObject> TopKJoinSource::NextSorted() {
  for (;;) {
    if (!candidates_.empty() &&
        candidates_.top().grade >= Threshold()) {
      GradedObject out = candidates_.top();
      candidates_.pop();
      return out;
    }
    if (!PullRound()) {
      // Inputs exhausted: everything left in the heap is certified.
      if (candidates_.empty()) return std::nullopt;
      GradedObject out = candidates_.top();
      candidates_.pop();
      return out;
    }
  }
}

double TopKJoinSource::RandomAccess(ObjectId id) {
  std::array<double, 2> scores{left_->RandomAccess(id),
                               right_->RandomAccess(id)};
  return rule_->Apply(scores);
}

std::vector<GradedObject> TopKJoinSource::AtLeast(double threshold) {
  RestartSorted();
  std::vector<GradedObject> out;
  while (std::optional<GradedObject> next = NextSorted()) {
    if (next->grade < threshold) break;
    out.push_back(*next);
  }
  RestartSorted();
  return out;
}

}  // namespace fuzzydb
