#include "middleware/combined.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace fuzzydb {

namespace {

struct Partial {
  std::vector<double> grades;
  std::vector<bool> known;
  size_t num_known = 0;
};

}  // namespace

Result<TopKResult> CombinedTopK(std::span<GradedSource* const> sources,
                                const ScoringRule& rule, size_t k, size_t h) {
  return CombinedTopK(sources, rule, k, h, ParallelOptions{});
}

Result<TopKResult> CombinedTopK(std::span<GradedSource* const> sources,
                                const ScoringRule& rule, size_t k, size_t h,
                                const ParallelOptions& parallel) {
  FUZZYDB_RETURN_NOT_OK(ValidateTopKArgs(sources, &rule, k));
  if (h == 0) return Status::InvalidArgument("h must be >= 1");
  if (!rule.monotone()) {
    return Status::FailedPrecondition(
        "CA requires a monotone scoring rule: " + rule.name());
  }

  const size_t m = sources.size();
  TopKResult result;
  ParallelSourceSet set(sources, parallel);

  std::unordered_map<ObjectId, Partial> seen;
  std::vector<double> last_seen(m, 1.0);
  std::vector<bool> done(m, false);
  size_t exhausted = 0;
  size_t round = 0;

  std::vector<double> buf(m);
  auto lower_of = [&](const Partial& p) {
    for (size_t j = 0; j < m; ++j) buf[j] = p.known[j] ? p.grades[j] : 0.0;
    return rule.Apply(buf);
  };
  auto upper_of = [&](const Partial& p) {
    for (size_t j = 0; j < m; ++j) {
      buf[j] = p.known[j] ? p.grades[j] : last_seen[j];
    }
    return rule.Apply(buf);
  };
  // One resolution = at most one missing-grade probe per source, batched
  // through ResolveProbes so a pool shards them by source. The serial
  // fallback resolves in ascending j — exactly the historical loop — and a
  // sharded run preserves each source's (single-probe) sequence, so
  // per-source access logs are identical either way.
  std::vector<ProbeList> probes(m);
  std::vector<std::vector<double>> probe_rows;
  auto resolve = [&](ObjectId id, Partial* p) {
    for (size_t j = 0; j < m; ++j) {
      probes[j].probes.clear();
      if (!p->known[j]) probes[j].probes.push_back({0, id});
    }
    probe_rows.assign(1, std::vector<double>(m, 0.0));
    ResolveProbes(set.counted(), probes, &probe_rows, set.pool());
    for (size_t j = 0; j < m; ++j) {
      if (!p->known[j]) {
        p->grades[j] = probe_rows[0][j];
        p->known[j] = true;
        ++p->num_known;
      }
    }
  };

  struct Bounded {
    ObjectId id = 0;
    double lower = 0.0;
    double upper = 0.0;
    bool complete = false;
  };
  std::vector<Bounded> winners;

  while (exhausted < m) {
    ++round;
    for (size_t j = 0; j < m; ++j) {
      if (done[j]) continue;
      std::optional<GradedObject> next = set.counted(j).NextSorted();
      if (!next.has_value()) {
        done[j] = true;
        ++exhausted;
        // Fagin virtual credit (same as TA/NRA): an exhausted list grades
        // every remaining object 0, so upper bounds must stop assuming its
        // last real grade.
        last_seen[j] = 0.0;
        continue;
      }
      last_seen[j] = next->grade;
      Partial& p = seen[next->id];
      if (p.grades.empty()) {
        p.grades.assign(m, 0.0);
        p.known.assign(m, false);
      }
      if (!p.known[j]) {
        p.known[j] = true;
        p.grades[j] = next->grade;
        ++p.num_known;
      }
    }
    if (seen.size() < k) continue;

    // Collect bounds.
    std::vector<Bounded> bounds;
    bounds.reserve(seen.size());
    for (const auto& [id, p] : seen) {
      bounds.push_back({id, lower_of(p), upper_of(p), p.num_known == m});
    }
    auto by_lower = [](const Bounded& a, const Bounded& b) {
      if (a.lower != b.lower) return a.lower > b.lower;
      return a.id < b.id;
    };
    std::nth_element(bounds.begin(), bounds.begin() + static_cast<long>(k - 1),
                     bounds.end(), by_lower);
    double kth_lower = bounds[k - 1].lower;
    double max_other_upper = rule.Apply(last_seen);  // unseen objects
    const Bounded* most_promising = nullptr;
    for (size_t i = k; i < bounds.size(); ++i) {
      if (bounds[i].upper > max_other_upper) {
        max_other_upper = bounds[i].upper;
      }
      if (!bounds[i].complete &&
          (most_promising == nullptr ||
           bounds[i].upper > most_promising->upper)) {
        most_promising = &bounds[i];
      }
    }
    if (kth_lower >= max_other_upper) {
      winners.assign(bounds.begin(), bounds.begin() + static_cast<long>(k));
      break;
    }

    // Every h rounds spend random accesses resolving the candidate whose
    // upper bound blocks termination (prefer the blocking outsider, else
    // the weakest-known member of the current top k).
    if (round % h == 0) {
      ObjectId to_resolve = 0;
      bool found = false;
      if (most_promising != nullptr) {
        to_resolve = most_promising->id;
        found = true;
      } else {
        for (size_t i = 0; i < k; ++i) {
          if (!bounds[i].complete) {
            to_resolve = bounds[i].id;
            found = true;
            break;
          }
        }
      }
      if (found) {
        Partial& p = seen[to_resolve];
        resolve(to_resolve, &p);
      }
    }
  }

  if (winners.empty()) {
    for (const auto& [id, p] : seen) {
      winners.push_back({id, lower_of(p), lower_of(p), p.num_known == m});
    }
    std::sort(winners.begin(), winners.end(),
              [](const Bounded& a, const Bounded& b) {
                if (a.lower != b.lower) return a.lower > b.lower;
                return a.id < b.id;
              });
    if (winners.size() > k) winners.resize(k);
  }

  result.grades_exact = true;
  for (const Bounded& w : winners) {
    result.items.push_back({w.id, w.lower});
    if (!w.complete) result.grades_exact = false;
  }
  std::sort(result.items.begin(), result.items.end(), GradeDescending);
  set.Finalize(&result);
  return result;
}

}  // namespace fuzzydb
