// The Threshold Algorithm (TA). The paper notes (§4.1) that "various
// improvements can be made to algorithm A0"; TA — from the follow-up line of
// work by Fagin, Lotem and Naor — is the canonical one, and is instance
// optimal rather than optimal only with high probability.
//
//   Do sorted access in parallel; for every newly seen object immediately
//   resolve all its remaining grades by random access; maintain the best k
//   overall grades; stop as soon as the k-th best is at least the threshold
//   τ = rule(g1,...,gm), where gj is the last grade seen under sorted access
//   on list j.

#ifndef FUZZYDB_MIDDLEWARE_THRESHOLD_H_
#define FUZZYDB_MIDDLEWARE_THRESHOLD_H_

#include "middleware/parallel.h"
#include "middleware/topk.h"

namespace fuzzydb {

/// Runs TA. Requires a monotone rule.
Result<TopKResult> ThresholdTopK(std::span<GradedSource* const> sources,
                                 const ScoringRule& rule, size_t k);

/// TA with the parallel execution layer (DESIGN §3e): per-source sorted
/// prefetch plus round-batched, pool-sharded random access. Bit-identical
/// result and per-source consumed access counts versus the serial variant
/// at every depth and pool size.
Result<TopKResult> ThresholdTopK(std::span<GradedSource* const> sources,
                                 const ScoringRule& rule, size_t k,
                                 const ParallelOptions& options);

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_THRESHOLD_H_
