#include "middleware/executor.h"

#include "common/random.h"
#include "middleware/combined.h"
#include "middleware/composite_rule.h"
#include "middleware/disjunction.h"
#include "middleware/fagin.h"
#include "middleware/filtered.h"
#include "middleware/naive.h"
#include "middleware/nra.h"
#include "middleware/optimizer.h"
#include "middleware/threshold.h"

namespace fuzzydb {

std::string AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kAuto:
      return "auto";
    case Algorithm::kNaive:
      return "naive";
    case Algorithm::kFagin:
      return "fagin-a0";
    case Algorithm::kThreshold:
      return "ta";
    case Algorithm::kNoRandomAccess:
      return "nra";
    case Algorithm::kFilteredSimulation:
      return "filtered";
    case Algorithm::kDisjunctionShortcut:
      return "max-shortcut";
    case Algorithm::kCombined:
      return "ca";
  }
  return "unknown";
}

namespace {

// A flat, unweighted OR of atoms under the standard max rule qualifies for
// the m·k disjunction shortcut.
bool IsPureMaxDisjunction(const Query& query) {
  if (query.kind() != Query::Kind::kOr) return false;
  if (query.weights().has_value()) return false;
  if (query.rule()->name() != "max") return false;
  for (const QueryPtr& c : query.children()) {
    if (c->kind() != Query::Kind::kAtomic) return false;
  }
  return true;
}

}  // namespace

Result<ExecutionResult> ExecuteTopK(QueryPtr query,
                                    const SourceResolver& resolver, size_t k,
                                    const ExecutorOptions& options) {
  if (query == nullptr) return Status::InvalidArgument("null query");

  std::vector<const Query*> atoms;
  query->CollectAtoms(&atoms);
  if (atoms.empty()) return Status::InvalidArgument("query has no atoms");

  std::vector<GradedSource*> sources;
  sources.reserve(atoms.size());
  for (const Query* atom : atoms) {
    Result<GradedSource*> src = resolver(*atom);
    if (!src.ok()) return src.status();
    sources.push_back(*src);
  }

  ScoringRulePtr rule = (query->kind() == Query::Kind::kAtomic)
                            ? MinRule()  // identity on a single score
                            : CompositeQueryRule(query);

  bool monotone = rule->monotone();
  if (monotone && options.verify_rule_claims) {
    Rng rng(options.verify_seed);
    if (!CheckMonotoneEmpirically(*rule, atoms.size(), options.verify_samples,
                                  &rng)) {
      return Status::FailedPrecondition(
          "scoring rule '" + rule->name() +
          "' claims monotonicity but an empirical check refuted it; "
          "refusing to run A0/TA (Garlic rule-vetting, paper §4.2). Run "
          "AuditScoringRule from src/analysis for a witness.");
    }
  }

  Algorithm algo = options.algorithm;
  if (algo == Algorithm::kAuto) {
    if (IsPureMaxDisjunction(*query)) {
      algo = Algorithm::kDisjunctionShortcut;
    } else {
      algo = monotone ? Algorithm::kThreshold : Algorithm::kNaive;
    }
  }
  if (algo == Algorithm::kDisjunctionShortcut &&
      !IsPureMaxDisjunction(*query)) {
    return Status::FailedPrecondition(
        "the m*k shortcut is only correct for a flat, unweighted "
        "max-disjunction of atoms");
  }

  if (!monotone && algo != Algorithm::kNaive) {
    return Status::FailedPrecondition(
        "query is not monotone (e.g. contains NOT); only the naive "
        "algorithm is correct");
  }

  // Adaptive execution (DESIGN §3f): fill in the knobs the caller left at
  // "auto" from the cost model's estimated access mix. Deriving can only
  // pick knob values — never answers: every algorithm is bit-identical
  // across depth/pool/period by the §3e determinism contract.
  ParallelOptions parallel = options.parallel;
  size_t combined_period = options.combined_period;
  // Budget / cancellation gate (DESIGN §3j): the caller's shared governor
  // wins; otherwise a private one is built from the convenience knobs.
  std::shared_ptr<AccessGovernor> governor = options.governor;
  if (governor == nullptr &&
      (options.sorted_access_budget > 0 || options.deadline.has_value())) {
    governor = std::make_shared<AccessGovernor>(options.sorted_access_budget,
                                                options.deadline);
  }
  parallel.governor = governor.get();
  if (options.adaptive_cost_model.has_value()) {
    const CostModel& model = *options.adaptive_cost_model;
    if (parallel.pool != nullptr && parallel.prefetch_depth == 0) {
      parallel.prefetch_depth =
          DerivePrefetchDepth(algo, sources[0]->Size(), sources.size(), k,
                              model, parallel.pool->executors());
    }
    if (combined_period == 0) combined_period = DefaultCombinedPeriod(model);
  }
  if (combined_period == 0) combined_period = 1;

  ExecutionResult out;
  out.algorithm_used = algo;
  Result<TopKResult> r = Status::Internal("unreachable");
  switch (algo) {
    case Algorithm::kNaive:
      r = NaiveTopK(sources, *rule, k);
      break;
    case Algorithm::kFagin:
      r = FaginTopK(sources, *rule, k, parallel);
      break;
    case Algorithm::kThreshold:
      r = ThresholdTopK(sources, *rule, k, parallel);
      break;
    case Algorithm::kNoRandomAccess:
      r = NoRandomAccessTopK(sources, *rule, k, parallel);
      break;
    case Algorithm::kFilteredSimulation: {
      FilteredOptions filtered;
      filtered.parallel = parallel;
      r = FilteredSimulationTopK(sources, *rule, k, filtered);
      break;
    }
    case Algorithm::kDisjunctionShortcut:
      r = DisjunctionTopK(sources, k, parallel);
      break;
    case Algorithm::kCombined:
      r = CombinedTopK(sources, *rule, k, combined_period, parallel);
      break;
    case Algorithm::kAuto:
      return Status::Internal("auto algorithm not resolved");
  }
  if (!r.ok()) return r.status();
  out.topk = std::move(r).value();
  if (governor != nullptr) out.completion = governor->CompletionStatus();
  return out;
}

}  // namespace fuzzydb
