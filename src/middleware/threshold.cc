#include "middleware/threshold.h"

#include <algorithm>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/contract.h"
#include "middleware/parallel.h"

namespace fuzzydb {

namespace {

// Min-heap on GradeDescending order: top() is the worst of the kept k.
struct WorstFirst {
  bool operator()(const GradedObject& a, const GradedObject& b) const {
    return GradeDescending(a, b);
  }
};

}  // namespace

Result<TopKResult> ThresholdTopK(std::span<GradedSource* const> sources,
                                 const ScoringRule& rule, size_t k) {
  return ThresholdTopK(sources, rule, k, ParallelOptions{});
}

Result<TopKResult> ThresholdTopK(std::span<GradedSource* const> sources,
                                 const ScoringRule& rule, size_t k,
                                 const ParallelOptions& options) {
  FUZZYDB_RETURN_NOT_OK(ValidateTopKArgs(sources, &rule, k));
  if (!rule.monotone()) {
    return Status::FailedPrecondition(
        "TA requires a monotone scoring rule: " + rule.name());
  }

  const size_t m = sources.size();
  TopKResult result;
  ParallelSourceSet set(sources, options);

  std::priority_queue<GradedObject, std::vector<GradedObject>, WorstFirst>
      best;  // holds at most k items; top() is the current k-th best
  std::unordered_set<ObjectId> processed;
  std::vector<double> last_seen(m, 1.0);
  std::vector<bool> done(m, false);
  size_t exhausted = 0;
  double prev_threshold = 1.0;

  // Round-local scratch, reused across rounds.
  struct Fresh {
    ObjectId id = 0;
    size_t list = 0;   // the list that streamed it first this round
    double grade = 0;  // its streamed grade there
  };
  std::vector<Fresh> fresh;
  std::vector<std::vector<double>> rows;  // rows[r][l]: grade of fresh[r]
  std::vector<ProbeList> probes(m);

  while (exhausted < m) {
    // 1) One sorted access per live list — the same round-depth access
    //    prefix as the serial loop, whatever the prefetchers ran ahead.
    fresh.clear();
    for (ProbeList& p : probes) p.probes.clear();
    for (size_t j = 0; j < m; ++j) {
      if (done[j]) continue;
      std::optional<GradedObject> next = set.counted(j).NextSorted();
      if (!next.has_value()) {
        done[j] = true;
        ++exhausted;
        // An exhausted list grades every unseen object 0 (absent means
        // grade 0), so its contribution to the threshold drops to 0 — not
        // its stale last grade. Without this, TA keeps scanning the other
        // lists long after the threshold should have fallen.
        last_seen[j] = 0.0;
        continue;
      }
      last_seen[j] = next->grade;
      if (processed.insert(next->id).second) {
        fresh.push_back({next->id, j, next->grade});
      }
    }
    // 2) The round's missing-grade probes, batched and sharded by source
    //    instead of issued as m-1 sequential calls per fresh object. Each
    //    source's probes stay in discovery order, so per-source access
    //    sequences match the serial loop exactly.
    if (rows.size() < fresh.size()) rows.resize(fresh.size());
    for (size_t r = 0; r < fresh.size(); ++r) {
      rows[r].assign(m, 0.0);
      rows[r][fresh[r].list] = fresh[r].grade;
      for (size_t l = 0; l < m; ++l) {
        if (l != fresh[r].list) probes[l].probes.push_back({r, fresh[r].id});
      }
    }
    ResolveProbes(set.counted(), probes, &rows, set.pool());
    // 3) Heap updates in discovery order (the serial processing order).
    for (size_t r = 0; r < fresh.size(); ++r) {
      GradedObject overall{fresh[r].id, rule.Apply(rows[r])};
      if (best.size() < k) {
        best.push(overall);
      } else if (GradeDescending(overall, best.top())) {
        best.pop();
        best.push(overall);
      }
    }
    // Threshold check once per round of parallel sorted accesses.
    const double threshold = rule.Apply(last_seen);
    // Theorem 4.1's halting argument needs the threshold to only ever fall:
    // last_seen is pointwise non-increasing (sorted access; exhausted lists
    // drop to 0) and the rule is monotone, so a rise means a broken source
    // or a mis-declared rule.
    FUZZYDB_INVARIANT(threshold <= prev_threshold + 1e-12,
                      "TA halting threshold rose from " +
                          std::to_string(prev_threshold) + " to " +
                          std::to_string(threshold) +
                          " under rule " + rule.name());
    prev_threshold = threshold;
    if (best.size() >= k && best.top().grade >= threshold) break;
  }

  result.items.resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    result.items[i] = best.top();
    best.pop();
  }
  set.Finalize(&result);
  return result;
}

}  // namespace fuzzydb
