#include "middleware/topk.h"

namespace fuzzydb {

Status ValidateTopKArgs(std::span<GradedSource* const> sources,
                        const ScoringRule* rule, size_t k) {
  if (sources.empty()) {
    return Status::InvalidArgument("need at least one source");
  }
  for (GradedSource* s : sources) {
    if (s == nullptr) return Status::InvalidArgument("null source");
  }
  if (rule == nullptr) return Status::InvalidArgument("null scoring rule");
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  return Status::OK();
}

}  // namespace fuzzydb
