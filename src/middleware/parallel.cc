#include "middleware/parallel.h"

#include <algorithm>
#include <deque>

#include "common/sync.h"

namespace fuzzydb {

// All mutable fields live behind one mutex — declared GUARDED_BY(mu), so
// Clang proves it — and fill tasks hold the state via shared_ptr: a task
// the executor runs after the decorator died (or after a RestartSorted)
// either no-ops on `cancelled` or harmlessly prefetches the restarted
// stream. Holding `mu` across inner accesses is what serializes the
// single-threaded inner source against concurrent fills and probes, which
// is what PT_GUARDED_BY on `inner` records.
struct PrefetchSource::State {
  State(GradedSource* inner_source, size_t ring_depth)
      : inner(inner_source), depth(std::max<size_t>(ring_depth, 1)) {}

  Mutex mu;
  GradedSource* const inner PT_GUARDED_BY(mu);
  const size_t depth;
  std::deque<GradedObject> buffer GUARDED_BY(mu);
  // inner stream ended (until restart)
  bool exhausted GUARDED_BY(mu) = false;
  // a refill task is scheduled or running
  bool fill_scheduled GUARDED_BY(mu) = false;
  // Quiesce()/destructor: no more async fills
  bool cancelled GUARDED_BY(mu) = false;
  uint64_t fetched GUARDED_BY(mu) = 0;
  uint64_t consumed GUARDED_BY(mu) = 0;

  // Fills the ring buffer up to depth.
  void FillLocked() REQUIRES(mu) {
    while (!exhausted && buffer.size() < depth) {
      std::optional<GradedObject> next = inner->NextSorted();
      if (!next.has_value()) {
        exhausted = true;
        break;
      }
      ++fetched;
      buffer.push_back(*next);
    }
  }
};

PrefetchSource::PrefetchSource(GradedSource* inner, size_t depth,
                               TaskExecutor* executor)
    : state_(std::make_shared<State>(inner, depth)), executor_(executor) {}

PrefetchSource::~PrefetchSource() {
  if (state_ == nullptr) return;  // moved-from
  // Taking the mutex waits out a running fill; cancelling makes any task
  // still queued in the executor a no-op.
  MutexLock lock(state_->mu);
  state_->cancelled = true;
}

PrefetchSource::Stats PrefetchSource::Quiesce() {
  MutexLock lock(state_->mu);
  state_->cancelled = true;
  return {state_->fetched, state_->consumed};
}

PrefetchSource::Stats PrefetchSource::stats() const {
  MutexLock lock(state_->mu);
  return {state_->fetched, state_->consumed};
}

size_t PrefetchSource::Size() const {
  MutexLock lock(state_->mu);
  return state_->inner->Size();
}

std::optional<GradedObject> PrefetchSource::NextSorted() {
  std::optional<GradedObject> out;
  {
    MutexLock lock(state_->mu);
    if (state_->buffer.empty() && !state_->exhausted) {
      // Synchronous fallback: progress must never depend on the executor
      // getting around to a fill task. Fetch just the one item the consumer
      // needs — running ahead is the async path's job.
      std::optional<GradedObject> next = state_->inner->NextSorted();
      if (next.has_value()) {
        ++state_->fetched;
        state_->buffer.push_back(*next);
      } else {
        state_->exhausted = true;
      }
    }
    if (!state_->buffer.empty()) {
      out = state_->buffer.front();
      state_->buffer.pop_front();
      ++state_->consumed;
    }
  }
  if (out.has_value()) ScheduleRefillIfNeeded();
  return out;
}

void PrefetchSource::ScheduleRefillIfNeeded() {
  {
    MutexLock lock(state_->mu);
    if (state_->cancelled || state_->exhausted || state_->fill_scheduled ||
        state_->buffer.size() >= state_->depth) {
      return;
    }
    state_->fill_scheduled = true;
  }
  // Outside the lock: Schedule may run the task inline (InlineExecutor, or
  // a full ThreadPool queue applying backpressure).
  executor_->Schedule([state = state_] {
    MutexLock lock(state->mu);
    if (!state->cancelled) state->FillLocked();
    state->fill_scheduled = false;
  });
}

void PrefetchSource::RestartSorted() {
  MutexLock lock(state_->mu);
  // Anything fetched but not consumed stays in `fetched`, so the overhang
  // shows up in wasted() — a restart does not launder speculation.
  state_->buffer.clear();
  state_->exhausted = false;
  state_->inner->RestartSorted();
}

double PrefetchSource::RandomAccess(ObjectId id) {
  MutexLock lock(state_->mu);
  return state_->inner->RandomAccess(id);
}

std::vector<GradedObject> PrefetchSource::AtLeast(double threshold) {
  MutexLock lock(state_->mu);
  return state_->inner->AtLeast(threshold);
}

std::string PrefetchSource::name() const {
  MutexLock lock(state_->mu);
  return state_->inner->name();
}

namespace {

// Shared sharding skeleton: `probe(l, row, id)` resolves one probe against
// source l. One thread per source, so probes stay in discovery order and
// per-source state (cost tallies, cursors) is never touched concurrently.
template <typename ProbeFn>
void ResolveProbesImpl(size_t m, std::span<const ProbeList> probes,
                       ThreadPool* pool, const ProbeFn& probe) {
  auto resolve_source = [&](size_t l) {
    for (const auto& [row, id] : probes[l].probes) {
      probe(l, row, id);
    }
  };
  size_t total = 0;
  for (const ProbeList& p : probes) total += p.probes.size();
  if (pool != nullptr && pool->executors() > 1 && total > 1) {
    pool->ParallelFor(m, resolve_source);
  } else {
    for (size_t l = 0; l < m; ++l) resolve_source(l);
  }
}

}  // namespace

void ResolveProbes(std::span<CountingSource> counted,
                   std::span<const ProbeList> probes,
                   std::vector<std::vector<double>>* rows, ThreadPool* pool) {
  ResolveProbesImpl(counted.size(), probes, pool,
                    [&](size_t l, size_t row, ObjectId id) {
                      (*rows)[row][l] = counted[l].RandomAccess(id);
                    });
}

void ResolveProbes(std::span<GradedSource* const> sources,
                   std::span<const ProbeList> probes,
                   std::vector<std::vector<double>>* rows, ThreadPool* pool) {
  ResolveProbesImpl(sources.size(), probes, pool,
                    [&](size_t l, size_t row, ObjectId id) {
                      (*rows)[row][l] = sources[l]->RandomAccess(id);
                    });
}

ParallelSourceSet::ParallelSourceSet(std::span<GradedSource* const> sources,
                                     const ParallelOptions& options)
    : pool_(options.pool) {
  const size_t m = sources.size();
  per_source_.resize(m);
  counted_.reserve(m);
  if (options.prefetch_depth > 0) {
    TaskExecutor* executor = options.EffectiveExecutor();
    prefetch_.reserve(m);
    for (GradedSource* s : sources) {
      prefetch_.emplace_back(s, options.prefetch_depth, executor);
    }
    for (size_t j = 0; j < m; ++j) {
      counted_.emplace_back(&prefetch_[j], &per_source_[j]);
    }
  } else {
    for (size_t j = 0; j < m; ++j) {
      counted_.emplace_back(sources[j], &per_source_[j]);
    }
  }
  for (CountingSource& c : counted_) {
    c.set_governor(options.governor);
    c.RestartSorted();
  }
}

void ParallelSourceSet::Finalize(TopKResult* result) {
  for (size_t j = 0; j < prefetch_.size(); ++j) {
    per_source_[j].prefetched += prefetch_[j].Quiesce().wasted();
  }
  result->cost = AccessCost{};
  for (const AccessCost& c : per_source_) result->cost += c;
  result->per_source = std::move(per_source_);
}

}  // namespace fuzzydb
