#include "middleware/disjunction.h"

#include <algorithm>
#include <unordered_map>

namespace fuzzydb {

Result<TopKResult> DisjunctionTopK(std::span<GradedSource* const> sources,
                                   size_t k) {
  ScoringRulePtr max_rule = MaxRule();
  FUZZYDB_RETURN_NOT_OK(ValidateTopKArgs(sources, max_rule.get(), k));

  TopKResult result;
  std::unordered_map<ObjectId, double> best;
  for (GradedSource* s : sources) {
    CountingSource counted(s, &result.cost);
    counted.RestartSorted();
    for (size_t i = 0; i < k; ++i) {
      std::optional<GradedObject> next = counted.NextSorted();
      if (!next.has_value()) break;
      auto [it, inserted] = best.try_emplace(next->id, next->grade);
      if (!inserted) it->second = std::max(it->second, next->grade);
    }
  }

  result.items.reserve(best.size());
  for (const auto& [id, grade] : best) result.items.push_back({id, grade});
  k = std::min(k, result.items.size());
  std::partial_sort(result.items.begin(),
                    result.items.begin() + static_cast<long>(k),
                    result.items.end(), GradeDescending);
  result.items.resize(k);
  return result;
}

}  // namespace fuzzydb
