#include "middleware/disjunction.h"

#include <algorithm>
#include <unordered_map>

namespace fuzzydb {

Result<TopKResult> DisjunctionTopK(std::span<GradedSource* const> sources,
                                   size_t k) {
  return DisjunctionTopK(sources, k, ParallelOptions{});
}

Result<TopKResult> DisjunctionTopK(std::span<GradedSource* const> sources,
                                   size_t k,
                                   const ParallelOptions& parallel) {
  ScoringRulePtr max_rule = MaxRule();
  FUZZYDB_RETURN_NOT_OK(ValidateTopKArgs(sources, max_rule.get(), k));

  const size_t m = sources.size();
  TopKResult result;
  ParallelSourceSet set(sources, parallel);

  // Scan phase: each list's top-k prefix is independent of every other
  // list, so the pool runs one scan per source. Each scan only touches its
  // own CountingSource (and its own slot of `scanned`) — no shared state.
  std::vector<std::vector<GradedObject>> scanned(m);
  auto scan_source = [&](size_t j) {
    scanned[j].reserve(k);
    for (size_t i = 0; i < k; ++i) {
      std::optional<GradedObject> next = set.counted(j).NextSorted();
      if (!next.has_value()) break;
      scanned[j].push_back(*next);
    }
  };
  if (set.pool() != nullptr && set.pool()->executors() > 1 && m > 1) {
    set.pool()->ParallelFor(m, scan_source);
  } else {
    for (size_t j = 0; j < m; ++j) scan_source(j);
  }

  // Merge phase, serial and in source order: the same try_emplace sequence
  // the serial loop performs, so the candidate map (and its iteration
  // order, which the partial_sort tie-breaks inherit) is identical.
  std::unordered_map<ObjectId, double> best;
  for (size_t j = 0; j < m; ++j) {
    for (const GradedObject& g : scanned[j]) {
      auto [it, inserted] = best.try_emplace(g.id, g.grade);
      if (!inserted) it->second = std::max(it->second, g.grade);
    }
  }

  result.items.reserve(best.size());
  for (const auto& [id, grade] : best) result.items.push_back({id, grade});
  k = std::min(k, result.items.size());
  std::partial_sort(result.items.begin(),
                    result.items.begin() + static_cast<long>(k),
                    result.items.end(), GradeDescending);
  result.items.resize(k);
  set.Finalize(&result);
  return result;
}

}  // namespace fuzzydb
