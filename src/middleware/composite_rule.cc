#include "middleware/composite_rule.h"

#include <cassert>

namespace fuzzydb {

namespace {

double EvalNode(const Query& node, std::span<const double> atom_scores,
                size_t* next_atom) {
  switch (node.kind()) {
    case Query::Kind::kAtomic:
      assert(*next_atom < atom_scores.size());
      return atom_scores[(*next_atom)++];
    case Query::Kind::kNot:
      return node.negation()(
          EvalNode(*node.children()[0], atom_scores, next_atom));
    case Query::Kind::kAnd:
    case Query::Kind::kOr: {
      std::vector<double> child_scores;
      child_scores.reserve(node.children().size());
      for (const QueryPtr& c : node.children()) {
        child_scores.push_back(EvalNode(*c, atom_scores, next_atom));
      }
      return node.rule()->Apply(child_scores);
    }
  }
  return 0.0;
}

class CompositeQueryRuleImpl final : public ScoringRule {
 public:
  explicit CompositeQueryRuleImpl(QueryPtr query)
      : query_(std::move(query)),
        num_atoms_(query_->NumAtoms()),
        monotone_(query_->IsMonotone()),
        strict_(query_->IsStrict()) {}

  double Apply(std::span<const double> scores) const override {
    assert(scores.size() == num_atoms_);
    size_t next_atom = 0;
    return EvalNode(*query_, scores, &next_atom);
  }

  std::string name() const override { return "query:" + query_->ToString(); }
  bool monotone() const override { return monotone_; }
  bool strict() const override { return strict_; }

 private:
  QueryPtr query_;
  size_t num_atoms_ = 0;
  bool monotone_ = false;
  bool strict_ = false;
};

}  // namespace

ScoringRulePtr CompositeQueryRule(QueryPtr query) {
  assert(query != nullptr);
  return std::make_shared<CompositeQueryRuleImpl>(std::move(query));
}

}  // namespace fuzzydb
