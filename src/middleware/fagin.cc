#include "middleware/fagin.h"

#include <algorithm>

#include "middleware/parallel.h"

namespace fuzzydb {

Result<TopKResult> FaginTopK(std::span<GradedSource* const> sources,
                             const ScoringRule& rule, size_t k) {
  return FaginTopK(sources, rule, k, ParallelOptions{});
}

Result<TopKResult> FaginTopK(std::span<GradedSource* const> sources,
                             const ScoringRule& rule, size_t k,
                             const ParallelOptions& options) {
  FUZZYDB_RETURN_NOT_OK(ValidateTopKArgs(sources, &rule, k));
  if (!rule.monotone()) {
    return Status::FailedPrecondition(
        "A0 requires a monotone scoring rule: " + rule.name());
  }

  const size_t m = sources.size();
  TopKResult result;
  ParallelSourceSet set(sources, options);

  // Phase 1: parallel sorted access until >= k objects seen on every list.
  std::vector<std::unordered_map<ObjectId, double>> seen(m);
  std::unordered_map<ObjectId, size_t> seen_count;
  size_t matches = 0;
  size_t exhausted = 0;
  std::vector<bool> done(m, false);
  while (matches < k && exhausted < m) {
    for (size_t j = 0; j < m; ++j) {
      if (done[j]) continue;
      std::optional<GradedObject> next = set.counted(j).NextSorted();
      if (!next.has_value()) {
        done[j] = true;
        ++exhausted;
        // An exhausted list has implicitly been read to the end: every
        // object it never delivered sits there with grade 0 (absent means
        // grade 0). Credit it as seen on list j, or Phase 1 can never
        // reach k matches and degenerates into a full scan of the longer
        // lists.
        for (auto& [id, count] : seen_count) {
          if (!seen[j].count(id) && ++count == m) ++matches;
        }
        continue;
      }
      seen[j].emplace(next->id, next->grade);
      // A fresh object starts with one virtual credit per already-exhausted
      // list (those lists grade it 0, which counts as "seen" under A0).
      auto it = seen_count.try_emplace(next->id, exhausted).first;
      if (++it->second == m) ++matches;
    }
  }

  // Phase 2: random access for every seen object's missing grades — one
  // batched, pool-sharded resolve instead of per-object sequential probes.
  // Per-source probe order is the seen_count iteration order either way.
  std::vector<ObjectId> order;
  order.reserve(seen_count.size());
  std::vector<std::vector<double>> rows;
  rows.resize(seen_count.size());
  std::vector<ProbeList> probes(m);
  for (const auto& [id, count] : seen_count) {
    const size_t r = order.size();
    rows[r].assign(m, 0.0);
    for (size_t j = 0; j < m; ++j) {
      auto it = seen[j].find(id);
      if (it != seen[j].end()) {
        rows[r][j] = it->second;
      } else {
        probes[j].probes.push_back({r, id});
      }
    }
    order.push_back(id);
  }
  ResolveProbes(set.counted(), probes, &rows, set.pool());

  // Phase 3: compute overall grades and pick the k best.
  std::vector<GradedObject> candidates;
  candidates.reserve(order.size());
  for (size_t r = 0; r < order.size(); ++r) {
    candidates.push_back({order[r], rule.Apply(rows[r])});
  }

  k = std::min(k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + static_cast<long>(k),
                    candidates.end(), GradeDescending);
  candidates.resize(k);
  result.items = std::move(candidates);
  set.Finalize(&result);
  return result;
}

Result<FaginCursor> FaginCursor::Create(std::vector<GradedSource*> sources,
                                        ScoringRulePtr rule) {
  FUZZYDB_RETURN_NOT_OK(ValidateTopKArgs(sources, rule.get(), /*k=*/1));
  if (!rule->monotone()) {
    return Status::FailedPrecondition(
        "A0 requires a monotone scoring rule: " + rule->name());
  }
  FaginCursor cursor;
  cursor.sources_ = std::move(sources);
  cursor.rule_ = std::move(rule);
  cursor.seen_.resize(cursor.sources_.size());
  cursor.exhausted_.assign(cursor.sources_.size(), false);
  for (GradedSource* s : cursor.sources_) s->RestartSorted();
  return cursor;
}

Result<TopKResult> FaginCursor::NextBatch(size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  const size_t m = sources_.size();
  std::vector<CountingSource> counted;
  counted.reserve(m);
  for (GradedSource* s : sources_) counted.emplace_back(s, &cost_);

  // Continue sorted access until enough matches to certify the next k
  // un-emitted objects: emitted + k total matches.
  const size_t target = emitted_.size() + k;
  size_t num_exhausted = 0;
  for (bool d : exhausted_) num_exhausted += d ? 1 : 0;
  while (matches_ < target && num_exhausted < m) {
    for (size_t j = 0; j < m; ++j) {
      if (exhausted_[j]) continue;
      std::optional<GradedObject> next = counted[j].NextSorted();
      if (!next.has_value()) {
        exhausted_[j] = true;
        ++num_exhausted;
        // Same virtual credit as FaginTopK: an exhausted list grades every
        // undelivered object 0, so they all count as seen on it.
        for (auto& [id, count] : seen_count_) {
          if (!seen_[j].count(id) && ++count == m) ++matches_;
        }
        continue;
      }
      seen_[j].emplace(next->id, next->grade);
      auto it = seen_count_.try_emplace(next->id, num_exhausted).first;
      if (++it->second == m) ++matches_;
    }
  }

  // Random access (only for objects not graded in a previous batch).
  std::vector<double> scores(m);
  for (const auto& [id, count] : seen_count_) {
    if (graded_.count(id)) continue;
    for (size_t j = 0; j < m; ++j) {
      auto it = seen_[j].find(id);
      scores[j] = (it != seen_[j].end()) ? it->second
                                         : counted[j].RandomAccess(id);
    }
    graded_.emplace(id, rule_->Apply(scores));
  }

  // Select the k best not yet emitted.
  std::vector<GradedObject> pool;
  pool.reserve(graded_.size() - emitted_.size());
  for (const auto& [id, grade] : graded_) {
    if (!emitted_.count(id)) pool.push_back({id, grade});
  }
  k = std::min(k, pool.size());
  std::partial_sort(pool.begin(), pool.begin() + static_cast<long>(k),
                    pool.end(), GradeDescending);
  pool.resize(k);
  for (const GradedObject& g : pool) emitted_.insert(g.id);

  TopKResult result;
  result.items = std::move(pool);
  result.cost = cost_;
  return result;
}

}  // namespace fuzzydb
