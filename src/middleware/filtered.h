// Chaudhuri–Gravano simulation of A0 with filter conditions (paper §4.1,
// [CG96]): some repositories cannot do incremental sorted access, only
// filter retrievals such as "all objects whose color score is at least 0.2".
// The simulation guesses a cutoff α, retrieves {µ >= α} from every list
// (each returned object charged as one sorted access), and checks the A0
// stopping condition (k objects present in all retrieved sets). If the guess
// was too high it shrinks α and retries — re-fetching from scratch, which is
// exactly the restart overhead the paper alludes to.

#ifndef FUZZYDB_MIDDLEWARE_FILTERED_H_
#define FUZZYDB_MIDDLEWARE_FILTERED_H_

#include "middleware/parallel.h"
#include "middleware/topk.h"

namespace fuzzydb {

/// How the next cutoff is chosen.
enum class AlphaStrategy {
  /// alpha' = shrink * alpha after each failed round.
  kGeometricShrink,
  /// Model-based: assuming roughly uniform grades, the match count is about
  /// N * (1 - alpha)^m, so the cutoff that yields ~safety*k matches is
  /// alpha* = 1 - (safety * k / N)^(1/m). Failed rounds double the safety.
  /// Lands within a small factor of A0 in one round on uniform-ish data.
  kUniformEstimate,
};

/// Tuning knobs for the filter-condition simulation.
struct FilteredOptions {
  AlphaStrategy strategy = AlphaStrategy::kGeometricShrink;
  /// kGeometricShrink: first cutoff guess.
  double initial_alpha = 0.5;
  /// kGeometricShrink: multiplies alpha on each unsuccessful round; in
  /// (0, 1).
  double shrink = 0.5;
  /// kUniformEstimate: initial over-fetch factor (>= 1).
  double safety = 4.0;
  /// Below this, the cutoff is treated as 0 (full retrieval) so the
  /// simulation always terminates.
  double min_alpha = 1e-6;
  /// Parallel execution (DESIGN §3f): a round's m filter retrievals run
  /// concurrently on the pool (they are independent per source), and the
  /// final missing-grade resolution batches through ResolveProbes. The
  /// merge stays serial in source order, so answers and per-source consumed
  /// counts are identical to the serial simulation.
  ParallelOptions parallel;
};

/// Per-run diagnostics for the simulation.
struct FilteredStats {
  /// Number of filter rounds executed (1 = first guess sufficed).
  size_t rounds = 0;
  /// The final cutoff used.
  double final_alpha = 0.0;
};

/// Top-k via filter-condition simulation of A0. Requires a monotone rule.
/// `stats`, if non-null, receives round diagnostics.
Result<TopKResult> FilteredSimulationTopK(
    std::span<GradedSource* const> sources, const ScoringRule& rule, size_t k,
    const FilteredOptions& options = {}, FilteredStats* stats = nullptr);

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_FILTERED_H_
