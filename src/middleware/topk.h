// Shared types for the top-k query-evaluation algorithms (paper §4.1).

#ifndef FUZZYDB_MIDDLEWARE_TOPK_H_
#define FUZZYDB_MIDDLEWARE_TOPK_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "core/graded_set.h"
#include "core/scoring.h"
#include "middleware/cost.h"
#include "middleware/source.h"

namespace fuzzydb {

/// The answer to a top-k query plus what it cost to compute.
struct TopKResult {
  /// The top-k graded objects, grade-descending. May be shorter than k when
  /// the database holds fewer than k objects.
  std::vector<GradedObject> items;

  /// Database access cost incurred (paper §4), summed over all subsystems.
  AccessCost cost;

  /// Per-subsystem breakdown of `cost`, indexed like the sources span.
  /// Populated by A0/TA/NRA (the algorithms with parallel variants, so the
  /// determinism harness can assert source-by-source equality); other
  /// algorithms may leave it empty.
  std::vector<AccessCost> per_source;

  /// True when `items[i].grade` is the exact overall grade. NRA (which never
  /// does random access) may report only a certified lower bound.
  bool grades_exact = true;
};

/// Validates common argument errors shared by all algorithms: at least one
/// source, no null sources, rule non-null, k >= 1. Sources may have unequal
/// sorted-list lengths: an object absent from a list has grade 0 there (the
/// fuzzy convention every RandomAccess implementation already follows).
Status ValidateTopKArgs(std::span<GradedSource* const> sources,
                        const ScoringRule* rule, size_t k);

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_TOPK_H_
