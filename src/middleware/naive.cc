#include "middleware/naive.h"

#include <algorithm>
#include <unordered_map>

namespace fuzzydb {

namespace {

// Streams every list in full and gathers each object's per-list grades.
// Objects a list never mentions keep grade 0 on that list.
std::unordered_map<ObjectId, std::vector<double>> StreamAll(
    std::span<GradedSource* const> sources, AccessCost* cost) {
  const size_t m = sources.size();
  std::unordered_map<ObjectId, std::vector<double>> grades;
  for (size_t j = 0; j < m; ++j) {
    CountingSource counted(sources[j], cost);
    counted.RestartSorted();
    while (std::optional<GradedObject> next = counted.NextSorted()) {
      auto [it, inserted] = grades.try_emplace(next->id);
      if (inserted) it->second.assign(m, 0.0);
      it->second[j] = next->grade;
    }
  }
  return grades;
}

}  // namespace

Result<TopKResult> NaiveTopK(std::span<GradedSource* const> sources,
                             const ScoringRule& rule, size_t k) {
  FUZZYDB_RETURN_NOT_OK(ValidateTopKArgs(sources, &rule, k));
  TopKResult result;
  std::unordered_map<ObjectId, std::vector<double>> grades =
      StreamAll(sources, &result.cost);

  result.items.reserve(grades.size());
  for (const auto& [id, scores] : grades) {
    result.items.push_back({id, rule.Apply(scores)});
  }
  k = std::min(k, result.items.size());
  std::partial_sort(result.items.begin(),
                    result.items.begin() + static_cast<long>(k),
                    result.items.end(), GradeDescending);
  result.items.resize(k);
  return result;
}

Result<GradedSet> NaiveAllGrades(std::span<GradedSource* const> sources,
                                 const ScoringRule& rule) {
  FUZZYDB_RETURN_NOT_OK(ValidateTopKArgs(sources, &rule, /*k=*/1));
  AccessCost ignored;
  std::unordered_map<ObjectId, std::vector<double>> grades =
      StreamAll(sources, &ignored);
  GradedSet out;
  for (const auto& [id, scores] : grades) {
    FUZZYDB_RETURN_NOT_OK(out.Insert(id, rule.Apply(scores)));
  }
  return out;
}

}  // namespace fuzzydb
