#include "middleware/nra.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/contract.h"
#include "middleware/parallel.h"

namespace fuzzydb {

namespace {

struct Partial {
  std::vector<double> grades;  // known per-list grades
  std::vector<bool> known;
  size_t num_known = 0;
};

}  // namespace

Result<TopKResult> NoRandomAccessTopK(std::span<GradedSource* const> sources,
                                      const ScoringRule& rule, size_t k) {
  return NoRandomAccessTopK(sources, rule, k, ParallelOptions{});
}

Result<TopKResult> NoRandomAccessTopK(std::span<GradedSource* const> sources,
                                      const ScoringRule& rule, size_t k,
                                      const ParallelOptions& options) {
  FUZZYDB_RETURN_NOT_OK(ValidateTopKArgs(sources, &rule, k));
  if (!rule.monotone()) {
    return Status::FailedPrecondition(
        "NRA requires a monotone scoring rule: " + rule.name());
  }

  const size_t m = sources.size();
  TopKResult result;
  // NRA never does random access, so the parallel layer contributes only
  // per-source prefetch: the bound bookkeeping below consumes one item per
  // list per round regardless of how far the fill tasks ran ahead.
  ParallelSourceSet set(sources, options);

  std::unordered_map<ObjectId, Partial> seen;
  std::vector<double> last_seen(m, 1.0);
  std::vector<bool> done(m, false);
  size_t exhausted = 0;

  std::vector<double> buf(m);
  auto lower_of = [&](const Partial& p) {
    for (size_t j = 0; j < m; ++j) buf[j] = p.known[j] ? p.grades[j] : 0.0;
    return rule.Apply(buf);
  };
  auto upper_of = [&](const Partial& p) {
    for (size_t j = 0; j < m; ++j) {
      buf[j] = p.known[j] ? p.grades[j] : last_seen[j];
    }
    return rule.Apply(buf);
  };

  struct Bounded {
    ObjectId id = 0;
    double lower = 0.0;
    double upper = 0.0;
    bool complete = false;
  };
  std::vector<Bounded> winners;
  double prev_unseen_upper = 1.0;

  while (exhausted < m) {
    for (size_t j = 0; j < m; ++j) {
      if (done[j]) continue;
      std::optional<GradedObject> next = set.counted(j).NextSorted();
      if (!next.has_value()) {
        done[j] = true;
        ++exhausted;
        // Grades still unknown on an exhausted list are exactly 0 (absent
        // means grade 0), so upper bounds built from last_seen must use 0
        // here — both for partially-seen objects and for unseen ones.
        last_seen[j] = 0.0;
        continue;
      }
      last_seen[j] = next->grade;
      Partial& p = seen[next->id];
      if (p.grades.empty()) {
        p.grades.assign(m, 0.0);
        p.known.assign(m, false);
      }
      if (!p.known[j]) {
        p.known[j] = true;
        p.grades[j] = next->grade;
        ++p.num_known;
      }
    }

    if (seen.size() < k) continue;

    // Stopping rule: the k best lower bounds must dominate every other
    // object's upper bound and the upper bound of unseen objects.
    std::vector<Bounded> bounds;
    bounds.reserve(seen.size());
    for (const auto& [id, p] : seen) {
      bounds.push_back({id, lower_of(p), upper_of(p), p.num_known == m});
      // A monotone rule applied to known-or-0 grades can never exceed the
      // same rule applied to known-or-last_seen grades.
      FUZZYDB_INVARIANT(bounds.back().lower <= bounds.back().upper + 1e-12,
                        "NRA lower bound " +
                            std::to_string(bounds.back().lower) +
                            " exceeds upper bound " +
                            std::to_string(bounds.back().upper) +
                            " for object " + std::to_string(id) +
                            " under rule " + rule.name());
    }
    std::nth_element(bounds.begin(), bounds.begin() + static_cast<long>(k - 1),
                     bounds.end(), [](const Bounded& a, const Bounded& b) {
                       if (a.lower != b.lower) return a.lower > b.lower;
                       return a.id < b.id;
                     });
    double kth_lower = bounds[k - 1].lower;
    double max_other_upper = rule.Apply(last_seen);  // unseen objects
    // Same monotone non-increase as TA's threshold (Theorem 4.2 analogue):
    // the ceiling on what an unseen object can still score only ever falls.
    FUZZYDB_INVARIANT(max_other_upper <= prev_unseen_upper + 1e-12,
                      "NRA unseen-object threshold rose from " +
                          std::to_string(prev_unseen_upper) + " to " +
                          std::to_string(max_other_upper) + " under rule " +
                          rule.name());
    prev_unseen_upper = max_other_upper;
    for (size_t i = k; i < bounds.size(); ++i) {
      max_other_upper = std::max(max_other_upper, bounds[i].upper);
    }
    if (kth_lower >= max_other_upper) {
      winners.assign(bounds.begin(), bounds.begin() + static_cast<long>(k));
      break;
    }
  }

  if (winners.empty()) {
    // Exhausted every list: all grades are fully known; lower == exact.
    for (const auto& [id, p] : seen) {
      winners.push_back({id, lower_of(p), lower_of(p), true});
    }
    std::sort(winners.begin(), winners.end(),
              [](const Bounded& a, const Bounded& b) {
                if (a.lower != b.lower) return a.lower > b.lower;
                return a.id < b.id;
              });
    if (winners.size() > k) winners.resize(k);
  }

  result.grades_exact = true;
  for (const Bounded& w : winners) {
    result.items.push_back({w.id, w.lower});
    if (!w.complete) result.grades_exact = false;
  }
  std::sort(result.items.begin(), result.items.end(), GradeDescending);
  set.Finalize(&result);
  return result;
}

}  // namespace fuzzydb
