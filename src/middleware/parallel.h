// Parallel middleware execution layer (DESIGN §3e).
//
// Fagin–Lotem–Naor's analysis of the top-k algorithms charges only *how
// many* sorted/random accesses are made, never the order the middleware
// issues them in, so overlapping accesses across the m independent
// subsystems is free in the cost model. This layer exploits exactly that
// freedom and nothing else:
//
//   - PrefetchSource runs ahead on one source's sorted stream into a bounded
//     ring buffer, filled by tasks on a TaskExecutor (normally the shared
//     ThreadPool). The consuming algorithm still pops one item per source
//     per round, so every halting threshold is computed from exactly the
//     same consumed access prefix as the serial loop — depth bounds how far
//     speculation may run ahead, never what the algorithm sees.
//   - ResolveProbes batches one round's missing-grade random accesses and
//     shards them BY SOURCE across the pool: each source's probes stay in
//     discovery order on one thread, so per-source access sequences (and
//     counts) are identical to the serial loop's, and no CountingSource
//     tally is ever touched by two threads.
//
// Consequence, enforced by tests/middleware_parallel_test.cc rather than
// claimed: identical top-k sets, identical grades, and identical per-source
// sorted/random access counts at any prefetch depth and pool size. Only
// AccessCost::prefetched (speculative overhang) is schedule-dependent.

#ifndef FUZZYDB_MIDDLEWARE_PARALLEL_H_
#define FUZZYDB_MIDDLEWARE_PARALLEL_H_

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "middleware/cost.h"
#include "middleware/source.h"
#include "middleware/topk.h"

namespace fuzzydb {

/// Knobs for the parallel variants of A0/TA/NRA. The default (“serial”)
/// value reproduces the historical single-threaded loops exactly.
struct ParallelOptions {
  /// Shards one round's batched random accesses (and backs prefetch tasks
  /// unless `executor` overrides). Null: probes resolve sequentially.
  ThreadPool* pool = nullptr;
  /// Ring-buffer depth each source may run ahead on its sorted stream.
  /// 0 disables prefetching (sources are consumed directly).
  size_t prefetch_depth = 0;
  /// Executor for prefetch fill tasks; tests inject hostile schedulers
  /// here. Null: use `pool`, or inline execution when `pool` is null too.
  TaskExecutor* executor = nullptr;
  /// Per-query budget/cancellation gate (middleware/budget.h), installed
  /// into every CountingSource the run builds. Null: unbudgeted. Unlike the
  /// knobs above this CAN change the answer — to the top-k of the consumed
  /// prefix — but identically at every depth and pool size, because the
  /// gate sits above the prefetch layer and charges consumed accesses only.
  AccessGovernor* governor = nullptr;

  /// True when this configuration changes nothing versus the serial loop.
  /// (The governor is deliberately excluded: a budget truncates serial and
  /// parallel runs at the same consumed prefix, so it is orthogonal to the
  /// serial-vs-parallel distinction.)
  bool serial() const {
    return pool == nullptr && prefetch_depth == 0 && executor == nullptr;
  }
  /// The executor prefetch tasks actually use.
  TaskExecutor* EffectiveExecutor() const {
    if (executor != nullptr) return executor;
    if (pool != nullptr) return pool;
    return InlineExecutor::Get();
  }
};

/// Decorator that prefetches an inner source's sorted stream into a bounded
/// ring buffer via fill tasks on a TaskExecutor.
///
/// Concurrency contract: NextSorted/RestartSorted/RandomAccess may be called
/// by the consumer while a fill task runs; all inner-source access is
/// serialized under one internal mutex, so any single-threaded GradedSource
/// is safe underneath. Progress never depends on the executor actually
/// running a task — an empty buffer falls back to a synchronous fetch — so
/// hostile schedulers (deferred, shuffled, dropped-after-Quiesce) cannot
/// deadlock or reorder the stream. Fill tasks hold only shared state, so
/// the decorator may be destroyed while a deferred task is still pending;
/// the task then no-ops.
class PrefetchSource final : public GradedSource {
 public:
  /// Speculation accounting. `fetched` counts inner sorted accesses issued
  /// (consumed or not); wasted() is the overhang the cost model reports as
  /// AccessCost::prefetched.
  struct Stats {
    uint64_t fetched = 0;
    uint64_t consumed = 0;
    uint64_t wasted() const { return fetched - consumed; }
  };

  /// `inner` and `executor` must outlive this decorator (but see above:
  /// tasks the executor still holds after destruction are harmless).
  /// depth is clamped to >= 1.
  PrefetchSource(GradedSource* inner, size_t depth, TaskExecutor* executor);
  ~PrefetchSource() override;

  PrefetchSource(PrefetchSource&&) = default;
  PrefetchSource& operator=(PrefetchSource&&) = default;

  /// Permanently stops scheduling refills and waits out any running fill,
  /// then returns final stats. Sorted access still works afterwards
  /// (synchronously). Idempotent.
  Stats Quiesce();

  /// Snapshot of the accounting (waits out any running fill).
  Stats stats() const;

  size_t Size() const override;
  std::optional<GradedObject> NextSorted() override;
  void RestartSorted() override;
  double RandomAccess(ObjectId id) override;
  std::vector<GradedObject> AtLeast(double threshold) override;
  std::string name() const override;

 private:
  struct State;
  void ScheduleRefillIfNeeded();

  std::shared_ptr<State> state_;  // shared with in-flight fill tasks
  TaskExecutor* executor_;
};

/// One round's random-access probes against one source: (row, id) pairs in
/// discovery order, where `row` indexes the caller's score matrix.
struct ProbeList {
  std::vector<std::pair<size_t, ObjectId>> probes;
};

/// Resolves probes[l] against counted[l] for every l, writing grades into
/// (*rows)[row][l]. Shards by source on `pool` when it has workers; the
/// per-source probe order is preserved either way, so per-source access
/// logs and counts match the sequential path exactly.
void ResolveProbes(std::span<CountingSource> counted,
                   std::span<const ProbeList> probes,
                   std::vector<std::vector<double>>* rows, ThreadPool* pool);

/// Same contract over raw sources, for callers that do their own cost
/// accounting (the join pipeline, the selective-conjunct plan). `sources[l]`
/// must be safe to probe concurrently with the other sources — each source
/// is still only ever touched by one thread at a time.
void ResolveProbes(std::span<GradedSource* const> sources,
                   std::span<const ProbeList> probes,
                   std::vector<std::vector<double>>* rows, ThreadPool* pool);

/// Per-run source scaffolding shared by A0/TA/NRA: wraps each raw source in
/// an optional PrefetchSource (when options ask for prefetching) under a
/// CountingSource charging a per-source AccessCost, restarts the sorted
/// cursors, and on Finalize() quiesces the prefetchers and folds the
/// per-source tallies (speculative overhang included) into the result.
class ParallelSourceSet {
 public:
  ParallelSourceSet(std::span<GradedSource* const> sources,
                    const ParallelOptions& options);

  size_t size() const { return counted_.size(); }
  CountingSource& counted(size_t j) { return counted_[j]; }
  std::span<CountingSource> counted() { return counted_; }
  ThreadPool* pool() const { return pool_; }

  /// Quiesces prefetchers and fills result->per_source / result->cost.
  void Finalize(TopKResult* result);

 private:
  std::vector<PrefetchSource> prefetch_;  // empty when depth == 0
  std::vector<AccessCost> per_source_;
  std::vector<CountingSource> counted_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_PARALLEL_H_
