// The query executor: plans and runs a top-k fuzzy query end to end.
//
// Mirrors the Garlic decisions discussed in paper §4.2: arbitrary
// user-defined scoring functions are allowed, so the executor (not the user)
// verifies monotonicity claims before trusting A0/TA with them, and falls
// back to the always-correct naive plan when a query is not monotone.

#ifndef FUZZYDB_MIDDLEWARE_EXECUTOR_H_
#define FUZZYDB_MIDDLEWARE_EXECUTOR_H_

#include <chrono>
#include <functional>
#include <memory>
#include <optional>

#include "core/query.h"
#include "middleware/budget.h"
#include "middleware/parallel.h"
#include "middleware/topk.h"

namespace fuzzydb {

/// Which top-k algorithm to run.
enum class Algorithm {
  kAuto,       ///< max-disjunction shortcut, else TA if monotone, else naive.
  kNaive,      ///< full scan; any rule.
  kFagin,      ///< A0; monotone rules only.
  kThreshold,  ///< TA; monotone rules only.
  kNoRandomAccess,       ///< NRA; monotone rules only; grades may be bounds.
  kFilteredSimulation,   ///< Chaudhuri–Gravano filter simulation of A0.
  kDisjunctionShortcut,  ///< m·k max shortcut; flat max-disjunctions only.
  kCombined,             ///< CA; monotone rules; random access every h rounds.
};

/// Human-readable algorithm name ("fagin-a0", "ta", ...).
std::string AlgorithmName(Algorithm algorithm);

/// Maps an atomic query to the subsystem source answering it. Returning an
/// error aborts execution (e.g. unknown attribute).
using SourceResolver =
    std::function<Result<GradedSource*>(const Query& atom)>;

/// Execution knobs.
struct ExecutorOptions {
  Algorithm algorithm = Algorithm::kAuto;
  /// When true, empirically spot-check monotonicity/strictness claims of the
  /// composite rule before using an algorithm that relies on them (the
  /// Garlic "system must guarantee monotonicity" issue, paper §4.2).
  bool verify_rule_claims = false;
  /// Samples for the empirical check.
  size_t verify_samples = 512;
  /// Seed for the empirical check.
  uint64_t verify_seed = 42;
  /// CA's random-access period h (used when algorithm == kCombined);
  /// typically the random/sorted price ratio. 0 means "derive": from
  /// `adaptive_cost_model`'s price ratio when present, else 1.
  size_t combined_period = 0;
  /// Parallel execution layer (prefetch + batched random access), threaded
  /// uniformly through every algorithm — A0/TA/NRA/CA, the filter
  /// simulation, and the disjunction shortcut; the default is fully serial.
  /// Answers and consumed access counts are identical either way (DESIGN
  /// §3e/§3f).
  ParallelOptions parallel;
  /// Adaptive execution (DESIGN §3f): when set, the executor derives the
  /// knobs the caller left at their "auto" values from this price model —
  /// prefetch depth (when `parallel` has a pool but depth 0) follows the
  /// plan's estimated access mix via DerivePrefetchDepth, and CA's period
  /// (when combined_period == 0) is the price ratio. Never overrides a
  /// depth or period the caller pinned explicitly.
  std::optional<CostModel> adaptive_cost_model;
  /// Budgeted / cancellable execution (DESIGN §3j). When `governor` is set
  /// it gates the run (the caller keeps a handle for Cancel); otherwise a
  /// private governor is created when `sorted_access_budget` or `deadline`
  /// asks for one. Interruption truncates every sorted stream — the
  /// algorithms halt with the top-k of the consumed prefix (the PR-2
  /// exhausted-tail semantics) — and ExecutionResult::completion carries
  /// the documented partial-result Status (Cancelled / DeadlineExceeded /
  /// ResourceExhausted). Budgets apply to the algorithms that stream
  /// through CountingSource (A0/TA/NRA/CA, the disjunction shortcut); the
  /// naive scan and the filter simulation's AtLeast calls are not gated.
  std::shared_ptr<AccessGovernor> governor;
  /// Convenience: consumed-sorted-access budget for the private governor
  /// (0 = unlimited). Ignored when `governor` is set.
  uint64_t sorted_access_budget = 0;
  /// Convenience: wall-clock deadline for the private governor. Ignored
  /// when `governor` is set.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Chosen plan plus the result.
struct ExecutionResult {
  TopKResult topk;
  Algorithm algorithm_used = Algorithm::kNaive;
  /// OK for a run that reached its halting condition. An interrupted run
  /// (budget / cancel / deadline, see ExecutorOptions) returns a normal
  /// Result with `topk` holding the top-k of the consumed prefix and this
  /// Status saying why the run stopped early — partial is a property of the
  /// answer, not a failure of the call.
  Status completion;
};

/// Plans and executes `query` for the top-k answers.
Result<ExecutionResult> ExecuteTopK(QueryPtr query,
                                    const SourceResolver& resolver, size_t k,
                                    const ExecutorOptions& options = {});

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_EXECUTOR_H_
