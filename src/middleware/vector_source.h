// In-memory GradedSource backed by an explicit grade list. The workhorse for
// synthetic workloads and tests; subsystems with real feature data provide
// their own adapters (see image/qbic_source.h, relational/relational_source.h).

#ifndef FUZZYDB_MIDDLEWARE_VECTOR_SOURCE_H_
#define FUZZYDB_MIDDLEWARE_VECTOR_SOURCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "middleware/source.h"

namespace fuzzydb {

/// A graded source materialized from (id, grade) pairs.
class VectorSource final : public GradedSource {
 public:
  /// Validates grades in [0,1] and id uniqueness, then pre-sorts for
  /// sorted access.
  static Result<VectorSource> Create(std::vector<GradedObject> items,
                                     std::string name = "source");

  size_t Size() const override { return sorted_.size(); }
  std::optional<GradedObject> NextSorted() override;
  void RestartSorted() override { cursor_ = 0; }
  double RandomAccess(ObjectId id) override;
  std::vector<GradedObject> AtLeast(double threshold) override;
  std::string name() const override { return name_; }

  /// The full graded list in sorted order (test/verification helper; not an
  /// access mode and not charged).
  const std::vector<GradedObject>& sorted_items() const { return sorted_; }

 private:
  std::vector<GradedObject> sorted_;
  std::unordered_map<ObjectId, double> grades_;
  size_t cursor_ = 0;
  std::string name_;
};

/// Builds one VectorSource per grade column: `columns[j][i]` is the grade of
/// object `ids[i]` under subquery j.
Result<std::vector<VectorSource>> MakeSources(
    const std::vector<ObjectId>& ids,
    const std::vector<std::vector<double>>& columns);

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_VECTOR_SOURCE_H_
