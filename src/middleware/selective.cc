#include "middleware/selective.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace fuzzydb {

bool CheckZeroAnnihilation(const ScoringRule& rule, size_t m, size_t samples,
                           Rng* rng, double tol) {
  std::vector<double> x(m);
  for (size_t s = 0; s < samples; ++s) {
    for (size_t i = 0; i < m; ++i) {
      x[i] = rng->NextBernoulli(0.3) ? 1.0 : rng->NextDouble();
    }
    x[rng->NextBounded(m)] = 0.0;
    if (std::fabs(rule.Apply(x)) > tol) return false;
  }
  return true;
}

Result<TopKResult> SelectiveProbeTopK(GradedSource* selective,
                                      std::span<GradedSource* const> others,
                                      const ScoringRule& rule, size_t k,
                                      const ParallelOptions& parallel) {
  if (selective == nullptr) {
    return Status::InvalidArgument("null selective source");
  }
  std::vector<GradedSource*> all{selective};
  all.insert(all.end(), others.begin(), others.end());
  FUZZYDB_RETURN_NOT_OK(ValidateTopKArgs(all, &rule, k));
  if (!rule.monotone()) {
    return Status::FailedPrecondition(
        "the selective-conjunct plan requires a monotone rule: " +
        rule.name());
  }
  Rng rng(0x5e1ec71fULL);
  if (!CheckZeroAnnihilation(rule, all.size(), 64, &rng)) {
    return Status::FailedPrecondition(
        "the selective-conjunct plan requires a zero-annihilating rule "
        "(every t-norm qualifies; means do not): " + rule.name());
  }

  const size_t m = all.size();
  TopKResult result;
  // Per-source tallies (summed at the end): phase 2's probes may resolve on
  // pool threads, one source per thread.
  std::vector<AccessCost> per_source(m);
  // Phase 1 only streams the selective list, so it is the only input worth
  // a prefetch pipeline; the others are pure random-access targets.
  std::unique_ptr<PrefetchSource> prefetch;
  GradedSource* sel_input = selective;
  if (parallel.prefetch_depth > 0) {
    prefetch = std::make_unique<PrefetchSource>(
        selective, parallel.prefetch_depth, parallel.EffectiveExecutor());
    sel_input = prefetch.get();
  }
  CountingSource counted_sel(sel_input, &per_source[0]);
  std::vector<CountingSource> counted_others;
  counted_others.reserve(others.size());
  for (size_t j = 0; j < others.size(); ++j) {
    counted_others.emplace_back(others[j], &per_source[j + 1]);
  }

  // Phase 1: stream the selective list's support S (grades > 0).
  counted_sel.RestartSorted();
  std::vector<GradedObject> matches;
  std::vector<GradedObject> zero_fill;  // ids for padding when |S| < k
  while (std::optional<GradedObject> next = counted_sel.NextSorted()) {
    if (next->grade > 0.0) {
      matches.push_back(*next);
    } else {
      // Non-match: overall grade 0 by annihilation. Only needed as filler.
      if (matches.size() + zero_fill.size() < k) {
        zero_fill.push_back({next->id, 0.0});
      } else {
        break;  // enough material; stop streaming
      }
    }
  }

  // Phase 2: random-probe the other conjuncts for every member of S, as one
  // ResolveProbes batch — each conjunct's probes stay in match order (the
  // serial sequence), sharded by source across the pool.
  std::vector<ProbeList> probes(counted_others.size());
  for (ProbeList& p : probes) p.probes.reserve(matches.size());
  std::vector<std::vector<double>> rows(
      matches.size(), std::vector<double>(counted_others.size(), 0.0));
  for (size_t i = 0; i < matches.size(); ++i) {
    for (size_t j = 0; j < counted_others.size(); ++j) {
      probes[j].probes.push_back({i, matches[i].id});
    }
  }
  ResolveProbes(std::span<CountingSource>(counted_others), probes, &rows,
                parallel.pool);

  std::vector<double> scores(m);
  std::vector<GradedObject> candidates;
  candidates.reserve(matches.size());
  for (size_t i = 0; i < matches.size(); ++i) {
    scores[0] = matches[i].grade;
    for (size_t j = 0; j + 1 < m; ++j) scores[j + 1] = rows[i][j];
    candidates.push_back({matches[i].id, rule.Apply(scores)});
  }

  // Phase 3: top-k over S, padded with grade-0 non-matches if needed.
  std::sort(candidates.begin(), candidates.end(), GradeDescending);
  if (candidates.size() > k) candidates.resize(k);
  for (const GradedObject& filler : zero_fill) {
    if (candidates.size() >= k) break;
    candidates.push_back(filler);
  }
  result.items = std::move(candidates);
  if (prefetch != nullptr) {
    per_source[0].prefetched += prefetch->Quiesce().wasted();
  }
  for (const AccessCost& c : per_source) result.cost += c;
  result.per_source = std::move(per_source);
  return result;
}

}  // namespace fuzzydb
