#include "middleware/selective.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace fuzzydb {

bool CheckZeroAnnihilation(const ScoringRule& rule, size_t m, size_t samples,
                           Rng* rng, double tol) {
  std::vector<double> x(m);
  for (size_t s = 0; s < samples; ++s) {
    for (size_t i = 0; i < m; ++i) {
      x[i] = rng->NextBernoulli(0.3) ? 1.0 : rng->NextDouble();
    }
    x[rng->NextBounded(m)] = 0.0;
    if (std::fabs(rule.Apply(x)) > tol) return false;
  }
  return true;
}

Result<TopKResult> SelectiveProbeTopK(GradedSource* selective,
                                      std::span<GradedSource* const> others,
                                      const ScoringRule& rule, size_t k) {
  if (selective == nullptr) {
    return Status::InvalidArgument("null selective source");
  }
  std::vector<GradedSource*> all{selective};
  all.insert(all.end(), others.begin(), others.end());
  FUZZYDB_RETURN_NOT_OK(ValidateTopKArgs(all, &rule, k));
  if (!rule.monotone()) {
    return Status::FailedPrecondition(
        "the selective-conjunct plan requires a monotone rule: " +
        rule.name());
  }
  Rng rng(0x5e1ec71fULL);
  if (!CheckZeroAnnihilation(rule, all.size(), 64, &rng)) {
    return Status::FailedPrecondition(
        "the selective-conjunct plan requires a zero-annihilating rule "
        "(every t-norm qualifies; means do not): " + rule.name());
  }

  const size_t m = all.size();
  TopKResult result;
  CountingSource counted_sel(selective, &result.cost);
  std::vector<CountingSource> counted_others;
  counted_others.reserve(others.size());
  for (GradedSource* s : others) counted_others.emplace_back(s, &result.cost);

  // Phase 1: stream the selective list's support S (grades > 0).
  counted_sel.RestartSorted();
  std::vector<GradedObject> matches;
  std::vector<GradedObject> zero_fill;  // ids for padding when |S| < k
  while (std::optional<GradedObject> next = counted_sel.NextSorted()) {
    if (next->grade > 0.0) {
      matches.push_back(*next);
    } else {
      // Non-match: overall grade 0 by annihilation. Only needed as filler.
      if (matches.size() + zero_fill.size() < k) {
        zero_fill.push_back({next->id, 0.0});
      } else {
        break;  // enough material; stop streaming
      }
    }
  }

  // Phase 2: random-probe the other conjuncts for every member of S.
  std::vector<double> scores(m);
  std::vector<GradedObject> candidates;
  candidates.reserve(matches.size());
  for (const GradedObject& g : matches) {
    scores[0] = g.grade;
    for (size_t j = 0; j + 1 < m; ++j) {
      scores[j + 1] = counted_others[j].RandomAccess(g.id);
    }
    candidates.push_back({g.id, rule.Apply(scores)});
  }

  // Phase 3: top-k over S, padded with grade-0 non-matches if needed.
  std::sort(candidates.begin(), candidates.end(), GradeDescending);
  if (candidates.size() > k) candidates.resize(k);
  for (const GradedObject& filler : zero_fill) {
    if (candidates.size() >= k) break;
    candidates.push_back(filler);
  }
  result.items = std::move(candidates);
  return result;
}

}  // namespace fuzzydb
