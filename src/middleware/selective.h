// The selective-conjunct strategy — paper §4.1's first worked example:
// "Under the reasonable assumption that there are not many objects that
// satisfy the first conjunct Artist='Beatles', a good way to evaluate this
// query would be to first determine all objects that satisfy the first
// conjunct (call this set of objects S), and then to obtain grades from
// QBIC (using random access) for the second conjunct for all objects in S."
//
// Correct whenever the rule annihilates zero (t(..., 0, ...) = 0 — true for
// every t-norm, false for means): non-members of S score 0 overall, so the
// top answers live inside S (padded with grade-0 objects when |S| < k).
// Cost: |S| sorted + |S|·(m-1) random — unbeatable when the selective list
// is a low-selectivity 0/1 predicate.

#ifndef FUZZYDB_MIDDLEWARE_SELECTIVE_H_
#define FUZZYDB_MIDDLEWARE_SELECTIVE_H_

#include "middleware/parallel.h"
#include "middleware/topk.h"

namespace fuzzydb {

/// Empirically checks zero-annihilation at arity `m`: Apply of any tuple
/// with a zero component must be 0. Can only refute, never prove.
bool CheckZeroAnnihilation(const ScoringRule& rule, size_t m, size_t samples,
                           Rng* rng, double tol = 1e-12);

/// Top-k via the selective-conjunct plan. `selective` is the conjunct whose
/// match set is small (its grade-0 tail marks non-matches); `others` are
/// the remaining m-1 conjuncts, probed by random access. The rule's scores
/// are applied in the order [selective, others...]. Rejects rules that fail
/// the zero-annihilation spot check (e.g. avg — the paper's strategy is
/// specific to conjunctions that conserve falsity).
///
/// With non-serial `parallel` options (DESIGN §3f) the selective stream is
/// prefetched and phase 2's |S|·(m-1) probes batch through ResolveProbes,
/// sharded by source in match order — per-source access sequences, and thus
/// answers and consumed counts, are identical to the serial plan.
Result<TopKResult> SelectiveProbeTopK(GradedSource* selective,
                                      std::span<GradedSource* const> others,
                                      const ScoringRule& rule, size_t k,
                                      const ParallelOptions& parallel = {});

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_SELECTIVE_H_
