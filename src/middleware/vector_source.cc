#include "middleware/vector_source.h"

#include <algorithm>

namespace fuzzydb {

Result<VectorSource> VectorSource::Create(std::vector<GradedObject> items,
                                          std::string name) {
  VectorSource src;
  src.name_ = std::move(name);
  src.grades_.reserve(items.size());
  for (const GradedObject& g : items) {
    if (!(g.grade >= 0.0 && g.grade <= 1.0)) {
      return Status::InvalidArgument("grade must be in [0,1]");
    }
    if (!src.grades_.emplace(g.id, g.grade).second) {
      return Status::AlreadyExists("duplicate object id in source");
    }
  }
  src.sorted_ = std::move(items);
  std::sort(src.sorted_.begin(), src.sorted_.end(), GradeDescending);
  return src;
}

std::optional<GradedObject> VectorSource::NextSorted() {
  if (cursor_ >= sorted_.size()) return std::nullopt;
  return sorted_[cursor_++];
}

double VectorSource::RandomAccess(ObjectId id) {
  auto it = grades_.find(id);
  return it == grades_.end() ? 0.0 : it->second;
}

std::vector<GradedObject> VectorSource::AtLeast(double threshold) {
  // sorted_ is grade-descending, so the answer is the prefix before the
  // partition point — binary search instead of a linear scan.
  auto end = std::partition_point(
      sorted_.begin(), sorted_.end(),
      [threshold](const GradedObject& g) { return g.grade >= threshold; });
  return {sorted_.begin(), end};
}

Result<std::vector<VectorSource>> MakeSources(
    const std::vector<ObjectId>& ids,
    const std::vector<std::vector<double>>& columns) {
  std::vector<VectorSource> out;
  out.reserve(columns.size());
  for (size_t j = 0; j < columns.size(); ++j) {
    if (columns[j].size() != ids.size()) {
      return Status::InvalidArgument("grade column size mismatch");
    }
    std::vector<GradedObject> items(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      items[i] = {ids[i], columns[j][i]};
    }
    Result<VectorSource> src =
        VectorSource::Create(std::move(items), "list" + std::to_string(j));
    if (!src.ok()) return src.status();
    out.push_back(std::move(src).value());
  }
  return out;
}

}  // namespace fuzzydb
