// Fagin's Algorithm A0 (paper §4.1, [Fa96]).
//
// Three phases:
//   1. Sorted access to all m lists in parallel (round-robin) until at least
//      k objects have been seen on *every* list.
//   2. Random access to fetch every seen object's missing grades.
//   3. Compute overall grades; output the k best.
// Correct for every monotone scoring rule; for monotone *strict* rules over
// independent lists the database access cost is Θ(N^((m-1)/m) k^(1/m)) with
// arbitrarily high probability (Theorems 4.1/4.2).

#ifndef FUZZYDB_MIDDLEWARE_FAGIN_H_
#define FUZZYDB_MIDDLEWARE_FAGIN_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "middleware/parallel.h"
#include "middleware/topk.h"

namespace fuzzydb {

/// Runs A0. Requires a monotone rule (returns FailedPrecondition otherwise —
/// the Garlic lesson from paper §4.2: the system, not the user, must
/// guarantee monotonicity).
Result<TopKResult> FaginTopK(std::span<GradedSource* const> sources,
                             const ScoringRule& rule, size_t k);

/// A0 with the parallel execution layer (DESIGN §3e): per-source sorted
/// prefetch in Phase 1 plus one batched, pool-sharded random-access resolve
/// in Phase 2. Bit-identical result and per-source consumed access counts
/// versus the serial variant at every depth and pool size.
Result<TopKResult> FaginTopK(std::span<GradedSource* const> sources,
                             const ScoringRule& rule, size_t k,
                             const ParallelOptions& options);

/// Resumable variant: after finding the top k, "continue where we left off"
/// to get the next batch (paper §4.1 notes A0 supports this). Each call to
/// NextBatch(k) returns the next k best objects not yet emitted.
class FaginCursor {
 public:
  /// Sources must outlive the cursor; rule must be monotone.
  static Result<FaginCursor> Create(std::vector<GradedSource*> sources,
                                    ScoringRulePtr rule);

  /// The next `k` best un-emitted objects (fewer at the end of the
  /// database). Sorted access resumes where the previous batch stopped, and
  /// random accesses are never repeated for an object already graded.
  Result<TopKResult> NextBatch(size_t k);

  /// Total cost incurred so far across all batches.
  const AccessCost& cost() const { return cost_; }

 private:
  FaginCursor() = default;

  std::vector<GradedSource*> sources_;
  ScoringRulePtr rule_;
  AccessCost cost_;
  // Per-list grades seen under sorted access.
  std::vector<std::unordered_map<ObjectId, double>> seen_;
  // id -> number of lists it has appeared on (exhausted lists count for
  // every object: anything they never delivered has grade 0 there);
  // matches_ counts ids seen on all lists.
  std::unordered_map<ObjectId, size_t> seen_count_;
  size_t matches_ = 0;
  // Overall grades of every object seen so far (filled per batch).
  std::unordered_map<ObjectId, double> graded_;
  std::unordered_set<ObjectId> emitted_;
  std::vector<bool> exhausted_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_FAGIN_H_
