// Cost-based plan choice — the paper's open problem made concrete.
//
// §4 concedes the flat access count "is somewhat controversial. After all,
// a single sorted access is probably much more expensive than a single
// random access ... there are situations (such as in the case of a query
// optimizer) where we want a more realistic cost measure", and §4.2 lists
// "cost modeling issues" among the Garlic lessons. This module estimates
// each algorithm's charged cost under a per-subsystem price model and picks
// the cheapest correct plan:
//   naive     ~ m*N sorted accesses, no random;
//   A0 / TA   ~ m*(kN^(m-1))^(1/m) sorted + about as many random (Thm 4.1);
//   NRA       ~ the same sorted term (a constant deeper), zero random;
//   shortcut  = m*k sorted (pure max-disjunctions only).
// Estimates are the theorems' expectations for independent grades; the
// experiment E11 (bench/exp11_optimizer) validates the choices against
// measured charged costs.

#ifndef FUZZYDB_MIDDLEWARE_OPTIMIZER_H_
#define FUZZYDB_MIDDLEWARE_OPTIMIZER_H_

#include "middleware/executor.h"

namespace fuzzydb {

/// Per-access prices, in arbitrary cost units.
struct CostModel {
  /// Cost of one sorted access.
  double sorted_unit = 1.0;
  /// Cost of one random access. Paper §4: in real systems this is usually
  /// cheaper than a sorted access for an indexed subsystem, or far more
  /// expensive when the subsystem must recompute a similarity score.
  double random_unit = 1.0;
};

/// What the optimizer decided and why.
struct PlanChoice {
  Algorithm algorithm = Algorithm::kNaive;
  /// Estimated charged cost of the chosen plan.
  double estimated_cost = 0.0;
  /// Estimated charged cost of each considered alternative, keyed by
  /// AlgorithmName(), for EXPLAIN-style output.
  std::vector<std::pair<std::string, double>> considered;
};

/// Estimated charged cost of running `algorithm` for a top-k query over m
/// lists of n objects under `model`. Estimates assume independent grades
/// (Theorem 4.1's setting); InvalidArgument for kAuto or inapplicable
/// algorithms at these parameters.
Result<double> EstimateCost(Algorithm algorithm, size_t n, size_t m, size_t k,
                            const CostModel& model);

/// Picks the cheapest estimated plan that is *correct* for `query`:
/// non-monotone queries only consider naive; flat max-disjunctions also
/// consider the m*k shortcut; monotone queries consider naive, A0, TA and
/// NRA.
Result<PlanChoice> ChoosePlan(const Query& query, size_t n, size_t k,
                              const CostModel& model);

/// Convenience: ChoosePlan then ExecuteTopK with the chosen algorithm.
Result<ExecutionResult> ExecuteOptimized(QueryPtr query,
                                         const SourceResolver& resolver,
                                         size_t k, const CostModel& model,
                                         PlanChoice* choice = nullptr);

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_OPTIMIZER_H_
