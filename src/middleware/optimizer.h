// Cost-based plan choice — the paper's open problem made concrete.
//
// §4 concedes the flat access count "is somewhat controversial. After all,
// a single sorted access is probably much more expensive than a single
// random access ... there are situations (such as in the case of a query
// optimizer) where we want a more realistic cost measure", and §4.2 lists
// "cost modeling issues" among the Garlic lessons. This module estimates
// each algorithm's charged cost under a per-subsystem price model and picks
// the cheapest correct plan:
//   naive     ~ m*N sorted accesses, no random;
//   A0 / TA   ~ m*(kN^(m-1))^(1/m) sorted + about as many random (Thm 4.1);
//   NRA       ~ the same sorted term (a constant deeper), zero random;
//   shortcut  = m*k sorted (pure max-disjunctions only).
// Estimates are the theorems' expectations for independent grades; the
// experiment E11 (bench/exp11_optimizer) validates the choices against
// measured charged costs.

#ifndef FUZZYDB_MIDDLEWARE_OPTIMIZER_H_
#define FUZZYDB_MIDDLEWARE_OPTIMIZER_H_

#include "middleware/executor.h"

namespace fuzzydb {

// CostModel lives in middleware/cost.h (next to AccessCost) so the executor
// and the parallel layer can consume prices without depending on the
// planner.

/// What the optimizer decided and why.
struct PlanChoice {
  Algorithm algorithm = Algorithm::kNaive;
  /// Estimated charged cost of the chosen plan.
  double estimated_cost = 0.0;
  /// CA's random-access period implied by the price model (meaningful for
  /// every plan, used when the chosen algorithm is kCombined).
  size_t combined_period = 1;
  /// True when the winning estimate assumed the calibrated R-tree driver
  /// (CostModel::index_driver) serves one of the sorted streams — the
  /// executor should swap RtreeKnnSource in for that list's batch source.
  bool use_index_driver = false;
  /// Estimated charged cost of each considered alternative, keyed by
  /// AlgorithmName() — except CA, listed as "ca(h=N)", and the index-driven
  /// TA variant, listed as "rtree(dim=D)", so EXPLAIN output shows the
  /// parameters each estimate assumed.
  std::vector<std::pair<std::string, double>> considered;
};

/// Expected *counts* of each access mode — the estimate behind EstimateCost,
/// exposed separately so the adaptive layer can ask "do sorted accesses
/// dominate?" without re-deriving the formulas.
struct AccessMix {
  double sorted = 0.0;
  double random = 0.0;
};

/// Expected access counts of running `algorithm` for a top-k query over m
/// lists of n objects. CA's split depends on `model` (its period h is the
/// price ratio); every other algorithm's counts are price-independent.
/// InvalidArgument for kAuto or inapplicable algorithms at these parameters.
Result<AccessMix> EstimateAccessMix(Algorithm algorithm, size_t n, size_t m,
                                    size_t k, const CostModel& model);

/// Estimated charged cost of running `algorithm` for a top-k query over m
/// lists of n objects under `model`: the AccessMix priced per access.
/// Estimates assume independent grades (Theorem 4.1's setting);
/// InvalidArgument for kAuto or inapplicable algorithms at these parameters.
Result<double> EstimateCost(Algorithm algorithm, size_t n, size_t m, size_t k,
                            const CostModel& model);

/// Strips a considered-plan label back to its AlgorithmName(): "ca(h=4)" →
/// "ca", anything without parameters unchanged. For matching considered
/// entries against a chosen algorithm in EXPLAIN output and benches.
inline std::string ConsideredBaseName(const std::string& label) {
  return label.substr(0, label.find('('));
}

/// Prefetch depth for the parallel layer, derived from the cost estimate
/// (DESIGN §3f): 0 (no prefetch) when the pool has a single executor or the
/// estimate is unavailable; 1 (pipeline only, no speculation depth) when
/// random accesses dominate the charged cost; otherwise a power of two
/// scaled to executors × sorted-cost share, clamped to [2, 64]. Deep
/// speculation only pays when sorted access is the dominant cost.
size_t DerivePrefetchDepth(Algorithm algorithm, size_t n, size_t m, size_t k,
                           const CostModel& model, size_t executors);

/// Picks the cheapest estimated plan that is *correct* for `query`:
/// non-monotone queries only consider naive; flat max-disjunctions also
/// consider the m*k shortcut; monotone queries consider naive, A0, TA and
/// NRA.
Result<PlanChoice> ChoosePlan(const Query& query, size_t n, size_t k,
                              const CostModel& model);

/// Convenience: ChoosePlan then ExecuteTopK with the chosen algorithm.
/// `parallel` (pool/executor) is threaded through to the executor; its
/// prefetch depth, when left at 0 with a pool attached, is derived from the
/// plan's cost estimate (adaptive execution, DESIGN §3f). CA's period comes
/// from the plan.
Result<ExecutionResult> ExecuteOptimized(QueryPtr query,
                                         const SourceResolver& resolver,
                                         size_t k, const CostModel& model,
                                         PlanChoice* choice = nullptr,
                                         const ParallelOptions& parallel = {});

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_OPTIMIZER_H_
