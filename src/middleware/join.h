// The fuzzy merge as a *join operator* (paper §4.2): the Garlic implementers
// "decided to treat A0 as a join ... it was easier to teach the Garlic code
// about ordering requirements in the join phase rather than teaching the
// ordering code about multiple input streams."
//
// TopKJoinSource is that operator: it combines two graded inputs under a
// monotone rule and is itself a GradedSource, emitting the joined objects
// in overall-grade order *lazily* — it performs only as much sorted/random
// access on its inputs as certifying the next output requires (an
// incremental threshold argument). Because the output speaks the same
// interface, joins compose: join(join(A, B), C) evaluates a three-way
// conjunction as a pipeline, exactly how a query plan would.

#ifndef FUZZYDB_MIDDLEWARE_JOIN_H_
#define FUZZYDB_MIDDLEWARE_JOIN_H_

#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "core/scoring.h"
#include "middleware/parallel.h"
#include "middleware/source.h"

namespace fuzzydb {

/// Lazy binary top-k join of two graded sources.
///
/// Parallel execution (DESIGN §3f): with non-serial ParallelOptions each
/// input's sorted stream runs behind a PrefetchSource pipeline. The emitted
/// stream, each input's random-access sequence, and the consumed sorted
/// prefix are identical to serial execution; only the prefetch overhang
/// (≤ depth extra sorted accesses per input) is schedule-dependent. Because
/// the join is itself a GradedSource, a composed pipeline join(join(A,B),C)
/// prefetches at every level. A round's two cross-probes resolve on the
/// calling thread: a blocking pool job here could be reached from inside a
/// fill task (which holds a downstream prefetch mutex while another probe
/// waits on it) — a lock-order inversion against ParallelFor's job slot.
class TopKJoinSource final : public GradedSource {
 public:
  /// `left` and `right` must grade the same object universe and outlive the
  /// join; `rule` must be monotone (2-ary application). `parallel` attaches
  /// the prefetch pipeline + probe pool described above; sources must then
  /// tolerate concurrent access *across* inputs (each input is still only
  /// touched by one thread at a time).
  static Result<TopKJoinSource> Create(GradedSource* left,
                                       GradedSource* right,
                                       ScoringRulePtr rule = MinRule(),
                                       std::string label = "join",
                                       const ParallelOptions& parallel = {});

  size_t Size() const override { return left_->Size(); }

  /// The next object in overall-grade order. Pulls just enough from the
  /// inputs to certify it (threshold argument: once the best unemitted
  /// computed grade is at least rule(last_left, last_right), no unseen
  /// object can beat it).
  std::optional<GradedObject> NextSorted() override;

  /// Restarts this join AND its inputs' sorted cursors.
  void RestartSorted() override;

  /// rule(left grade, right grade) by random access to both inputs.
  double RandomAccess(ObjectId id) override;

  /// All joined objects with grade >= threshold. Restarts the sorted
  /// cursor (inputs cannot save/restore positions across scans).
  std::vector<GradedObject> AtLeast(double threshold) override;

  std::string name() const override { return label_; }

 private:
  TopKJoinSource() = default;

  // Performs one parallel round of sorted access; returns false when both
  // inputs are exhausted.
  bool PullRound();
  // Current certification threshold.
  double Threshold() const;

  // Active inputs: the raw sources, or their prefetch pipelines when
  // parallel execution is on. Heap-allocated wrappers keep these pointers
  // stable across moves of the join object.
  GradedSource* left_ = nullptr;
  GradedSource* right_ = nullptr;
  std::unique_ptr<PrefetchSource> left_prefetch_;
  std::unique_ptr<PrefetchSource> right_prefetch_;
  ScoringRulePtr rule_;
  std::string label_;

  struct WorstLast {
    bool operator()(const GradedObject& a, const GradedObject& b) const {
      return GradeDescending(b, a);  // max-heap in GradeDescending order
    }
  };
  std::priority_queue<GradedObject, std::vector<GradedObject>, WorstLast>
      candidates_;
  std::unordered_set<ObjectId> seen_;
  double last_left_ = 1.0;
  double last_right_ = 1.0;
  bool left_done_ = false;
  bool right_done_ = false;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_MIDDLEWARE_JOIN_H_
