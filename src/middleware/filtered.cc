#include "middleware/filtered.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace fuzzydb {

Result<TopKResult> FilteredSimulationTopK(
    std::span<GradedSource* const> sources, const ScoringRule& rule, size_t k,
    const FilteredOptions& options, FilteredStats* stats) {
  FUZZYDB_RETURN_NOT_OK(ValidateTopKArgs(sources, &rule, k));
  if (!rule.monotone()) {
    return Status::FailedPrecondition(
        "filter simulation requires a monotone scoring rule: " + rule.name());
  }
  if (options.initial_alpha <= 0.0 || options.initial_alpha > 1.0 ||
      options.shrink <= 0.0 || options.shrink >= 1.0 ||
      options.safety < 1.0) {
    return Status::InvalidArgument("bad filter options");
  }

  const size_t m = sources.size();
  const size_t n = sources[0]->Size();
  TopKResult result;
  std::vector<CountingSource> counted;
  counted.reserve(m);
  for (GradedSource* s : sources) counted.emplace_back(s, &result.cost);

  double safety = options.safety;
  auto estimate_alpha = [&]() {
    double fraction = std::pow(
        safety * static_cast<double>(std::min(k, n)) / static_cast<double>(n),
        1.0 / static_cast<double>(m));
    return std::max(0.0, 1.0 - fraction);
  };
  double alpha = options.strategy == AlphaStrategy::kUniformEstimate
                     ? estimate_alpha()
                     : options.initial_alpha;
  size_t rounds = 0;
  for (;;) {
    ++rounds;
    if (alpha < options.min_alpha) alpha = 0.0;

    // Retrieve {grade >= alpha} from every list; each returned object costs
    // one sorted access (charged inside CountingSource::AtLeast).
    std::vector<std::unordered_map<ObjectId, double>> fetched(m);
    std::unordered_map<ObjectId, size_t> appearance;
    size_t matches = 0;
    for (size_t j = 0; j < m; ++j) {
      for (const GradedObject& g : counted[j].AtLeast(alpha)) {
        fetched[j].emplace(g.id, g.grade);
        if (++appearance[g.id] == m) ++matches;
      }
    }

    // A0 stopping condition: k objects present in every retrieved set (or
    // the cutoff already hit the bottom — everything was retrieved).
    if (matches >= std::min(k, n) || alpha == 0.0) {
      std::vector<GradedObject> candidates;
      candidates.reserve(appearance.size());
      std::vector<double> scores(m);
      for (const auto& [id, count] : appearance) {
        for (size_t j = 0; j < m; ++j) {
          auto it = fetched[j].find(id);
          scores[j] = (it != fetched[j].end()) ? it->second
                                               : counted[j].RandomAccess(id);
        }
        candidates.push_back({id, rule.Apply(scores)});
      }
      size_t kk = std::min(k, candidates.size());
      std::partial_sort(candidates.begin(),
                        candidates.begin() + static_cast<long>(kk),
                        candidates.end(), GradeDescending);
      candidates.resize(kk);
      result.items = std::move(candidates);
      if (stats != nullptr) {
        stats->rounds = rounds;
        stats->final_alpha = alpha;
      }
      return result;
    }
    if (options.strategy == AlphaStrategy::kUniformEstimate) {
      safety *= 2.0;
      alpha = estimate_alpha();
    } else {
      alpha *= options.shrink;
    }
  }
}

}  // namespace fuzzydb
