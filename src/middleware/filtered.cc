#include "middleware/filtered.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace fuzzydb {

Result<TopKResult> FilteredSimulationTopK(
    std::span<GradedSource* const> sources, const ScoringRule& rule, size_t k,
    const FilteredOptions& options, FilteredStats* stats) {
  FUZZYDB_RETURN_NOT_OK(ValidateTopKArgs(sources, &rule, k));
  if (!rule.monotone()) {
    return Status::FailedPrecondition(
        "filter simulation requires a monotone scoring rule: " + rule.name());
  }
  if (options.initial_alpha <= 0.0 || options.initial_alpha > 1.0 ||
      options.shrink <= 0.0 || options.shrink >= 1.0 ||
      options.safety < 1.0) {
    return Status::InvalidArgument("bad filter options");
  }

  const size_t m = sources.size();
  const size_t n = sources[0]->Size();
  TopKResult result;
  // Per-source tallies: a pool runs the filter retrievals concurrently, so
  // each source needs its own counter (summed into result.cost at the end).
  std::vector<AccessCost> per_source(m);
  std::vector<CountingSource> counted;
  counted.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    counted.emplace_back(sources[j], &per_source[j]);
  }
  ThreadPool* pool = options.parallel.pool;

  double safety = options.safety;
  auto estimate_alpha = [&]() {
    double fraction = std::pow(
        safety * static_cast<double>(std::min(k, n)) / static_cast<double>(n),
        1.0 / static_cast<double>(m));
    return std::max(0.0, 1.0 - fraction);
  };
  double alpha = options.strategy == AlphaStrategy::kUniformEstimate
                     ? estimate_alpha()
                     : options.initial_alpha;
  size_t rounds = 0;
  for (;;) {
    ++rounds;
    if (alpha < options.min_alpha) alpha = 0.0;

    // Retrieve {grade >= alpha} from every list; each returned object costs
    // one sorted access (charged inside CountingSource::AtLeast). The m
    // retrievals are independent, so the pool runs them concurrently; the
    // merge below stays serial in source order, reproducing the serial
    // loop's appearance-map insertion sequence exactly.
    std::vector<std::vector<GradedObject>> retrieved(m);
    auto fetch = [&](size_t j) { retrieved[j] = counted[j].AtLeast(alpha); };
    if (pool != nullptr && pool->executors() > 1 && m > 1) {
      pool->ParallelFor(m, fetch);
    } else {
      for (size_t j = 0; j < m; ++j) fetch(j);
    }

    std::vector<std::unordered_map<ObjectId, double>> fetched(m);
    std::unordered_map<ObjectId, size_t> appearance;
    size_t matches = 0;
    for (size_t j = 0; j < m; ++j) {
      for (const GradedObject& g : retrieved[j]) {
        fetched[j].emplace(g.id, g.grade);
        if (++appearance[g.id] == m) ++matches;
      }
    }

    // A0 stopping condition: k objects present in every retrieved set (or
    // the cutoff already hit the bottom — everything was retrieved).
    if (matches >= std::min(k, n) || alpha == 0.0) {
      // Resolution: batch every missing grade through ResolveProbes. Rows
      // follow the appearance map's iteration order, so each source's probe
      // sequence is the one the serial loop would have issued.
      std::vector<ObjectId> order;
      order.reserve(appearance.size());
      std::vector<std::vector<double>> rows(appearance.size(),
                                            std::vector<double>(m, 0.0));
      std::vector<ProbeList> probes(m);
      size_t row = 0;
      for (const auto& [id, count] : appearance) {
        order.push_back(id);
        for (size_t j = 0; j < m; ++j) {
          auto it = fetched[j].find(id);
          if (it != fetched[j].end()) {
            rows[row][j] = it->second;
          } else {
            probes[j].probes.push_back({row, id});
          }
        }
        ++row;
      }
      ResolveProbes(std::span<CountingSource>(counted), probes, &rows, pool);

      std::vector<GradedObject> candidates;
      candidates.reserve(order.size());
      for (size_t r = 0; r < order.size(); ++r) {
        candidates.push_back({order[r], rule.Apply(rows[r])});
      }
      size_t kk = std::min(k, candidates.size());
      std::partial_sort(candidates.begin(),
                        candidates.begin() + static_cast<long>(kk),
                        candidates.end(), GradeDescending);
      candidates.resize(kk);
      result.items = std::move(candidates);
      for (const AccessCost& c : per_source) result.cost += c;
      result.per_source = std::move(per_source);
      if (stats != nullptr) {
        stats->rounds = rounds;
        stats->final_alpha = alpha;
      }
      return result;
    }
    if (options.strategy == AlphaStrategy::kUniformEstimate) {
      safety *= 2.0;
      alpha = estimate_alpha();
    } else {
      alpha *= options.shrink;
    }
  }
}

}  // namespace fuzzydb
