#include "middleware/optimizer.h"

#include <algorithm>
#include <cmath>

namespace fuzzydb {

namespace {

// Expected sorted-access depth per list for A0 on independent grades:
// the theorem's (k * N^(m-1))^(1/m), i.e. total sorted ~ m * depth.
double ExpectedDepth(size_t n, size_t m, size_t k) {
  double nd = static_cast<double>(n);
  double depth = std::pow(static_cast<double>(k) * std::pow(nd,
                              static_cast<double>(m - 1)),
                          1.0 / static_cast<double>(m));
  return std::min(depth, nd);
}

bool IsPureMaxDisjunction(const Query& query) {
  if (query.kind() != Query::Kind::kOr) return false;
  if (query.weights().has_value()) return false;
  if (query.rule() == nullptr || query.rule()->name() != "max") return false;
  for (const QueryPtr& c : query.children()) {
    if (c->kind() != Query::Kind::kAtomic) return false;
  }
  return true;
}

}  // namespace

Result<AccessMix> EstimateAccessMix(Algorithm algorithm, size_t n, size_t m,
                                    size_t k, const CostModel& model) {
  if (n == 0 || m == 0 || k == 0) {
    return Status::InvalidArgument("n, m, k must all be positive");
  }
  const double nd = static_cast<double>(n);
  const double md = static_cast<double>(m);
  const double kd = static_cast<double>(std::min(k, n));
  const double depth = ExpectedDepth(n, m, k);
  switch (algorithm) {
    case Algorithm::kNaive:
      return AccessMix{md * nd, 0.0};
    case Algorithm::kFagin:
    case Algorithm::kThreshold:
      // ~m*depth sorted accesses; each distinct object seen (≈ m*depth for
      // small depth/N) needs its missing grades via random access: about
      // (m-1) random probes per seen object.
      return AccessMix{md * depth, md * depth * (md - 1.0)};
    case Algorithm::kNoRandomAccess:
      // NRA reads somewhat deeper (constant factor ~2 observed in E7) but
      // performs no random access at all.
      return AccessMix{2.0 * md * depth, 0.0};
    case Algorithm::kDisjunctionShortcut:
      return AccessMix{md * kd, 0.0};
    case Algorithm::kFilteredSimulation:
      // One successful round fetches ~m*depth objects; budget one restart.
      return AccessMix{2.0 * md * depth, md * depth * (md - 1.0)};
    case Algorithm::kCombined: {
      // NRA-style sorted work, with one (m-1)-probe resolution every
      // h = max(1, random/sorted) rounds.
      double h = std::max(1.0, model.random_unit /
                                   std::max(model.sorted_unit, 1e-9));
      return AccessMix{1.5 * md * depth, (md * depth / h) * (md - 1.0)};
    }
    case Algorithm::kAuto:
      return Status::InvalidArgument("kAuto has no cost of its own");
  }
  return Status::InvalidArgument("unknown algorithm");
}

Result<double> EstimateCost(Algorithm algorithm, size_t n, size_t m, size_t k,
                            const CostModel& model) {
  Result<AccessMix> mix = EstimateAccessMix(algorithm, n, m, k, model);
  if (!mix.ok()) return mix.status();
  return mix->sorted * model.sorted_unit + mix->random * model.random_unit;
}

size_t DerivePrefetchDepth(Algorithm algorithm, size_t n, size_t m, size_t k,
                           const CostModel& model, size_t executors) {
  if (executors <= 1) return 0;  // nothing to overlap with
  Result<AccessMix> mix = EstimateAccessMix(algorithm, n, m, k, model);
  if (!mix.ok()) return 0;
  const double sorted_cost = mix->sorted * model.sorted_unit;
  const double total = sorted_cost + mix->random * model.random_unit;
  if (total <= 0.0) return 0;
  const double sorted_share = sorted_cost / total;
  // Random-dominated plans gain little from running ahead on the sorted
  // streams; keep the pipeline (depth 1) but skip deep speculation.
  if (sorted_share < 0.5) return 1;
  // Sorted-dominated: enough ring-buffer depth to keep every executor busy,
  // scaled by how much of the cost the prefetcher can actually overlap.
  const double target =
      4.0 * static_cast<double>(executors) * sorted_share;
  size_t depth = 2;
  while (depth < 64 && static_cast<double>(depth) < target) depth *= 2;
  return depth;
}

Result<PlanChoice> ChoosePlan(const Query& query, size_t n, size_t k,
                              const CostModel& model) {
  if (n == 0 || k == 0) {
    return Status::InvalidArgument("n and k must be positive");
  }
  const size_t m = std::max<size_t>(query.NumAtoms(), 1);

  std::vector<Algorithm> candidates{Algorithm::kNaive};
  if (query.IsMonotone()) {
    candidates.push_back(Algorithm::kFagin);
    candidates.push_back(Algorithm::kThreshold);
    candidates.push_back(Algorithm::kNoRandomAccess);
    candidates.push_back(Algorithm::kCombined);
    if (IsPureMaxDisjunction(query)) {
      candidates.push_back(Algorithm::kDisjunctionShortcut);
    }
  }

  PlanChoice choice;
  choice.combined_period = DefaultCombinedPeriod(model);
  double best = 0.0;
  bool first = true;
  for (Algorithm algo : candidates) {
    Result<double> est = EstimateCost(algo, n, m, k, model);
    if (!est.ok()) return est.status();
    // (built up with += to dodge a GCC-12 -Wrestrict false positive on
    // `const char* + std::string&&`)
    std::string label = AlgorithmName(algo);
    if (algo == Algorithm::kCombined) {
      label += "(h=";
      label += std::to_string(choice.combined_period);
      label += ")";
    }
    choice.considered.emplace_back(std::move(label), *est);
    if (first || *est < best) {
      best = *est;
      choice.algorithm = algo;
      first = false;
    }
  }
  // The index-driven variant: TA's access mix with one list's sorted
  // accesses served by the calibrated R-tree driver instead of a
  // precomputed sorted list. Correctness is unchanged (the driver streams
  // the identical graded set, DESIGN §3h), so this competes purely on
  // price: cheap when the tree's per-emit work is small (low dim), ruled
  // out by its own calibration numbers once the dimensionality curse makes
  // node expansions per release explode.
  if (query.IsMonotone() && model.index_driver.has_value()) {
    const IndexDriverCalibration& driver = *model.index_driver;
    Result<AccessMix> mix =
        EstimateAccessMix(Algorithm::kThreshold, n, m, k, model);
    if (!mix.ok()) return mix.status();
    const double per_list = mix->sorted / static_cast<double>(m);
    const double est = per_list * driver.EmitUnit() +
                       (mix->sorted - per_list) * model.sorted_unit +
                       mix->random * model.random_unit;
    std::string label = "rtree(dim=";
    label += std::to_string(driver.dim);
    label += ")";
    choice.considered.emplace_back(std::move(label), est);
    if (first || est < best) {
      best = est;
      choice.algorithm = Algorithm::kThreshold;
      choice.use_index_driver = true;
      first = false;
    }
  }
  choice.estimated_cost = best;
  return choice;
}

Result<ExecutionResult> ExecuteOptimized(QueryPtr query,
                                         const SourceResolver& resolver,
                                         size_t k, const CostModel& model,
                                         PlanChoice* choice,
                                         const ParallelOptions& parallel) {
  if (query == nullptr) return Status::InvalidArgument("null query");

  // Need N: resolve the first atom and ask its source.
  std::vector<const Query*> atoms;
  query->CollectAtoms(&atoms);
  if (atoms.empty()) return Status::InvalidArgument("query has no atoms");
  Result<GradedSource*> first = resolver(*atoms[0]);
  if (!first.ok()) return first.status();
  size_t n = (*first)->Size();
  if (n == 0) return Status::FailedPrecondition("empty database");

  Result<PlanChoice> plan = ChoosePlan(*query, n, k, model);
  if (!plan.ok()) return plan.status();
  if (choice != nullptr) *choice = *plan;

  ExecutorOptions options;
  options.algorithm = plan->algorithm;
  options.combined_period = plan->combined_period;
  options.parallel = parallel;
  // The adaptive layer (DESIGN §3f): hand the executor the price model it
  // planned under, so prefetch depth can follow the estimated access mix.
  options.adaptive_cost_model = model;
  return ExecuteTopK(std::move(query), resolver, k, options);
}

}  // namespace fuzzydb
