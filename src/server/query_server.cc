#include "server/query_server.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/equivalence.h"

namespace fuzzydb {

QueryServer::QueryServer(const QueryServerOptions& options)
    : options_(options), cache_(options.cache_capacity) {}

QueryServer::~QueryServer() { Drain(); }

Result<Submission> QueryServer::Submit(QueryPtr query, size_t k,
                                       SourceResolver resolver,
                                       const SubmitOptions& submit) {
  {
    MutexLock lock(mu_);
    ++stats_.submitted;
  }
  if (query == nullptr) return Status::InvalidArgument("null query");
  if (k == 0) return Status::InvalidArgument("k must be >= 1");

  // Compose the backing store's generation into the cache version: a
  // changed data_version invalidates before this query stamps its own
  // store_version below, so nothing computed against the old data can be
  // served or cached against the new.
  if (options_.data_version) {
    const uint64_t observed = options_.data_version();
    bool changed = false;
    {
      MutexLock lock(mu_);
      changed = last_data_version_.has_value() &&
                *last_data_version_ != observed;
      last_data_version_ = observed;
    }
    if (changed) InvalidateCache();
  }

  // Resolve every atom now: fail fast on unknown attributes, and size the
  // plan from the widest list.
  std::vector<const Query*> atoms;
  query->CollectAtoms(&atoms);
  if (atoms.empty()) return Status::InvalidArgument("query has no atoms");
  size_t n = 0;
  for (const Query* atom : atoms) {
    Result<GradedSource*> src = resolver(*atom);
    if (!src.ok()) return src.status();
    n = std::max(n, (*src)->Size());
  }

  const std::string key = CanonicalKey(query) + "|k=" + std::to_string(k);
  // Stamped before any store read: a concurrent InvalidateCache makes this
  // version stale, so whatever this query computes can no longer be cached.
  const uint64_t version = cache_.store_version();

  std::optional<CachedQuery> cached = cache_.Lookup(key);
  if (cached.has_value() && cached->has_result && options_.cache_results) {
    auto ticket = std::make_shared<Ticket<ServedResult>>();
    ServedResult out;
    out.topk = cached->result;
    out.algorithm_used = cached->plan.algorithm;
    out.from_cache = true;
    out.completed_at = std::chrono::steady_clock::now();
    ticket->Complete(std::move(out));
    {
      MutexLock lock(mu_);
      ++stats_.served_from_cache;
    }
    return Submission{std::move(ticket), nullptr};
  }

  PlanChoice plan;
  if (cached.has_value()) {
    plan = cached->plan;
  } else {
    Result<PlanChoice> choice = ChoosePlan(*query, n, k, options_.cost_model);
    if (!choice.ok()) return choice.status();
    plan = std::move(choice).value();
    CachedQuery entry;
    entry.plan = plan;
    entry.store_version = version;
    cache_.Insert(key, entry);
  }

  if (options_.admission_max_cost > 0.0 &&
      plan.estimated_cost > options_.admission_max_cost) {
    MutexLock lock(mu_);
    ++stats_.rejected_cost;
    return Status::ResourceExhausted(
        "admission control: plan '" + AlgorithmName(plan.algorithm) +
        "' estimates charged cost " + std::to_string(plan.estimated_cost) +
        " > limit " + std::to_string(options_.admission_max_cost));
  }

  // Per-query budget: the caller's explicit one wins; otherwise derived
  // from the plan's own expectation — a query exceeding its estimate by
  // more than the headroom factor is truncated, not allowed to starve its
  // neighbors.
  uint64_t budget = submit.sorted_access_budget;
  if (budget == 0 && options_.budget_headroom > 0.0) {
    Result<AccessMix> mix = EstimateAccessMix(plan.algorithm, n, atoms.size(),
                                              k, options_.cost_model);
    if (mix.ok()) {
      budget = static_cast<uint64_t>(
          std::ceil(options_.budget_headroom * mix->sorted));
      budget = std::max<uint64_t>(budget, 1);
    }
  }
  std::shared_ptr<AccessGovernor> governor;
  if (budget > 0 || submit.deadline.has_value()) {
    governor = std::make_shared<AccessGovernor>(budget, submit.deadline);
  }

  auto ticket = std::make_shared<Ticket<ServedResult>>();
  {
    MutexLock lock(mu_);
    ++in_flight_;
  }
  auto task = [this, query = std::move(query), resolver = std::move(resolver),
               k, plan, governor, ticket, key, version]() mutable {
    RunQuery(std::move(query), std::move(resolver), k, std::move(plan),
             std::move(governor), ticket, std::move(key), version);
  };

  if (options_.executor != nullptr) {
    options_.executor->Schedule(std::move(task));
  } else if (options_.pool != nullptr && options_.pool->executors() > 1) {
    if (!options_.pool->TryPost(std::move(task))) {
      // Explicit rejection: the task was neither enqueued nor run, the
      // caller gets a Status, and the refusal is counted. Never a silent
      // drop.
      MutexLock lock(mu_);
      ++stats_.rejected_queue_full;
      if (--in_flight_ == 0) drained_cv_.NotifyAll();
      return Status::ResourceExhausted(
          "server queue full: the pool refused the task (backpressure); "
          "retry after in-flight queries drain");
    }
  } else {
    // Workerless pool (or none): inline, synchronous degradation.
    task();
  }
  {
    MutexLock lock(mu_);
    ++stats_.admitted;
  }
  return Submission{std::move(ticket), std::move(governor)};
}

void QueryServer::RunQuery(QueryPtr query, SourceResolver resolver, size_t k,
                           PlanChoice plan,
                           std::shared_ptr<AccessGovernor> governor,
                           std::shared_ptr<Ticket<ServedResult>> ticket,
                           std::string key, uint64_t store_version) {
  ExecutorOptions opts;
  opts.algorithm = plan.algorithm;
  opts.combined_period = plan.combined_period;
  opts.governor = governor;
  // Deliberately serial ParallelOptions: concurrency lives between queries.
  // Each answer is bit-identical to a serial ExecuteTopK of the same plan.
  Result<ExecutionResult> run = ExecuteTopK(std::move(query), resolver, k, opts);

  ServedResult out;
  out.algorithm_used = plan.algorithm;
  if (run.ok()) {
    out.topk = std::move(run->topk);
    out.algorithm_used = run->algorithm_used;
    out.completion = run->completion;
    if (options_.cache_results && out.completion.ok()) {
      // Partial (truncated) results are never cached: their content depends
      // on the budget, not just the query. Insert re-checks store_version,
      // so a result computed before an invalidation is dropped.
      CachedQuery entry;
      entry.plan = std::move(plan);
      entry.has_result = true;
      entry.result = out.topk;
      entry.store_version = store_version;
      cache_.Insert(key, entry);
    }
  } else {
    out.status = run.status();
  }
  out.completed_at = std::chrono::steady_clock::now();
  ticket->Complete(std::move(out));
  {
    MutexLock lock(mu_);
    if (--in_flight_ == 0) drained_cv_.NotifyAll();
  }
}

void QueryServer::Drain() {
  MutexLock lock(mu_);
  while (in_flight_ > 0) drained_cv_.Wait(mu_, lock);
}

void QueryServer::InvalidateCache() { cache_.InvalidateAll(); }

ServerStats QueryServer::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

size_t QueryServer::in_flight() const {
  MutexLock lock(mu_);
  return in_flight_;
}

}  // namespace fuzzydb
