// Multi-tenant query server (DESIGN §3j): concurrent top-k admission over
// the shared ThreadPool, cost-based admission control, per-query access
// budgets, and an LRU plan/result cache keyed on the rewriter-canonical
// query form.
//
// Design points:
//   - Submit never blocks on execution: it plans, admits, and hands back a
//     Ticket the caller waits on. Execution runs on the pool via TryPost;
//     a full queue is an *explicit rejection* (Submit returns
//     ResourceExhausted and nothing was enqueued), never a silent drop —
//     backpressure the tenant can see and retry against.
//   - Admission control compares the optimizer's charged-cost estimate for
//     the chosen plan against `admission_max_cost`; per-query sorted-access
//     budgets are derived from the same estimate (headroom × expected
//     sorted accesses), so a query that blows past its own plan's
//     prediction is truncated, completing with the documented
//     partial-result Status instead of starving its neighbors.
//   - Determinism: every admitted query executes with the *serial*
//     ParallelOptions — concurrency lives between queries, not inside one —
//     so each answer is bit-identical to a serial ExecuteTopK of the same
//     plan at every pool size, budget truncation included (the governor
//     charges consumed accesses only; middleware/budget.h).
//   - On a workerless pool (ThreadPool(1), or no pool at all) Submit runs
//     the query inline on the calling thread: TryPost always refuses there,
//     and rejecting everything would make a 1-core host serve nothing. The
//     ticket completes before Submit returns; semantics are otherwise
//     identical.
//   - The plan/result cache is keyed CanonicalKey(query) + k, so
//     rewritten-equal queries share entries (core/equivalence.h). Partial
//     results are never cached. InvalidateCache() bumps the store version:
//     stale entries can never be served afterwards, even by a query that
//     was mid-flight across the invalidation (server/query_cache.h).

#ifndef FUZZYDB_SERVER_QUERY_SERVER_H_
#define FUZZYDB_SERVER_QUERY_SERVER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/thread_pool.h"
#include "common/ticket.h"
#include "middleware/budget.h"
#include "middleware/executor.h"
#include "server/query_cache.h"

namespace fuzzydb {

/// Server-wide configuration.
struct QueryServerOptions {
  /// Executes admitted queries. Null, or a pool with no workers, degrades
  /// to inline execution on the submitting thread (see header comment).
  ThreadPool* pool = nullptr;
  /// Test seam: when set, admitted work is handed to this executor instead
  /// of pool->TryPost — bypassing queue backpressure — so hostile
  /// schedulers (ShuffledExecutor) can drive the server. Tests must run the
  /// executor's deferred tasks before Drain() or the destructor.
  TaskExecutor* executor = nullptr;
  /// Plan/result cache capacity (entries).
  size_t cache_capacity = 1024;
  /// Prices for planning, admission, and budget derivation.
  CostModel cost_model;
  /// Reject queries whose chosen plan's estimated charged cost exceeds
  /// this. 0 = no cost-based admission control.
  double admission_max_cost = 0.0;
  /// When > 0, each query gets a sorted-access budget of
  /// ceil(headroom × the plan's estimated sorted accesses) unless its
  /// SubmitOptions pins one. 0 = no derived budgets.
  double budget_headroom = 0.0;
  /// Cache full results (plans are always cached). Partial results never.
  bool cache_results = true;
  /// External data-generation probe. When set, every Submit compares the
  /// probe's value against the last one observed and calls
  /// InvalidateCache() on change — composing the cache's own version with
  /// a backing store's (e.g. storage::PagedEmbeddingStore::version()), so
  /// re-ingesting the on-disk collection can never serve stale cached
  /// results. Must be cheap and thread-safe; called with no server lock.
  std::function<uint64_t()> data_version;
};

/// Per-query knobs.
struct SubmitOptions {
  /// Explicit consumed-sorted-access budget (0 = derive from
  /// budget_headroom, or unlimited when that is 0 too).
  uint64_t sorted_access_budget = 0;
  /// Wall-clock deadline for this query.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// What a query's ticket completes with.
struct ServedResult {
  /// OK when the query executed (possibly truncated — see `completion`);
  /// an execution error otherwise. Admission rejections never get here:
  /// they fail Submit itself.
  Status status;
  TopKResult topk;
  Algorithm algorithm_used = Algorithm::kNaive;
  /// The executor's partial-result Status: OK for a run that reached its
  /// halting condition, else Cancelled / DeadlineExceeded /
  /// ResourceExhausted with `topk` holding the top-k of the consumed
  /// prefix.
  Status completion;
  /// Served from the result cache (no execution, no governor).
  bool from_cache = false;
  /// When the ticket was completed; sojourn time = this - submit time.
  std::chrono::steady_clock::time_point completed_at;
};

/// An admitted query: the handle to wait on, plus the cancellation gate.
struct Submission {
  std::shared_ptr<Ticket<ServedResult>> ticket;
  /// Cancel() truncates the run (completion = Cancelled). Null for cache
  /// hits and unbudgeted inline runs that finished before Submit returned.
  std::shared_ptr<AccessGovernor> governor;
};

/// Admission / serving counters (cache counters live in CacheStats).
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  /// TryPost refusals surfaced as ResourceExhausted rejections.
  uint64_t rejected_queue_full = 0;
  /// Admission-control (estimated cost) rejections.
  uint64_t rejected_cost = 0;
  /// Tickets completed straight from the result cache.
  uint64_t served_from_cache = 0;
};

/// Multi-tenant top-k query server. Thread-safe: any number of threads may
/// Submit / Cancel / Drain concurrently. The destructor drains.
class QueryServer {
 public:
  explicit QueryServer(const QueryServerOptions& options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Plans, admits, and dispatches `query` for its top-k answers.
  /// `resolver` (and every source it returns) must stay valid until the
  /// ticket completes. Errors are all pre-execution:
  ///   - InvalidArgument: null query / no atoms / unresolvable atom;
  ///   - ResourceExhausted "admission": estimated cost over the limit;
  ///   - ResourceExhausted "queue full": TryPost refused — explicit
  ///     backpressure, nothing was enqueued or silently dropped.
  Result<Submission> Submit(QueryPtr query, size_t k, SourceResolver resolver,
                            const SubmitOptions& submit = {});

  /// Blocks until every admitted query has completed its ticket.
  void Drain();

  /// Drops all cached plans/results and bumps the store version (call when
  /// subsystem data regenerates). See server/query_cache.h for the
  /// never-serve-stale guarantee.
  void InvalidateCache();

  ServerStats stats() const;
  CacheStats cache_stats() const { return cache_.stats(); }
  size_t in_flight() const;

 private:
  /// The execution body for one admitted query.
  void RunQuery(QueryPtr query, SourceResolver resolver, size_t k,
                PlanChoice plan, std::shared_ptr<AccessGovernor> governor,
                std::shared_ptr<Ticket<ServedResult>> ticket, std::string key,
                uint64_t store_version);

  const QueryServerOptions options_;
  QueryCache cache_;

  mutable Mutex mu_;
  CondVar drained_cv_;
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  ServerStats stats_ GUARDED_BY(mu_);
  /// Last options_.data_version() value observed (nullopt before the
  /// first probe; the first observation never invalidates).
  std::optional<uint64_t> last_data_version_ GUARDED_BY(mu_);
};

}  // namespace fuzzydb

#endif  // FUZZYDB_SERVER_QUERY_SERVER_H_
