#include "server/query_cache.h"

#include <algorithm>

namespace fuzzydb {

QueryCache::QueryCache(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

std::optional<CachedQuery> QueryCache::Lookup(const std::string& key) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second->second.store_version != version_) {
    // Stale: computed against a store that has since regenerated. Erasing
    // here (not at InvalidateAll) keeps invalidation O(1); the version
    // check inside this critical section is what guarantees a stale entry
    // is never served.
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->second;
}

void QueryCache::Insert(const std::string& key, CachedQuery entry) {
  MutexLock lock(mu_);
  if (entry.store_version != version_) return;  // predates an invalidation
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void QueryCache::InvalidateAll() {
  MutexLock lock(mu_);
  ++version_;
  ++stats_.invalidations;
  lru_.clear();
  index_.clear();
}

uint64_t QueryCache::store_version() const {
  MutexLock lock(mu_);
  return version_;
}

CacheStats QueryCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

size_t QueryCache::size() const {
  MutexLock lock(mu_);
  return lru_.size();
}

}  // namespace fuzzydb
