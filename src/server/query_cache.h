// LRU plan/result cache for the query server (DESIGN §3j).
//
// Keyed on the rewriter-canonical form of the query (core/equivalence.h
// CanonicalKey) plus k, so two queries the lattice identities map onto each
// other — commuted, distributed, absorbed — share one entry: the same
// guarantee the optimizer relies on ("replace a query by a logically
// equivalent query, and be guaranteed of getting the same answer", paper
// §3) is what makes serving one query's cached answer for the other sound.
//
// Entries carry the store version they were computed against. InvalidateAll
// bumps the server's version (called when a subsystem's data regenerates);
// stale entries are dropped lazily on Lookup and can never be served — the
// version check happens inside the same critical section as the hit. Insert
// likewise refuses an entry stamped with an old version, closing the race
// where a query that started before an invalidation tries to cache its
// now-stale answer after it.

#ifndef FUZZYDB_SERVER_QUERY_CACHE_H_
#define FUZZYDB_SERVER_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/sync.h"
#include "middleware/optimizer.h"

namespace fuzzydb {

/// One cached query: always the plan, optionally the full answer (partial
/// answers — budget/cancel/deadline truncations — are never cached; their
/// content depends on the budget, not just the query).
struct CachedQuery {
  PlanChoice plan;
  bool has_result = false;
  TopKResult result;
  /// Store version the entry was computed against (stamped by the caller
  /// from store_version() *before* reading the store).
  uint64_t store_version = 0;
};

/// Hit/miss/eviction counters; a Lookup is exactly one hit or one miss.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
};

/// Thread-safe LRU cache of CachedQuery entries, capacity-bounded, with
/// store-version invalidation. All operations are O(1) expected.
class QueryCache {
 public:
  explicit QueryCache(size_t capacity);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// The entry for `key`, freshened to most-recently-used — or nullopt
  /// (counted as a miss) when absent or stamped with a pre-invalidation
  /// store version (the stale entry is erased).
  std::optional<CachedQuery> Lookup(const std::string& key);

  /// Inserts (or overwrites) `key`, evicting the least-recently-used entry
  /// when past capacity. An entry whose store_version is not the current
  /// version is dropped without insertion: its data predates an
  /// invalidation.
  void Insert(const std::string& key, CachedQuery entry);

  /// Drops every entry and bumps the store version, so in-flight queries
  /// that read the old store can no longer insert (see Insert).
  void InvalidateAll();

  /// Current store version; stamp entries with this before reading the
  /// store they describe.
  uint64_t store_version() const;

  CacheStats stats() const;
  size_t size() const;

 private:
  using Entry = std::pair<std::string, CachedQuery>;

  mutable Mutex mu_;
  const size_t capacity_;
  /// Front = most recently used.
  std::list<Entry> lru_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      GUARDED_BY(mu_);
  uint64_t version_ GUARDED_BY(mu_) = 0;
  CacheStats stats_ GUARDED_BY(mu_);
};

}  // namespace fuzzydb

#endif  // FUZZYDB_SERVER_QUERY_CACHE_H_
