// The eigen-space embedding layer for the quadratic-form color distance
// (paper §2.1, formula (2) generalized).
//
// At ingest every histogram x is projected once into eigen-space,
// e_j(x) = sqrt(λ_j)·⟨x, v_j⟩ over all k eigenpairs of B = P A P — an O(k^2)
// cost paid once per object. The embeddings live in one flat, row-major,
// cache-line-aligned buffer. Query time then gets three things:
//
//   1. exact distances in O(k): d(x, y) = |e(x) - e(y)|_2, no allocation;
//   2. a *cascade* of lower bounds: the eigenvalues are sorted descending,
//      so the partial sum over any prefix of embedding dimensions already
//      lower-bounds d^2 — formula (2) is the s = 3 special case, and every
//      s in 1..k is a valid filter level with no false dismissals;
//   3. batched kernels over the contiguous buffer that the compiler can
//      keep in registers / vectorize (one row per object, unit stride).
//
// CascadeKnn() exploits (2) end to end: a cheap s-dim prefix bound orders
// the candidates, then each surviving candidate is refined
// dimension-incrementally with early exit as soon as its partial sum
// provably exceeds the current k-th best. This generalizes the two-level
// FilteredKnn of bounding.h (project-3-dims, then full O(k^2) distance) into
// a multi-level filter whose refinement work per candidate is proportional
// to how close the candidate actually is.

#ifndef FUZZYDB_IMAGE_EMBEDDING_STORE_H_
#define FUZZYDB_IMAGE_EMBEDDING_STORE_H_

#include <span>
#include <utility>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/thread_pool.h"
#include "image/knn_kernel.h"
#include "image/quadratic_distance.h"
#include "image/quantized_store.h"

namespace fuzzydb {

// CascadeStats and CascadeOptions live in image/knn_kernel.h, shared with
// the disk-backed storage::PagedEmbeddingStore — both stores execute the
// same templated kernels, which is what makes their answers bit-identical.

/// A flat row-major collection of eigen-space embeddings: row i is the full
/// k-dim embedding of object i. Rows are padded to a whole number of cache
/// lines (stride() >= dim() doubles, zero pad) so every row start is
/// 64-byte aligned — the layout full-cacheline block kernels and aligned
/// vector loads require.
class EmbeddingStore {
 public:
  /// An empty store; usable instances come from Build() or the sizing
  /// constructor plus MutableRow() fills.
  EmbeddingStore() = default;

  /// A zero-filled store for `count` embeddings of dimension `dim`
  /// (ingest-time API: fill rows via MutableRow + EmbedInto, then
  /// optionally BuildQuantized()).
  EmbeddingStore(size_t count, size_t dim)
      : size_(count), dim_(dim), stride_(RowStride(dim)),
        data_(count * stride_) {}

  /// Projects every histogram of `database` once (O(k^2) each) and builds
  /// the int8 companion tier.
  static Result<EmbeddingStore> Build(const QuadraticFormDistance& qfd,
                                      const std::vector<Histogram>& database);

  size_t size() const { return size_; }
  size_t dim() const { return dim_; }
  /// Doubles between consecutive row starts: dim() rounded up to a whole
  /// cache line so every row is 64-byte aligned.
  size_t stride() const { return stride_; }

  /// The stored embedding of object i.
  std::span<const double> Row(size_t i) const {
    return {data_.data() + i * stride_, dim_};
  }
  /// Writable row for ingest.
  std::span<double> MutableRow(size_t i) {
    return {data_.data() + i * stride_, dim_};
  }

  /// (Re)builds the int8 scalar-quantized companion from the current rows.
  /// Build() does this automatically; the sizing-constructor ingest path
  /// calls it once the rows are filled. O(size * dim); adds ~dim bytes per
  /// row of memory.
  void BuildQuantized() {
    quantized_ = QuantizedStore::Build(data_.data(), size_, dim_, stride_);
  }
  bool has_quantized() const { return !quantized_.empty(); }
  /// The int8 tier (empty() when not built).
  const QuantizedStore& quantized() const { return quantized_; }

  /// The batched exact kernel: out[i] = |Row(i) - target|_2 for every
  /// stored object. `target` must be a full-dimension embedding (from
  /// QuadraticFormDistance::Embed) and `out` must have size() entries.
  /// One contiguous unit-stride pass over the buffer.
  void BatchDistances(std::span<const double> target,
                      std::span<double> out) const;

  /// Sharded batch kernel: the rows are split into `shards` contiguous
  /// ranges (default: one per pool executor) scanned concurrently on
  /// `pool`, or serially when `pool` is null. Bit-identical to the serial
  /// overload for every shard count — rows are independent.
  void BatchDistances(std::span<const double> target, std::span<double> out,
                      ThreadPool* pool, size_t shards = 0) const;

  /// Exact top-k by the batched kernel: k smallest distances, ascending,
  /// ties broken by index. O(n·k_dim) + selection.
  std::vector<std::pair<size_t, double>> ExactKnn(
      std::span<const double> target, size_t k) const;

  /// Sharded exact top-k: each shard selects its local k smallest
  /// (d^2, index) pairs and the merge keeps the global k smallest. Since
  /// every row's d^2 is computed by the same split-invariant kernel and the
  /// selection key is the same lexicographic (d^2, index) order, the result
  /// is bit-identical to the serial ExactKnn at any shard count, with or
  /// without a pool.
  std::vector<std::pair<size_t, double>> ExactKnn(
      std::span<const double> target, size_t k, ThreadPool* pool,
      size_t shards = 0) const;

  /// The cascaded filter search. Identical results to ExactKnn() — same
  /// indices, same order, bit-identical distances (the partial sums
  /// accumulate in the same order as the batched kernel) — but full-depth
  /// refinements only for objects that are genuinely competitive.
  /// k = 0 returns an empty result; k > size() clamps.
  std::vector<std::pair<size_t, double>> CascadeKnn(
      std::span<const double> target, size_t k,
      const CascadeOptions& options = {}, CascadeStats* stats = nullptr) const;

  /// Sharded cascade: every shard runs the full cascade on its own row
  /// range (local bounds, local ordering, local top-k) and the merge keeps
  /// the global k smallest (d^2, index) pairs. Answers are bit-identical to
  /// the serial cascade — and therefore to ExactKnn — at any shard count;
  /// `stats` (summed over shards, deterministic) may report more refinement
  /// work than the serial run because each shard prunes against its own
  /// local k-th best.
  std::vector<std::pair<size_t, double>> CascadeKnn(
      std::span<const double> target, size_t k, const CascadeOptions& options,
      CascadeStats* stats, ThreadPool* pool, size_t shards = 0) const;

  /// Doubles between row starts for a given dim: dim rounded up to a whole
  /// cache line. Public so the on-disk column format (src/storage) can
  /// promise the identical layout — paged rows must alias RAM rows exactly.
  static size_t RowStride(size_t dim) {
    constexpr size_t kDoublesPerLine =
        AlignedBuffer::kAlignment / sizeof(double);
    return (dim + kDoublesPerLine - 1) / kDoublesPerLine * kDoublesPerLine;
  }

 private:
  size_t size_ = 0;
  size_t dim_ = 0;
  size_t stride_ = 0;
  AlignedBuffer data_;
  QuantizedStore quantized_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_EMBEDDING_STORE_H_
