// The distance-bounding filter strategy (paper §2.1, [HSE+95]): associate to
// each (long) histogram x a short vector x̂ with a cheap distance d̂ such that
//
//   d(x, y) >= d̂(x̂, ŷ)   for all x, y          (paper formula (2))
//
// so filtering by d̂ never causes a false dismissal. Our construction takes
// the top-s eigenpairs (λ_j, v_j) of B = P A P and sets
// x̂_j = sqrt(λ_j) <x, v_j>; then d̂ = Euclidean distance, and
// d(x,y)^2 = Σ_j λ_j <x-y, v_j>^2 >= Σ_{j<=s} λ_j <x-y, v_j>^2 = d̂(x̂,ŷ)^2.
// With s = 3 this is exactly a "dimension 3 color vector" summarizing x.
//
// The summary is precisely the first s coordinates of the full eigen-space
// embedding (quadratic_distance.h), and FilteredKnn below is the two-level
// special case of the multi-level cascade in embedding_store.h — kept as
// the paper-faithful baseline; new code should prefer
// EmbeddingStore::CascadeKnn, which refines in O(k) instead of O(k^2) per
// candidate.

#ifndef FUZZYDB_IMAGE_BOUNDING_H_
#define FUZZYDB_IMAGE_BOUNDING_H_

#include <vector>

#include "image/quadratic_distance.h"

namespace fuzzydb {

/// The eigen-projection filter for one quadratic-form distance.
class EigenFilter {
 public:
  /// An empty placeholder; usable instances come from Create().
  EigenFilter() = default;

  /// Keeps the top `dim` eigenpairs (clamped to the full dimension).
  static Result<EigenFilter> Create(const QuadraticFormDistance& qfd,
                                    size_t dim = 3);

  /// x̂: the short summary vector of a histogram.
  std::vector<double> Project(const Histogram& x) const;

  /// d̂(x̂, ŷ): plain Euclidean distance between summaries.
  static double BoundDistance(const std::vector<double>& fx,
                              const std::vector<double>& fy);

  /// Fraction of the total eigenmass Σλ captured by the kept eigenpairs —
  /// the filter's selectivity improves as this approaches 1.
  double CapturedEnergy() const { return captured_energy_; }

  size_t dim() const { return rows_.size(); }

 private:
  // rows_[j] = sqrt(λ_j) * v_j, ready for a dot product with the histogram.
  std::vector<std::vector<double>> rows_;
  double captured_energy_ = 1.0;
};

/// Statistics from a filtered nearest-neighbour search.
struct FilteredSearchStats {
  /// Full quadratic-form distance computations actually performed.
  size_t full_distance_computations = 0;
  /// Cheap bound-distance computations (one per database object).
  size_t bound_computations = 0;
  /// Candidates that *entered* refinement, whether they finished (counted
  /// in full_distance_computations too) or were abandoned mid-row by the
  /// early-exit cascade. Pruned candidates still cost real work — the cost
  /// tables undercount without this. Always >= full_distance_computations.
  size_t partial_refinements = 0;
};

/// Exact top-k most-similar search over `database` for `target`, using the
/// filter to skip full distance computations: objects are visited in
/// ascending d̂ order and the scan stops once d̂ exceeds the current k-th
/// best full distance (no false dismissals by formula (2)).
/// Returns indices into `database` paired with their full distances,
/// ascending.
Result<std::vector<std::pair<size_t, double>>> FilteredKnn(
    const QuadraticFormDistance& qfd, const EigenFilter& filter,
    const std::vector<Histogram>& database, const Histogram& target, size_t k,
    FilteredSearchStats* stats = nullptr);

/// Baseline: the same search with full distances only (k smallest of N).
std::vector<std::pair<size_t, double>> ExactKnn(
    const QuadraticFormDistance& qfd, const std::vector<Histogram>& database,
    const Histogram& target, size_t k);

}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_BOUNDING_H_
