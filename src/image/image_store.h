// A synthetic image repository — the QBIC-shaped substrate. The paper's
// experiments ran over real image collections; we generate images with the
// same feature structure (color histograms over a palette + polygonal
// shapes), which exercises identical code paths (see DESIGN.md,
// Substitutions).

#ifndef FUZZYDB_IMAGE_IMAGE_STORE_H_
#define FUZZYDB_IMAGE_IMAGE_STORE_H_

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "common/random.h"
#include "core/graded_set.h"
#include "image/cascade_tuner.h"
#include "image/color.h"
#include "image/embedding_store.h"
#include "image/quadratic_distance.h"
#include "image/shape.h"
#include "image/texture.h"

namespace fuzzydb {

/// The QBIC color grade map: 1 - distance / max_distance, clamped to [0,1].
/// A free function so every color source — batch-graded (qbic_source) or
/// index-driven (rtree_source) — applies the *identical* arithmetic and
/// equal distances always map to bit-equal grades.
inline double GradeFromDistance(double distance, double max_distance) {
  double g = 1.0 - distance / max_distance;
  return std::clamp(g, 0.0, 1.0);
}

/// One synthetic image: its extracted features.
struct ImageRecord {
  ObjectId id = 0;
  Histogram histogram;
  Polygon shape = Polygon::Regular(3);
  TextureFeatures texture;
};

/// Generation knobs for a synthetic collection.
struct ImageStoreOptions {
  size_t num_images = 1000;
  size_t palette_size = 64;
  size_t histogram_peaks = 3;
  double histogram_noise = 0.1;
  size_t min_shape_vertices = 3;
  size_t max_shape_vertices = 12;
  /// Side of the procedural texture patch features are extracted from.
  size_t texture_patch_side = 32;
  uint64_t seed = 7;
  ObjectId first_id = 1;
  /// Run the cascade tuner at generation time so tuned_cascade() reflects
  /// this palette's spectrum. Tuning never changes answers, only costs.
  bool tune_cascade = true;
};

/// The palette-level machinery of a streamed generation run: everything
/// about the collection that is not per-image state. Callers keep this to
/// embed query targets against the streamed rows later.
struct StreamedCollection {
  Palette palette;
  QuadraticFormDistance qfd;
  size_t count = 0;
};

/// An immutable collection of synthetic images plus the distance machinery
/// for its palette.
class ImageStore {
 public:
  /// Generates the collection deterministically from `options.seed`.
  static Result<ImageStore> Generate(const ImageStoreOptions& options);

  /// The streaming generate-embed path: produces the same records and
  /// embeddings as Generate() (same seed, same rng call order, bit-equal
  /// rows), but hands each (record, embedding) to `emit` one at a time and
  /// keeps nothing — peak memory is one record plus one embedding row, for
  /// any collection size. Both backends ride this: Generate() emits into
  /// the RAM store, the column-file ingester (src/storage) emits straight
  /// to disk. A non-OK status from `emit` aborts generation and is
  /// returned. The embedding span is only valid during the call.
  static Result<StreamedCollection> GenerateStreaming(
      const ImageStoreOptions& options,
      const std::function<Status(const ImageRecord& record,
                                 std::span<const double> embedding)>& emit);

  size_t size() const { return images_.size(); }
  const std::vector<ImageRecord>& images() const { return images_; }
  const ImageRecord& image(size_t i) const { return images_[i]; }

  /// The image with the given id, or NotFound.
  Result<const ImageRecord*> Find(ObjectId id) const;

  const Palette& palette() const { return palette_; }
  const QuadraticFormDistance& color_distance() const { return qfd_; }

  /// The eigen-space embeddings of all image histograms, projected once at
  /// generation time (row i embeds image(i).histogram). Batched and
  /// cascaded color searches run over this buffer in O(bins) per pair.
  const EmbeddingStore& embeddings() const { return embeddings_; }

  /// Color grade in [0,1] of histogram `x` against a target histogram:
  /// 1 - d(x, t) / MaxDistance().
  double ColorGrade(const Histogram& x, const Histogram& target) const;

  /// The same grade map applied to an already-computed color distance
  /// (e.g. from the embedding kernels).
  double ColorGradeFromDistance(double distance) const;

  /// Cascade options the tuner picked for this palette's eigen spectrum at
  /// Generate() time (defaults if tuning was disabled), including whether
  /// the int8 quantized level −1 pays for itself on this spectrum. Passing
  /// these to EmbeddingStore::CascadeKnn changes cost, never answers.
  const CascadeOptions& tuned_cascade() const { return tuned_cascade_; }

 private:
  ImageStore() = default;
  std::vector<ImageRecord> images_;
  Palette palette_;
  QuadraticFormDistance qfd_;
  EmbeddingStore embeddings_;
  CascadeOptions tuned_cascade_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_IMAGE_STORE_H_
