// The Ioka/QBIC quadratic-form color distance (paper §2, formula (1)):
//
//   d(x, y) = sqrt( (x-y)^T A (x-y) )
//
// where A is symmetric and a_ij describes the similarity between palette
// colors i and j: a_ij = 1 - rgb_dist(c_i, c_j) / max_rgb_dist.
//
// For histograms, x - y lies in the zero-sum subspace {z : Σz_i = 0}; on
// that subspace A is positive semidefinite (J contributes 0 and the negated
// Euclidean distance matrix is conditionally positive), so the distance is
// well-defined. We work with B = P A P (P the centering projector), which is
// PSD everywhere and agrees with A on differences of histograms; its
// eigen-decomposition also powers the distance-bounding filter.
//
// The eigendecomposition additionally gives an *isometric embedding*: with
// e_j(x) = sqrt(λ_j)·⟨x, v_j⟩ (all k eigenpairs, descending λ),
//
//   d(x, y)^2 = Σ_j λ_j ⟨x-y, v_j⟩^2 = |e(x) - e(y)|_2^2,
//
// so after an O(k^2) projection per object at ingest, every exact distance
// is plain Euclidean distance in embedded space — O(k) per pair. Because the
// eigenvalues are sorted descending, every prefix of the embedding is a
// lower bound on d (paper formula (2) generalized to all prefix lengths);
// image/embedding_store.h builds the batched kernels and the cascaded filter
// on top of this.

#ifndef FUZZYDB_IMAGE_QUADRATIC_DISTANCE_H_
#define FUZZYDB_IMAGE_QUADRATIC_DISTANCE_H_

#include "common/matrix.h"
#include "image/color.h"

namespace fuzzydb {

/// The quadratic-form distance for one palette.
class QuadraticFormDistance {
 public:
  /// An empty placeholder; every usable instance comes from Create().
  QuadraticFormDistance() = default;

  /// Builds A from the palette's RGB geometry and diagonalizes B = P A P.
  static Result<QuadraticFormDistance> Create(const Palette& palette);

  /// d(x, y); histograms must have palette-size bins. Allocation-free: the
  /// difference vector lives in a per-thread scratch buffer.
  double Distance(const Histogram& x, const Histogram& y) const;

  /// Writes the eigen-space embedding e_j = sqrt(λ_j)·⟨x, v_j⟩ of `x` into
  /// `out` (both sized dimension()). Euclidean distance between embeddings
  /// equals Distance() exactly (up to eigensolver roundoff), and every
  /// prefix of the embedding lower-bounds it.
  void EmbedInto(std::span<const double> x, std::span<double> out) const;

  /// Convenience allocating form of EmbedInto().
  std::vector<double> Embed(const Histogram& x) const;

  /// Row j is sqrt(λ_j)·v_j — the embedding is the matrix-vector product of
  /// this basis with the histogram. The distance-bounding filter's rows are
  /// exactly the first rows of this matrix.
  const Matrix& embedding_basis() const { return embedding_basis_; }

  /// An upper bound on Distance over all pairs of histograms:
  /// sqrt(2 * λ_max(B)) since |x-y|_2^2 <= 2 for unit-mass histograms.
  double MaxDistance() const { return max_distance_; }

  /// Number of histogram bins.
  size_t dimension() const { return a_.rows(); }

  /// The similarity matrix A.
  const Matrix& similarity() const { return a_; }

  /// Eigenvalues of B = P A P, descending (all >= 0 up to roundoff).
  const std::vector<double>& eigenvalues() const { return eigen_.values; }
  /// Row i of the returned matrix is the unit eigenvector for
  /// eigenvalues()[i].
  const Matrix& eigenvectors() const { return eigen_.vectors; }

 private:
  Matrix a_;
  EigenDecomposition eigen_;  // of B = P A P, negatives clamped to 0
  Matrix embedding_basis_;    // row j = sqrt(λ_j) * v_j
  double max_distance_ = 0.0;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_QUADRATIC_DISTANCE_H_
