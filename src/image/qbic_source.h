// Graded-source adapters for the image substrate: the "QBIC side" of the
// paper's running example. Each adapter answers one atomic similarity query
// (Color ~ target, Shape ~ target) through the middleware's sorted/random
// access interface.

#ifndef FUZZYDB_IMAGE_QBIC_SOURCE_H_
#define FUZZYDB_IMAGE_QBIC_SOURCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "image/bounding.h"
#include "image/image_store.h"
#include "middleware/source.h"

namespace fuzzydb {

/// Color-similarity source: grade(x) = 1 - d(x, target)/d_max under the
/// quadratic-form distance of the store's palette.
class QbicColorSource final : public GradedSource {
 public:
  /// `store` must outlive the source. Grades for all images are computed at
  /// construction (the subsystem's own query evaluation); middleware access
  /// costs are counted per NextSorted/RandomAccess call, as in the paper's
  /// model.
  static Result<QbicColorSource> Create(const ImageStore* store,
                                        Histogram target,
                                        std::string label = "Color");

  size_t Size() const override { return sorted_.size(); }
  std::optional<GradedObject> NextSorted() override;
  void RestartSorted() override { cursor_ = 0; }
  double RandomAccess(ObjectId id) override;
  std::vector<GradedObject> AtLeast(double threshold) override;
  std::string name() const override { return label_; }

 private:
  QbicColorSource() = default;
  std::vector<GradedObject> sorted_;
  std::unordered_map<ObjectId, double> grades_;
  size_t cursor_ = 0;
  std::string label_;
};

/// Texture-similarity source: grade(x) = 1 / (1 + feature-space distance to
/// the target texture).
class QbicTextureSource final : public GradedSource {
 public:
  static Result<QbicTextureSource> Create(const ImageStore* store,
                                          const TextureFeatures& target,
                                          std::string label = "Texture");

  size_t Size() const override { return sorted_.size(); }
  std::optional<GradedObject> NextSorted() override;
  void RestartSorted() override { cursor_ = 0; }
  double RandomAccess(ObjectId id) override;
  std::vector<GradedObject> AtLeast(double threshold) override;
  std::string name() const override { return label_; }

 private:
  QbicTextureSource() = default;
  std::vector<GradedObject> sorted_;
  std::unordered_map<ObjectId, double> grades_;
  size_t cursor_ = 0;
  std::string label_;
};

/// Which of the paper's cited shape-closeness methods (§2) the shape
/// source grades with.
enum class ShapeMethod {
  kTurningFunction,  ///< [ACH+90]: rotation- and scale-invariant.
  kHuMoments,        ///< [KK97, TC91]: full similarity-transform invariance.
  kHausdorff,        ///< [HRK92]: translation-invariant only.
};

/// Shape-similarity source: grade(x) = 1 / (1 + shape distance to the
/// target shape) under the chosen method.
class QbicShapeSource final : public GradedSource {
 public:
  static Result<QbicShapeSource> Create(
      const ImageStore* store, const Polygon& target,
      std::string label = "Shape", size_t turning_samples = 64,
      ShapeMethod method = ShapeMethod::kTurningFunction);

  size_t Size() const override { return sorted_.size(); }
  std::optional<GradedObject> NextSorted() override;
  void RestartSorted() override { cursor_ = 0; }
  double RandomAccess(ObjectId id) override;
  std::vector<GradedObject> AtLeast(double threshold) override;
  std::string name() const override { return label_; }

 private:
  QbicShapeSource() = default;
  std::vector<GradedObject> sorted_;
  std::unordered_map<ObjectId, double> grades_;
  size_t cursor_ = 0;
  std::string label_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_QBIC_SOURCE_H_
