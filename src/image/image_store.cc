#include "image/image_store.h"

#include <algorithm>

namespace fuzzydb {

Result<StreamedCollection> ImageStore::GenerateStreaming(
    const ImageStoreOptions& options,
    const std::function<Status(const ImageRecord& record,
                               std::span<const double> embedding)>& emit) {
  if (options.num_images == 0) {
    return Status::InvalidArgument("need at least one image");
  }
  if (options.palette_size < 2) {
    return Status::InvalidArgument("palette needs >= 2 colors");
  }
  if (options.min_shape_vertices < 3 ||
      options.max_shape_vertices < options.min_shape_vertices) {
    return Status::InvalidArgument("bad shape vertex bounds");
  }

  StreamedCollection out;
  Rng rng(options.seed);
  out.palette = Palette::Uniform(options.palette_size, &rng);
  Result<QuadraticFormDistance> qfd = QuadraticFormDistance::Create(out.palette);
  if (!qfd.ok()) return qfd.status();
  out.qfd = std::move(qfd).value();

  // One record and one embedding row of state, reused every iteration —
  // generation memory is O(1) in the collection size. Embedding a record
  // consumes no rng draws, so interleaving embed with generation leaves
  // the rng call order (and thus every record) identical to the old
  // generate-all-then-embed-all path.
  std::vector<double> row(options.palette_size);
  for (size_t i = 0; i < options.num_images; ++i) {
    ImageRecord rec;
    rec.id = options.first_id + i;
    rec.histogram = RandomHistogram(&rng, options.palette_size,
                                    options.histogram_peaks,
                                    options.histogram_noise);
    size_t vertices = static_cast<size_t>(
        rng.NextInt(static_cast<int64_t>(options.min_shape_vertices),
                    static_cast<int64_t>(options.max_shape_vertices)));
    rec.shape = Polygon::RandomStar(&rng, vertices);
    Result<TexturePatch> patch = SynthesizeTexture(
        RandomTextureParams(&rng), options.texture_patch_side, &rng);
    if (!patch.ok()) return patch.status();
    Result<TextureFeatures> features = ComputeTextureFeatures(*patch);
    if (!features.ok()) return features.status();
    rec.texture = *features;
    // Ingest-time embedding: O(bins^2) once per image, so every later
    // color distance against this collection is O(bins).
    out.qfd.EmbedInto(rec.histogram, row);
    FUZZYDB_RETURN_NOT_OK(emit(rec, row));
    ++out.count;
  }
  return out;
}

Result<ImageStore> ImageStore::Generate(const ImageStoreOptions& options) {
  ImageStore store;
  store.images_.reserve(options.num_images);
  store.embeddings_ = EmbeddingStore(options.num_images, options.palette_size);
  Result<StreamedCollection> streamed = GenerateStreaming(
      options, [&store](const ImageRecord& rec,
                        std::span<const double> embedding) {
        const size_t i = store.images_.size();
        store.images_.push_back(rec);
        std::span<double> dest = store.embeddings_.MutableRow(i);
        std::copy(embedding.begin(), embedding.end(), dest.begin());
        return Status::OK();
      });
  if (!streamed.ok()) return streamed.status();
  store.palette_ = std::move(streamed->palette);
  store.qfd_ = std::move(streamed->qfd);
  // The int8 level −1 companion (DESIGN §3g), built once per collection so
  // the tuner below can measure whether the tier pays for itself here.
  store.embeddings_.BuildQuantized();

  // Tune the cascade for this palette's spectrum once per collection, on a
  // small calibration sample of its own embeddings — tuning only changes
  // costs, never answers, so this is safe to do unconditionally.
  if (options.tune_cascade) {
    const size_t sample = std::min<size_t>(store.images_.size(), 8);
    std::vector<std::vector<double>> calibration;
    calibration.reserve(sample);
    for (size_t q = 0; q < sample; ++q) {
      const size_t i = q * store.images_.size() / sample;
      std::span<const double> row = store.embeddings_.Row(i);
      calibration.emplace_back(row.begin(), row.end());
    }
    CascadeTunerOptions tuner;
    tuner.step_grid = {8, 16, 32};
    store.tuned_cascade_ =
        CascadeTuner::Tune(store.embeddings_, store.qfd_.eigenvalues(),
                           calibration, tuner)
            .options;
  }
  return store;
}

Result<const ImageRecord*> ImageStore::Find(ObjectId id) const {
  // Ids are assigned contiguously from first_id.
  if (images_.empty()) return Status::NotFound("empty store");
  ObjectId first = images_.front().id;
  if (id < first || id >= first + images_.size()) {
    return Status::NotFound("no image with that id");
  }
  return &images_[id - first];
}

double ImageStore::ColorGrade(const Histogram& x,
                              const Histogram& target) const {
  return ColorGradeFromDistance(qfd_.Distance(x, target));
}

double ImageStore::ColorGradeFromDistance(double distance) const {
  return GradeFromDistance(distance, qfd_.MaxDistance());
}

}  // namespace fuzzydb
