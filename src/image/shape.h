// Shape features (paper §2): the paper cites moment invariants [KK97, TC91]
// and turning functions [ACH+90] as shape-closeness methods. We implement
// both, computed exactly on polygons:
//   - Hu's seven moment invariants from area moments obtained with Green's
//     theorem (translation-, scale- and rotation-invariant);
//   - the turning function (cumulative tangent angle vs. normalized arc
//     length) with an L2 distance minimized over starting points.

#ifndef FUZZYDB_IMAGE_SHAPE_H_
#define FUZZYDB_IMAGE_SHAPE_H_

#include <array>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace fuzzydb {

/// A 2-d point.
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// A simple polygon given by its vertices in counter-clockwise order.
class Polygon {
 public:
  /// Validates >= 3 vertices and nonzero area; reverses the vertex order
  /// when given clockwise so that stored polygons are always CCW.
  static Result<Polygon> Create(std::vector<Point2> vertices);

  /// A regular n-gon of circumradius `radius` centred at `center`.
  static Polygon Regular(size_t n, double radius = 1.0,
                         Point2 center = {0.0, 0.0});

  /// A star-like random polygon: `n` vertices at angles 2πi/n with radii
  /// jittered in [min_r, max_r] — the synthetic stand-in for segmented image
  /// shapes.
  static Polygon RandomStar(Rng* rng, size_t n, double min_r = 0.5,
                            double max_r = 1.5);

  const std::vector<Point2>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }

  double Area() const;
  double PerimeterLength() const;
  Point2 Centroid() const;

  /// Rigid/scale transforms (returning new polygons) for invariance tests.
  Polygon Translated(double dx, double dy) const;
  Polygon Scaled(double factor) const;
  Polygon Rotated(double radians) const;

 private:
  explicit Polygon(std::vector<Point2> vertices)
      : vertices_(std::move(vertices)) {}
  std::vector<Point2> vertices_;
};

/// Hu's seven moment invariants of a polygon's area.
using HuMoments = std::array<double, 7>;

/// Exact area moments up to order 3 via Green's theorem, then the Hu set.
HuMoments ComputeHuMoments(const Polygon& polygon);

/// Log-scaled moment distance (the OpenCV "match shapes" style metric):
/// Σ_i | m_i(a) - m_i(b) | with m_i = -sign(I_i)·log10|I_i|; invariant
/// moments that vanish are skipped.
double HuMomentDistance(const HuMoments& a, const HuMoments& b);

/// The turning function sampled at `samples` equally spaced arc-length
/// positions: value j is the cumulative exterior angle after arc length
/// (j+0.5)/samples of the (unit-normalized) perimeter.
std::vector<double> TurningFunction(const Polygon& polygon,
                                    size_t samples = 64);

/// L2 distance between turning functions, minimized over all cyclic shifts
/// of the starting point and with means subtracted (rotation invariance),
/// per [ACH+90].
double TurningDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Boundary points sampled at `samples` equally spaced arc-length positions
/// (the discrete contour used by the Hausdorff comparison).
std::vector<Point2> SampleBoundary(const Polygon& polygon,
                                   size_t samples = 64);

/// Symmetric discrete Hausdorff distance between two point sets:
/// max( max_a min_b |a-b| , max_b min_a |a-b| ). [HRK92] compares images
/// under translation; translation invariance here comes from centering both
/// boundaries on their centroids first (see HausdorffShapeDistance).
double HausdorffDistance(const std::vector<Point2>& a,
                         const std::vector<Point2>& b);

/// Translation-invariant Hausdorff shape distance: boundaries sampled,
/// centred on their polygon centroids, then compared. NOT scale- or
/// rotation-invariant (matching [HRK92], which handles translation only).
double HausdorffShapeDistance(const Polygon& a, const Polygon& b,
                              size_t samples = 64);

/// Converts a nonnegative shape distance to a grade in (0, 1]:
/// grade = 1 / (1 + distance).
double ShapeGradeFromDistance(double distance);

}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_SHAPE_H_
