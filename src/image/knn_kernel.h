// The shared kNN / cascade kernels, templated over row access (DESIGN §3k).
//
// EmbeddingStore (RAM-resident rows) and storage::PagedEmbeddingStore
// (disk-resident rows behind a buffer pool) must return *bit-identical*
// answers: the paged store is a memory-hierarchy change, never a semantic
// one. The only robust way to guarantee that is for both stores to execute
// literally the same arithmetic in literally the same order — so the exact
// top-k selection and the multi-level cascade live here as templates over a
// RowAccessor, and each store supplies only the row-fetching policy:
//
//   struct RowAccessor {
//     // Pointer to row i's doubles (valid until the next Acquire on this
//     // accessor), or nullptr when the row cannot be read (I/O failure) —
//     // the kernel then abandons the shard and the caller surfaces the
//     // accessor's Status. A RAM-resident store never fails.
//     const double* Acquire(size_t i);
//   };
//
// Everything numeric — the split-invariant SquaredDistanceAccumulator, the
// (d^2, index) lexicographic selection, the strict-> early-termination rule,
// the quantized level −1 ordering — is shared, so a divergence between the
// two stores can only come from the bytes of the rows themselves, which the
// column-file format preserves exactly (doubles are written verbatim).
//
// One accessor instance is used per shard, by one thread; accessors
// themselves need no synchronization (the buffer pool underneath the paged
// accessor is thread-safe).

#ifndef FUZZYDB_IMAGE_KNN_KERNEL_H_
#define FUZZYDB_IMAGE_KNN_KERNEL_H_

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/contract.h"
#include "common/squared_distance.h"
#include "common/thread_pool.h"
#include "image/quantized_store.h"

namespace fuzzydb {

/// Counters from a cascaded search (shared by both store backends).
struct CascadeStats {
  /// Rows scanned by the int8 level −1 (0 when the tier is off or absent).
  size_t quantized_bound_computations = 0;
  /// Float prefix-bound evaluations: one per stored object when the
  /// quantized tier is off, one per surviving candidate when it is on.
  size_t bound_computations = 0;
  /// Candidates refined past the level-0 prefix bound.
  size_t candidates_refined = 0;
  /// Refinements carried to the full embedding dimension — the analogue of
  /// FilteredSearchStats::full_distance_computations.
  size_t full_distance_computations = 0;
  /// Total embedding dimensions accumulated past level 0, across all
  /// candidates (the cascade's actual refinement work).
  size_t dims_accumulated = 0;
  /// Bytes actually read from the store's buffers, per level: the int8
  /// level −1 scan (codes + residuals), the float prefix bounds, and the
  /// incremental refinements. The bandwidth story of the quantized tier is
  /// measured here, not asserted.
  size_t bytes_scanned_quantized = 0;
  size_t bytes_scanned_prefix = 0;
  size_t bytes_scanned_refine = 0;
  /// Bytes the buffer pool read from disk during this search (0 for the
  /// RAM-resident store). With the quantized tier on, the level −1 scan is
  /// RAM-resident by design, so warm queries charge disk bytes only for
  /// survivor pages pulled into the pool for exact re-rank.
  size_t bytes_read_disk = 0;
  /// Buffer-pool traffic during this search (all 0 for the RAM store).
  size_t buffer_pool_hits = 0;
  size_t buffer_pool_misses = 0;
  size_t buffer_pool_evictions = 0;

  /// Adds another shard's (or level's) counters into this one.
  void Absorb(const CascadeStats& other) {
    quantized_bound_computations += other.quantized_bound_computations;
    bound_computations += other.bound_computations;
    candidates_refined += other.candidates_refined;
    full_distance_computations += other.full_distance_computations;
    dims_accumulated += other.dims_accumulated;
    bytes_scanned_quantized += other.bytes_scanned_quantized;
    bytes_scanned_prefix += other.bytes_scanned_prefix;
    bytes_scanned_refine += other.bytes_scanned_refine;
    bytes_read_disk += other.bytes_read_disk;
    buffer_pool_hits += other.buffer_pool_hits;
    buffer_pool_misses += other.buffer_pool_misses;
    buffer_pool_evictions += other.buffer_pool_evictions;
  }
};

/// Tuning knobs for CascadeKnn().
struct CascadeOptions {
  /// Level-0 bound length s: the prefix scanned for every object (clamped
  /// to the embedding dimension). Deeper prefixes cost more per object but
  /// admit fewer candidates into refinement.
  size_t prefix_dim = 8;
  /// Dimensions added per refinement level before re-checking the current
  /// k-th best (the cascade's level granularity).
  size_t step = 16;
  /// Run the int8 level −1 when the store has its quantized companion
  /// (DESIGN §3g): the full-object scan reads 1-byte codes instead of the
  /// 8-byte float prefix, and the float prefix bound is computed only for
  /// candidates the quantized bound cannot dismiss. Never changes answers
  /// (the bound is admissible by construction), only costs; ignored when
  /// the companion was not built.
  bool use_quantized = true;
};

namespace knn_internal {

// Sorts pairs lexicographically and keeps the k smallest — the shared merge
// step of the sharded top-k paths. Selection runs on squared distances: the
// final sqrt can round two distinct d^2 to the same double, so comparing
// (d^2, index) keeps every path's tie-break identical.
inline void KeepKSmallest(std::vector<std::pair<double, size_t>>* pairs,
                          size_t k) {
  k = std::min(k, pairs->size());
  std::partial_sort(pairs->begin(), pairs->begin() + static_cast<long>(k),
                    pairs->end());
  pairs->resize(k);
}

inline std::vector<std::pair<size_t, double>> ToOutput(
    std::vector<std::pair<double, size_t>> best) {
  std::sort(best.begin(), best.end());
  std::vector<std::pair<size_t, double>> out;
  out.reserve(best.size());
  for (const auto& [d2, idx] : best) {
    out.emplace_back(idx, std::sqrt(d2));
  }
  return out;
}

// Runs fn(shard_index) for every shard, on the pool when given.
inline void RunShards(ThreadPool* pool, size_t shards,
                      const std::function<void(size_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(shards, fn);
  } else {
    for (size_t s = 0; s < shards; ++s) fn(s);
  }
}

inline size_t ResolveShards(size_t shards, ThreadPool* pool, size_t n) {
  if (shards == 0) shards = pool != nullptr ? pool->executors() : 1;
  return std::max<size_t>(1, std::min(shards, std::max<size_t>(n, 1)));
}

// The exact top-k kernel restricted to rows [range.begin, range.end):
// appends up to k local-best (d^2, index) pairs to `best` (unsorted).
// Returns false iff the accessor failed mid-shard (partial `best` must be
// discarded by the caller).
template <typename RowAccessor>
bool ExactKnnShard(RowAccessor& rows, const double* FUZZYDB_RESTRICT target,
                   size_t dim, size_t k, ShardRange range,
                   std::vector<std::pair<double, size_t>>* best) {
  best->reserve(range.size());
  for (size_t i = range.begin; i < range.end; ++i) {
    const double* FUZZYDB_RESTRICT row = rows.Acquire(i);
    if (row == nullptr) return false;
    best->emplace_back(SquaredDistance(row, target, dim), i);
  }
  KeepKSmallest(best, std::min(k, range.size()));
  return true;
}

// The cascade restricted to rows [range.begin, range.end): appends up to
// k local best (d^2, index) pairs to `best` (unsorted) and adds this
// shard's counters to `stats`. `qquery` non-null runs the int8 level −1
// (over `qs`, indexed by *global* row number) in place of the all-rows
// float prefix scan. Returns false iff the accessor failed mid-shard.
template <typename RowAccessor>
bool CascadeShard(RowAccessor& rows, const double* FUZZYDB_RESTRICT t,
                  size_t dim, size_t k, const CascadeOptions& options,
                  const QuantizedStore* qs,
                  const QuantizedStore::EncodedQuery* qquery, ShardRange range,
                  std::vector<std::pair<double, size_t>>* best,
                  CascadeStats* stats) {
  const size_t n = range.size();
  if (n == 0) return true;
  k = std::min(k, n);
  const size_t s0 = std::clamp<size_t>(options.prefix_dim, 1, dim);
  const size_t step = std::max<size_t>(options.step, 1);

  // The cheap full-collection bound that orders the candidate walk: either
  // the int8 level −1 (quantized codes, ~1 byte/dim) or the float s0-dim
  // prefix (8 bytes/dim over s0 of dim dims). Both are admissible lower
  // bounds on d^2, so either ordering admits early termination with no
  // false dismissals. In float mode the accumulator state is kept so
  // refinement can resume from the prefix without recomputing it.
  std::vector<SquaredDistanceAccumulator> prefix;
  std::vector<double> bound(n);
  if (qquery != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      bound[i] = qs->LowerBound2(*qquery, range.begin + i);
    }
    stats->quantized_bound_computations += n;
    stats->bytes_scanned_quantized += n * qs->row_bytes();
  } else {
    prefix.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const double* FUZZYDB_RESTRICT row = rows.Acquire(range.begin + i);
      if (row == nullptr) return false;
      prefix[i].Accumulate(row, t, 0, s0);
      bound[i] = prefix[i].Total();
    }
    stats->bound_computations += n;
    stats->bytes_scanned_prefix += n * s0 * sizeof(double);
  }

  // Visit candidates in ascending (bound, index) order.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&bound](size_t a, size_t b) {
    if (bound[a] != bound[b]) return bound[a] < bound[b];
    return a < b;
  });

  // Current k best as (d^2, global index); "worst" is the lexicographic
  // maximum, matching ExactKnn's tie-break (distance ascending, then index).
  best->reserve(k);
  size_t worst_pos = 0;
  auto recompute_worst = [best, &worst_pos]() {
    worst_pos = 0;
    for (size_t p = 1; p < best->size(); ++p) {
      if ((*best)[p] > (*best)[worst_pos]) worst_pos = p;
    }
  };

  for (size_t local_idx : order) {
    const double b = bound[local_idx];
    // Strict >: a candidate whose bound ties the worst d^2 could still win
    // its tie on index, so only a strictly larger bound ends the scan.
    if (best->size() == k && b > (*best)[worst_pos].first) break;

    // Refine dimension-incrementally from the prefix, early-exiting as soon
    // as the partial sum (a valid lower bound at every length) provably
    // exceeds the current k-th best.
    const size_t idx = range.begin + local_idx;
    const double* FUZZYDB_RESTRICT row = rows.Acquire(idx);
    if (row == nullptr) return false;
    SquaredDistanceAccumulator acc;
    bool pruned = false;
    if (qquery != nullptr) {
      // Level 0 runs lazily: the float prefix is read only for candidates
      // the int8 bound could not dismiss. Its own bound can prune a
      // candidate the walk ordering (keyed on the quantized bound) let
      // through — a skip of this candidate, never a halt of the walk.
      acc.Accumulate(row, t, 0, s0);
      ++stats->bound_computations;
      stats->bytes_scanned_prefix += s0 * sizeof(double);
      pruned = s0 < dim && best->size() == k &&
               acc.Total() > (*best)[worst_pos].first;
    } else {
      acc = prefix[local_idx];
    }
    size_t j = s0;
    while (j < dim && !pruned) {
      const size_t stop = std::min(dim, j + step);
      const double before = acc.Total();
      acc.Accumulate(row, t, j, stop);
      j = stop;
      // The cascade is dismissal-free only while every level lower-bounds
      // the next ([HSE+95]): accumulating non-negative squared terms can
      // never shrink the partial sum, exactly, in floating point.
      FUZZYDB_INVARIANT(acc.Total() >= before,
                        "cascade partial sum shrank from " +
                            std::to_string(before) + " to " +
                            std::to_string(acc.Total()) + " at dim " +
                            std::to_string(j) + " for row " +
                            std::to_string(idx));
      if (j < dim && best->size() == k &&
          acc.Total() > (*best)[worst_pos].first) {
        pruned = true;
      }
    }
    // A fully refined candidate's exact d^2 must dominate the bound that
    // ordered it — the quantized level −1 bound or the float level-0 prefix
    // — or that bound could have falsely dismissed it.
    FUZZYDB_INVARIANT(pruned || acc.Total() >= b,
                      std::string("cascade level ") +
                          (qquery != nullptr ? "-1 (int8)" : "0 (prefix)") +
                          " bound " + std::to_string(b) +
                          " exceeds exact d^2 " + std::to_string(acc.Total()) +
                          " for row " + std::to_string(idx));
    ++stats->candidates_refined;
    stats->dims_accumulated += j - s0;
    stats->bytes_scanned_refine += (j - s0) * sizeof(double);
    if (j == dim) ++stats->full_distance_computations;
    if (pruned) continue;

    const double d2 = acc.Total();
    if (best->size() < k) {
      best->emplace_back(d2, idx);
      if (best->size() == k) recompute_worst();
    } else if (std::pair(d2, idx) < (*best)[worst_pos]) {
      (*best)[worst_pos] = {d2, idx};
      recompute_worst();
    }
  }
  return true;
}

}  // namespace knn_internal
}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_KNN_KERNEL_H_
