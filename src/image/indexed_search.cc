#include "image/indexed_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fuzzydb {

Result<GeminiIndex> GeminiIndex::Build(
    const QuadraticFormDistance* qfd, EigenFilter filter,
    const std::vector<Histogram>* database) {
  if (qfd == nullptr || database == nullptr) {
    return Status::InvalidArgument("null qfd or database");
  }
  if (database->empty()) {
    return Status::InvalidArgument("empty database");
  }
  GeminiIndex index;
  index.qfd_ = qfd;
  index.filter_ = std::move(filter);
  index.database_ = database;

  // Every summary coordinate j satisfies |x̂_j| <= sqrt(λ_j)|x|_2 <=
  // sqrt(λ_max); map uniformly into [0,1] with a safety margin so rounding
  // never escapes the box. A uniform scale keeps Euclidean order and lets
  // us convert index distances back: d̂ = d_unit / scale_.
  double bound = std::sqrt(qfd->eigenvalues().front()) + 1e-9;
  index.offset_ = bound;
  index.scale_ = 1.0 / (2.0 * bound);

  Result<EmbeddingStore> embeddings = EmbeddingStore::Build(*qfd, *database);
  if (!embeddings.ok()) return embeddings.status();
  index.embeddings_ = std::move(embeddings).value();

  // The filter summary is the first dim coordinates of the full embedding,
  // so the R-tree keys come straight out of the embedding rows.
  const size_t dim = index.filter_.dim();
  std::vector<ObjectId> ids(database->size());
  std::vector<double> coords(database->size() * dim);
  for (size_t i = 0; i < database->size(); ++i) {
    ids[i] = i;
    std::span<const double> row = index.embeddings_.Row(i);
    for (size_t j = 0; j < dim; ++j) {
      coords[i * dim + j] =
          std::clamp((row[j] + index.offset_) * index.scale_, 0.0, 1.0);
    }
  }
  index.rtree_ = std::make_unique<RTree>(dim);
  FUZZYDB_RETURN_NOT_OK(
      index.rtree_->BulkLoadStr(std::move(ids), std::move(coords)));
  return index;
}

Result<std::vector<std::pair<size_t, double>>> GeminiIndex::Knn(
    const Histogram& target, size_t k, FilteredSearchStats* stats) const {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  k = std::min(k, database_->size());

  // One O(k^2) projection of the target; its prefix is the R-tree query
  // point and its full length powers the O(k) refinements below.
  std::vector<double> target_embedding = qfd_->Embed(target);
  std::vector<double> unit(filter_.dim());
  for (size_t j = 0; j < unit.size(); ++j) {
    unit[j] = std::clamp((target_embedding[j] + offset_) * scale_, 0.0, 1.0);
  }

  RTree::NearestIterator it(rtree_.get(), unit);
  std::vector<std::pair<size_t, double>> best;  // (index, full d), unsorted
  double kth = std::numeric_limits<double>::infinity();
  size_t refinements = 0;
  auto worst_it = [&best]() {
    return std::max_element(best.begin(), best.end(),
                            [](const auto& a, const auto& b) {
                              return a.second < b.second;
                            });
  };
  while (std::optional<KnnNeighbor> cand = it.Next()) {
    double bound = cand->distance / scale_;  // back to summary units
    if (best.size() >= k && bound >= kth) break;  // d >= d̂ >= kth: done
    size_t idx = static_cast<size_t>(cand->id);
    double d = EuclideanDistance(embeddings_.Row(idx), target_embedding);
    ++refinements;
    if (best.size() < k) {
      best.emplace_back(idx, d);
      if (best.size() == k) kth = worst_it()->second;
    } else if (d < kth) {
      *worst_it() = {idx, d};
      kth = worst_it()->second;
    }
  }
  if (stats != nullptr) {
    stats->full_distance_computations = refinements;
    stats->bound_computations = it.stats().distance_computations;
  }
  std::sort(best.begin(), best.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  return best;
}

}  // namespace fuzzydb
