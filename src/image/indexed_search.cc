#include "image/indexed_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/squared_distance.h"

namespace fuzzydb {

Result<GeminiIndex> GeminiIndex::Build(
    const QuadraticFormDistance* qfd, EigenFilter filter,
    const std::vector<Histogram>* database) {
  if (qfd == nullptr || database == nullptr) {
    return Status::InvalidArgument("null qfd or database");
  }
  if (database->empty()) {
    return Status::InvalidArgument("empty database");
  }
  GeminiIndex index;
  index.qfd_ = qfd;
  index.filter_ = std::move(filter);
  index.database_ = database;

  // Every summary coordinate j satisfies |x̂_j| <= sqrt(λ_j)|x|_2 <=
  // sqrt(λ_max); map uniformly into [0,1] with a safety margin so rounding
  // never escapes the box. A uniform scale keeps Euclidean order and lets
  // us convert index distances back: d̂ = d_unit / scale_.
  double bound = std::sqrt(qfd->eigenvalues().front()) + 1e-9;
  index.offset_ = bound;
  index.scale_ = 1.0 / (2.0 * bound);

  Result<EmbeddingStore> embeddings = EmbeddingStore::Build(*qfd, *database);
  if (!embeddings.ok()) return embeddings.status();
  index.embeddings_ = std::move(embeddings).value();

  // The filter summary is the first dim coordinates of the full embedding,
  // so the R-tree keys come straight out of the embedding rows.
  const size_t dim = index.filter_.dim();
  std::vector<ObjectId> ids(database->size());
  std::vector<double> coords(database->size() * dim);
  for (size_t i = 0; i < database->size(); ++i) {
    ids[i] = i;
    std::span<const double> row = index.embeddings_.Row(i);
    for (size_t j = 0; j < dim; ++j) {
      coords[i * dim + j] =
          std::clamp((row[j] + index.offset_) * index.scale_, 0.0, 1.0);
    }
  }
  index.rtree_ = std::make_unique<RTree>(dim);
  FUZZYDB_RETURN_NOT_OK(
      index.rtree_->BulkLoadStr(std::move(ids), std::move(coords)));

  // Tune the refinement step for this palette's spectrum on a small
  // calibration sample of the database's own embeddings. The prefix is
  // pinned to the summary dimension: the R-tree already paid for it.
  CascadeTunerOptions tuner;
  tuner.prefix_grid = {dim};
  tuner.step_grid = {4, 8, 16, 32};
  const size_t sample = std::min<size_t>(database->size(), 8);
  std::vector<std::vector<double>> calibration;
  calibration.reserve(sample);
  for (size_t q = 0; q < sample; ++q) {
    const size_t i = q * database->size() / sample;
    std::span<const double> row = index.embeddings_.Row(i);
    calibration.emplace_back(row.begin(), row.end());
  }
  index.tuned_ = CascadeTuner::Tune(index.embeddings_, qfd->eigenvalues(),
                                    calibration, tuner)
                     .options;
  return index;
}

Result<std::vector<std::pair<size_t, double>>> GeminiIndex::Knn(
    const Histogram& target, size_t k, FilteredSearchStats* stats) const {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  k = std::min(k, database_->size());

  // One O(k^2) projection of the target; its prefix is the R-tree query
  // point and its full length powers the O(k) refinements below.
  std::vector<double> target_embedding = qfd_->Embed(target);
  std::vector<double> unit(filter_.dim());
  for (size_t j = 0; j < unit.size(); ++j) {
    unit[j] = std::clamp((target_embedding[j] + offset_) * scale_, 0.0, 1.0);
  }

  RTree::NearestIterator it(rtree_.get(), unit);
  std::vector<std::pair<size_t, double>> best;  // (index, full d^2), unsorted
  double kth2 = std::numeric_limits<double>::infinity();  // worst kept d^2
  double kth = std::numeric_limits<double>::infinity();   // its sqrt
  size_t full_refinements = 0;
  size_t partial_refinements = 0;
  const size_t dim = embeddings_.dim();
  const size_t step = std::max<size_t>(tuned_.step, 1);
  auto worst_it = [&best]() {
    return std::max_element(best.begin(), best.end(),
                            [](const auto& a, const auto& b) {
                              return a.second < b.second;
                            });
  };
  while (std::optional<KnnNeighbor> cand = it.Next()) {
    double bound = cand->distance / scale_;  // back to summary units
    if (best.size() >= k && bound >= kth) break;  // d >= d̂ >= kth: done
    size_t idx = static_cast<size_t>(cand->id);
    // Refine through the split-invariant kernel, `step` dimensions at a
    // time (the tuner's pick for this spectrum), abandoning the candidate
    // as soon as its partial sum — a lower bound on d^2 at every depth —
    // exceeds the current k-th best. A pruned candidate would have been
    // rejected by the full comparison too, so results are unchanged.
    const double* row = embeddings_.Row(idx).data();
    ++partial_refinements;  // pruned or not, this candidate costs work
    SquaredDistanceAccumulator acc;
    size_t j = 0;
    bool pruned = false;
    while (j < dim && !pruned) {
      const size_t next_depth = std::min(dim, j + step);
      acc.Accumulate(row, target_embedding.data(), j, next_depth);
      j = next_depth;
      if (j < dim && best.size() >= k && acc.Total() > kth2) pruned = true;
    }
    if (pruned) continue;
    ++full_refinements;
    const double d2 = acc.Total();
    if (best.size() < k) {
      best.emplace_back(idx, d2);
      if (best.size() == k) {
        kth2 = worst_it()->second;
        kth = std::sqrt(kth2);
      }
    } else if (d2 < kth2) {
      *worst_it() = {idx, d2};
      kth2 = worst_it()->second;
      kth = std::sqrt(kth2);
    }
  }
  if (stats != nullptr) {
    stats->full_distance_computations = full_refinements;
    stats->bound_computations = it.stats().distance_computations;
    stats->partial_refinements = partial_refinements;
  }
  std::sort(best.begin(), best.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  for (auto& [idx, d2] : best) d2 = std::sqrt(d2);
  return best;
}

}  // namespace fuzzydb
