#include "image/precompute.h"

#include <algorithm>
#include <cassert>

#include "common/thread_pool.h"

namespace fuzzydb {

Result<PairwiseDistanceCache> PairwiseDistanceCache::Build(
    const ImageStore& store) {
  const size_t n = store.size();
  if (n < 2) return Status::InvalidArgument("need >= 2 images to cache");
  PairwiseDistanceCache cache;
  cache.n_ = n;
  cache.packed_.resize(n * (n - 1) / 2);
  // Distances come from the store's eigen-space embeddings: O(bins) per
  // pair via the batched kernel instead of an O(bins^2) quadratic form.
  // Row i only needs the j < i prefix, so each row's kernel runs over
  // exactly that prefix of the buffer and fills its disjoint slice of the
  // packed triangle — embarrassingly parallel across row shards, and
  // bit-identical to the serial fill at any shard count.
  const EmbeddingStore& embeddings = store.embeddings();
  ThreadPool* pool = ThreadPool::Shared();
  const std::vector<ShardRange> shards =
      MakeShards(n - 1, std::min<size_t>(pool->executors(), n - 1));
  pool->ParallelFor(shards.size(), [&](size_t s) {
    std::vector<double> row(n);
    for (size_t i = shards[s].begin + 1; i < shards[s].end + 1; ++i) {
      embeddings.BatchDistances(embeddings.Row(i), row);
      std::copy(row.begin(), row.begin() + static_cast<long>(i),
                cache.packed_.begin() + static_cast<long>(i * (i - 1) / 2));
    }
  });
  return cache;
}

double PairwiseDistanceCache::Distance(size_t i, size_t j) const {
  assert(i < n_ && j < n_);
  if (i == j) return 0.0;
  if (i < j) std::swap(i, j);
  return packed_[i * (i - 1) / 2 + j];
}

std::vector<std::pair<size_t, double>> PairwiseDistanceCache::Nearest(
    size_t i, size_t k) const {
  assert(i < n_);
  std::vector<std::pair<size_t, double>> all;
  all.reserve(n_ - 1);
  for (size_t j = 0; j < n_; ++j) {
    if (j != i) all.emplace_back(j, Distance(i, j));
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k), all.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second < b.second;
                      return a.first < b.first;
                    });
  all.resize(k);
  return all;
}

}  // namespace fuzzydb
