#include "image/shape.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>

namespace fuzzydb {

namespace {

double SignedArea(const std::vector<Point2>& v) {
  double a = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    const Point2& p = v[i];
    const Point2& q = v[(i + 1) % v.size()];
    a += p.x * q.y - q.x * p.y;
  }
  return 0.5 * a;
}

}  // namespace

Result<Polygon> Polygon::Create(std::vector<Point2> vertices) {
  if (vertices.size() < 3) {
    return Status::InvalidArgument("polygon needs >= 3 vertices");
  }
  double area = SignedArea(vertices);
  if (std::fabs(area) < 1e-12) {
    return Status::InvalidArgument("degenerate polygon (zero area)");
  }
  if (area < 0.0) std::reverse(vertices.begin(), vertices.end());
  return Polygon(std::move(vertices));
}

Polygon Polygon::Regular(size_t n, double radius, Point2 center) {
  assert(n >= 3);
  std::vector<Point2> v(n);
  for (size_t i = 0; i < n; ++i) {
    double angle = 2.0 * std::numbers::pi * static_cast<double>(i) /
                   static_cast<double>(n);
    v[i] = {center.x + radius * std::cos(angle),
            center.y + radius * std::sin(angle)};
  }
  return Polygon(std::move(v));
}

Polygon Polygon::RandomStar(Rng* rng, size_t n, double min_r, double max_r) {
  assert(n >= 3);
  std::vector<Point2> v(n);
  for (size_t i = 0; i < n; ++i) {
    double angle = 2.0 * std::numbers::pi * static_cast<double>(i) /
                   static_cast<double>(n);
    double r = min_r + (max_r - min_r) * rng->NextDouble();
    v[i] = {r * std::cos(angle), r * std::sin(angle)};
  }
  return Polygon(std::move(v));
}

double Polygon::Area() const { return SignedArea(vertices_); }

double Polygon::PerimeterLength() const {
  double len = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point2& p = vertices_[i];
    const Point2& q = vertices_[(i + 1) % vertices_.size()];
    len += std::hypot(q.x - p.x, q.y - p.y);
  }
  return len;
}

Point2 Polygon::Centroid() const {
  double cx = 0.0, cy = 0.0;
  const double a = Area();
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point2& p = vertices_[i];
    const Point2& q = vertices_[(i + 1) % vertices_.size()];
    double cross = p.x * q.y - q.x * p.y;
    cx += (p.x + q.x) * cross;
    cy += (p.y + q.y) * cross;
  }
  return {cx / (6.0 * a), cy / (6.0 * a)};
}

Polygon Polygon::Translated(double dx, double dy) const {
  std::vector<Point2> v = vertices_;
  for (Point2& p : v) {
    p.x += dx;
    p.y += dy;
  }
  return Polygon(std::move(v));
}

Polygon Polygon::Scaled(double factor) const {
  std::vector<Point2> v = vertices_;
  for (Point2& p : v) {
    p.x *= factor;
    p.y *= factor;
  }
  return Polygon(std::move(v));
}

Polygon Polygon::Rotated(double radians) const {
  const double c = std::cos(radians), s = std::sin(radians);
  std::vector<Point2> v = vertices_;
  for (Point2& p : v) {
    double x = c * p.x - s * p.y;
    double y = s * p.x + c * p.y;
    p.x = x;
    p.y = y;
  }
  return Polygon(std::move(v));
}

HuMoments ComputeHuMoments(const Polygon& polygon) {
  // Raw area moments m_pq = ∬ x^p y^q dA via Green's theorem.
  const std::vector<Point2>& v = polygon.vertices();
  double m00 = 0, m10 = 0, m01 = 0, m20 = 0, m11 = 0, m02 = 0;
  double m30 = 0, m21 = 0, m12 = 0, m03 = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    const double x0 = v[i].x, y0 = v[i].y;
    const double x1 = v[(i + 1) % v.size()].x, y1 = v[(i + 1) % v.size()].y;
    const double cr = x0 * y1 - x1 * y0;
    m00 += cr;
    m10 += (x0 + x1) * cr;
    m01 += (y0 + y1) * cr;
    m20 += (x0 * x0 + x0 * x1 + x1 * x1) * cr;
    m02 += (y0 * y0 + y0 * y1 + y1 * y1) * cr;
    m11 += (x0 * y1 + 2.0 * x0 * y0 + 2.0 * x1 * y1 + x1 * y0) * cr;
    m30 += (x0 * x0 * x0 + x0 * x0 * x1 + x0 * x1 * x1 + x1 * x1 * x1) * cr;
    m03 += (y0 * y0 * y0 + y0 * y0 * y1 + y0 * y1 * y1 + y1 * y1 * y1) * cr;
    m21 += (x0 * x0 * (3.0 * y0 + y1) + 2.0 * x0 * x1 * (y0 + y1) +
            x1 * x1 * (y0 + 3.0 * y1)) *
           cr;
    m12 += (y0 * y0 * (3.0 * x0 + x1) + 2.0 * y0 * y1 * (x0 + x1) +
            y1 * y1 * (x0 + 3.0 * x1)) *
           cr;
  }
  m00 /= 2.0;
  m10 /= 6.0;
  m01 /= 6.0;
  m20 /= 12.0;
  m02 /= 12.0;
  m11 /= 24.0;
  m30 /= 20.0;
  m03 /= 20.0;
  m21 /= 60.0;
  m12 /= 60.0;

  // Central moments about the centroid.
  const double cx = m10 / m00, cy = m01 / m00;
  const double mu20 = m20 - cx * m10;
  const double mu02 = m02 - cy * m01;
  const double mu11 = m11 - cx * m01;
  const double mu30 = m30 - 3.0 * cx * m20 + 2.0 * cx * cx * m10;
  const double mu03 = m03 - 3.0 * cy * m02 + 2.0 * cy * cy * m01;
  const double mu21 =
      m21 - 2.0 * cx * m11 - cy * m20 + 2.0 * cx * cx * m01;
  const double mu12 =
      m12 - 2.0 * cy * m11 - cx * m02 + 2.0 * cy * cy * m10;

  // Scale-normalized moments η_pq = µ_pq / µ00^(1 + (p+q)/2).
  const double s2 = m00 * m00;                 // order-2 normalizer
  const double s3 = std::pow(m00, 2.5);        // order-3 normalizer
  const double n20 = mu20 / s2, n02 = mu02 / s2, n11 = mu11 / s2;
  const double n30 = mu30 / s3, n03 = mu03 / s3;
  const double n21 = mu21 / s3, n12 = mu12 / s3;

  HuMoments hu;
  hu[0] = n20 + n02;
  hu[1] = (n20 - n02) * (n20 - n02) + 4.0 * n11 * n11;
  hu[2] = (n30 - 3.0 * n12) * (n30 - 3.0 * n12) +
          (3.0 * n21 - n03) * (3.0 * n21 - n03);
  hu[3] = (n30 + n12) * (n30 + n12) + (n21 + n03) * (n21 + n03);
  hu[4] = (n30 - 3.0 * n12) * (n30 + n12) *
              ((n30 + n12) * (n30 + n12) - 3.0 * (n21 + n03) * (n21 + n03)) +
          (3.0 * n21 - n03) * (n21 + n03) *
              (3.0 * (n30 + n12) * (n30 + n12) - (n21 + n03) * (n21 + n03));
  hu[5] = (n20 - n02) *
              ((n30 + n12) * (n30 + n12) - (n21 + n03) * (n21 + n03)) +
          4.0 * n11 * (n30 + n12) * (n21 + n03);
  hu[6] = (3.0 * n21 - n03) * (n30 + n12) *
              ((n30 + n12) * (n30 + n12) - 3.0 * (n21 + n03) * (n21 + n03)) -
          (n30 - 3.0 * n12) * (n21 + n03) *
              (3.0 * (n30 + n12) * (n30 + n12) - (n21 + n03) * (n21 + n03));
  return hu;
}

double HuMomentDistance(const HuMoments& a, const HuMoments& b) {
  double d = 0.0;
  for (size_t i = 0; i < 7; ++i) {
    const double eps = 1e-12;
    if (std::fabs(a[i]) < eps || std::fabs(b[i]) < eps) continue;
    double ma = std::copysign(std::log10(std::fabs(a[i])), -a[i]);
    double mb = std::copysign(std::log10(std::fabs(b[i])), -b[i]);
    d += std::fabs(ma - mb);
  }
  return d;
}

std::vector<double> TurningFunction(const Polygon& polygon, size_t samples) {
  assert(samples >= 4);
  const std::vector<Point2>& v = polygon.vertices();
  const size_t n = v.size();
  // Edge lengths and exterior angles at each vertex.
  std::vector<double> len(n), turn(n);
  for (size_t i = 0; i < n; ++i) {
    const Point2& a = v[i];
    const Point2& b = v[(i + 1) % n];
    const Point2& c = v[(i + 2) % n];
    len[i] = std::hypot(b.x - a.x, b.y - a.y);
    double a1 = std::atan2(b.y - a.y, b.x - a.x);
    double a2 = std::atan2(c.y - b.y, c.x - b.x);
    double d = a2 - a1;
    while (d > std::numbers::pi) d -= 2.0 * std::numbers::pi;
    while (d < -std::numbers::pi) d += 2.0 * std::numbers::pi;
    turn[(i + 1) % n] = d;  // turn taken *at* vertex i+1
  }
  const double total = polygon.PerimeterLength();

  // Cumulative turning angle as a step function of normalized arc length.
  std::vector<double> out(samples);
  double arc = 0.0;       // arc length consumed
  double angle = 0.0;     // cumulative turning so far
  size_t edge = 0;        // current edge index
  double edge_left = len[0];
  for (size_t j = 0; j < samples; ++j) {
    double target = (static_cast<double>(j) + 0.5) /
                    static_cast<double>(samples) * total;
    while (arc + edge_left < target && edge + 1 < n) {
      arc += edge_left;
      ++edge;
      angle += turn[edge];  // we turn when entering the new edge
      edge_left = len[edge];
    }
    out[j] = angle;
  }
  return out;
}

double TurningDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  assert(a.size() == b.size() && !a.empty());
  const size_t n = a.size();
  // Subtract means for rotation invariance.
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);

  double best = std::numeric_limits<double>::infinity();
  for (size_t shift = 0; shift < n; ++shift) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double d = (a[i] - ma) - (b[(i + shift) % n] - mb);
      s += d * d;
    }
    best = std::min(best, s);
  }
  return std::sqrt(best / static_cast<double>(n));
}

std::vector<Point2> SampleBoundary(const Polygon& polygon, size_t samples) {
  assert(samples >= 3);
  const std::vector<Point2>& v = polygon.vertices();
  const size_t n = v.size();
  const double total = polygon.PerimeterLength();

  std::vector<Point2> out;
  out.reserve(samples);
  size_t edge = 0;
  double edge_start_arc = 0.0;
  auto edge_len = [&](size_t e) {
    const Point2& p = v[e];
    const Point2& q = v[(e + 1) % n];
    return std::hypot(q.x - p.x, q.y - p.y);
  };
  double current_len = edge_len(0);
  for (size_t s = 0; s < samples; ++s) {
    double target =
        static_cast<double>(s) / static_cast<double>(samples) * total;
    while (edge_start_arc + current_len < target && edge + 1 < n) {
      edge_start_arc += current_len;
      ++edge;
      current_len = edge_len(edge);
    }
    double along = current_len > 0.0
                       ? (target - edge_start_arc) / current_len
                       : 0.0;
    const Point2& p = v[edge];
    const Point2& q = v[(edge + 1) % n];
    out.push_back({p.x + along * (q.x - p.x), p.y + along * (q.y - p.y)});
  }
  return out;
}

namespace {

double DirectedHausdorff(const std::vector<Point2>& a,
                         const std::vector<Point2>& b) {
  double worst = 0.0;
  for (const Point2& pa : a) {
    double best = std::numeric_limits<double>::infinity();
    for (const Point2& pb : b) {
      best = std::min(best, std::hypot(pa.x - pb.x, pa.y - pb.y));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

}  // namespace

double HausdorffDistance(const std::vector<Point2>& a,
                         const std::vector<Point2>& b) {
  assert(!a.empty() && !b.empty());
  return std::max(DirectedHausdorff(a, b), DirectedHausdorff(b, a));
}

double HausdorffShapeDistance(const Polygon& a, const Polygon& b,
                              size_t samples) {
  Point2 ca = a.Centroid();
  Point2 cb = b.Centroid();
  std::vector<Point2> pa = SampleBoundary(a, samples);
  std::vector<Point2> pb = SampleBoundary(b, samples);
  for (Point2& p : pa) {
    p.x -= ca.x;
    p.y -= ca.y;
  }
  for (Point2& p : pb) {
    p.x -= cb.x;
    p.y -= cb.y;
  }
  return HausdorffDistance(pa, pb);
}

double ShapeGradeFromDistance(double distance) {
  assert(distance >= 0.0);
  return 1.0 / (1.0 + distance);
}

}  // namespace fuzzydb
