#include "image/cascade_tuner.h"

#include <algorithm>
#include <cmath>

namespace fuzzydb {

double CascadeTuner::Cost(const CascadeStats& stats, size_t prefix_dim,
                          size_t dim, double candidate_overhead,
                          size_t queries) {
  if (queries == 0) return 0.0;
  const double level_m1 =
      static_cast<double>(stats.quantized_bound_computations) *
      static_cast<double>(dim) * kQuantizedDimCost;
  const double level0 = static_cast<double>(stats.bound_computations) *
                        static_cast<double>(prefix_dim);
  const double refine = static_cast<double>(stats.dims_accumulated) +
                        candidate_overhead *
                            static_cast<double>(stats.candidates_refined);
  return (level_m1 + level0 + refine) / static_cast<double>(queries);
}

std::vector<size_t> CascadeTuner::SpectrumPrefixes(
    std::span<const double> eigenvalues,
    std::span<const double> energy_fractions) {
  std::vector<size_t> out;
  if (eigenvalues.empty()) return out;
  double total = 0.0;
  for (double v : eigenvalues) total += std::max(v, 0.0);
  for (double fraction : energy_fractions) {
    size_t depth = eigenvalues.size();
    if (total > 0.0) {
      double cum = 0.0;
      for (size_t j = 0; j < eigenvalues.size(); ++j) {
        cum += std::max(eigenvalues[j], 0.0);
        if (cum >= fraction * total) {
          depth = j + 1;
          break;
        }
      }
    } else {
      depth = 1;  // degenerate spectrum: every prefix is equally blind
    }
    out.push_back(std::clamp<size_t>(depth, 1, eigenvalues.size()));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TunedCascade CascadeTuner::Tune(
    const EmbeddingStore& store, std::span<const double> eigenvalues,
    const std::vector<std::vector<double>>& calibration,
    const CascadeTunerOptions& options) {
  TunedCascade result;
  result.options = CascadeOptions{};

  std::vector<size_t> prefixes = options.prefix_grid;
  if (prefixes.empty()) {
    const double kFractions[] = {0.25, 0.50, 0.75, 0.90};
    prefixes = SpectrumPrefixes(eigenvalues, kFractions);
  }
  if (prefixes.empty()) prefixes.push_back(CascadeOptions{}.prefix_dim);
  std::vector<size_t> steps = options.step_grid;
  if (steps.empty()) steps.push_back(CascadeOptions{}.step);

  const size_t executors =
      options.pool != nullptr ? options.pool->executors() : 1;
  std::vector<size_t> shard_counts = options.shard_grid;
  if (shard_counts.empty()) {
    shard_counts.push_back(1);
    if (executors > 1) {
      shard_counts.push_back(2);
      if (executors > 2) shard_counts.push_back(executors);
    }
  }
  for (size_t& s : shard_counts) s = std::max<size_t>(s, 1);
  std::sort(shard_counts.begin(), shard_counts.end());
  shard_counts.erase(std::unique(shard_counts.begin(), shard_counts.end()),
                     shard_counts.end());

  const size_t k = std::max<size_t>(options.k, 1);
  // The quantized level −1 joins the sweep only when the store carries the
  // int8 companion; whether it pays for itself is measured, not assumed.
  std::vector<bool> quantized_axis = {false};
  if (store.has_quantized()) quantized_axis.push_back(true);

  bool first = true;
  for (size_t prefix : prefixes) {
    prefix = std::clamp<size_t>(prefix, 1, std::max<size_t>(store.dim(), 1));
    for (size_t step : steps) {
      for (size_t shards : shard_counts) {
        for (bool use_quantized : quantized_axis) {
          CascadeCandidate candidate;
          candidate.options = {prefix, std::max<size_t>(step, 1),
                               use_quantized};
          candidate.shards = shards;
          for (const std::vector<double>& target : calibration) {
            store.CascadeKnn(target, k, candidate.options, &candidate.stats,
                             options.pool, shards);
          }
          // Sharding splits the measured work (which already includes the
          // shard-local pruning penalty baked into the stats) across the
          // executors it can actually use, and pays per-shard bookkeeping.
          const double work =
              Cost(candidate.stats, prefix, store.dim(),
                   options.candidate_overhead, calibration.size());
          const double effective =
              static_cast<double>(std::min(shards, executors));
          candidate.cost = work / effective +
                           options.shard_overhead *
                               static_cast<double>(shards - 1);
          // Strict <: ties keep the earlier (smaller prefix, smaller step,
          // fewer shards, unquantized) configuration, making the sweep
          // order part of the contract — a 1-executor host
          // deterministically tunes to 1 shard.
          if (first || candidate.cost < result.cost) {
            result.options = candidate.options;
            result.shards = candidate.shards;
            result.cost = candidate.cost;
            first = false;
          }
          result.sweep.push_back(std::move(candidate));
        }
      }
    }
  }
  return result;
}

}  // namespace fuzzydb
