// Texture features — the third QBIC search dimension (paper §4: QBIC "can
// search for images by various visual characteristics such as color, shape,
// and texture"). We implement Tamura-style features (coarseness, contrast,
// directionality) computed on small grayscale patches, plus a procedural
// patch generator so synthetic images carry controllable texture.

#ifndef FUZZYDB_IMAGE_TEXTURE_H_
#define FUZZYDB_IMAGE_TEXTURE_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace fuzzydb {

/// A square grayscale patch, row-major, intensities in [0, 1].
struct TexturePatch {
  size_t side = 0;
  std::vector<double> pixels;  // side * side

  double At(size_t r, size_t c) const { return pixels[r * side + c]; }
};

/// Parameters of the procedural texture: an oriented sinusoidal grating
/// plus noise.
struct TextureParams {
  /// Cycles across the patch; low = coarse texture, high = fine.
  double frequency = 4.0;
  /// Grating orientation in radians.
  double orientation = 0.0;
  /// Amplitude of the grating in [0, 1]; higher = more contrast.
  double amplitude = 0.5;
  /// Uniform noise amplitude in [0, 1]; higher = less directional.
  double noise = 0.1;
};

/// Draws random-but-plausible parameters.
TextureParams RandomTextureParams(Rng* rng);

/// Renders the parameterized grating patch; `side` >= 8.
Result<TexturePatch> SynthesizeTexture(const TextureParams& params,
                                       size_t side, Rng* rng);

/// The Tamura-style feature triple, each roughly in [0, 1].
struct TextureFeatures {
  /// Dominant repeat scale, normalized: near 0 for pixel-fine texture,
  /// near 1 when structure spans the patch.
  double coarseness = 0.0;
  /// Tamura contrast sigma / kurtosis^(1/4), squashed to [0, 1].
  double contrast = 0.0;
  /// Sharpness of the gradient-orientation distribution: 1 = single
  /// orientation, 0 = isotropic.
  double directionality = 0.0;

  bool operator==(const TextureFeatures& other) const = default;
};

/// Computes the features from a patch; InvalidArgument for patches smaller
/// than 8x8 or with inconsistent sizes.
Result<TextureFeatures> ComputeTextureFeatures(const TexturePatch& patch);

/// Euclidean distance in feature space (features are commensurate by
/// construction).
double TextureDistance(const TextureFeatures& a, const TextureFeatures& b);

/// Grade = 1 / (1 + distance), in (0, 1].
double TextureGradeFromDistance(double distance);

}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_TEXTURE_H_
