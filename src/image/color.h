// Color features for the QBIC-like subsystem (paper §2): each image carries
// a k-bin color histogram; bins are palette colors (points in the RGB cube),
// and histogram distance is the quadratic form of quadratic_distance.h.

#ifndef FUZZYDB_IMAGE_COLOR_H_
#define FUZZYDB_IMAGE_COLOR_H_

#include <array>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace fuzzydb {

/// An RGB point in [0,1]^3.
using Rgb = std::array<double, 3>;

/// Euclidean distance in RGB space.
double RgbDistance(const Rgb& a, const Rgb& b);

/// A palette: the k bin colors of a histogram space. Typical k in the paper:
/// 64, 100, or 256.
class Palette {
 public:
  /// A deterministic palette of `k` colors spread over the RGB cube
  /// (lattice positions, jittered by `rng` if provided).
  static Palette Uniform(size_t k, Rng* rng = nullptr);

  /// A palette with exactly the given colors (e.g. degenerate or
  /// adversarial geometries in tests). Fails on an empty list.
  static Result<Palette> FromColors(std::vector<Rgb> colors);

  size_t size() const { return colors_.size(); }
  const Rgb& color(size_t i) const { return colors_[i]; }

  /// Index of the palette color nearest to `rgb`.
  size_t Nearest(const Rgb& rgb) const;

 private:
  std::vector<Rgb> colors_;
};

/// A normalized k-bin color histogram (entries >= 0 summing to 1).
using Histogram = std::vector<double>;

/// Validates non-negativity and unit mass.
Status ValidateHistogram(const Histogram& h, double tol = 1e-9);

/// Renormalizes to unit mass; fails on negative entries or zero mass.
Result<Histogram> NormalizeHistogram(Histogram h);

/// The average color µ(h) = Σ h_i * palette_i — the classic 3-d summary
/// vector of the distance-bounding strategy [HSE+95].
Rgb AverageColor(const Palette& palette, const Histogram& h);

/// A random histogram concentrated around `peaks` randomly chosen palette
/// colors with `noise` mass spread uniformly — synthetic stand-in for real
/// image histograms (same code path, controllable structure).
Histogram RandomHistogram(Rng* rng, size_t k, size_t peaks = 3,
                          double noise = 0.1);

/// A histogram fully concentrated on the bin nearest to `rgb` with
/// `spread` mass diffused to nearby bins — used to build query targets like
/// "red".
Histogram TargetHistogram(const Palette& palette, const Rgb& rgb,
                          double spread = 0.2);

/// Bin-wise L1 distance Σ|x_i - y_i| in [0, 2]. Cheap but blind to
/// cross-bin color similarity — mass moving to a *nearby* color costs as
/// much as moving to an opposite one, the defect the quadratic form
/// (paper formula (1)) fixes.
double HistogramL1Distance(const Histogram& x, const Histogram& y);

/// Swain–Ballard histogram intersection Σ min(x_i, y_i) in [0, 1]
/// (1 = identical); equals 1 - L1/2 for unit-mass histograms.
double HistogramIntersection(const Histogram& x, const Histogram& y);

}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_COLOR_H_
