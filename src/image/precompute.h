// Precomputed pairwise distances (paper §2.1): for small, rarely-updated
// collections ("a few thousand images"), precompute the color distance
// between every pair so that query time avoids quadratic-form evaluations
// entirely.

#ifndef FUZZYDB_IMAGE_PRECOMPUTE_H_
#define FUZZYDB_IMAGE_PRECOMPUTE_H_

#include <vector>

#include "image/image_store.h"

namespace fuzzydb {

/// A dense symmetric cache of color distances between all image pairs of a
/// store. Memory is O(n^2 / 2); intended for n up to a few thousand, per the
/// paper.
class PairwiseDistanceCache {
 public:
  /// Computes all n(n-1)/2 distances up front.
  static Result<PairwiseDistanceCache> Build(const ImageStore& store);

  /// Distance between images at positions i and j of the store (not ids).
  double Distance(size_t i, size_t j) const;

  /// The k store positions closest to position `i` (excluding i itself),
  /// ascending by distance.
  std::vector<std::pair<size_t, double>> Nearest(size_t i, size_t k) const;

  size_t size() const { return n_; }

 private:
  PairwiseDistanceCache() = default;
  // Lower-triangular packed storage: entry (i, j) with i > j at
  // i*(i-1)/2 + j.
  std::vector<double> packed_;
  size_t n_ = 0;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_PRECOMPUTE_H_
