// The GEMINI filter-and-refine pipeline (paper §2.1: "First, we could
// potentially have a multidimensional index on short color vectors"):
// index the low-dimensional eigen summaries in an R-tree, stream candidates
// out in ascending summary distance with the incremental nearest-neighbour
// iterator, refine each with the exact distance — computed in O(k) over the
// full eigen-space embeddings (embedding_store.h), not as an O(k^2)
// quadratic form — and stop as soon as the summary distance exceeds the
// current k-th best full distance.
// The lower-bounding property d >= d̂ guarantees no false dismissals, and
// the R-tree replaces FilteredKnn's per-query O(N log N) summary sort with
// sub-linear index traversal.

#ifndef FUZZYDB_IMAGE_INDEXED_SEARCH_H_
#define FUZZYDB_IMAGE_INDEXED_SEARCH_H_

#include <memory>
#include <vector>

#include "image/bounding.h"
#include "image/cascade_tuner.h"
#include "image/embedding_store.h"
#include "index/rtree.h"

namespace fuzzydb {

/// An R-tree over the eigen-filter summaries of an image collection.
class GeminiIndex {
 public:
  /// Projects every histogram and bulk-loads the summaries (affinely mapped
  /// into the R-tree's unit box; the map is a uniform scaling, so nearest
  /// order and the bound property survive).
  static Result<GeminiIndex> Build(const QuadraticFormDistance* qfd,
                                   EigenFilter filter,
                                   const std::vector<Histogram>* database);

  /// Exact top-k most-similar search; results ascending by full distance,
  /// ties by index. `stats` counts full-distance refinements and summary
  /// work.
  Result<std::vector<std::pair<size_t, double>>> Knn(
      const Histogram& target, size_t k,
      FilteredSearchStats* stats = nullptr) const;

  size_t size() const { return database_->size(); }
  const EigenFilter& filter() const { return filter_; }

  // Accessors for index-driven sorted access (rtree_source.h): the driver
  // streams the R-tree's incremental neighbours and refines them against
  // the full embedding rows, so it needs the tree, the rows, the unit-box
  // map, and the distance machinery.
  const RTree& rtree() const { return *rtree_; }
  const EmbeddingStore& embeddings() const { return embeddings_; }
  const QuadraticFormDistance& qfd() const { return *qfd_; }
  /// Unit-box map parameters: unit = (summary + offset()) * scale(), so an
  /// index distance converts back to summary units as d̂ = d_unit / scale().
  double scale() const { return scale_; }
  double offset() const { return offset_; }

  /// The refinement options the tuner picked for this palette spectrum at
  /// Build() time (prefix fixed to the index's summary dimension; the step
  /// drives the early-exit granularity of Knn refinement).
  const CascadeOptions& tuned_cascade() const { return tuned_; }

 private:
  GeminiIndex() = default;

  const QuadraticFormDistance* qfd_ = nullptr;
  EigenFilter filter_;
  const std::vector<Histogram>* database_ = nullptr;
  // Full eigen-space embeddings of the database, built once at Build():
  // the R-tree keys are their first filter_.dim() coordinates, and
  // refinement is O(k) Euclidean distance over rows instead of an O(k^2)
  // quadratic form per candidate.
  EmbeddingStore embeddings_;
  std::unique_ptr<RTree> rtree_;
  // Uniform affine map: unit = (summary + offset_) * scale_.
  double scale_ = 1.0;
  double offset_ = 0.0;
  // Spectrum-tuned refinement options (see tuned_cascade()).
  CascadeOptions tuned_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_INDEXED_SEARCH_H_
