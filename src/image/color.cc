#include "image/color.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fuzzydb {

double RgbDistance(const Rgb& a, const Rgb& b) {
  double s = 0.0;
  for (size_t i = 0; i < 3; ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

Palette Palette::Uniform(size_t k, Rng* rng) {
  assert(k >= 1);
  Palette p;
  p.colors_.reserve(k);
  // Lay colors on the smallest cubic lattice with >= k cells, then keep the
  // first k in scan order; jitter within a cell keeps colors distinct.
  size_t side = 1;
  while (side * side * side < k) ++side;
  const double cell = 1.0 / static_cast<double>(side);
  for (size_t r = 0; r < side && p.colors_.size() < k; ++r) {
    for (size_t g = 0; g < side && p.colors_.size() < k; ++g) {
      for (size_t b = 0; b < side && p.colors_.size() < k; ++b) {
        Rgb c = {(static_cast<double>(r) + 0.5) * cell,
                 (static_cast<double>(g) + 0.5) * cell,
                 (static_cast<double>(b) + 0.5) * cell};
        if (rng != nullptr) {
          for (double& ch : c) {
            ch = std::clamp(ch + (rng->NextDouble() - 0.5) * cell * 0.5, 0.0,
                            1.0);
          }
        }
        p.colors_.push_back(c);
      }
    }
  }
  return p;
}

Result<Palette> Palette::FromColors(std::vector<Rgb> colors) {
  if (colors.empty()) return Status::InvalidArgument("empty palette");
  Palette p;
  p.colors_ = std::move(colors);
  return p;
}

size_t Palette::Nearest(const Rgb& rgb) const {
  size_t best = 0;
  double best_d = RgbDistance(colors_[0], rgb);
  for (size_t i = 1; i < colors_.size(); ++i) {
    double d = RgbDistance(colors_[i], rgb);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

Status ValidateHistogram(const Histogram& h, double tol) {
  if (h.empty()) return Status::InvalidArgument("empty histogram");
  double sum = 0.0;
  for (double x : h) {
    if (x < -tol) return Status::InvalidArgument("negative histogram bin");
    sum += x;
  }
  if (std::fabs(sum - 1.0) > tol) {
    return Status::InvalidArgument("histogram mass must be 1");
  }
  return Status::OK();
}

Result<Histogram> NormalizeHistogram(Histogram h) {
  if (h.empty()) return Status::InvalidArgument("empty histogram");
  double sum = 0.0;
  for (double x : h) {
    if (x < 0.0) return Status::InvalidArgument("negative histogram bin");
    sum += x;
  }
  if (sum <= 0.0) return Status::InvalidArgument("zero-mass histogram");
  for (double& x : h) x /= sum;
  return h;
}

Rgb AverageColor(const Palette& palette, const Histogram& h) {
  assert(h.size() == palette.size());
  Rgb avg = {0.0, 0.0, 0.0};
  for (size_t i = 0; i < h.size(); ++i) {
    for (size_t c = 0; c < 3; ++c) avg[c] += h[i] * palette.color(i)[c];
  }
  return avg;
}

Histogram RandomHistogram(Rng* rng, size_t k, size_t peaks, double noise) {
  assert(k >= 1);
  peaks = std::max<size_t>(1, std::min(peaks, k));
  noise = std::clamp(noise, 0.0, 1.0);
  Histogram h(k, noise / static_cast<double>(k));
  double peak_mass = 1.0 - noise;
  // Random peak weights (normalized exponentials keep them comparable).
  std::vector<double> w(peaks);
  double wsum = 0.0;
  for (double& x : w) {
    x = -std::log(1.0 - rng->NextDouble());
    wsum += x;
  }
  for (size_t p = 0; p < peaks; ++p) {
    h[rng->NextBounded(k)] += peak_mass * w[p] / wsum;
  }
  return h;
}

double HistogramL1Distance(const Histogram& x, const Histogram& y) {
  assert(x.size() == y.size());
  double d = 0.0;
  for (size_t i = 0; i < x.size(); ++i) d += std::fabs(x[i] - y[i]);
  return d;
}

double HistogramIntersection(const Histogram& x, const Histogram& y) {
  assert(x.size() == y.size());
  double s = 0.0;
  for (size_t i = 0; i < x.size(); ++i) s += std::min(x[i], y[i]);
  return s;
}

Histogram TargetHistogram(const Palette& palette, const Rgb& rgb,
                          double spread) {
  const size_t k = palette.size();
  spread = std::clamp(spread, 0.0, 1.0);
  Histogram h(k, 0.0);
  size_t center = palette.Nearest(rgb);
  h[center] = 1.0 - spread;
  if (spread > 0.0) {
    // Diffuse the rest inversely proportional to RGB distance to the target.
    double total = 0.0;
    std::vector<double> inv(k, 0.0);
    for (size_t i = 0; i < k; ++i) {
      if (i == center) continue;
      inv[i] = 1.0 / (0.05 + RgbDistance(palette.color(i), rgb));
      total += inv[i];
    }
    for (size_t i = 0; i < k; ++i) {
      if (i != center) h[i] = spread * inv[i] / total;
    }
  }
  return h;
}

}  // namespace fuzzydb
