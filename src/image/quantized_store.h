// The int8 scalar-quantized companion tier of EmbeddingStore (DESIGN §3g) —
// the cascade's level −1.
//
// The paper's filter theorem (§4, no-false-dismissals) only asks that the
// cheap distance be an admissible lower bound on the exact one; nothing
// says the bound must be a float eigen-prefix. This tier trades precision
// for memory bandwidth instead of trading dimensions: every embedding row
// is stored a second time as int8 codes (1 byte/dim instead of 8), and the
// level −1 scan reads those codes plus one stored correction term per row.
//
// Quantization scheme. Dimensions are grouped into blocks of
// simd::kBlockDim; each block b gets one scale factor
//     s_b = max over all rows, dims j in block b of |x_j| / kInt8CodeMax,
// chosen from the data so stored values never clamp. Codes are
//     q_j = round(x_j / s_b) in [-kInt8CodeMax, kInt8CodeMax],
// and the dequantized row is x~_j = q_j * s_b. Per-block scales matter
// because the eigen spectrum decays: one global scale sized for the leading
// dimensions would round every trailing dimension to zero.
//
// Error bound (the admissibility proof). Write x~ and t~ for the
// dequantized row and target, and
//     r_x = |x - x~|_2   (stored per row, computed exactly at Build time)
//     r_t = |t - t~|_2   (computed exactly at query encode time).
// The reverse triangle inequality, applied twice in L2, gives
//     |x - t| >= |x~ - t~| - |x - x~| - |t - t~| = d~ - r_x - r_t,
// where d~^2 = sum_b s_b^2 * SSD_b and SSD_b is the int32 sum of squared
// code differences in block b — the quantity the simd kernels compute
// exactly. So  max(0, d~ - r_x - r_t)^2  is a provable lower bound on the
// exact squared distance for every pair, by construction: no sampling, no
// tuning, no dependence on the data distribution. (A deliberately clamped
// target only grows r_t, which only weakens the bound — never breaks it.)
// LowerBound2() additionally shaves a 1e-9 relative safety margin off d~ so
// floating-point roundoff in the float recombination can never push the
// computed bound past the exactly-computed distance; the margin is ~10^5
// times roundoff and ~10^-9 of the bound itself, i.e. free.
//
// The kernels' int32 accumulations are exact integer arithmetic, so the
// scalar, AVX2, and AVX-512 VNNI paths are bit-identical and the dispatch
// choice (common/simd_dispatch.h) can never change answers.

#ifndef FUZZYDB_IMAGE_QUANTIZED_STORE_H_
#define FUZZYDB_IMAGE_QUANTIZED_STORE_H_

#include <span>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/simd_dispatch.h"
#include "common/thread_pool.h"

namespace fuzzydb {

/// The int8 companion buffer: codes, per-block scales, per-row residual
/// norms, and the dispatched kernel. Value-semantic; an empty store (default
/// constructed) means "tier not built" and is skipped by the cascade.
class QuantizedStore {
 public:
  /// Dimensions per scale block (= the kernel block size).
  static constexpr size_t kBlockDim = simd::kBlockDim;
  /// Hard cap on blocks per row, sizing the kernel's stack scratch.
  static constexpr size_t kMaxBlocks = 64;

  QuantizedStore() = default;

  /// Quantizes `size` rows of `dim` doubles laid out with `stride` doubles
  /// between row starts (the EmbeddingStore layout). dim must be at most
  /// kMaxBlocks * kBlockDim.
  static QuantizedStore Build(const double* rows, size_t size, size_t dim,
                              size_t stride);

  /// Number of scale blocks for a given dim.
  static size_t NumBlocks(size_t dim) {
    return (dim + kBlockDim - 1) / kBlockDim;
  }
  /// Codes per row (dim rounded up to a whole block).
  static size_t PaddedDim(size_t dim) { return NumBlocks(dim) * kBlockDim; }

  /// Encodes one row of `dim` doubles against per-block `scales` into
  /// `codes` (PaddedDim entries; pad must already be zero) and returns the
  /// exact residual norm |x - x~|_2. This is the one encoding routine —
  /// Build(), EncodeQuery(), and the streaming column-file writer all call
  /// it, which is what makes a persisted tier byte-identical to a rebuilt
  /// one.
  static double EncodeRowAgainst(const double* row, size_t dim,
                                 std::span<const double> scales, int8_t* codes);

  /// Assembles a store from externally produced parts (the column-file
  /// reader): per-block scales (already divided by kInt8CodeMax), per-row
  /// exact residual norms, and row-major padded codes. The kernel is
  /// re-resolved on this host — safe, because every kernel level computes
  /// the same exact integer sums. Sizes must agree (codes = size *
  /// PaddedDim(dim), scales = NumBlocks(dim), residuals = size).
  static QuantizedStore FromParts(size_t size, size_t dim,
                                  std::vector<double> scales,
                                  std::vector<double> residuals,
                                  AlignedArray<int8_t> codes);

  /// Per-block scales (NumBlocks entries) — persistence accessor.
  std::span<const double> scales() const { return scales_; }
  /// Per-row residual norms — persistence accessor.
  std::span<const double> residuals() const { return residuals_; }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t dim() const { return dim_; }
  /// dim rounded up to a whole number of blocks; the row stride in bytes.
  size_t padded_dim() const { return padded_; }
  size_t blocks() const { return blocks_; }
  /// Bytes the level −1 scan reads per row: the padded codes plus the
  /// stored residual norm.
  size_t row_bytes() const { return padded_ + sizeof(double); }
  double scale(size_t block) const { return scales_[block]; }
  /// Kernel level resolved at Build time (simd::Active() then).
  simd::Level kernel_level() const { return kernel_level_; }

  std::span<const int8_t> RowCodes(size_t i) const {
    return {codes_.data() + i * padded_, padded_};
  }
  /// |x_i - x~_i|_2 — row i's exact quantization residual norm.
  double row_residual(size_t i) const { return residuals_[i]; }

  /// A query target quantized against the store's scales, with its exact
  /// residual norm. Encode once per query; read-only afterwards, so one
  /// encoding is safely shared across shards.
  struct EncodedQuery {
    AlignedArray<int8_t> codes;  // padded_dim() entries
    double residual = 0.0;       // |t - t~|_2, exact
  };
  EncodedQuery EncodeQuery(std::span<const double> target) const;

  /// The admissible lower bound on the exact *squared* distance between row
  /// i and the encoded target: max(0, d~ * (1 - 1e-9) - r_x - r_t)^2.
  double LowerBound2(const EncodedQuery& query, size_t i) const;

  /// Level −1 batch scan: out[i] = LowerBound2(query, i) for every row, one
  /// contiguous pass over the int8 buffer.
  void BatchLowerBounds2(const EncodedQuery& query,
                         std::span<double> out) const;

  /// Sharded batch scan on `pool` (contiguous row ranges, one per executor
  /// by default). Bit-identical to the serial overload at any shard count:
  /// rows are independent and each row's bound is computed by the same
  /// exact-integer kernel plus the same fixed-order float recombination.
  void BatchLowerBounds2(const EncodedQuery& query, std::span<double> out,
                         ThreadPool* pool, size_t shards = 0) const;

 private:
  size_t size_ = 0;
  size_t dim_ = 0;
  size_t padded_ = 0;
  size_t blocks_ = 0;
  simd::Level kernel_level_ = simd::Level::kScalar;
  simd::BlockSsdFn kernel_ = nullptr;
  std::vector<double> scales_;     // per block
  std::vector<double> scales_sq_;  // s_b^2, the recombination coefficients
  std::vector<double> residuals_;  // per row
  AlignedArray<int8_t> codes_;     // size_ * padded_, row-major
};

}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_QUANTIZED_STORE_H_
