#include "image/bounding.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace fuzzydb {

Result<EigenFilter> EigenFilter::Create(const QuadraticFormDistance& qfd,
                                        size_t dim) {
  if (dim == 0) return Status::InvalidArgument("filter dim must be >= 1");
  dim = std::min(dim, qfd.dimension());
  EigenFilter filter;
  filter.rows_.resize(dim);
  const std::vector<double>& lambda = qfd.eigenvalues();
  for (size_t j = 0; j < dim; ++j) {
    // Row j of the embedding basis is sqrt(λ_j)·v_j; copying it (rather
    // than recomputing) guarantees the filter projection equals the first
    // `dim` coordinates of the full embedding bit-for-bit.
    std::span<const double> row = qfd.embedding_basis().Row(j);
    filter.rows_[j].assign(row.begin(), row.end());
  }
  double total = std::accumulate(lambda.begin(), lambda.end(), 0.0);
  double kept = std::accumulate(lambda.begin(),
                                lambda.begin() + static_cast<long>(dim), 0.0);
  filter.captured_energy_ = total > 0.0 ? kept / total : 1.0;
  return filter;
}

std::vector<double> EigenFilter::Project(const Histogram& x) const {
  std::vector<double> out(rows_.size());
  for (size_t j = 0; j < rows_.size(); ++j) {
    out[j] = Dot(rows_[j], x);
  }
  return out;
}

double EigenFilter::BoundDistance(const std::vector<double>& fx,
                                  const std::vector<double>& fy) {
  return EuclideanDistance(fx, fy);
}

Result<std::vector<std::pair<size_t, double>>> FilteredKnn(
    const QuadraticFormDistance& qfd, const EigenFilter& filter,
    const std::vector<Histogram>& database, const Histogram& target, size_t k,
    FilteredSearchStats* stats) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  const size_t n = database.size();
  k = std::min(k, n);

  std::vector<double> ft = filter.Project(target);
  std::vector<std::pair<double, size_t>> by_bound(n);  // (d̂, index)
  for (size_t i = 0; i < n; ++i) {
    by_bound[i] = {EigenFilter::BoundDistance(filter.Project(database[i]), ft),
                   i};
  }
  std::sort(by_bound.begin(), by_bound.end());
  if (stats != nullptr) stats->bound_computations = n;

  // Visit in ascending d̂; once d̂ >= the current k-th best full distance,
  // no remaining object can enter the answer (d >= d̂).
  std::vector<std::pair<size_t, double>> best;  // (index, full d), unsorted
  double kth = std::numeric_limits<double>::infinity();
  size_t full = 0;
  for (const auto& [bound, idx] : by_bound) {
    if (best.size() >= k && bound >= kth) break;
    double d = qfd.Distance(database[idx], target);
    ++full;
    if (best.size() < k) {
      best.emplace_back(idx, d);
      if (best.size() == k) {
        kth = std::max_element(best.begin(), best.end(),
                               [](const auto& a, const auto& b) {
                                 return a.second < b.second;
                               })
                  ->second;
      }
    } else if (d < kth) {
      auto worst = std::max_element(best.begin(), best.end(),
                                    [](const auto& a, const auto& b) {
                                      return a.second < b.second;
                                    });
      *worst = {idx, d};
      kth = std::max_element(best.begin(), best.end(),
                             [](const auto& a, const auto& b) {
                               return a.second < b.second;
                             })
                ->second;
    }
  }
  if (stats != nullptr) {
    stats->full_distance_computations = full;
    // The two-level filter has no mid-row early exit: every candidate that
    // enters refinement runs to the full distance.
    stats->partial_refinements = full;
  }

  std::sort(best.begin(), best.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  return best;
}

std::vector<std::pair<size_t, double>> ExactKnn(
    const QuadraticFormDistance& qfd, const std::vector<Histogram>& database,
    const Histogram& target, size_t k) {
  std::vector<std::pair<size_t, double>> all(database.size());
  for (size_t i = 0; i < database.size(); ++i) {
    all[i] = {i, qfd.Distance(database[i], target)};
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k), all.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second < b.second;
                      return a.first < b.first;
                    });
  all.resize(k);
  return all;
}

}  // namespace fuzzydb
