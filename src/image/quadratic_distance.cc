#include "image/quadratic_distance.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fuzzydb {

Result<QuadraticFormDistance> QuadraticFormDistance::Create(
    const Palette& palette) {
  const size_t k = palette.size();
  if (k < 2) return Status::InvalidArgument("palette needs >= 2 colors");

  QuadraticFormDistance qfd;
  qfd.a_ = Matrix(k, k);
  double dmax = 0.0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      dmax = std::max(dmax, RgbDistance(palette.color(i), palette.color(j)));
    }
  }
  if (dmax <= 0.0) {
    return Status::InvalidArgument("palette colors are all identical");
  }
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      qfd.a_.At(i, j) =
          1.0 - RgbDistance(palette.color(i), palette.color(j)) / dmax;
    }
  }

  // B = P A P with P = I - (1/k) 1 1^T. For zero-sum z, z^T B z = z^T A z.
  Matrix b(k, k);
  std::vector<double> row_mean(k, 0.0), col_mean(k, 0.0);
  double total_mean = 0.0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      row_mean[i] += qfd.a_.At(i, j);
      col_mean[j] += qfd.a_.At(i, j);
      total_mean += qfd.a_.At(i, j);
    }
  }
  const double kd = static_cast<double>(k);
  for (double& v : row_mean) v /= kd;
  for (double& v : col_mean) v /= kd;
  total_mean /= kd * kd;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      b.At(i, j) = qfd.a_.At(i, j) - row_mean[i] - col_mean[j] + total_mean;
    }
  }

  Result<EigenDecomposition> eigen = JacobiEigenSymmetric(b);
  if (!eigen.ok()) return eigen.status();
  qfd.eigen_ = std::move(eigen).value();
  for (double& lambda : qfd.eigen_.values) {
    lambda = std::max(lambda, 0.0);  // clamp eigensolver roundoff
  }
  qfd.max_distance_ = std::sqrt(2.0 * qfd.eigen_.values.front());

  qfd.embedding_basis_ = Matrix(k, k);
  for (size_t j = 0; j < k; ++j) {
    const double scale = std::sqrt(qfd.eigen_.values[j]);
    std::span<const double> v = qfd.eigen_.vectors.Row(j);
    for (size_t i = 0; i < k; ++i) {
      qfd.embedding_basis_.At(j, i) = scale * v[i];
    }
  }
  return qfd;
}

double QuadraticFormDistance::Distance(const Histogram& x,
                                       const Histogram& y) const {
  assert(x.size() == dimension() && y.size() == dimension());
  thread_local std::vector<double> scratch;
  scratch.resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) scratch[i] = x[i] - y[i];
  double q = a_.QuadraticForm(scratch);
  return std::sqrt(std::max(q, 0.0));
}

void QuadraticFormDistance::EmbedInto(std::span<const double> x,
                                      std::span<double> out) const {
  assert(x.size() == dimension() && out.size() == dimension());
  for (size_t j = 0; j < dimension(); ++j) {
    out[j] = Dot(embedding_basis_.Row(j), x);
  }
}

std::vector<double> QuadraticFormDistance::Embed(const Histogram& x) const {
  std::vector<double> out(dimension());
  EmbedInto(x, out);
  return out;
}

}  // namespace fuzzydb
