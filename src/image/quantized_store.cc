#include "image/quantized_store.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

namespace fuzzydb {

namespace {

// Relative margin shaved off d~ before subtracting the residuals, so the
// float recombination's roundoff (~1e-16 relative) can never push the
// computed bound past the exactly-computed squared distance. See the
// header's derivation: when the clamped bound is positive, d~ > r_x + r_t,
// so a 1e-9 relative shave dominates every accumulated rounding term.
constexpr double kBoundSafety = 1e-9;

int8_t QuantizeValue(double value, double scale) {
  if (scale <= 0.0) return 0;
  const double scaled = value / scale;
  // Clamp before rounding: stored rows never clamp (the scale is sized from
  // their maxima), but query targets may lie outside the store's range, and
  // lround on a huge quotient would be UB.
  if (scaled >= static_cast<double>(simd::kInt8CodeMax)) {
    return static_cast<int8_t>(simd::kInt8CodeMax);
  }
  if (scaled <= -static_cast<double>(simd::kInt8CodeMax)) {
    return static_cast<int8_t>(-simd::kInt8CodeMax);
  }
  return static_cast<int8_t>(std::lround(scaled));
}

void RunShards(ThreadPool* pool, size_t shards,
               const std::function<void(size_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(shards, fn);
  } else {
    for (size_t s = 0; s < shards; ++s) fn(s);
  }
}

}  // namespace

// Accumulates the residual in ascending-dimension order (deterministic).
double QuantizedStore::EncodeRowAgainst(const double* row, size_t dim,
                                        std::span<const double> scales,
                                        int8_t* codes) {
  double residual_sq = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    const double s = scales[j / kBlockDim];
    const int8_t q = QuantizeValue(row[j], s);
    codes[j] = q;
    const double err = row[j] - static_cast<double>(q) * s;
    residual_sq += err * err;
  }
  return std::sqrt(residual_sq);
}

QuantizedStore QuantizedStore::FromParts(size_t size, size_t dim,
                                         std::vector<double> scales,
                                         std::vector<double> residuals,
                                         AlignedArray<int8_t> codes) {
  QuantizedStore store;
  if (size == 0 || dim == 0) return store;
  assert(dim <= kMaxBlocks * kBlockDim);
  store.size_ = size;
  store.dim_ = dim;
  store.blocks_ = NumBlocks(dim);
  store.padded_ = store.blocks_ * kBlockDim;
  assert(scales.size() == store.blocks_ && residuals.size() == size &&
         codes.size() == size * store.padded_);
  store.kernel_level_ = simd::Active();
  store.kernel_ = simd::ResolveBlockSsd(store.kernel_level_);
  store.scales_ = std::move(scales);
  store.scales_sq_.resize(store.blocks_);
  for (size_t b = 0; b < store.blocks_; ++b) {
    store.scales_sq_[b] = store.scales_[b] * store.scales_[b];
  }
  store.residuals_ = std::move(residuals);
  store.codes_ = std::move(codes);
  return store;
}

QuantizedStore QuantizedStore::Build(const double* rows, size_t size,
                                     size_t dim, size_t stride) {
  QuantizedStore store;
  if (size == 0 || dim == 0) return store;
  assert(dim <= kMaxBlocks * kBlockDim && stride >= dim);
  store.size_ = size;
  store.dim_ = dim;
  store.blocks_ = (dim + kBlockDim - 1) / kBlockDim;
  store.padded_ = store.blocks_ * kBlockDim;
  store.kernel_level_ = simd::Active();
  store.kernel_ = simd::ResolveBlockSsd(store.kernel_level_);

  // Per-block scales from the data's own maxima: stored codes never clamp.
  store.scales_.assign(store.blocks_, 0.0);
  for (size_t i = 0; i < size; ++i) {
    const double* row = rows + i * stride;
    for (size_t j = 0; j < dim; ++j) {
      store.scales_[j / kBlockDim] =
          std::max(store.scales_[j / kBlockDim], std::fabs(row[j]));
    }
  }
  store.scales_sq_.resize(store.blocks_);
  for (size_t b = 0; b < store.blocks_; ++b) {
    store.scales_[b] /= static_cast<double>(simd::kInt8CodeMax);
    store.scales_sq_[b] = store.scales_[b] * store.scales_[b];
  }

  store.codes_ = AlignedArray<int8_t>(size * store.padded_);
  store.residuals_.resize(size);
  for (size_t i = 0; i < size; ++i) {
    store.residuals_[i] =
        EncodeRowAgainst(rows + i * stride, dim, store.scales_,
                  store.codes_.data() + i * store.padded_);
  }
  return store;
}

QuantizedStore::EncodedQuery QuantizedStore::EncodeQuery(
    std::span<const double> target) const {
  assert(target.size() == dim_);
  EncodedQuery query;
  query.codes = AlignedArray<int8_t>(padded_);
  query.residual =
      EncodeRowAgainst(target.data(), dim_, scales_, query.codes.data());
  return query;
}

double QuantizedStore::LowerBound2(const EncodedQuery& query, size_t i) const {
  std::array<int32_t, kMaxBlocks> block_sums;
  kernel_(codes_.data() + i * padded_, query.codes.data(), padded_,
          block_sums.data());
  // Fixed ascending-block recombination: deterministic in (store, query),
  // independent of kernel level and shard split.
  double dq2 = 0.0;
  for (size_t b = 0; b < blocks_; ++b) {
    dq2 += scales_sq_[b] * static_cast<double>(block_sums[b]);
  }
  const double bound = std::sqrt(dq2) * (1.0 - kBoundSafety) - residuals_[i] -
                       query.residual;
  if (bound <= 0.0) return 0.0;
  return bound * bound;
}

void QuantizedStore::BatchLowerBounds2(const EncodedQuery& query,
                                       std::span<double> out) const {
  BatchLowerBounds2(query, out, /*pool=*/nullptr, /*shards=*/1);
}

void QuantizedStore::BatchLowerBounds2(const EncodedQuery& query,
                                       std::span<double> out, ThreadPool* pool,
                                       size_t shards) const {
  assert(out.size() == size_);
  if (shards == 0) shards = pool != nullptr ? pool->executors() : 1;
  shards = std::max<size_t>(1, std::min(shards, std::max<size_t>(size_, 1)));
  const std::vector<ShardRange> ranges = MakeShards(size_, shards);
  RunShards(pool, ranges.size(), [&](size_t s) {
    for (size_t i = ranges[s].begin; i < ranges[s].end; ++i) {
      out[i] = LowerBound2(query, i);
    }
  });
}

}  // namespace fuzzydb
