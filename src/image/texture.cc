#include "image/texture.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace fuzzydb {

TextureParams RandomTextureParams(Rng* rng) {
  TextureParams p;
  p.frequency = 1.0 + 15.0 * rng->NextDouble();
  p.orientation = std::numbers::pi * rng->NextDouble();
  p.amplitude = 0.2 + 0.6 * rng->NextDouble();
  p.noise = 0.3 * rng->NextDouble();
  return p;
}

Result<TexturePatch> SynthesizeTexture(const TextureParams& params,
                                       size_t side, Rng* rng) {
  if (side < 8) return Status::InvalidArgument("patch side must be >= 8");
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  TexturePatch patch;
  patch.side = side;
  patch.pixels.resize(side * side);
  const double cos_o = std::cos(params.orientation);
  const double sin_o = std::sin(params.orientation);
  for (size_t r = 0; r < side; ++r) {
    for (size_t c = 0; c < side; ++c) {
      double x = static_cast<double>(c) / static_cast<double>(side);
      double y = static_cast<double>(r) / static_cast<double>(side);
      // Coordinate along the grating normal.
      double t = x * cos_o + y * sin_o;
      double v = 0.5 + 0.5 * params.amplitude *
                           std::sin(2.0 * std::numbers::pi *
                                    params.frequency * t);
      v += params.noise * (rng->NextDouble() - 0.5);
      patch.pixels[r * side + c] = std::clamp(v, 0.0, 1.0);
    }
  }
  return patch;
}

namespace {

// Mean intensity of the 2^k x 2^k window whose top-left corner is (r, c),
// clipped to the patch.
double WindowMean(const TexturePatch& p, size_t r, size_t c, size_t size) {
  size_t r1 = std::min(r + size, p.side);
  size_t c1 = std::min(c + size, p.side);
  double sum = 0.0;
  for (size_t i = r; i < r1; ++i) {
    for (size_t j = c; j < c1; ++j) sum += p.At(i, j);
  }
  return sum / static_cast<double>((r1 - r) * (c1 - c));
}

}  // namespace

Result<TextureFeatures> ComputeTextureFeatures(const TexturePatch& patch) {
  if (patch.side < 8) {
    return Status::InvalidArgument("patch side must be >= 8");
  }
  if (patch.pixels.size() != patch.side * patch.side) {
    return Status::InvalidArgument("pixel count does not match side^2");
  }
  const size_t n = patch.side;

  // --- Contrast: Tamura's sigma / kurtosis^(1/4), squashed to [0,1]. ---
  double mean = 0.0;
  for (double v : patch.pixels) mean += v;
  mean /= static_cast<double>(patch.pixels.size());
  double m2 = 0.0, m4 = 0.0;
  for (double v : patch.pixels) {
    double d = v - mean;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(patch.pixels.size());
  m4 /= static_cast<double>(patch.pixels.size());
  double contrast = 0.0;
  if (m2 > 1e-12) {
    double kurtosis = m4 / (m2 * m2);
    contrast = std::sqrt(m2) / std::pow(kurtosis, 0.25);
  }
  contrast = std::min(1.0, 2.0 * contrast);  // sigma <= 0.5 on [0,1] data

  // --- Coarseness: per-pixel best window scale (Tamura S_best,
  // simplified): the scale 2^k maximizing the horizontal/vertical mean
  // difference of adjacent windows. ---
  size_t max_k = 0;
  while ((size_t{2} << max_k) <= n / 2) ++max_k;  // 2^(k+1) <= n/2
  double total_best = 0.0;
  size_t samples = 0;
  const size_t step = std::max<size_t>(1, n / 16);  // subsample the grid
  for (size_t r = 0; r < n; r += step) {
    for (size_t c = 0; c < n; c += step) {
      double best_e = -1.0;
      size_t best_size = 1;
      for (size_t k = 0; k <= max_k; ++k) {
        size_t size = size_t{1} << k;
        if (c + 2 * size > n || r + 2 * size > n) break;
        double eh = std::fabs(WindowMean(patch, r, c, size) -
                              WindowMean(patch, r, c + size, size));
        double ev = std::fabs(WindowMean(patch, r, c, size) -
                              WindowMean(patch, r + size, c, size));
        double e = std::max(eh, ev);
        if (e > best_e) {
          best_e = e;
          best_size = size;
        }
      }
      total_best += static_cast<double>(best_size);
      ++samples;
    }
  }
  double avg_size = total_best / static_cast<double>(samples);
  // Normalize by the largest window considered.
  double coarseness =
      avg_size / static_cast<double>(size_t{1} << max_k);
  coarseness = std::min(1.0, coarseness);

  // --- Directionality: circular concentration of gradient orientations
  // (doubled angles so opposite gradients reinforce), magnitude-weighted.
  double sum_cos = 0.0, sum_sin = 0.0, sum_mag = 0.0;
  for (size_t r = 0; r + 1 < n; ++r) {
    for (size_t c = 0; c + 1 < n; ++c) {
      double gx = patch.At(r, c + 1) - patch.At(r, c);
      double gy = patch.At(r + 1, c) - patch.At(r, c);
      double mag = std::hypot(gx, gy);
      if (mag < 1e-9) continue;
      double angle = 2.0 * std::atan2(gy, gx);
      sum_cos += mag * std::cos(angle);
      sum_sin += mag * std::sin(angle);
      sum_mag += mag;
    }
  }
  double directionality =
      sum_mag > 1e-12 ? std::hypot(sum_cos, sum_sin) / sum_mag : 0.0;

  TextureFeatures f;
  f.coarseness = coarseness;
  f.contrast = contrast;
  f.directionality = directionality;
  return f;
}

double TextureDistance(const TextureFeatures& a, const TextureFeatures& b) {
  double dc = a.coarseness - b.coarseness;
  double dk = a.contrast - b.contrast;
  double dd = a.directionality - b.directionality;
  return std::sqrt(dc * dc + dk * dk + dd * dd);
}

double TextureGradeFromDistance(double distance) {
  return 1.0 / (1.0 + distance);
}

}  // namespace fuzzydb
