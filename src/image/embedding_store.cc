#include "image/embedding_store.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <string>

#include "common/contract.h"
#include "common/squared_distance.h"

namespace fuzzydb {

namespace {

// Every code path (batch kernel, level-0 bound, incremental refinement,
// serial or sharded) accumulates squared differences through the same
// lane-blocked SquaredDistanceAccumulator, whose state after [a,b) then
// [b,c) is bit-identical to one [a,c) pass. That split invariance is what
// makes the cascade's numbers bit-identical to the batched exact kernel's,
// and the sharded scans bit-identical to the serial ones.

// Sorts pairs lexicographically and keeps the k smallest — the shared merge
// step of the sharded top-k paths. Selection runs on squared distances: the
// final sqrt can round two distinct d^2 to the same double, so comparing
// (d^2, index) keeps every path's tie-break identical.
void KeepKSmallest(std::vector<std::pair<double, size_t>>* pairs, size_t k) {
  k = std::min(k, pairs->size());
  std::partial_sort(pairs->begin(), pairs->begin() + static_cast<long>(k),
                    pairs->end());
  pairs->resize(k);
}

std::vector<std::pair<size_t, double>> ToOutput(
    std::vector<std::pair<double, size_t>> best) {
  std::sort(best.begin(), best.end());
  std::vector<std::pair<size_t, double>> out;
  out.reserve(best.size());
  for (const auto& [d2, idx] : best) {
    out.emplace_back(idx, std::sqrt(d2));
  }
  return out;
}

// Runs fn(shard_index) for every shard, on the pool when given.
void RunShards(ThreadPool* pool, size_t shards,
               const std::function<void(size_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(shards, fn);
  } else {
    for (size_t s = 0; s < shards; ++s) fn(s);
  }
}

size_t ResolveShards(size_t shards, ThreadPool* pool, size_t n) {
  if (shards == 0) shards = pool != nullptr ? pool->executors() : 1;
  return std::max<size_t>(1, std::min(shards, std::max<size_t>(n, 1)));
}

}  // namespace

Result<EmbeddingStore> EmbeddingStore::Build(
    const QuadraticFormDistance& qfd, const std::vector<Histogram>& database) {
  if (database.empty()) return Status::InvalidArgument("empty database");
  const size_t k = qfd.dimension();
  for (const Histogram& h : database) {
    if (h.size() != k) {
      return Status::InvalidArgument("histogram has wrong bin count");
    }
  }
  EmbeddingStore store(database.size(), k);
  for (size_t i = 0; i < database.size(); ++i) {
    qfd.EmbedInto(database[i], store.MutableRow(i));
  }
  store.BuildQuantized();
  return store;
}

void EmbeddingStore::BatchDistances(std::span<const double> target,
                                    std::span<double> out) const {
  BatchDistances(target, out, /*pool=*/nullptr, /*shards=*/1);
}

void EmbeddingStore::BatchDistances(std::span<const double> target,
                                    std::span<double> out, ThreadPool* pool,
                                    size_t shards) const {
  assert(target.size() == dim_ && out.size() == size_);
  const double* FUZZYDB_RESTRICT t = target.data();
  const std::vector<ShardRange> ranges =
      MakeShards(size_, ResolveShards(shards, pool, size_));
  RunShards(pool, ranges.size(), [&](size_t s) {
    for (size_t i = ranges[s].begin; i < ranges[s].end; ++i) {
      const double* FUZZYDB_RESTRICT row = data_.data() + i * stride_;
      out[i] = std::sqrt(SquaredDistance(row, t, dim_));
    }
  });
}

std::vector<std::pair<size_t, double>> EmbeddingStore::ExactKnn(
    std::span<const double> target, size_t k) const {
  return ExactKnn(target, k, /*pool=*/nullptr, /*shards=*/1);
}

std::vector<std::pair<size_t, double>> EmbeddingStore::ExactKnn(
    std::span<const double> target, size_t k, ThreadPool* pool,
    size_t shards) const {
  if (k == 0 || size_ == 0) return {};
  k = std::min(k, size_);
  assert(target.size() == dim_);

  const double* FUZZYDB_RESTRICT t = target.data();
  const std::vector<ShardRange> ranges =
      MakeShards(size_, ResolveShards(shards, pool, size_));
  // Per-shard local top-k of (d^2, index); the global k smallest pairs are
  // contained in the union of the shard-local k smallest.
  std::vector<std::vector<std::pair<double, size_t>>> local(ranges.size());
  RunShards(pool, ranges.size(), [&](size_t s) {
    const ShardRange r = ranges[s];
    std::vector<std::pair<double, size_t>>& mine = local[s];
    mine.reserve(r.size());
    for (size_t i = r.begin; i < r.end; ++i) {
      const double* FUZZYDB_RESTRICT row = data_.data() + i * stride_;
      mine.emplace_back(SquaredDistance(row, t, dim_), i);
    }
    KeepKSmallest(&mine, k);
  });

  std::vector<std::pair<double, size_t>> merged;
  merged.reserve(ranges.size() * k);
  for (const auto& mine : local) {
    merged.insert(merged.end(), mine.begin(), mine.end());
  }
  KeepKSmallest(&merged, k);
  return ToOutput(std::move(merged));
}

std::vector<std::pair<size_t, double>> EmbeddingStore::CascadeKnn(
    std::span<const double> target, size_t k, const CascadeOptions& options,
    CascadeStats* stats) const {
  return CascadeKnn(target, k, options, stats, /*pool=*/nullptr, /*shards=*/1);
}

std::vector<std::pair<size_t, double>> EmbeddingStore::CascadeKnn(
    std::span<const double> target, size_t k, const CascadeOptions& options,
    CascadeStats* stats, ThreadPool* pool, size_t shards) const {
  if (k == 0 || size_ == 0) return {};
  k = std::min(k, size_);
  assert(target.size() == dim_);

  // Encode the target against the int8 tier once per query; the encoding is
  // read-only afterwards, so every shard safely shares it.
  const QuantizedStore* qs =
      options.use_quantized && has_quantized() ? &quantized_ : nullptr;
  QuantizedStore::EncodedQuery qquery;
  if (qs != nullptr) qquery = qs->EncodeQuery(target);

  const std::vector<ShardRange> ranges =
      MakeShards(size_, ResolveShards(shards, pool, size_));
  std::vector<std::vector<std::pair<double, size_t>>> local(ranges.size());
  std::vector<CascadeStats> local_stats(ranges.size());
  RunShards(pool, ranges.size(), [&](size_t s) {
    CascadeShard(target.data(), k, options, qs != nullptr ? &qquery : nullptr,
                 ranges[s], &local[s], &local_stats[s]);
  });

  std::vector<std::pair<double, size_t>> merged;
  merged.reserve(ranges.size() * k);
  for (const auto& mine : local) {
    merged.insert(merged.end(), mine.begin(), mine.end());
  }
  KeepKSmallest(&merged, k);
  if (stats != nullptr) {
    // Summed in shard order — deterministic in (size, shards), independent
    // of thread scheduling.
    for (const CascadeStats& ls : local_stats) {
      stats->quantized_bound_computations += ls.quantized_bound_computations;
      stats->bound_computations += ls.bound_computations;
      stats->candidates_refined += ls.candidates_refined;
      stats->full_distance_computations += ls.full_distance_computations;
      stats->dims_accumulated += ls.dims_accumulated;
      stats->bytes_scanned_quantized += ls.bytes_scanned_quantized;
      stats->bytes_scanned_prefix += ls.bytes_scanned_prefix;
      stats->bytes_scanned_refine += ls.bytes_scanned_refine;
    }
  }
  return ToOutput(std::move(merged));
}

void EmbeddingStore::CascadeShard(
    const double* target, size_t k, const CascadeOptions& options,
    const QuantizedStore::EncodedQuery* qquery, ShardRange range,
    std::vector<std::pair<double, size_t>>* best, CascadeStats* stats) const {
  const size_t n = range.size();
  if (n == 0) return;
  k = std::min(k, n);
  const size_t s0 = std::clamp<size_t>(options.prefix_dim, 1, dim_);
  const size_t step = std::max<size_t>(options.step, 1);
  const double* FUZZYDB_RESTRICT t = target;

  // The cheap full-collection bound that orders the candidate walk: either
  // the int8 level −1 (quantized codes, ~1 byte/dim) or the float s0-dim
  // prefix (8 bytes/dim over s0 of dim_ dims). Both are admissible lower
  // bounds on d^2, so either ordering admits early termination with no
  // false dismissals. In float mode the accumulator state is kept so
  // refinement can resume from the prefix without recomputing it.
  std::vector<SquaredDistanceAccumulator> prefix;
  std::vector<double> bound(n);
  if (qquery != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      bound[i] = quantized_.LowerBound2(*qquery, range.begin + i);
    }
    stats->quantized_bound_computations += n;
    stats->bytes_scanned_quantized += n * quantized_.row_bytes();
  } else {
    prefix.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const double* FUZZYDB_RESTRICT row =
          data_.data() + (range.begin + i) * stride_;
      prefix[i].Accumulate(row, t, 0, s0);
      bound[i] = prefix[i].Total();
    }
    stats->bound_computations += n;
    stats->bytes_scanned_prefix += n * s0 * sizeof(double);
  }

  // Visit candidates in ascending (bound, index) order.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&bound](size_t a, size_t b) {
    if (bound[a] != bound[b]) return bound[a] < bound[b];
    return a < b;
  });

  // Current k best as (d^2, global index); "worst" is the lexicographic
  // maximum, matching ExactKnn's tie-break (distance ascending, then index).
  best->reserve(k);
  size_t worst_pos = 0;
  auto recompute_worst = [best, &worst_pos]() {
    worst_pos = 0;
    for (size_t p = 1; p < best->size(); ++p) {
      if ((*best)[p] > (*best)[worst_pos]) worst_pos = p;
    }
  };

  for (size_t local_idx : order) {
    const double b = bound[local_idx];
    // Strict >: a candidate whose bound ties the worst d^2 could still win
    // its tie on index, so only a strictly larger bound ends the scan.
    if (best->size() == k && b > (*best)[worst_pos].first) break;

    // Refine dimension-incrementally from the prefix, early-exiting as soon
    // as the partial sum (a valid lower bound at every length) provably
    // exceeds the current k-th best.
    const size_t idx = range.begin + local_idx;
    const double* FUZZYDB_RESTRICT row = data_.data() + idx * stride_;
    SquaredDistanceAccumulator acc;
    bool pruned = false;
    if (qquery != nullptr) {
      // Level 0 runs lazily: the float prefix is read only for candidates
      // the int8 bound could not dismiss. Its own bound can prune a
      // candidate the walk ordering (keyed on the quantized bound) let
      // through — a skip of this candidate, never a halt of the walk.
      acc.Accumulate(row, t, 0, s0);
      ++stats->bound_computations;
      stats->bytes_scanned_prefix += s0 * sizeof(double);
      pruned = s0 < dim_ && best->size() == k &&
               acc.Total() > (*best)[worst_pos].first;
    } else {
      acc = prefix[local_idx];
    }
    size_t j = s0;
    while (j < dim_ && !pruned) {
      const size_t stop = std::min(dim_, j + step);
      const double before = acc.Total();
      acc.Accumulate(row, t, j, stop);
      j = stop;
      // The cascade is dismissal-free only while every level lower-bounds
      // the next ([HSE+95]): accumulating non-negative squared terms can
      // never shrink the partial sum, exactly, in floating point.
      FUZZYDB_INVARIANT(acc.Total() >= before,
                        "cascade partial sum shrank from " +
                            std::to_string(before) + " to " +
                            std::to_string(acc.Total()) + " at dim " +
                            std::to_string(j) + " for row " +
                            std::to_string(idx));
      if (j < dim_ && best->size() == k &&
          acc.Total() > (*best)[worst_pos].first) {
        pruned = true;
      }
    }
    // A fully refined candidate's exact d^2 must dominate the bound that
    // ordered it — the quantized level −1 bound or the float level-0 prefix
    // — or that bound could have falsely dismissed it.
    FUZZYDB_INVARIANT(pruned || acc.Total() >= b,
                      std::string("cascade level ") +
                          (qquery != nullptr ? "-1 (int8)" : "0 (prefix)") +
                          " bound " + std::to_string(b) +
                          " exceeds exact d^2 " + std::to_string(acc.Total()) +
                          " for row " + std::to_string(idx));
    ++stats->candidates_refined;
    stats->dims_accumulated += j - s0;
    stats->bytes_scanned_refine += (j - s0) * sizeof(double);
    if (j == dim_) ++stats->full_distance_computations;
    if (pruned) continue;

    const double d2 = acc.Total();
    if (best->size() < k) {
      best->emplace_back(d2, idx);
      if (best->size() == k) recompute_worst();
    } else if (std::pair(d2, idx) < (*best)[worst_pos]) {
      (*best)[worst_pos] = {d2, idx};
      recompute_worst();
    }
  }
}

}  // namespace fuzzydb
