#include "image/embedding_store.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace fuzzydb {

namespace {

// Left-to-right squared-distance accumulation over [begin, end) of one row.
// Every code path below (batch kernel, level-0 bound, incremental
// refinement) sums dimensions in this same order, which is what makes the
// cascade's numbers bit-identical to the batched exact kernel's.
inline double AccumulateSquared(const double* row, const double* target,
                                size_t begin, size_t end, double acc) {
  for (size_t j = begin; j < end; ++j) {
    const double diff = row[j] - target[j];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace

Result<EmbeddingStore> EmbeddingStore::Build(
    const QuadraticFormDistance& qfd, const std::vector<Histogram>& database) {
  if (database.empty()) return Status::InvalidArgument("empty database");
  const size_t k = qfd.dimension();
  for (const Histogram& h : database) {
    if (h.size() != k) {
      return Status::InvalidArgument("histogram has wrong bin count");
    }
  }
  EmbeddingStore store(database.size(), k);
  for (size_t i = 0; i < database.size(); ++i) {
    qfd.EmbedInto(database[i], store.MutableRow(i));
  }
  return store;
}

void EmbeddingStore::BatchDistances(std::span<const double> target,
                                    std::span<double> out) const {
  assert(target.size() == dim_ && out.size() == size_);
  const double* t = target.data();
  for (size_t i = 0; i < size_; ++i) {
    const double* row = data_.data() + i * dim_;
    out[i] = std::sqrt(AccumulateSquared(row, t, 0, dim_, 0.0));
  }
}

std::vector<std::pair<size_t, double>> EmbeddingStore::ExactKnn(
    std::span<const double> target, size_t k) const {
  std::vector<std::pair<size_t, double>> out;
  if (k == 0 || size_ == 0) return out;
  k = std::min(k, size_);
  assert(target.size() == dim_);

  const double* t = target.data();
  std::vector<std::pair<double, size_t>> all(size_);  // (d^2, index)
  for (size_t i = 0; i < size_; ++i) {
    const double* row = data_.data() + i * dim_;
    all[i] = {AccumulateSquared(row, t, 0, dim_, 0.0), i};
  }
  // Selection runs on squared distances: sqrt can round two distinct d^2 to
  // the same double, and the cascade compares d^2 — keeping the selection
  // key identical keeps the two paths' answers identical.
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k),
                    all.end());
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.emplace_back(all[i].second, std::sqrt(all[i].first));
  }
  return out;
}

std::vector<std::pair<size_t, double>> EmbeddingStore::CascadeKnn(
    std::span<const double> target, size_t k, const CascadeOptions& options,
    CascadeStats* stats) const {
  std::vector<std::pair<size_t, double>> out;
  if (k == 0 || size_ == 0) return out;
  k = std::min(k, size_);
  assert(target.size() == dim_);

  const size_t s0 = std::clamp<size_t>(options.prefix_dim, 1, dim_);
  const size_t step = std::max<size_t>(options.step, 1);
  const double* t = target.data();

  // Level 0: the s0-dim prefix bound for every object, one contiguous pass.
  std::vector<double> bound(size_);
  for (size_t i = 0; i < size_; ++i) {
    bound[i] = AccumulateSquared(data_.data() + i * dim_, t, 0, s0, 0.0);
  }
  if (stats != nullptr) stats->bound_computations = size_;

  // Visit candidates in ascending (bound, index) order.
  std::vector<size_t> order(size_);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&bound](size_t a, size_t b) {
    if (bound[a] != bound[b]) return bound[a] < bound[b];
    return a < b;
  });

  // Current k best as (d^2, index); "worst" is the lexicographic maximum,
  // matching ExactKnn's tie-break (distance ascending, then index).
  std::vector<std::pair<double, size_t>> best;
  best.reserve(k);
  size_t worst_pos = 0;
  auto recompute_worst = [&best, &worst_pos]() {
    worst_pos = 0;
    for (size_t p = 1; p < best.size(); ++p) {
      if (best[p] > best[worst_pos]) worst_pos = p;
    }
  };

  for (size_t idx : order) {
    const double b = bound[idx];
    // Strict >: a candidate whose bound ties the worst d^2 could still win
    // its tie on index, so only a strictly larger bound ends the scan.
    if (best.size() == k && b > best[worst_pos].first) break;

    // Refine dimension-incrementally from the prefix, early-exiting as soon
    // as the partial sum (a valid lower bound at every length) provably
    // exceeds the current k-th best.
    const double* row = data_.data() + idx * dim_;
    double acc = b;
    size_t j = s0;
    bool pruned = false;
    while (j < dim_ && !pruned) {
      const size_t stop = std::min(dim_, j + step);
      acc = AccumulateSquared(row, t, j, stop, acc);
      j = stop;
      if (j < dim_ && best.size() == k && acc > best[worst_pos].first) {
        pruned = true;
      }
    }
    if (stats != nullptr) {
      ++stats->candidates_refined;
      stats->dims_accumulated += j - s0;
      if (j == dim_) ++stats->full_distance_computations;
    }
    if (pruned) continue;

    if (best.size() < k) {
      best.emplace_back(acc, idx);
      if (best.size() == k) recompute_worst();
    } else if (std::pair(acc, idx) < best[worst_pos]) {
      best[worst_pos] = {acc, idx};
      recompute_worst();
    }
  }

  std::sort(best.begin(), best.end());
  out.reserve(best.size());
  for (const auto& [d2, idx] : best) {
    out.emplace_back(idx, std::sqrt(d2));
  }
  return out;
}

}  // namespace fuzzydb
