#include "image/embedding_store.h"

#include <algorithm>
#include <cassert>

#include "common/squared_distance.h"

namespace fuzzydb {

// The numeric kernels (exact selection, cascade, tie-breaks, counters) live
// in image/knn_kernel.h, shared with the disk-backed paged store; this file
// supplies only the RAM-resident row accessor and the shard orchestration.

namespace {

using knn_internal::KeepKSmallest;
using knn_internal::ResolveShards;
using knn_internal::RunShards;
using knn_internal::ToOutput;

// Zero-cost row access over the contiguous aligned buffer; never fails.
struct DirectRows {
  const double* base;
  size_t stride;
  const double* Acquire(size_t i) const { return base + i * stride; }
};

}  // namespace

Result<EmbeddingStore> EmbeddingStore::Build(
    const QuadraticFormDistance& qfd, const std::vector<Histogram>& database) {
  if (database.empty()) return Status::InvalidArgument("empty database");
  const size_t k = qfd.dimension();
  for (const Histogram& h : database) {
    if (h.size() != k) {
      return Status::InvalidArgument("histogram has wrong bin count");
    }
  }
  EmbeddingStore store(database.size(), k);
  for (size_t i = 0; i < database.size(); ++i) {
    qfd.EmbedInto(database[i], store.MutableRow(i));
  }
  store.BuildQuantized();
  return store;
}

void EmbeddingStore::BatchDistances(std::span<const double> target,
                                    std::span<double> out) const {
  BatchDistances(target, out, /*pool=*/nullptr, /*shards=*/1);
}

void EmbeddingStore::BatchDistances(std::span<const double> target,
                                    std::span<double> out, ThreadPool* pool,
                                    size_t shards) const {
  assert(target.size() == dim_ && out.size() == size_);
  const double* FUZZYDB_RESTRICT t = target.data();
  const std::vector<ShardRange> ranges =
      MakeShards(size_, ResolveShards(shards, pool, size_));
  RunShards(pool, ranges.size(), [&](size_t s) {
    for (size_t i = ranges[s].begin; i < ranges[s].end; ++i) {
      const double* FUZZYDB_RESTRICT row = data_.data() + i * stride_;
      out[i] = std::sqrt(SquaredDistance(row, t, dim_));
    }
  });
}

std::vector<std::pair<size_t, double>> EmbeddingStore::ExactKnn(
    std::span<const double> target, size_t k) const {
  return ExactKnn(target, k, /*pool=*/nullptr, /*shards=*/1);
}

std::vector<std::pair<size_t, double>> EmbeddingStore::ExactKnn(
    std::span<const double> target, size_t k, ThreadPool* pool,
    size_t shards) const {
  if (k == 0 || size_ == 0) return {};
  k = std::min(k, size_);
  assert(target.size() == dim_);

  const std::vector<ShardRange> ranges =
      MakeShards(size_, ResolveShards(shards, pool, size_));
  // Per-shard local top-k of (d^2, index); the global k smallest pairs are
  // contained in the union of the shard-local k smallest.
  std::vector<std::vector<std::pair<double, size_t>>> local(ranges.size());
  RunShards(pool, ranges.size(), [&](size_t s) {
    DirectRows rows{data_.data(), stride_};
    knn_internal::ExactKnnShard(rows, target.data(), dim_, k, ranges[s],
                                &local[s]);
  });

  std::vector<std::pair<double, size_t>> merged;
  merged.reserve(ranges.size() * k);
  for (const auto& mine : local) {
    merged.insert(merged.end(), mine.begin(), mine.end());
  }
  KeepKSmallest(&merged, k);
  return ToOutput(std::move(merged));
}

std::vector<std::pair<size_t, double>> EmbeddingStore::CascadeKnn(
    std::span<const double> target, size_t k, const CascadeOptions& options,
    CascadeStats* stats) const {
  return CascadeKnn(target, k, options, stats, /*pool=*/nullptr, /*shards=*/1);
}

std::vector<std::pair<size_t, double>> EmbeddingStore::CascadeKnn(
    std::span<const double> target, size_t k, const CascadeOptions& options,
    CascadeStats* stats, ThreadPool* pool, size_t shards) const {
  if (k == 0 || size_ == 0) return {};
  k = std::min(k, size_);
  assert(target.size() == dim_);

  // Encode the target against the int8 tier once per query; the encoding is
  // read-only afterwards, so every shard safely shares it.
  const QuantizedStore* qs =
      options.use_quantized && has_quantized() ? &quantized_ : nullptr;
  QuantizedStore::EncodedQuery qquery;
  if (qs != nullptr) qquery = qs->EncodeQuery(target);

  const std::vector<ShardRange> ranges =
      MakeShards(size_, ResolveShards(shards, pool, size_));
  std::vector<std::vector<std::pair<double, size_t>>> local(ranges.size());
  std::vector<CascadeStats> local_stats(ranges.size());
  RunShards(pool, ranges.size(), [&](size_t s) {
    DirectRows rows{data_.data(), stride_};
    knn_internal::CascadeShard(rows, target.data(), dim_, k, options, qs,
                               qs != nullptr ? &qquery : nullptr, ranges[s],
                               &local[s], &local_stats[s]);
  });

  std::vector<std::pair<double, size_t>> merged;
  merged.reserve(ranges.size() * k);
  for (const auto& mine : local) {
    merged.insert(merged.end(), mine.begin(), mine.end());
  }
  KeepKSmallest(&merged, k);
  if (stats != nullptr) {
    // Summed in shard order — deterministic in (size, shards), independent
    // of thread scheduling.
    for (const CascadeStats& ls : local_stats) {
      stats->Absorb(ls);
    }
  }
  return ToOutput(std::move(merged));
}

}  // namespace fuzzydb
