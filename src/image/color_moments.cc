#include "image/color_moments.h"

#include <cmath>

namespace fuzzydb {

Result<ColorMoments> ComputeColorMoments(const Palette& palette,
                                         const Histogram& h) {
  FUZZYDB_RETURN_NOT_OK(ValidateHistogram(h));
  if (h.size() != palette.size()) {
    return Status::InvalidArgument("histogram bin count != palette size");
  }
  ColorMoments m;
  for (size_t i = 0; i < h.size(); ++i) {
    for (size_t c = 0; c < 3; ++c) {
      m.mean[c] += h[i] * palette.color(i)[c];
    }
  }
  Rgb m2{0, 0, 0}, m3{0, 0, 0};
  for (size_t i = 0; i < h.size(); ++i) {
    for (size_t c = 0; c < 3; ++c) {
      double d = palette.color(i)[c] - m.mean[c];
      m2[c] += h[i] * d * d;
      m3[c] += h[i] * d * d * d;
    }
  }
  for (size_t c = 0; c < 3; ++c) {
    m.stddev[c] = std::sqrt(m2[c]);
    m.skewness[c] = std::cbrt(m3[c]);
  }
  return m;
}

double ColorMomentDistance(const ColorMoments& a, const ColorMoments& b,
                           const MomentWeights& weights) {
  double d = 0.0;
  for (size_t c = 0; c < 3; ++c) {
    d += weights.mean * std::fabs(a.mean[c] - b.mean[c]);
    d += weights.stddev * std::fabs(a.stddev[c] - b.stddev[c]);
    d += weights.skewness * std::fabs(a.skewness[c] - b.skewness[c]);
  }
  return d;
}

double ColorMomentGradeFromDistance(double distance) {
  return 1.0 / (1.0 + distance);
}

}  // namespace fuzzydb
