// The index-driven sorted-access backend (paper §2.1 + §4): a GradedSource
// whose grade-descending stream is produced *incrementally* by the GEMINI
// R-tree instead of a precomputed O(N log N) sort.
//
// The driver combines Hjaltason–Samet incremental distance browsing with
// the Seidl–Kriegel optimal multi-step kNN bound:
//
//   1. `RTree::NearestIterator` pops database objects in ascending order of
//      their eigen-prefix summary distance d̂ — an admissible lower bound on
//      the exact full-embedding distance d (d >= d̂, no false dismissals).
//   2. Each popped candidate enters a *pending* pool keyed by the tightest
//      known lower bound: max(d̂, int8 quantized bound) when the embedding
//      store carries its quantized companion (DESIGN §3g) — the int8 tier
//      orders refinements so far-away candidates wait longest.
//   3. Candidates are refined (exact d over the full embedding row, the
//      same split-invariant kernel BatchDistances uses) lazily, and a
//      refined candidate is *released* only once the frontier proves no
//      unrefined candidate can beat or tie it: its grade must strictly
//      exceed the grade of the frontier lower bound. On ties the driver
//      refines further until the tie is between refined candidates, which
//      then release in ascending-id order.
//
// The released stream is therefore exactly the grade-descending,
// ties-by-id-ascending order of the batch-graded QbicColorSource — bit
// identical, because the grade map (GradeFromDistance) and the distance
// kernel are shared — while refinement work stays proportional to how far
// the consumer actually reads (top-k algorithms stop early; the batch
// source always pays for all N up front).

#ifndef FUZZYDB_IMAGE_RTREE_SOURCE_H_
#define FUZZYDB_IMAGE_RTREE_SOURCE_H_

#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "image/indexed_search.h"
#include "middleware/source.h"

namespace fuzzydb {

/// Counters from one driver cursor (the sorted stream since the last
/// restart): how much index and refinement work the emitted prefix cost.
struct RtreeSourceStats {
  /// R-tree nodes expanded by the incremental iterator.
  size_t node_accesses = 0;
  /// Summary (prefix) distances computed inside the iterator's leaves.
  size_t bound_computations = 0;
  /// int8 quantized lower bounds evaluated for pending candidates.
  size_t quantized_bound_computations = 0;
  /// Exact full-embedding distances computed (Seidl–Kriegel refinements).
  size_t refinements = 0;
  /// Objects released from the sorted stream.
  size_t emitted = 0;
};

struct RtreeKnnSourceOptions {
  std::string label = "Color~rtree";
  /// Maps embedding-row index i to the ObjectId the stream reports;
  /// empty = identity (ids are row indices). Pass the ImageStore's record
  /// ids to make the stream comparable with QbicColorSource.
  std::vector<ObjectId> ids;
  /// Order pending refinements by the int8 quantized lower bound as well as
  /// d̂ when the index's embedding store has the quantized companion.
  bool use_quantized = true;
};

/// GradedSource over a GeminiIndex: sorted access via incremental R-tree
/// nearest-neighbour browsing with certified lazy refinement, random access
/// via one exact distance over the full embedding row.
class RtreeKnnSource final : public GradedSource {
 public:
  /// `index` must outlive the source. The target histogram is embedded once
  /// (O(bins^2)); everything after is O(bins) per touched object.
  static Result<RtreeKnnSource> Create(const GeminiIndex* index,
                                       const Histogram& target,
                                       RtreeKnnSourceOptions options = {});

  size_t Size() const override;
  std::optional<GradedObject> NextSorted() override;
  void RestartSorted() override;
  double RandomAccess(ObjectId id) override;
  std::vector<GradedObject> AtLeast(double threshold) override;
  std::string name() const override { return options_.label; }

  /// Work counters for the current sorted cursor.
  const RtreeSourceStats& stats() const { return stats_; }

 private:
  // A candidate pulled from the iterator but not yet refined, keyed by the
  // tightest admissible lower bound on its exact distance.
  struct Pending {
    double lower_bound = 0.0;
    size_t index = 0;
    bool operator>(const Pending& other) const {
      if (lower_bound != other.lower_bound) {
        return lower_bound > other.lower_bound;
      }
      return index > other.index;
    }
  };
  // A refined candidate awaiting release, keyed grade-descending with ties
  // by id ascending — the GradedSource stream order.
  struct Refined {
    double grade = 0.0;
    ObjectId id = 0;
    bool operator<(const Refined& other) const {
      if (grade != other.grade) return grade < other.grade;
      return id > other.id;
    }
  };

  // One independent position in the certified stream. NextSorted advances
  // the member cursor; AtLeast replays a private one so filter access never
  // disturbs the sorted position.
  struct Cursor {
    std::optional<RTree::NearestIterator> iterator;
    // The iterator entry popped ahead of the pending pool; its distance
    // (converted to summary units) is the frontier d̂ for everything not
    // yet pulled.
    std::optional<KnnNeighbor> peek;
    std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
        pending;
    std::priority_queue<Refined> refined;
  };

  RtreeKnnSource() = default;

  void ResetCursor(Cursor* cursor) const;
  // Pulls one iterator entry into `pending` or refines one pending
  // candidate into `refined`; false when every object is refined.
  bool Advance(Cursor* cursor, RtreeSourceStats* stats);
  // The next certified release, or nullopt when the stream is exhausted.
  std::optional<GradedObject> Pop(Cursor* cursor, RtreeSourceStats* stats);

  double ExactDistance(size_t index, RtreeSourceStats* stats);
  ObjectId MapId(size_t index) const {
    return options_.ids.empty() ? static_cast<ObjectId>(index)
                                : options_.ids[index];
  }

  const GeminiIndex* index_ = nullptr;
  RtreeKnnSourceOptions options_;
  std::vector<double> target_embedding_;
  std::vector<double> unit_query_;  // target mapped into the R-tree box
  double max_distance_ = 1.0;      // grade-map denominator
  bool quantized_ = false;
  QuantizedStore::EncodedQuery encoded_query_;
  // Exact distances cached across cursors and random accesses: refinement
  // is deterministic, so sharing never changes a grade, only avoids
  // recomputing it. The map is the one piece of state every access path
  // lands in — the sorted cursor, AtLeast's private replay cursors, and
  // random-access probes — so it carries its own annotated mutex (held only
  // around map lookups/inserts, never across the distance kernel). Behind
  // unique_ptr because Mutex is immovable and Create() returns by value.
  struct ExactCache {
    Mutex mu;
    std::unordered_map<size_t, double> map GUARDED_BY(mu);
  };
  std::unique_ptr<ExactCache> exact_ = std::make_unique<ExactCache>();
  std::unordered_map<ObjectId, size_t> id_to_index_;

  Cursor cursor_;
  RtreeSourceStats stats_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_RTREE_SOURCE_H_
