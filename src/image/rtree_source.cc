#include "image/rtree_source.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/squared_distance.h"
#include "image/image_store.h"

namespace fuzzydb {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Relative safety margin deflating the frontier bound before it is compared
// against refined grades. The summary coordinates pass through a rounded
// affine map (clamp((e + offset) * scale)) and back (d_unit / scale), so the
// computed d̂ can exceed the true exact distance by a few ulps when the
// non-prefix dimensions contribute ~nothing; 1e-9 dominates that error by
// six orders of magnitude (the same margin quantized_store shaves). The
// deflation only *delays* a release — candidates inside the margin get
// refined instead of certified — so it can never reorder the stream.
constexpr double kBoundMargin = 1.0 - 1e-9;

}  // namespace

Result<RtreeKnnSource> RtreeKnnSource::Create(const GeminiIndex* index,
                                              const Histogram& target,
                                              RtreeKnnSourceOptions options) {
  if (index == nullptr) return Status::InvalidArgument("null index");
  FUZZYDB_RETURN_NOT_OK(ValidateHistogram(target));
  if (target.size() != index->embeddings().dim()) {
    return Status::InvalidArgument("target histogram has wrong bin count");
  }
  if (!options.ids.empty() && options.ids.size() != index->size()) {
    return Status::InvalidArgument("ids must map every embedding row");
  }
  RtreeKnnSource src;
  src.index_ = index;
  src.options_ = std::move(options);
  src.max_distance_ = index->qfd().MaxDistance();

  // One O(bins^2) projection; its prefix is the R-tree query point, its full
  // length powers every refinement and random access.
  src.target_embedding_ = index->qfd().Embed(target);
  src.unit_query_.resize(index->filter().dim());
  for (size_t j = 0; j < src.unit_query_.size(); ++j) {
    src.unit_query_[j] = std::clamp(
        (src.target_embedding_[j] + index->offset()) * index->scale(), 0.0,
        1.0);
  }

  src.quantized_ =
      src.options_.use_quantized && index->embeddings().has_quantized();
  if (src.quantized_) {
    src.encoded_query_ =
        index->embeddings().quantized().EncodeQuery(src.target_embedding_);
  }
  for (size_t i = 0; i < index->size(); ++i) {
    src.id_to_index_.emplace(src.MapId(i), i);
  }
  src.ResetCursor(&src.cursor_);
  return src;
}

size_t RtreeKnnSource::Size() const { return index_->size(); }

void RtreeKnnSource::ResetCursor(Cursor* cursor) const {
  cursor->iterator.emplace(&index_->rtree(), unit_query_);
  cursor->peek = cursor->iterator->Next();
  cursor->pending = {};
  cursor->refined = {};
}

double RtreeKnnSource::ExactDistance(size_t index,
                                     RtreeSourceStats* stats) {
  {
    MutexLock lock(exact_->mu);
    auto it = exact_->map.find(index);
    if (it != exact_->map.end()) return it->second;
  }
  const EmbeddingStore& store = index_->embeddings();
  // The same per-row arithmetic as EmbeddingStore::BatchDistances — equal
  // inputs, bit-equal distance, bit-equal grade. Computed outside the cache
  // lock: two racing probes may both pay for the same row, but the kernel
  // is deterministic so whichever emplace lands first wins with the same
  // bits (stats are per-cursor and owned by the calling thread).
  double d = std::sqrt(SquaredDistance(store.Row(index).data(),
                                       target_embedding_.data(), store.dim()));
  ++stats->refinements;
  MutexLock lock(exact_->mu);
  exact_->map.emplace(index, d);
  return d;
}

bool RtreeKnnSource::Advance(Cursor* cursor, RtreeSourceStats* stats) {
  const double frontier =
      cursor->peek ? cursor->peek->distance / index_->scale() : kInf;
  // Seidl–Kriegel refinement order: refine the pending candidate with the
  // smallest lower bound once no cheaper candidate can still arrive from
  // the iterator; otherwise keep pulling.
  const bool refine_now =
      !cursor->pending.empty() && cursor->pending.top().lower_bound <= frontier;
  if (refine_now || (!cursor->peek && !cursor->pending.empty())) {
    Pending next = cursor->pending.top();
    cursor->pending.pop();
    double d = ExactDistance(next.index, stats);
    cursor->refined.push(
        {GradeFromDistance(d, max_distance_), MapId(next.index)});
    return true;
  }
  if (cursor->peek) {
    const size_t idx = static_cast<size_t>(cursor->peek->id);
    double lb = frontier;  // the candidate's own d̂: it is the frontier head
    if (quantized_) {
      // The int8 tier tightens the bound and thereby *orders* refinements:
      // a candidate whose quantized bound is already large sinks in the
      // pending pool and may never need its exact distance at all.
      lb = std::max(lb, std::sqrt(index_->embeddings().quantized().LowerBound2(
                            encoded_query_, idx)));
      ++stats->quantized_bound_computations;
    }
    cursor->pending.push({lb, idx});
    cursor->peek = cursor->iterator->Next();
    stats->node_accesses = cursor->iterator->stats().node_accesses;
    stats->bound_computations = cursor->iterator->stats().distance_computations;
    return true;
  }
  return false;
}

std::optional<GradedObject> RtreeKnnSource::Pop(Cursor* cursor,
                                                RtreeSourceStats* stats) {
  for (;;) {
    if (!cursor->refined.empty()) {
      const double frontier = std::min(
          cursor->peek ? cursor->peek->distance / index_->scale() : kInf,
          cursor->pending.empty() ? kInf : cursor->pending.top().lower_bound);
      bool release;
      if (frontier == kInf) {
        // Everything is refined: the heap order *is* the exact stream order
        // (this also releases grade-0.0 tails, whose grades can never
        // strictly beat the 0.0 bound grade below).
        release = true;
      } else {
        // Certify: every unrefined candidate has exact distance >= frontier
        // (admissible bounds), hence grade <= bound_grade (monotone map).
        // Strict > means grade ties are never released against an
        // unrefined candidate — the driver refines until tied candidates
        // are all in the heap, which then orders them by ascending id.
        const double bound_grade =
            GradeFromDistance(frontier * kBoundMargin, max_distance_);
        release = cursor->refined.top().grade > bound_grade;
      }
      if (release) {
        Refined next = cursor->refined.top();
        cursor->refined.pop();
        ++stats->emitted;
        return GradedObject{next.id, next.grade};
      }
    }
    if (!Advance(cursor, stats)) return std::nullopt;
  }
}

std::optional<GradedObject> RtreeKnnSource::NextSorted() {
  return Pop(&cursor_, &stats_);
}

void RtreeKnnSource::RestartSorted() {
  ResetCursor(&cursor_);
  stats_ = {};
}

double RtreeKnnSource::RandomAccess(ObjectId id) {
  auto it = id_to_index_.find(id);
  if (it == id_to_index_.end()) return 0.0;
  return GradeFromDistance(ExactDistance(it->second, &stats_), max_distance_);
}

std::vector<GradedObject> RtreeKnnSource::AtLeast(double threshold) {
  // Bounded range pull on a private cursor: replay the certified stream
  // from the top and stop at the first release below the threshold. The
  // sorted cursor's position is untouched; refinements land in the shared
  // cache either way.
  Cursor cursor;
  ResetCursor(&cursor);
  RtreeSourceStats local;
  std::vector<GradedObject> out;
  while (std::optional<GradedObject> next = Pop(&cursor, &local)) {
    if (next->grade < threshold) break;
    out.push_back(*next);
  }
  return out;
}

}  // namespace fuzzydb
