// Color moments [SO95] (cited in paper §2 among the color-matching
// methods): instead of a k-bin histogram, summarize an image's color
// distribution by the first three moments (mean, standard deviation,
// skewness) of each channel — nine numbers — and compare with a weighted
// L1 distance. Far cheaper than the quadratic form, and a classic
// alternative atomic-query backend.

#ifndef FUZZYDB_IMAGE_COLOR_MOMENTS_H_
#define FUZZYDB_IMAGE_COLOR_MOMENTS_H_

#include <array>

#include "image/color.h"
#include "middleware/source.h"

namespace fuzzydb {

/// Per-channel first three moments of a color distribution.
struct ColorMoments {
  /// E[channel].
  Rgb mean = {0, 0, 0};
  /// sqrt(E[(channel - mean)^2]).
  Rgb stddev = {0, 0, 0};
  /// cbrt(E[(channel - mean)^3]) — signed, same units as the channel.
  Rgb skewness = {0, 0, 0};

  bool operator==(const ColorMoments& other) const = default;
};

/// Moments of the distribution that places mass h[i] on palette color i.
/// The histogram must validate against the palette.
Result<ColorMoments> ComputeColorMoments(const Palette& palette,
                                         const Histogram& h);

/// Per-moment weights of the Stricker–Orengo distance.
struct MomentWeights {
  double mean = 1.0;
  double stddev = 1.0;
  double skewness = 1.0;
};

/// Weighted L1: Σ_channels w_mean|Δmean| + w_std|Δstd| + w_skew|Δskew|.
double ColorMomentDistance(const ColorMoments& a, const ColorMoments& b,
                           const MomentWeights& weights = {});

/// Grade = 1 / (1 + distance).
double ColorMomentGradeFromDistance(double distance);

}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_COLOR_MOMENTS_H_
