#include "image/qbic_source.h"

#include <algorithm>

namespace fuzzydb {

namespace {

std::vector<GradedObject> AtLeastFromSorted(
    const std::vector<GradedObject>& sorted, double threshold) {
  // The list is grade-descending, so the qualifying objects are exactly the
  // prefix before the partition point — found by binary search.
  auto end = std::partition_point(
      sorted.begin(), sorted.end(),
      [threshold](const GradedObject& g) { return g.grade >= threshold; });
  return {sorted.begin(), end};
}

}  // namespace

Result<QbicColorSource> QbicColorSource::Create(const ImageStore* store,
                                                Histogram target,
                                                std::string label) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  FUZZYDB_RETURN_NOT_OK(ValidateHistogram(target));
  if (target.size() != store->palette().size()) {
    return Status::InvalidArgument("target histogram has wrong bin count");
  }
  QbicColorSource src;
  src.label_ = std::move(label);
  src.sorted_.reserve(store->size());
  // Grade through the embedding layer: one O(bins^2) projection of the
  // target, then one batched O(bins)-per-image pass over the store's
  // contiguous embedding buffer, sharded across the shared pool.
  std::vector<double> target_embedding = store->color_distance().Embed(target);
  std::vector<double> distances(store->size());
  store->embeddings().BatchDistances(target_embedding, distances,
                                     ThreadPool::Shared());
  for (size_t i = 0; i < store->size(); ++i) {
    const ImageRecord& rec = store->image(i);
    double grade = store->ColorGradeFromDistance(distances[i]);
    src.sorted_.push_back({rec.id, grade});
    src.grades_.emplace(rec.id, grade);
  }
  std::sort(src.sorted_.begin(), src.sorted_.end(), GradeDescending);
  return src;
}

std::optional<GradedObject> QbicColorSource::NextSorted() {
  if (cursor_ >= sorted_.size()) return std::nullopt;
  return sorted_[cursor_++];
}

double QbicColorSource::RandomAccess(ObjectId id) {
  auto it = grades_.find(id);
  return it == grades_.end() ? 0.0 : it->second;
}

std::vector<GradedObject> QbicColorSource::AtLeast(double threshold) {
  return AtLeastFromSorted(sorted_, threshold);
}

Result<QbicTextureSource> QbicTextureSource::Create(
    const ImageStore* store, const TextureFeatures& target,
    std::string label) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  QbicTextureSource src;
  src.label_ = std::move(label);
  src.sorted_.reserve(store->size());
  for (const ImageRecord& rec : store->images()) {
    double grade =
        TextureGradeFromDistance(TextureDistance(rec.texture, target));
    src.sorted_.push_back({rec.id, grade});
    src.grades_.emplace(rec.id, grade);
  }
  std::sort(src.sorted_.begin(), src.sorted_.end(), GradeDescending);
  return src;
}

std::optional<GradedObject> QbicTextureSource::NextSorted() {
  if (cursor_ >= sorted_.size()) return std::nullopt;
  return sorted_[cursor_++];
}

double QbicTextureSource::RandomAccess(ObjectId id) {
  auto it = grades_.find(id);
  return it == grades_.end() ? 0.0 : it->second;
}

std::vector<GradedObject> QbicTextureSource::AtLeast(double threshold) {
  return AtLeastFromSorted(sorted_, threshold);
}

Result<QbicShapeSource> QbicShapeSource::Create(
    const ImageStore* store, const Polygon& target, std::string label,
    size_t turning_samples, ShapeMethod method) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  if (turning_samples < 4) {
    return Status::InvalidArgument("turning_samples must be >= 4");
  }
  QbicShapeSource src;
  src.label_ = std::move(label);
  src.sorted_.reserve(store->size());

  std::vector<double> target_turning;
  HuMoments target_hu{};
  if (method == ShapeMethod::kTurningFunction) {
    target_turning = TurningFunction(target, turning_samples);
  } else if (method == ShapeMethod::kHuMoments) {
    target_hu = ComputeHuMoments(target);
  }
  for (const ImageRecord& rec : store->images()) {
    double d = 0.0;
    switch (method) {
      case ShapeMethod::kTurningFunction:
        d = TurningDistance(TurningFunction(rec.shape, turning_samples),
                            target_turning);
        break;
      case ShapeMethod::kHuMoments:
        d = HuMomentDistance(ComputeHuMoments(rec.shape), target_hu);
        break;
      case ShapeMethod::kHausdorff:
        d = HausdorffShapeDistance(rec.shape, target, turning_samples);
        break;
    }
    double grade = ShapeGradeFromDistance(d);
    src.sorted_.push_back({rec.id, grade});
    src.grades_.emplace(rec.id, grade);
  }
  std::sort(src.sorted_.begin(), src.sorted_.end(), GradeDescending);
  return src;
}

std::optional<GradedObject> QbicShapeSource::NextSorted() {
  if (cursor_ >= sorted_.size()) return std::nullopt;
  return sorted_[cursor_++];
}

double QbicShapeSource::RandomAccess(ObjectId id) {
  auto it = grades_.find(id);
  return it == grades_.end() ? 0.0 : it->second;
}

std::vector<GradedObject> QbicShapeSource::AtLeast(double threshold) {
  return AtLeastFromSorted(sorted_, threshold);
}

}  // namespace fuzzydb
