// Auto-tuning of CascadeOptions per palette spectrum (ROADMAP follow-on to
// the embedding layer).
//
// How selective a prefix bound is depends entirely on the eigenvalue
// spectrum of B = P A P: a steep spectrum packs most of the distance into a
// few leading dimensions (short prefixes filter nearly everything), a flat
// one spreads it evenly (deep prefixes are pure overhead). Rather than
// modeling that analytically, the tuner *measures* it: it replays a small
// calibration sample of queries through CascadeKnn over a grid of
// (prefix_dim, step) configurations — prefix candidates are chosen from the
// spectrum itself as the shortest prefixes capturing fixed fractions of the
// total eigenmass — and scores each configuration with the CascadeStats
// cost model. Because CascadeKnn returns bit-identical answers for every
// configuration, tuning can never change results, only costs.

#ifndef FUZZYDB_IMAGE_CASCADE_TUNER_H_
#define FUZZYDB_IMAGE_CASCADE_TUNER_H_

#include <span>
#include <vector>

#include "image/embedding_store.h"

namespace fuzzydb {

/// One evaluated configuration of the tuning sweep.
struct CascadeCandidate {
  CascadeOptions options;
  /// Shard count this configuration was measured at (1 = unsharded).
  size_t shards = 1;
  /// Counters summed over the calibration sample.
  CascadeStats stats;
  /// Modeled refinement cost per calibration query, in dimension
  /// accumulations (see CascadeTuner::Cost), divided by the effective
  /// parallelism and charged for per-shard bookkeeping when shards > 1.
  double cost = 0.0;
};

/// The tuning result: the winning configuration plus the full sweep for
/// diagnostics/benchmarks.
struct TunedCascade {
  CascadeOptions options;
  /// Winning shard count, to pass to the sharded CascadeKnn overload.
  size_t shards = 1;
  double cost = 0.0;
  std::vector<CascadeCandidate> sweep;
};

/// Knobs for the tuning sweep.
struct CascadeTunerOptions {
  /// Top-k the production workload will ask for.
  size_t k = 10;
  /// Candidate prefix depths. Empty: derived from the eigenvalue spectrum
  /// as the shortest prefixes capturing {25, 50, 75, 90}% of the eigenmass.
  std::vector<size_t> prefix_grid;
  /// Candidate refinement step sizes.
  std::vector<size_t> step_grid = {4, 8, 16, 32};
  /// Modeled bookkeeping cost of admitting one candidate into refinement,
  /// expressed in dimension accumulations.
  double candidate_overhead = 4.0;
  /// Candidate shard counts (DESIGN §3f). Empty: {1}, widened to {1, 2,
  /// executors} when `pool` offers real parallelism. Sharding never changes
  /// answers (CascadeKnn is bit-identical at any shard count) but shifts
  /// work: shard-local pruning does more refinements, spread over more
  /// executors — the sweep measures that trade instead of modeling it.
  std::vector<size_t> shard_grid;
  /// Pool the production workload will run on; also used to measure the
  /// sharded sweep points. Null: shards > 1 are charged full serial cost
  /// (they can only lose, and the sweep shows by how much).
  ThreadPool* pool = nullptr;
  /// Modeled per-query cost of each extra shard (merge + duplicated
  /// level-0 bookkeeping), in dimension accumulations. Keeps a 1-executor
  /// host from "winning" with shards it cannot actually run concurrently.
  double shard_overhead = 64.0;
};

class CascadeTuner {
 public:
  /// Modeled cost of one int8 dimension relative to one float dimension
  /// accumulation. The int8 scan moves 1 byte/dim against the float path's
  /// 8 and decodes with one integer multiply-add: on a bandwidth-bound scan
  /// it is worth ~1/8, on a compute-bound one ~1/2; 1/4 is the deliberate
  /// middle that keeps the tuner from over-favoring the tier on hosts where
  /// the scan fits in cache.
  static constexpr double kQuantizedDimCost = 0.25;

  /// Scores one configuration from its summed calibration stats: level −1
  /// work (quantized rows scanned, at kQuantizedDimCost per dimension of
  /// `dim`) plus level-0 work (one prefix_dim-deep accumulation per float
  /// bound) plus refinement work (dims_accumulated) plus per-candidate
  /// overhead, averaged per query. Deterministic — no wall clock.
  static double Cost(const CascadeStats& stats, size_t prefix_dim, size_t dim,
                     double candidate_overhead, size_t queries);

  /// Prefix depths derived from a spectrum (descending eigenvalues): the
  /// shortest prefixes capturing the given cumulative-energy fractions,
  /// deduplicated and clamped to [1, spectrum size].
  static std::vector<size_t> SpectrumPrefixes(
      std::span<const double> eigenvalues,
      std::span<const double> energy_fractions);

  /// Sweeps the grid over `calibration` (already-embedded query targets,
  /// each of store.dim() entries) and returns the cheapest configuration;
  /// ties break toward the smaller prefix, then the smaller step, then the
  /// unquantized variant. When the store carries its int8 companion, every
  /// grid point is measured with the quantized level −1 off and on — the
  /// sweep decides whether the tier pays for itself on this spectrum rather
  /// than assuming it. The store is only read; answers are never affected
  /// (CascadeKnn is exact for every configuration).
  static TunedCascade Tune(const EmbeddingStore& store,
                           std::span<const double> eigenvalues,
                           const std::vector<std::vector<double>>& calibration,
                           const CascadeTunerOptions& options = {});
};

}  // namespace fuzzydb

#endif  // FUZZYDB_IMAGE_CASCADE_TUNER_H_
