// Recursive-descent parser for the SQL-ish surface. Grammar:
//
//   statement  := SELECT TOP number FROM identifier WHERE expr
//                 [USING identifier] [WEIGHTS '(' number (',' number)* ')']
//                 [VIA identifier] [';']
//   expr       := and_expr (OR and_expr)*
//   and_expr   := unary (AND unary)*
//   unary      := NOT unary | '(' expr ')' | atom
//   atom       := identifier ('=' | '~') (string | number | identifier)
//
// '=' marks a traditional (0/1) predicate, '~' a graded similarity match;
// both become core atomic queries (the subsystem decides the semantics).
// USING names the combining rule for the top-level AND/OR (default min/max);
// WEIGHTS attaches a Fagin–Wimmers weighting to the top-level node, one
// weight per child (raw slider values, normalized automatically).
// VIA forces an algorithm: naive | fagin | ta | nra | filtered | shortcut.

#ifndef FUZZYDB_SQL_PARSER_H_
#define FUZZYDB_SQL_PARSER_H_

#include <optional>
#include <string>

#include "core/query.h"
#include "middleware/executor.h"

namespace fuzzydb {

/// A parsed SELECT statement, ready for execution.
struct SelectStatement {
  size_t k = 10;
  std::string collection;
  QueryPtr query;
  std::optional<Algorithm> via;
  /// True for EXPLAIN SELECT ...: plan, don't execute.
  bool explain = false;
};

/// Maps a rule name (min, max, product, lukasiewicz, hamacher, einstein,
/// avg, geomean, harmonic, median) to the rule; NotFound otherwise.
Result<ScoringRulePtr> RuleByName(const std::string& name);

/// Maps an algorithm name (naive, fagin, ta, nra, filtered, shortcut, auto)
/// to the enum; NotFound otherwise.
Result<Algorithm> AlgorithmByName(const std::string& name);

/// Parses one statement; errors carry source offsets.
Result<SelectStatement> ParseSelect(const std::string& source);

}  // namespace fuzzydb

#endif  // FUZZYDB_SQL_PARSER_H_
