#include "sql/parser.h"

#include <sstream>

#include "sql/lexer.h"

namespace fuzzydb {

Result<ScoringRulePtr> RuleByName(const std::string& name) {
  if (name == "min") return MinRule();
  if (name == "max") return MaxRule();
  if (name == "product") return TNormRule(TNormKind::kProduct);
  if (name == "lukasiewicz") return TNormRule(TNormKind::kLukasiewicz);
  if (name == "hamacher") return TNormRule(TNormKind::kHamacher);
  if (name == "einstein") return TNormRule(TNormKind::kEinstein);
  if (name == "avg") return ArithmeticMeanRule();
  if (name == "geomean") return GeometricMeanRule();
  if (name == "harmonic") return HarmonicMeanRule();
  if (name == "median") return MedianRule();
  return Status::NotFound("unknown scoring rule '" + name + "'");
}

Result<Algorithm> AlgorithmByName(const std::string& name) {
  if (name == "auto") return Algorithm::kAuto;
  if (name == "naive") return Algorithm::kNaive;
  if (name == "fagin") return Algorithm::kFagin;
  if (name == "ta") return Algorithm::kThreshold;
  if (name == "nra") return Algorithm::kNoRandomAccess;
  if (name == "ca") return Algorithm::kCombined;
  if (name == "filtered") return Algorithm::kFilteredSimulation;
  if (name == "shortcut") return Algorithm::kDisjunctionShortcut;
  return Status::NotFound("unknown algorithm '" + name + "'");
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> Parse() {
    SelectStatement stmt;
    if (Peek().type == TokenType::kExplain) {
      Advance();
      stmt.explain = true;
    }
    FUZZYDB_RETURN_NOT_OK(Expect(TokenType::kSelect));
    FUZZYDB_RETURN_NOT_OK(Expect(TokenType::kTop));
    Result<Token> k = Consume(TokenType::kNumber);
    if (!k.ok()) return k.status();
    if (k->number < 1.0 || k->number != static_cast<size_t>(k->number)) {
      return Error(*k, "TOP expects a positive integer");
    }
    stmt.k = static_cast<size_t>(k->number);
    FUZZYDB_RETURN_NOT_OK(Expect(TokenType::kFrom));
    Result<Token> coll = Consume(TokenType::kIdentifier);
    if (!coll.ok()) return coll.status();
    stmt.collection = coll->text;
    FUZZYDB_RETURN_NOT_OK(Expect(TokenType::kWhere));
    Result<QueryPtr> expr = ParseOr();
    if (!expr.ok()) return expr.status();
    stmt.query = *expr;

    std::optional<ScoringRulePtr> rule;
    std::optional<std::vector<double>> weights;
    bool owa = false;
    if (Peek().type == TokenType::kUsing) {
      Advance();
      Result<Token> name = Consume(TokenType::kIdentifier);
      if (!name.ok()) return name.status();
      if (name->text == "owa") {
        // USING owa WEIGHTS (w1, ..., wm): rank weights, not argument
        // weights — handled below instead of the Fagin–Wimmers transform.
        owa = true;
      } else {
        Result<ScoringRulePtr> r = RuleByName(name->text);
        if (!r.ok()) return Error(*name, r.status().message());
        rule = *r;
      }
    }
    if (Peek().type == TokenType::kWeights) {
      Advance();
      FUZZYDB_RETURN_NOT_OK(Expect(TokenType::kLeftParen));
      std::vector<double> raw;
      for (;;) {
        Result<Token> num = Consume(TokenType::kNumber);
        if (!num.ok()) return num.status();
        raw.push_back(num->number);
        if (Peek().type != TokenType::kComma) break;
        Advance();
      }
      FUZZYDB_RETURN_NOT_OK(Expect(TokenType::kRightParen));
      weights = std::move(raw);
    }
    if (Peek().type == TokenType::kVia) {
      Advance();
      Result<Token> name = Consume(TokenType::kIdentifier);
      if (!name.ok()) return name.status();
      Result<Algorithm> a = AlgorithmByName(name->text);
      if (!a.ok()) return Error(*name, a.status().message());
      stmt.via = *a;
    }
    if (Peek().type == TokenType::kSemicolon) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error(Peek(), "trailing input after statement");
    }

    // Apply USING / WEIGHTS to the top-level combination.
    if (rule.has_value() || weights.has_value() || owa) {
      Query::Kind kind = stmt.query->kind();
      if (kind != Query::Kind::kAnd && kind != Query::Kind::kOr) {
        return Status::InvalidArgument(
            "USING/WEIGHTS require a top-level AND or OR");
      }
      if (owa) {
        if (!weights.has_value()) {
          return Status::InvalidArgument("USING owa requires WEIGHTS (...)");
        }
        Result<Weighting> w = Weighting::FromSliders(std::move(*weights));
        if (!w.ok()) return w.status();
        if (w->size() != stmt.query->children().size()) {
          return Status::InvalidArgument(
              "owa needs one weight per combined subquery");
        }
        std::vector<QueryPtr> children = stmt.query->children();
        stmt.query = (kind == Query::Kind::kAnd)
                         ? Query::And(std::move(children), OwaRule(*w))
                         : Query::Or(std::move(children), OwaRule(*w));
        return stmt;
      }
      ScoringRulePtr base =
          rule.value_or(kind == Query::Kind::kAnd
                            ? ScoringRulePtr(MinRule())
                            : ScoringRulePtr(MaxRule()));
      std::vector<QueryPtr> children = stmt.query->children();
      if (weights.has_value()) {
        Result<Weighting> w = Weighting::FromSliders(std::move(*weights));
        if (!w.ok()) return w.status();
        Result<QueryPtr> rebuilt =
            (kind == Query::Kind::kAnd)
                ? Query::WeightedAnd(std::move(children), std::move(*w),
                                     std::move(base))
                : Query::WeightedOr(std::move(children), std::move(*w),
                                    std::move(base));
        if (!rebuilt.ok()) return rebuilt.status();
        stmt.query = *rebuilt;
      } else {
        stmt.query = (kind == Query::Kind::kAnd)
                         ? Query::And(std::move(children), std::move(base))
                         : Query::Or(std::move(children), std::move(base));
      }
    }
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Status Error(const Token& at, const std::string& message) const {
    std::ostringstream os;
    os << message << " (at offset " << at.position << ")";
    return Status::InvalidArgument(os.str());
  }

  Result<Token> Consume(TokenType type) {
    if (Peek().type != type) {
      return Error(Peek(), "expected " + TokenTypeName(type) + ", found " +
                               TokenTypeName(Peek().type));
    }
    Token t = Peek();
    Advance();
    return t;
  }

  Status Expect(TokenType type) {
    Result<Token> t = Consume(type);
    return t.ok() ? Status::OK() : t.status();
  }

  Result<QueryPtr> ParseOr() {
    Result<QueryPtr> first = ParseAnd();
    if (!first.ok()) return first;
    std::vector<QueryPtr> children{*first};
    while (Peek().type == TokenType::kOr) {
      Advance();
      Result<QueryPtr> next = ParseAnd();
      if (!next.ok()) return next;
      children.push_back(*next);
    }
    if (children.size() == 1) return children[0];
    return QueryPtr(Query::Or(std::move(children)));
  }

  Result<QueryPtr> ParseAnd() {
    Result<QueryPtr> first = ParseUnary();
    if (!first.ok()) return first;
    std::vector<QueryPtr> children{*first};
    while (Peek().type == TokenType::kAnd) {
      Advance();
      Result<QueryPtr> next = ParseUnary();
      if (!next.ok()) return next;
      children.push_back(*next);
    }
    if (children.size() == 1) return children[0];
    return QueryPtr(Query::And(std::move(children)));
  }

  Result<QueryPtr> ParseUnary() {
    if (Peek().type == TokenType::kNot) {
      Advance();
      Result<QueryPtr> child = ParseUnary();
      if (!child.ok()) return child;
      return QueryPtr(Query::Not(*child));
    }
    if (Peek().type == TokenType::kLeftParen) {
      Advance();
      Result<QueryPtr> inner = ParseOr();
      if (!inner.ok()) return inner;
      FUZZYDB_RETURN_NOT_OK(Expect(TokenType::kRightParen));
      return inner;
    }
    return ParseAtom();
  }

  Result<QueryPtr> ParseAtom() {
    Result<Token> attr = Consume(TokenType::kIdentifier);
    if (!attr.ok()) return attr.status();
    TokenType op = Peek().type;
    if (op != TokenType::kEquals && op != TokenType::kSimilar) {
      return Error(Peek(), "expected '=' or '~' after attribute");
    }
    Advance();
    const Token& target = Peek();
    std::string text;
    switch (target.type) {
      case TokenType::kString:
      case TokenType::kIdentifier:
      case TokenType::kNumber:
        text = target.text;
        break;
      default:
        return Error(target, "expected a target value");
    }
    Advance();
    return QueryPtr(Query::Atomic(attr->text, std::move(text)));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& source) {
  Result<std::vector<Token>> tokens = Lex(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.Parse();
}

}  // namespace fuzzydb
