// Glue from parsed statements to the executor: the end-to-end entry point a
// Garlic-style client would call.

#ifndef FUZZYDB_SQL_INTERPRETER_H_
#define FUZZYDB_SQL_INTERPRETER_H_

#include "catalog/catalog.h"
#include "middleware/optimizer.h"
#include "sql/parser.h"

namespace fuzzydb {

/// Parses and executes one SELECT statement against `catalog`. The
/// statement's VIA clause (when present) overrides options.algorithm.
/// Rejects EXPLAIN statements (use ExplainSelect).
Result<ExecutionResult> RunSelect(const std::string& source, Catalog* catalog,
                                  ExecutorOptions options = {});

/// Renders a result for console output: one "rank. id grade" line per item
/// plus a cost footer.
std::string FormatResult(const ExecutionResult& result);

/// Parses an `EXPLAIN SELECT ...` (the EXPLAIN keyword is optional here)
/// and returns the optimizer's plan choice under `model` without executing
/// anything. A VIA clause pins the plan, skipping the optimizer.
Result<PlanChoice> ExplainSelect(const std::string& source, Catalog* catalog,
                                 const CostModel& model = {});

/// Renders a plan choice: chosen algorithm plus every considered
/// alternative with its estimated charged cost.
std::string FormatPlan(const PlanChoice& choice);

}  // namespace fuzzydb

#endif  // FUZZYDB_SQL_INTERPRETER_H_
