#include "sql/lexer.h"

#include <cctype>
#include <unordered_map>

namespace fuzzydb {

std::string TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kSelect:
      return "SELECT";
    case TokenType::kExplain:
      return "EXPLAIN";
    case TokenType::kTop:
      return "TOP";
    case TokenType::kFrom:
      return "FROM";
    case TokenType::kWhere:
      return "WHERE";
    case TokenType::kAnd:
      return "AND";
    case TokenType::kOr:
      return "OR";
    case TokenType::kNot:
      return "NOT";
    case TokenType::kUsing:
      return "USING";
    case TokenType::kVia:
      return "VIA";
    case TokenType::kWeights:
      return "WEIGHTS";
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kString:
      return "string";
    case TokenType::kNumber:
      return "number";
    case TokenType::kLeftParen:
      return "'('";
    case TokenType::kRightParen:
      return "')'";
    case TokenType::kComma:
      return "','";
    case TokenType::kEquals:
      return "'='";
    case TokenType::kSimilar:
      return "'~'";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kEnd:
      return "end of input";
  }
  return "?";
}

namespace {

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

const std::unordered_map<std::string, TokenType>& Keywords() {
  static const auto* kMap = new std::unordered_map<std::string, TokenType>{
      {"SELECT", TokenType::kSelect}, {"TOP", TokenType::kTop},
      {"EXPLAIN", TokenType::kExplain},
      {"FROM", TokenType::kFrom},     {"WHERE", TokenType::kWhere},
      {"AND", TokenType::kAnd},       {"OR", TokenType::kOr},
      {"NOT", TokenType::kNot},       {"USING", TokenType::kUsing},
      {"VIA", TokenType::kVia},       {"WEIGHTS", TokenType::kWeights},
  };
  return *kMap;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& source) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = source.size();
  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      tok.text = source.substr(start, i - start);
      auto kw = Keywords().find(ToUpper(tok.text));
      tok.type = (kw != Keywords().end()) ? kw->second
                                          : TokenType::kIdentifier;
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t start = i;
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) ||
                       (source[i] == '.' && !seen_dot))) {
        seen_dot = seen_dot || source[i] == '.';
        ++i;
      }
      tok.type = TokenType::kNumber;
      tok.text = source.substr(start, i - start);
      tok.number = std::stod(tok.text);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (source[i] == '\'') {
          if (i + 1 < n && source[i + 1] == '\'') {  // '' escapes a quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text.push_back(source[i++]);
      }
      if (!closed) {
        return Status::InvalidArgument(
            "unterminated string literal at offset " +
            std::to_string(tok.position));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      out.push_back(std::move(tok));
      continue;
    }
    switch (c) {
      case '(':
        tok.type = TokenType::kLeftParen;
        break;
      case ')':
        tok.type = TokenType::kRightParen;
        break;
      case ',':
        tok.type = TokenType::kComma;
        break;
      case '=':
        tok.type = TokenType::kEquals;
        break;
      case '~':
        tok.type = TokenType::kSimilar;
        break;
      case ';':
        tok.type = TokenType::kSemicolon;
        break;
      default:
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at offset " +
                                       std::to_string(i));
    }
    ++i;
    out.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  out.push_back(end);
  return out;
}

}  // namespace fuzzydb
