#include "sql/interpreter.h"

#include <iomanip>
#include <sstream>

namespace fuzzydb {

Result<ExecutionResult> RunSelect(const std::string& source, Catalog* catalog,
                                  ExecutorOptions options) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  Result<SelectStatement> stmt = ParseSelect(source);
  if (!stmt.ok()) return stmt.status();
  if (stmt->explain) {
    return Status::InvalidArgument(
        "EXPLAIN statements are planned, not run; use ExplainSelect");
  }
  if (stmt->via.has_value()) options.algorithm = *stmt->via;
  return ExecuteTopK(stmt->query, catalog->AsResolver(), stmt->k, options);
}

Result<PlanChoice> ExplainSelect(const std::string& source, Catalog* catalog,
                                 const CostModel& model) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  Result<SelectStatement> stmt = ParseSelect(source);
  if (!stmt.ok()) return stmt.status();

  // The cost estimates need the database size; resolve the first atom.
  std::vector<const Query*> atoms;
  stmt->query->CollectAtoms(&atoms);
  if (atoms.empty()) return Status::InvalidArgument("query has no atoms");
  Result<GradedSource*> first =
      catalog->Resolve(atoms[0]->attribute(), atoms[0]->target());
  if (!first.ok()) return first.status();
  const size_t n = (*first)->Size();
  if (n == 0) return Status::FailedPrecondition("empty database");

  if (stmt->via.has_value()) {
    PlanChoice pinned;
    pinned.algorithm = *stmt->via;
    Result<double> est =
        EstimateCost(*stmt->via, n, std::max<size_t>(atoms.size(), 1),
                     stmt->k, model);
    pinned.estimated_cost = est.ok() ? *est : 0.0;
    pinned.considered.emplace_back(AlgorithmName(*stmt->via),
                                   pinned.estimated_cost);
    return pinned;
  }
  return ChoosePlan(*stmt->query, n, stmt->k, model);
}

std::string FormatPlan(const PlanChoice& choice) {
  std::ostringstream os;
  os << "plan: " << AlgorithmName(choice.algorithm)
     << "  (estimated cost " << std::fixed << std::setprecision(1)
     << choice.estimated_cost << ")\n";
  for (const auto& [name, cost] : choice.considered) {
    // CA is listed as "ca(h=N)"; match on the base name so the chosen
    // marker still lands on it.
    os << "  considered " << std::setw(12) << std::left << name
       << std::right << "  est " << std::setprecision(1) << cost
       << (ConsideredBaseName(name) == AlgorithmName(choice.algorithm)
               ? "   <= chosen"
               : "")
       << "\n";
  }
  return os.str();
}

std::string FormatResult(const ExecutionResult& result) {
  std::ostringstream os;
  size_t rank = 1;
  for (const GradedObject& g : result.topk.items) {
    os << std::setw(3) << rank++ << ". object " << std::setw(8) << g.id
       << "  grade " << std::fixed << std::setprecision(4) << g.grade << "\n";
  }
  os << "-- algorithm: " << AlgorithmName(result.algorithm_used)
     << ", sorted accesses: " << result.topk.cost.sorted
     << ", random accesses: " << result.topk.cost.random
     << ", total cost: " << result.topk.cost.total() << "\n";
  return os.str();
}

}  // namespace fuzzydb
