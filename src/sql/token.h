// Tokens for the SQL-ish query surface (paper §6 notes queries "could
// possibly be written in an SQL-like form", as Garlic did in [WHTB98]).

#ifndef FUZZYDB_SQL_TOKEN_H_
#define FUZZYDB_SQL_TOKEN_H_

#include <string>

namespace fuzzydb {

enum class TokenType {
  // Keywords (case-insensitive in the source text).
  kSelect,
  kExplain,
  kTop,
  kFrom,
  kWhere,
  kAnd,
  kOr,
  kNot,
  kUsing,
  kVia,
  kWeights,
  // Literals and names.
  kIdentifier,  ///< bare name: attribute or collection
  kString,      ///< '...'-quoted, '' escapes a quote
  kNumber,      ///< integer or decimal
  // Punctuation.
  kLeftParen,
  kRightParen,
  kComma,
  kEquals,   ///< '='  (exact match on a traditional attribute)
  kSimilar,  ///< '~'  (graded similarity match)
  kSemicolon,
  kEnd,
};

/// Token display name for error messages.
std::string TokenTypeName(TokenType type);

struct Token {
  TokenType type = TokenType::kEnd;
  /// Identifier/string payload (strings are unquoted and unescaped).
  std::string text;
  /// Numeric payload for kNumber.
  double number = 0.0;
  /// 0-based offset in the source, for error messages.
  size_t position = 0;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_SQL_TOKEN_H_
