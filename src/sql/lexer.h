// Hand-written lexer for the SQL-ish surface.

#ifndef FUZZYDB_SQL_LEXER_H_
#define FUZZYDB_SQL_LEXER_H_

#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace fuzzydb {

/// Tokenizes `source`; the final token is always kEnd. Errors carry the
/// offending position.
Result<std::vector<Token>> Lex(const std::string& source);

}  // namespace fuzzydb

#endif  // FUZZYDB_SQL_LEXER_H_
