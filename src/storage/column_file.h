// The on-disk column-file format for embedding rows (DESIGN §3k).
//
// One file = one embedding column: N fixed-stride rows of doubles, packed
// into fixed-size pages that rows never straddle, behind a checksummed
// header. The layout promise is exact: a row's bytes on disk are the same
// doubles, at the same stride (EmbeddingStore::RowStride — whole cache
// lines), as the RAM-resident store's rows, so any kernel that runs over a
// pinned page computes bit-identical results to the in-memory scan.
//
//   [ header block: FileHeader + eigenbasis metadata, FNV-1a checksummed ]
//   [ data pages:   page p holds rows [p*rpp, (p+1)*rpp), zero-padded     ]
//   [ quantized section (optional): scales | residuals | int8 codes       ]
//
// The header carries dim / stride / count / page geometry, a store-version
// stamp (the serving layer's cache-invalidation hook), and the eigenbasis
// metadata (the eigenvalues the embedding was projected with) so a reader
// can refuse a file that was built against a different spectrum. The
// quantized section persists the int8 companion tier (DESIGN §3g) built
// during ingestion, so Open() can load the RAM-resident level −1 filter
// with one sequential read instead of re-quantizing 2 passes over the data.
//
// Error model: every malformed input is a Status, never an abort —
//   InvalidArgument  not a column file at all (bad magic), or version skew;
//   DataLoss         the file *claims* to be ours but its bytes are wrong:
//                    checksum mismatch, short read, truncated section.

#ifndef FUZZYDB_STORAGE_COLUMN_FILE_H_
#define FUZZYDB_STORAGE_COLUMN_FILE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "image/quantized_store.h"

namespace fuzzydb {
namespace storage {

/// FNV-1a 64-bit over a byte range — the header/section checksum. Chosen
/// for zero dependencies and total determinism; this guards against
/// truncation and bit rot, not adversaries. `state` is the running hash:
/// pass a previous result to checksum a section streamed in chunks.
inline constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ull;
uint64_t Fnv1a64(const void* data, size_t size,
                 uint64_t state = kFnvOffsetBasis);

/// Fixed-layout header written at offset 0. Trivially copyable; all fields
/// little-endian (the only byte order this toolchain targets — Open()
/// rejects a byte-swapped magic as "not a column file").
struct FileHeader {
  static constexpr char kMagic[8] = {'F', 'Z', 'D', 'B', 'C', 'O', 'L', '1'};
  static constexpr uint32_t kVersion = 1;

  char magic[8];
  uint32_t version;
  uint32_t header_bytes;  ///< Header struct + metadata doubles, checksummed.
  uint64_t count;         ///< Rows stored.
  uint32_t dim;           ///< Doubles of payload per row.
  uint32_t stride;        ///< Doubles between row starts (cache-line padded).
  uint32_t page_bytes;    ///< Data page size; multiple of 64.
  uint32_t rows_per_page;
  uint64_t data_offset;   ///< First data page; multiple of page_bytes.
  uint64_t store_version; ///< Generation stamp (cache invalidation hook).
  uint32_t meta_doubles;  ///< Eigenbasis metadata entries after the header.
  uint32_t quantized;     ///< 1 when the quantized section is present.
  uint64_t qsection_offset;
  uint64_t qsection_bytes;
  uint64_t qsection_checksum;
  uint64_t checksum;      ///< FNV-1a of header+metadata with this field 0.
};
static_assert(sizeof(FileHeader) == 96, "on-disk layout is part of the API");

/// Geometry/metadata options for writing a column file.
struct ColumnFileOptions {
  /// Data page size in bytes. Must be a multiple of 64 and hold at least
  /// one full row (stride(dim) * 8 bytes).
  size_t page_bytes = 64 * 1024;
  /// Generation stamp recorded in the header; bump when re-ingesting so
  /// serving-layer caches keyed on the old version go stale.
  uint64_t store_version = 1;
  /// Eigenbasis metadata (typically the eigenvalues of B = P A P): stored
  /// checksummed in the header block so a reader can detect a file built
  /// against a different spectrum. May also be supplied late via
  /// ColumnFileWriter::SetMetadata — see metadata_capacity.
  std::vector<double> metadata;
  /// Room reserved in the header block for metadata set after Create()
  /// (streaming ingest learns the spectrum mid-generation, after the
  /// writer exists). The effective reservation is
  /// max(metadata.size(), metadata_capacity) doubles.
  size_t metadata_capacity = 0;
  /// Build and persist the int8 quantized companion tier during Finish().
  /// Costs one re-read of the data section (codes need the final scales,
  /// which are only known after the last row).
  bool build_quantized = true;
};

/// Streaming writer: Create → AppendRow × N → Finish. Peak memory is one
/// page plus the running per-block scale maxima — never the full matrix —
/// which is what lets ingestion run at N far beyond RAM.
class ColumnFileWriter {
 public:
  static Result<std::unique_ptr<ColumnFileWriter>> Create(
      const std::string& path, size_t dim, ColumnFileOptions options = {});

  ~ColumnFileWriter();
  ColumnFileWriter(const ColumnFileWriter&) = delete;
  ColumnFileWriter& operator=(const ColumnFileWriter&) = delete;

  /// Appends one row of exactly dim doubles (the writer pads to stride).
  Status AppendRow(std::span<const double> row);

  /// Replaces the header metadata; any time before Finish(), at most the
  /// reserved capacity (see ColumnFileOptions::metadata_capacity).
  Status SetMetadata(std::vector<double> metadata);

  /// Flushes the last page, writes the quantized section (re-reading the
  /// data section it just wrote), then the checksummed header. The file is
  /// invalid until Finish returns OK. Idempotent error: any failure leaves
  /// a file Open() will reject.
  Status Finish();

  size_t rows_written() const { return rows_; }

 private:
  ColumnFileWriter() = default;

  Status FlushPage();
  Status WriteQuantizedSection();

  int fd_ = -1;
  std::string path_;
  ColumnFileOptions options_;
  size_t dim_ = 0;
  size_t stride_ = 0;  // doubles
  size_t rows_per_page_ = 0;
  size_t rows_ = 0;
  uint64_t data_offset_ = 0;
  uint64_t next_page_offset_ = 0;
  std::vector<double> page_;     // one page of doubles, being filled
  size_t rows_in_page_ = 0;
  std::vector<double> scale_max_;  // running per-block |x| maxima
  size_t meta_capacity_ = 0;       // doubles reserved in the header block
  uint64_t qsection_offset_ = 0;
  uint64_t qsection_bytes_ = 0;
  uint64_t qsection_checksum_ = 0;
  bool finished_ = false;
};

/// Read-only view of a finished column file: validated header + positioned
/// page reads. Thread-safe after Open (pread only); Close() is not — call
/// it only once no reads are in flight (the buffer pool above serializes
/// this).
class ColumnFile {
 public:
  static Result<std::shared_ptr<ColumnFile>> Open(const std::string& path);

  ~ColumnFile();
  ColumnFile(const ColumnFile&) = delete;
  ColumnFile& operator=(const ColumnFile&) = delete;

  const FileHeader& header() const { return header_; }
  size_t count() const { return header_.count; }
  size_t dim() const { return header_.dim; }
  size_t stride() const { return header_.stride; }
  size_t page_bytes() const { return header_.page_bytes; }
  size_t rows_per_page() const { return header_.rows_per_page; }
  size_t num_pages() const { return num_pages_; }
  uint64_t store_version() const { return header_.store_version; }
  /// Eigenbasis metadata recorded at write time (checksummed).
  const std::vector<double>& metadata() const { return metadata_; }

  /// Reads data page `page` (whole page, zero-padded tail) into `dest`
  /// (exactly page_bytes). DataLoss on a short read — the header promised
  /// those bytes. FailedPrecondition after Close().
  Status ReadPage(uint64_t page, std::span<char> dest) const;

  /// Advises the kernel that pages [page, page + pages) will be needed
  /// soon (readahead for sequential scans). Best-effort; never fails.
  void Advise(uint64_t page, uint64_t pages) const;

  /// Loads the persisted int8 quantized tier (empty store when the file
  /// was written without one). One sequential read, checksummed.
  Result<QuantizedStore> LoadQuantized() const;

  /// Closes the descriptor; subsequent ReadPage calls return
  /// FailedPrecondition. Idempotent.
  void Close();

 private:
  ColumnFile() = default;

  int fd_ = -1;
  FileHeader header_{};
  std::vector<double> metadata_;
  uint64_t num_pages_ = 0;
};

}  // namespace storage
}  // namespace fuzzydb

#endif  // FUZZYDB_STORAGE_COLUMN_FILE_H_
