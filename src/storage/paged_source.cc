#include "storage/paged_source.h"

#include <algorithm>

#include "image/image_store.h"

namespace fuzzydb {
namespace storage {

Result<PagedColorSource> PagedColorSource::Create(
    const PagedEmbeddingStore* store, std::span<const double> target_embedding,
    double max_distance, std::string label, std::vector<ObjectId> ids) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  if (target_embedding.size() != store->dim()) {
    return Status::InvalidArgument("target embedding has wrong dimension");
  }
  if (!(max_distance > 0.0)) {
    return Status::InvalidArgument("max_distance must be positive");
  }
  if (!ids.empty() && ids.size() != store->size()) {
    return Status::InvalidArgument("ids size disagrees with store size");
  }

  PagedColorSource src;
  src.label_ = std::move(label);
  // One sequential paged pass over the rows (the only disk the source ever
  // costs), sharded across the shared pool like QbicColorSource's pass.
  std::vector<double> distances(store->size());
  FUZZYDB_RETURN_NOT_OK(store->BatchDistances(target_embedding, distances,
                                              ThreadPool::Shared()));
  src.sorted_.reserve(store->size());
  if (ids.empty()) {
    src.grades_by_row_.resize(store->size());
    for (size_t i = 0; i < store->size(); ++i) {
      const double grade = GradeFromDistance(distances[i], max_distance);
      src.grades_by_row_[i] = grade;
      src.sorted_.push_back({static_cast<ObjectId>(i), grade});
    }
  } else {
    src.grades_.reserve(store->size());
    for (size_t i = 0; i < store->size(); ++i) {
      const double grade = GradeFromDistance(distances[i], max_distance);
      src.sorted_.push_back({ids[i], grade});
      src.grades_.emplace(ids[i], grade);
    }
  }
  std::sort(src.sorted_.begin(), src.sorted_.end(), GradeDescending);
  return src;
}

std::optional<GradedObject> PagedColorSource::NextSorted() {
  if (cursor_ >= sorted_.size()) return std::nullopt;
  return sorted_[cursor_++];
}

double PagedColorSource::RandomAccess(ObjectId id) {
  if (!grades_by_row_.empty()) {
    return id < grades_by_row_.size() ? grades_by_row_[id] : 0.0;
  }
  auto it = grades_.find(id);
  return it == grades_.end() ? 0.0 : it->second;
}

std::vector<GradedObject> PagedColorSource::AtLeast(double threshold) {
  // Grade-descending list: the qualifying prefix ends at the partition
  // point (same access shape as the QBIC sources).
  auto end = std::partition_point(
      sorted_.begin(), sorted_.end(),
      [threshold](const GradedObject& g) { return g.grade >= threshold; });
  return {sorted_.begin(), end};
}

}  // namespace storage
}  // namespace fuzzydb
