// A fixed-capacity page cache between the query kernels and a column file
// (DESIGN §3k).
//
// The pool owns `capacity_pages` frames of `page_bytes` each — that product
// is the entire file-data memory budget, fixed at construction; everything
// else about the file stays on disk. Fetch(page) returns a pinned
// PageHandle: the frame cannot be evicted while any handle to it lives,
// and the handle's bytes stay valid even after the pool (or the store that
// owns it) is closed or destroyed, because handles share ownership of the
// pool's state. Releasing the last handle merely unpins; the page stays
// resident until the clock sweep reclaims its frame.
//
// Eviction is clock (second chance): each frame has a reference bit set on
// every touch; the sweep clears set bits and evicts the first unpinned,
// unreferenced frame. Clock approximates LRU with O(1) state per frame and
// no list splicing in the hot path.
//
// Concurrency protocol (one mutex, everything GUARDED_BY it):
//   - a miss marks the chosen frame `loading`, then drops the lock for the
//     disk read — I/O never runs under the mutex;
//   - a concurrent Fetch of the same page finds the loading frame and
//     waits on the CondVar; of a different page, it picks its own victim;
//   - `loading` frames are invisible to the clock sweep, and a failed load
//     unmaps the page and wakes waiters so they can retry or fail;
//   - Close() invalidates the fetcher and waits out in-flight loads.
// When every frame is pinned or loading, Fetch returns ResourceExhausted
// instead of deadlocking — the caller sized the pool too small for its
// working set, and the kernels treat that as a hard error, not a wait.

#ifndef FUZZYDB_STORAGE_BUFFER_POOL_H_
#define FUZZYDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "common/status.h"

namespace fuzzydb {
namespace storage {

namespace internal {
struct PoolState;  // defined in buffer_pool.cc; annotated GUARDED_BY there
}

/// Counters for one pool, monotone since construction. Read via
/// BufferPool::stats(); per-query deltas are snapshot differences.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes_read_disk = 0;
};

struct BufferPoolOptions {
  size_t page_bytes = 64 * 1024;
  size_t capacity_pages = 64;
};

/// A pinned reference to one cached page. Move-only RAII: destruction (or
/// move-assignment over) unpins the frame. The bytes are immutable and
/// outlive Close()/destruction of the pool — the handle co-owns the state.
class PageHandle {
 public:
  PageHandle() = default;
  ~PageHandle();
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return state_ != nullptr; }
  uint64_t page() const { return page_; }
  /// The page's bytes (page_bytes of them), 64-byte aligned.
  const char* data() const { return data_; }
  size_t size() const { return size_; }
  /// The page viewed as doubles — what the embedding kernels consume.
  const double* doubles() const {
    return reinterpret_cast<const double*>(data_);
  }

  /// Explicit early unpin (what the destructor does).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(std::shared_ptr<internal::PoolState> state, size_t frame,
             uint64_t page, const char* data, size_t size)
      : state_(std::move(state)), frame_(frame), page_(page), data_(data),
        size_(size) {}

  std::shared_ptr<internal::PoolState> state_;
  size_t frame_ = 0;
  uint64_t page_ = 0;
  const char* data_ = nullptr;
  size_t size_ = 0;
};

class BufferPool {
 public:
  /// Reads one page's bytes from backing storage into `dest` (exactly
  /// page_bytes). Called with no pool lock held; must be thread-safe.
  using Fetcher = std::function<Status(uint64_t page, std::span<char> dest)>;

  BufferPool(BufferPoolOptions options, Fetcher fetcher);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  size_t page_bytes() const;
  size_t capacity_pages() const;

  /// Returns a pinned handle to `page`, reading it from backing storage on
  /// a miss. ResourceExhausted when every frame is pinned or loading;
  /// FailedPrecondition after Close(); otherwise the fetcher's error.
  Result<PageHandle> Fetch(uint64_t page);

  /// Snapshot of the monotone counters.
  BufferPoolStats stats() const;

  /// Pages currently resident (diagnostic; racy by nature).
  size_t resident_pages() const;

  /// Invalidates the fetcher and waits for in-flight loads to finish.
  /// Subsequent Fetch calls fail FailedPrecondition; outstanding handles
  /// remain valid. Idempotent.
  void Close();

 private:
  std::shared_ptr<internal::PoolState> state_;
};

}  // namespace storage
}  // namespace fuzzydb

#endif  // FUZZYDB_STORAGE_BUFFER_POOL_H_
