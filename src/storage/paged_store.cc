#include "storage/paged_store.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/squared_distance.h"

namespace fuzzydb {
namespace storage {

namespace {

using knn_internal::KeepKSmallest;
using knn_internal::ResolveShards;
using knn_internal::RunShards;
using knn_internal::ToOutput;

constexpr uint64_t kNoPage = ~uint64_t{0};

// The paged RowAccessor (see image/knn_kernel.h): holds one pinned page at
// a time and swaps pins on page crossings. One instance per shard, one
// thread each; the pool underneath is what's shared.
class PagedRows {
 public:
  PagedRows(const ColumnFile& file, BufferPool& pool, size_t readahead)
      : file_(file), pool_(pool), rows_per_page_(file.rows_per_page()),
        stride_(file.stride()), readahead_(readahead) {}

  const double* Acquire(size_t i) {
    const uint64_t page = i / rows_per_page_;
    if (page != current_page_) {
      if (readahead_ > 0 &&
          (current_page_ == kNoPage || page % readahead_ == 0)) {
        // Advice, not I/O: the kernel may prefetch into its own page cache;
        // the pool's budget is untouched.
        file_.Advise(page, readahead_);
      }
      Result<PageHandle> fetched = pool_.Fetch(page);
      if (!fetched.ok()) {
        status_ = fetched.status();
        return nullptr;
      }
      handle_ = std::move(fetched).value();
      current_page_ = page;
    }
    return handle_.doubles() + (i - page * rows_per_page_) * stride_;
  }

  /// The error that made Acquire return nullptr (OK until then).
  const Status& status() const { return status_; }

 private:
  const ColumnFile& file_;
  BufferPool& pool_;
  const size_t rows_per_page_;
  const size_t stride_;
  const size_t readahead_;
  uint64_t current_page_ = kNoPage;
  PageHandle handle_;
  Status status_;
};

// First non-OK status in shard order — deterministic, unlike first-to-fail.
Status FirstError(const std::vector<Status>& per_shard) {
  for (const Status& s : per_shard) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<PagedEmbeddingStore>> PagedEmbeddingStore::Open(
    const std::string& path, PagedStoreOptions options) {
  auto opened = ColumnFile::Open(path);
  if (!opened.ok()) return opened.status();

  auto store = std::unique_ptr<PagedEmbeddingStore>(new PagedEmbeddingStore());
  store->file_ = std::move(opened).value();
  store->options_ = options;

  if (options.load_quantized) {
    auto quantized = store->file_->LoadQuantized();
    if (!quantized.ok()) return quantized.status();
    store->quantized_ = std::move(quantized).value();
  }

  BufferPoolOptions pool_options;
  pool_options.page_bytes = store->file_->page_bytes();
  pool_options.capacity_pages =
      std::max<size_t>(1, options.pool_bytes / pool_options.page_bytes);
  // The fetcher shares ownership of the file: a pool load that is in
  // flight when the store is destroyed still has a live descriptor.
  std::shared_ptr<ColumnFile> file = store->file_;
  store->pool_ = std::make_unique<BufferPool>(
      pool_options, [file](uint64_t page, std::span<char> dest) {
        return file->ReadPage(page, dest);
      });
  return store;
}

void PagedEmbeddingStore::Close() {
  if (pool_ != nullptr) pool_->Close();
  if (file_ != nullptr) file_->Close();
}

Result<double> PagedEmbeddingStore::Distance(std::span<const double> target,
                                             size_t i) const {
  assert(target.size() == dim());
  if (i >= size()) return Status::OutOfRange("row index past store size");
  PagedRows rows(*file_, *pool_, /*readahead=*/0);
  const double* row = rows.Acquire(i);
  if (row == nullptr) return rows.status();
  return std::sqrt(SquaredDistance(row, target.data(), dim()));
}

Status PagedEmbeddingStore::BatchDistances(std::span<const double> target,
                                           std::span<double> out) const {
  return BatchDistances(target, out, /*pool=*/nullptr, /*shards=*/1);
}

Status PagedEmbeddingStore::BatchDistances(std::span<const double> target,
                                           std::span<double> out,
                                           ThreadPool* pool,
                                           size_t shards) const {
  assert(target.size() == dim() && out.size() == size());
  const double* FUZZYDB_RESTRICT t = target.data();
  const size_t d = dim();
  const std::vector<ShardRange> ranges =
      MakeShards(size(), ResolveShards(shards, pool, size()));
  std::vector<Status> errors(ranges.size());
  RunShards(pool, ranges.size(), [&](size_t s) {
    PagedRows rows(*file_, *pool_, options_.readahead_pages);
    for (size_t i = ranges[s].begin; i < ranges[s].end; ++i) {
      const double* FUZZYDB_RESTRICT row = rows.Acquire(i);
      if (row == nullptr) {
        errors[s] = rows.status();
        return;
      }
      out[i] = std::sqrt(SquaredDistance(row, t, d));
    }
  });
  return FirstError(errors);
}

Result<std::vector<std::pair<size_t, double>>> PagedEmbeddingStore::ExactKnn(
    std::span<const double> target, size_t k) const {
  return ExactKnn(target, k, /*pool=*/nullptr, /*shards=*/1);
}

Result<std::vector<std::pair<size_t, double>>> PagedEmbeddingStore::ExactKnn(
    std::span<const double> target, size_t k, ThreadPool* pool,
    size_t shards) const {
  if (k == 0 || size() == 0) return std::vector<std::pair<size_t, double>>{};
  k = std::min(k, size());
  assert(target.size() == dim());

  const std::vector<ShardRange> ranges =
      MakeShards(size(), ResolveShards(shards, pool, size()));
  std::vector<std::vector<std::pair<double, size_t>>> local(ranges.size());
  std::vector<Status> errors(ranges.size());
  RunShards(pool, ranges.size(), [&](size_t s) {
    PagedRows rows(*file_, *pool_, options_.readahead_pages);
    if (!knn_internal::ExactKnnShard(rows, target.data(), dim(), k, ranges[s],
                                     &local[s])) {
      errors[s] = rows.status();
    }
  });
  FUZZYDB_RETURN_NOT_OK(FirstError(errors));

  std::vector<std::pair<double, size_t>> merged;
  merged.reserve(ranges.size() * k);
  for (const auto& mine : local) {
    merged.insert(merged.end(), mine.begin(), mine.end());
  }
  KeepKSmallest(&merged, k);
  return ToOutput(std::move(merged));
}

Result<std::vector<std::pair<size_t, double>>> PagedEmbeddingStore::CascadeKnn(
    std::span<const double> target, size_t k, const CascadeOptions& options,
    CascadeStats* stats) const {
  return CascadeKnn(target, k, options, stats, /*pool=*/nullptr, /*shards=*/1);
}

Result<std::vector<std::pair<size_t, double>>> PagedEmbeddingStore::CascadeKnn(
    std::span<const double> target, size_t k, const CascadeOptions& options,
    CascadeStats* stats, ThreadPool* pool, size_t shards) const {
  if (k == 0 || size() == 0) return std::vector<std::pair<size_t, double>>{};
  k = std::min(k, size());
  assert(target.size() == dim());

  const QuantizedStore* qs =
      options.use_quantized && has_quantized() ? &quantized_ : nullptr;
  QuantizedStore::EncodedQuery qquery;
  if (qs != nullptr) qquery = qs->EncodeQuery(target);

  const BufferPoolStats before = pool_->stats();

  const std::vector<ShardRange> ranges =
      MakeShards(size(), ResolveShards(shards, pool, size()));
  std::vector<std::vector<std::pair<double, size_t>>> local(ranges.size());
  std::vector<CascadeStats> local_stats(ranges.size());
  std::vector<Status> errors(ranges.size());
  RunShards(pool, ranges.size(), [&](size_t s) {
    PagedRows rows(*file_, *pool_, options_.readahead_pages);
    if (!knn_internal::CascadeShard(rows, target.data(), dim(), k, options, qs,
                                    qs != nullptr ? &qquery : nullptr,
                                    ranges[s], &local[s], &local_stats[s])) {
      errors[s] = rows.status();
    }
  });
  FUZZYDB_RETURN_NOT_OK(FirstError(errors));

  std::vector<std::pair<double, size_t>> merged;
  merged.reserve(ranges.size() * k);
  for (const auto& mine : local) {
    merged.insert(merged.end(), mine.begin(), mine.end());
  }
  KeepKSmallest(&merged, k);
  if (stats != nullptr) {
    for (const CascadeStats& ls : local_stats) {
      stats->Absorb(ls);
    }
    const BufferPoolStats after = pool_->stats();
    stats->bytes_read_disk += after.bytes_read_disk - before.bytes_read_disk;
    stats->buffer_pool_hits += after.hits - before.hits;
    stats->buffer_pool_misses += after.misses - before.misses;
    stats->buffer_pool_evictions += after.evictions - before.evictions;
  }
  return ToOutput(std::move(merged));
}

Result<EmbeddingStore> PagedEmbeddingStore::LoadToMemory() const {
  EmbeddingStore store(size(), dim());
  // Page-by-page sequential copy through a private buffer, bypassing the
  // pool (a one-shot full scan would only churn its frames).
  std::vector<char> page(file_->page_bytes());
  const size_t rpp = file_->rows_per_page();
  const size_t row_bytes = stride() * sizeof(double);
  for (uint64_t p = 0; p < file_->num_pages(); ++p) {
    file_->Advise(p + 1, options_.readahead_pages);
    FUZZYDB_RETURN_NOT_OK(ReadPage(p, page));
    const size_t begin = p * rpp;
    const size_t n = std::min(rpp, size() - begin);
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(store.MutableRow(begin + i).data(),
                  page.data() + i * row_bytes, dim() * sizeof(double));
    }
  }
  store.BuildQuantized();
  return store;
}

Status PagedEmbeddingStore::ReadPage(uint64_t page,
                                     std::span<char> dest) const {
  return file_->ReadPage(page, dest);
}

}  // namespace storage
}  // namespace fuzzydb
