// Streaming ingestion into a column file (DESIGN §3k): generate → embed →
// write, one row at a time, never materializing the float matrix.
//
// This is the out-of-core half of ImageStore::GenerateStreaming. Peak
// memory during ingestion is one image record, one embedding row, one
// file page, and the running quantization maxima — constant in N. The
// writer's Finish() then makes one sequential re-read pass over the data
// it just wrote to encode the int8 tier (codes need the final scales),
// so total ingest I/O is: write the data once, read it once, write the
// (8x smaller) quantized section once.

#ifndef FUZZYDB_STORAGE_INGEST_H_
#define FUZZYDB_STORAGE_INGEST_H_

#include <string>

#include "common/status.h"
#include "image/image_store.h"
#include "storage/column_file.h"

namespace fuzzydb {
namespace storage {

/// What a streamed ingest leaves in RAM: the palette machinery needed to
/// embed query targets against the file later. The rows themselves are on
/// disk only.
struct IngestedCollection {
  Palette palette;
  QuadraticFormDistance qfd;
  size_t rows = 0;
};

/// Generates the synthetic collection of `options` (same seed → same
/// records and bit-equal embeddings as ImageStore::Generate) and streams
/// its embedding rows into a column file at `path`. The file's eigenbasis
/// metadata is stamped with the palette's eigen spectrum.
/// `file_options.metadata` is overwritten; its other fields are honored.
Result<IngestedCollection> IngestGeneratedCollection(
    const ImageStoreOptions& options, const std::string& path,
    ColumnFileOptions file_options = {});

}  // namespace storage
}  // namespace fuzzydb

#endif  // FUZZYDB_STORAGE_INGEST_H_
