#include "storage/ingest.h"

#include <memory>
#include <utility>

namespace fuzzydb {
namespace storage {

Result<IngestedCollection> IngestGeneratedCollection(
    const ImageStoreOptions& options, const std::string& path,
    ColumnFileOptions file_options) {
  // The eigen spectrum (one double per palette bin) is only known once
  // generation has built the palette, which happens after the writer must
  // exist — so reserve its room now and stamp it before Finish().
  file_options.metadata.clear();
  file_options.metadata_capacity = options.palette_size;
  Result<std::unique_ptr<ColumnFileWriter>> created =
      ColumnFileWriter::Create(path, options.palette_size, file_options);
  if (!created.ok()) return created.status();
  std::unique_ptr<ColumnFileWriter> writer = std::move(created).value();

  Result<StreamedCollection> streamed = ImageStore::GenerateStreaming(
      options,
      [&writer](const ImageRecord& rec, std::span<const double> embedding) {
        // The record (shape, texture, histogram) is a generation
        // by-product here: only the embedding row persists. A real-image
        // pipeline would archive records elsewhere; the column file is the
        // query-serving artifact.
        (void)rec;
        return writer->AppendRow(embedding);
      });
  if (!streamed.ok()) return streamed.status();

  FUZZYDB_RETURN_NOT_OK(writer->SetMetadata(streamed->qfd.eigenvalues()));
  FUZZYDB_RETURN_NOT_OK(writer->Finish());

  IngestedCollection out;
  out.palette = std::move(streamed->palette);
  out.qfd = std::move(streamed->qfd);
  out.rows = streamed->count;
  return out;
}

}  // namespace storage
}  // namespace fuzzydb
