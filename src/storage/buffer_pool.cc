#include "storage/buffer_pool.h"

#include <vector>
#include <unordered_map>

#include "common/aligned_buffer.h"
#include "common/sync.h"

namespace fuzzydb {
namespace storage {
namespace internal {

namespace {
constexpr uint64_t kNoPage = ~uint64_t{0};
}

// One cache frame. The data buffer is allocated on first use, so a pool
// sized for the worst case costs only slots until pages actually land.
struct Frame {
  uint64_t page = kNoPage;
  uint32_t pins = 0;
  bool loading = false;
  bool ref = false;  // clock second-chance bit
  AlignedArray<char> data;
};

// All pool state behind one mutex, held by shared_ptr so PageHandles keep
// the frames (and their bytes) alive after the pool itself is gone.
struct PoolState {
  explicit PoolState(BufferPoolOptions opts, BufferPool::Fetcher f)
      : options(opts), fetcher(std::move(f)), frames(opts.capacity_pages) {}

  const BufferPoolOptions options;

  Mutex mu;
  CondVar cv;  // signalled when a load finishes (ok or not) — waiters retry
  BufferPool::Fetcher fetcher GUARDED_BY(mu);
  std::vector<Frame> frames GUARDED_BY(mu);
  std::unordered_map<uint64_t, size_t> table GUARDED_BY(mu);  // page -> frame
  size_t clock_hand GUARDED_BY(mu) = 0;
  size_t loads_in_flight GUARDED_BY(mu) = 0;
  BufferPoolStats stats GUARDED_BY(mu);
  bool closed GUARDED_BY(mu) = false;

  // Clock sweep: at most two full revolutions (the first clears ref bits,
  // the second must then find any unpinned frame). Returns the frame index
  // or capacity when everything is pinned or loading.
  size_t FindVictim() REQUIRES(mu) {
    const size_t n = frames.size();
    for (size_t step = 0; step < 2 * n; ++step) {
      Frame& f = frames[clock_hand];
      const size_t idx = clock_hand;
      clock_hand = (clock_hand + 1) % n;
      if (f.pins > 0 || f.loading) continue;
      if (f.ref) {
        f.ref = false;
        continue;
      }
      return idx;
    }
    return n;
  }

  void Unpin(size_t frame) {
    MutexLock lock(mu);
    --frames[frame].pins;
  }
};

}  // namespace internal

using internal::kNoPage;
using internal::PoolState;

// ---------------------------------------------------------------------------
// PageHandle

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& other) noexcept
    : state_(std::move(other.state_)), frame_(other.frame_),
      page_(other.page_), data_(other.data_), size_(other.size_) {
  other.state_.reset();
  other.data_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    state_ = std::move(other.state_);
    frame_ = other.frame_;
    page_ = other.page_;
    data_ = other.data_;
    size_ = other.size_;
    other.state_.reset();
    other.data_ = nullptr;
  }
  return *this;
}

void PageHandle::Release() {
  if (state_ != nullptr) {
    state_->Unpin(frame_);
    state_.reset();
    data_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// BufferPool

BufferPool::BufferPool(BufferPoolOptions options, Fetcher fetcher)
    : state_(std::make_shared<PoolState>(options, std::move(fetcher))) {}

BufferPool::~BufferPool() { Close(); }

size_t BufferPool::page_bytes() const { return state_->options.page_bytes; }
size_t BufferPool::capacity_pages() const {
  return state_->options.capacity_pages;
}

Result<PageHandle> BufferPool::Fetch(uint64_t page) {
  PoolState& s = *state_;
  MutexLock lock(s.mu);
  for (;;) {
    if (s.closed) {
      return Status::FailedPrecondition("buffer pool is closed");
    }
    auto it = s.table.find(page);
    if (it != s.table.end()) {
      internal::Frame& f = s.frames[it->second];
      if (f.loading) {
        // Another thread is reading this page right now; wait for the load
        // to settle either way, then re-resolve from the table (a failed
        // load erases the mapping).
        s.cv.Wait(s.mu, lock);
        continue;
      }
      ++s.stats.hits;
      f.ref = true;
      ++f.pins;
      return PageHandle(state_, it->second, page, f.data.data(),
                        s.options.page_bytes);
    }

    const size_t victim = s.FindVictim();
    if (victim == s.frames.size()) {
      return Status::ResourceExhausted(
          "buffer pool: all " + std::to_string(s.frames.size()) +
          " frames pinned or loading; pool too small for the working set");
    }
    internal::Frame& f = s.frames[victim];
    if (f.page != kNoPage) {
      s.table.erase(f.page);
      ++s.stats.evictions;
    }
    if (f.data.size() == 0) f.data = AlignedArray<char>(s.options.page_bytes);
    f.page = page;
    f.loading = true;
    f.pins = 1;  // pinned by this fetch; also shields the frame from clock
    s.table.emplace(page, victim);
    Fetcher fetch = s.fetcher;  // copy under the lock; Close() nulls it
    ++s.loads_in_flight;
    char* dest = f.data.data();  // stable: loading frames are never touched

    lock.Unlock();
    Status read = fetch
                      ? fetch(page, std::span<char>(dest,
                                                    s.options.page_bytes))
                      : Status::FailedPrecondition("buffer pool is closed");
    lock.Lock();

    --s.loads_in_flight;
    internal::Frame& g = s.frames[victim];  // re-bind after relock (clarity)
    g.loading = false;
    if (!read.ok()) {
      s.table.erase(page);
      g.page = kNoPage;
      g.pins = 0;
      s.cv.NotifyAll();
      return read;
    }
    ++s.stats.misses;
    s.stats.bytes_read_disk += s.options.page_bytes;
    g.ref = true;
    s.cv.NotifyAll();
    return PageHandle(state_, victim, page, g.data.data(),
                      s.options.page_bytes);
  }
}

BufferPoolStats BufferPool::stats() const {
  MutexLock lock(state_->mu);
  return state_->stats;
}

size_t BufferPool::resident_pages() const {
  MutexLock lock(state_->mu);
  return state_->table.size();
}

void BufferPool::Close() {
  PoolState& s = *state_;
  MutexLock lock(s.mu);
  s.closed = true;
  s.fetcher = nullptr;
  // In-flight loads still hold a copy of the old fetcher; wait them out so
  // the caller can safely close the backing file afterwards.
  while (s.loads_in_flight > 0) s.cv.Wait(s.mu, lock);
}

}  // namespace storage
}  // namespace fuzzydb
