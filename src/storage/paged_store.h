// The disk-backed embedding store (DESIGN §3k): a column file behind a
// buffer pool, serving the same query surface as the RAM-resident
// EmbeddingStore — and, by construction, the same answers, bit for bit.
//
// Tier placement is deliberate and asymmetric:
//   - the int8 quantized companion (cascade level −1, ~1 byte/dim + 8B
//     residual per row) is loaded RAM-resident at Open() and never pages —
//     it is the tier whose whole point is full-collection scans, and it is
//     8x smaller than the float rows;
//   - the float rows (8 bytes/dim, cache-line-padded stride) live on disk
//     and enter memory only through the pool: sequential scans walk pages
//     in order (with readahead advice to the kernel), refinement probes pin
//     single pages.
// A warm cascade query therefore reads *zero* disk bytes at level −1 and
// touches disk only for survivor pages the pool has not retained — that
// claim is measured (CascadeStats::bytes_read_disk), not asserted.
//
// Every query method returns Status/Result: disk I/O can fail in ways RAM
// access cannot, and the kernels abandon a shard cleanly (no partial
// answers) when a page read errors out.

#ifndef FUZZYDB_STORAGE_PAGED_STORE_H_
#define FUZZYDB_STORAGE_PAGED_STORE_H_

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "image/embedding_store.h"
#include "image/knn_kernel.h"
#include "image/quantized_store.h"
#include "storage/buffer_pool.h"
#include "storage/column_file.h"

namespace fuzzydb {
namespace storage {

struct PagedStoreOptions {
  /// Buffer-pool budget in bytes; rounded down to whole pages of the
  /// file's page size, floor of one page. This is the only RAM the float
  /// rows may occupy.
  size_t pool_bytes = 256ull * 1024 * 1024;
  /// Pages of kernel readahead advice issued ahead of sequential scans
  /// (0 disables). Advice only — the pool's budget is never exceeded.
  size_t readahead_pages = 8;
  /// Load the persisted int8 tier RAM-resident at Open (when the file has
  /// one). Off only for experiments that want the pure paging path.
  bool load_quantized = true;
};

/// Read-only view over one column file. Query methods are thread-safe and
/// may run concurrently (the pool synchronizes frame state; each shard
/// pins at most one page at a time, so any pool of >= shard-count pages
/// can make progress). Close() requires quiescence, like the RAM store's
/// destructor.
class PagedEmbeddingStore {
 public:
  static Result<std::unique_ptr<PagedEmbeddingStore>> Open(
      const std::string& path, PagedStoreOptions options = {});

  size_t size() const { return file_->count(); }
  size_t dim() const { return file_->dim(); }
  size_t stride() const { return file_->stride(); }
  /// The file's generation stamp — the serving layer's cache key component.
  uint64_t version() const { return file_->store_version(); }
  /// Eigenbasis metadata recorded at ingest.
  const std::vector<double>& metadata() const { return file_->metadata(); }

  bool has_quantized() const { return !quantized_.empty(); }
  const QuantizedStore& quantized() const { return quantized_; }

  const BufferPool& pool() const { return *pool_; }
  BufferPoolStats pool_stats() const { return pool_->stats(); }

  /// d(Row(i), target) — a single-row probe pinning one page.
  Result<double> Distance(std::span<const double> target, size_t i) const;

  /// out[i] = |Row(i) - target|_2 for every stored row; one sequential
  /// paged pass. Bit-identical to EmbeddingStore::BatchDistances.
  Status BatchDistances(std::span<const double> target,
                        std::span<double> out) const;
  Status BatchDistances(std::span<const double> target, std::span<double> out,
                        ThreadPool* pool, size_t shards = 0) const;

  /// Exact top-k; same contract (and bits) as EmbeddingStore::ExactKnn.
  Result<std::vector<std::pair<size_t, double>>> ExactKnn(
      std::span<const double> target, size_t k) const;
  Result<std::vector<std::pair<size_t, double>>> ExactKnn(
      std::span<const double> target, size_t k, ThreadPool* pool,
      size_t shards = 0) const;

  /// Cascaded top-k; same contract (and bits) as
  /// EmbeddingStore::CascadeKnn. On top of the arithmetic counters (which
  /// are deterministic and equal to the RAM store's), `stats` receives this
  /// query's buffer-pool deltas: bytes_read_disk and pool hit/miss/eviction
  /// counts. Pool deltas are exact when queries run one at a time and
  /// attribution-approximate under concurrent queries (the pool's counters
  /// are global).
  Result<std::vector<std::pair<size_t, double>>> CascadeKnn(
      std::span<const double> target, size_t k,
      const CascadeOptions& options = {}, CascadeStats* stats = nullptr) const;
  Result<std::vector<std::pair<size_t, double>>> CascadeKnn(
      std::span<const double> target, size_t k, const CascadeOptions& options,
      CascadeStats* stats, ThreadPool* pool, size_t shards = 0) const;

  /// Materializes the whole column as a RAM-resident EmbeddingStore (with
  /// its quantized companion rebuilt — bit-identical to the persisted one,
  /// same arithmetic). For consumers that genuinely need residency, e.g.
  /// the GEMINI R-tree build; everything else should query through paging.
  Result<EmbeddingStore> LoadToMemory() const;

  /// Raw page read straight from the file, bypassing the pool (used by the
  /// full-scan copy and the paging-equivalence auditor).
  Status ReadPage(uint64_t page, std::span<char> dest) const;

  /// Closes the pool and the file. Outstanding PageHandles stay valid;
  /// subsequent queries fail FailedPrecondition. Idempotent.
  void Close();

 private:
  PagedEmbeddingStore() = default;

  std::shared_ptr<ColumnFile> file_;
  std::unique_ptr<BufferPool> pool_;
  QuantizedStore quantized_;
  PagedStoreOptions options_;
};

}  // namespace storage
}  // namespace fuzzydb

#endif  // FUZZYDB_STORAGE_PAGED_STORE_H_
