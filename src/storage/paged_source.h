// A color-similarity GradedSource over the paged embedding store — the
// middleware's view of an out-of-core collection (DESIGN §3k).
//
// Honest accounting of what pages and what does not: grades are 8 bytes
// per object and are materialized at construction, exactly like
// QbicColorSource — it is the embedding *rows* (stride * 8 bytes each,
// ~64x larger) that stay on disk and stream through the buffer pool during
// the one grading pass. After construction the source serves sorted and
// random access from RAM, so middleware runs (TA/NRA/CA) over a paged
// collection cost what they cost over a RAM collection; the disk was paid
// once, sequentially, at source-build time.
//
// Grade arithmetic is shared with QbicColorSource (GradeFromDistance over
// BatchDistances output), so a paged source over the same rows produces
// identical grades and identical middleware answers — asserted by the
// equivalence tests, not assumed.

#ifndef FUZZYDB_STORAGE_PAGED_SOURCE_H_
#define FUZZYDB_STORAGE_PAGED_SOURCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "middleware/source.h"
#include "storage/paged_store.h"

namespace fuzzydb {
namespace storage {

/// Color-similarity source backed by a PagedEmbeddingStore:
/// grade(x) = 1 - d(x, target)/d_max, d the eigen-space (= quadratic-form)
/// distance.
class PagedColorSource final : public GradedSource {
 public:
  /// Grades every row of `store` against `target_embedding` (a full-dim
  /// embedding from QuadraticFormDistance::Embed) in one sequential paged
  /// pass. `ids` maps row -> ObjectId; empty means identity (row i is
  /// object i), which also keeps random access a flat array lookup instead
  /// of a hash map — the only choice that scales to out-of-core N.
  /// `store` must outlive the source.
  static Result<PagedColorSource> Create(const PagedEmbeddingStore* store,
                                         std::span<const double>
                                             target_embedding,
                                         double max_distance,
                                         std::string label = "Color(paged)",
                                         std::vector<ObjectId> ids = {});

  size_t Size() const override { return sorted_.size(); }
  std::optional<GradedObject> NextSorted() override;
  void RestartSorted() override { cursor_ = 0; }
  double RandomAccess(ObjectId id) override;
  std::vector<GradedObject> AtLeast(double threshold) override;
  std::string name() const override { return label_; }

 private:
  PagedColorSource() = default;

  std::vector<GradedObject> sorted_;
  /// Identity-id mode: grade of object i at index i. Mapped mode: empty.
  std::vector<double> grades_by_row_;
  /// Mapped mode (explicit ids): the usual hash lookup.
  std::unordered_map<ObjectId, double> grades_;
  size_t cursor_ = 0;
  std::string label_;
};

}  // namespace storage
}  // namespace fuzzydb

#endif  // FUZZYDB_STORAGE_PAGED_SOURCE_H_
