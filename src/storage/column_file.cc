#include "storage/column_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/simd_dispatch.h"
#include "image/embedding_store.h"

namespace fuzzydb {
namespace storage {

// The header comment's "all fields little-endian" is enforced here rather
// than byte-swapped at runtime: this project only targets x86-64.
static_assert(std::endian::native == std::endian::little,
              "column files are little-endian on disk");

uint64_t Fnv1a64(const void* data, size_t size, uint64_t state) {
  constexpr uint64_t kPrime = 1099511628211ull;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    state ^= p[i];
    state *= kPrime;
  }
  return state;
}

namespace {

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::Internal(std::string(op) + " failed for " + path + ": " +
                          std::strerror(errno));
}

// Full-length pwrite: loops on partial writes, Internal on error.
Status WriteAll(int fd, const void* data, size_t size, uint64_t offset,
                const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, p, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite", path);
    }
    p += n;
    offset += static_cast<uint64_t>(n);
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

// Full-length pread. `short_is_data_loss` selects the error for EOF before
// `size` bytes: DataLoss when the header promised the bytes, InvalidArgument
// while still probing whether this is a column file at all.
Status ReadAll(int fd, void* data, size_t size, uint64_t offset,
               const std::string& what) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::pread(fd, p, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("pread failed: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::DataLoss("short read: " + what +
                              " ends before its promised extent");
    }
    p += n;
    offset += static_cast<uint64_t>(n);
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

uint64_t RoundUp(uint64_t value, uint64_t multiple) {
  return (value + multiple - 1) / multiple * multiple;
}

uint64_t PagesFor(uint64_t count, uint64_t rows_per_page) {
  return (count + rows_per_page - 1) / rows_per_page;
}

// Header-block checksum: the struct with its checksum field zeroed, then
// the metadata doubles.
uint64_t HeaderChecksum(FileHeader header, const std::vector<double>& meta) {
  header.checksum = 0;
  uint64_t state = Fnv1a64(&header, sizeof(header));
  return Fnv1a64(meta.data(), meta.size() * sizeof(double), state);
}

}  // namespace

// ---------------------------------------------------------------------------
// ColumnFileWriter

Result<std::unique_ptr<ColumnFileWriter>> ColumnFileWriter::Create(
    const std::string& path, size_t dim, ColumnFileOptions options) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (options.page_bytes == 0 || options.page_bytes % 64 != 0) {
    return Status::InvalidArgument(
        "page_bytes must be a positive multiple of 64");
  }
  const size_t stride = EmbeddingStore::RowStride(dim);
  if (options.page_bytes < stride * sizeof(double)) {
    return Status::InvalidArgument(
        "page_bytes smaller than one row; need at least " +
        std::to_string(stride * sizeof(double)));
  }
  if (options.build_quantized &&
      dim > QuantizedStore::kMaxBlocks * QuantizedStore::kBlockDim) {
    return Status::InvalidArgument(
        "dim too large for the quantized tier; pass build_quantized=false");
  }

  // O_RDWR: Finish() re-reads the data section it just wrote to encode the
  // quantized tier against the final scales.
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", path);

  auto writer = std::unique_ptr<ColumnFileWriter>(new ColumnFileWriter());
  writer->fd_ = fd;
  writer->path_ = path;
  writer->options_ = std::move(options);
  writer->dim_ = dim;
  writer->stride_ = stride;
  writer->rows_per_page_ =
      writer->options_.page_bytes / (stride * sizeof(double));
  // The header block (struct + reserved metadata room) rounds up to a page
  // boundary so data pages are page-aligned in the file (direct offset
  // arithmetic, and the kernel's readahead works on aligned extents).
  writer->meta_capacity_ = std::max(writer->options_.metadata.size(),
                                    writer->options_.metadata_capacity);
  const uint64_t header_bytes =
      sizeof(FileHeader) + writer->meta_capacity_ * sizeof(double);
  writer->data_offset_ = RoundUp(header_bytes, writer->options_.page_bytes);
  writer->next_page_offset_ = writer->data_offset_;
  writer->page_.assign(writer->options_.page_bytes / sizeof(double), 0.0);
  writer->scale_max_.assign(QuantizedStore::NumBlocks(dim), 0.0);
  return writer;
}

ColumnFileWriter::~ColumnFileWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status ColumnFileWriter::AppendRow(std::span<const double> row) {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  if (row.size() != dim_) {
    return Status::InvalidArgument("row has wrong dimension");
  }
  double* dest = page_.data() + rows_in_page_ * stride_;
  std::copy(row.begin(), row.end(), dest);
  // The pad dest[dim_..stride_) stays zero: the buffer starts zeroed and
  // FlushPage re-zeroes it.
  if (options_.build_quantized) {
    // Running per-block maxima; max is exact and order-independent, so the
    // streamed scales equal QuantizedStore::Build's two-pass scales bit for
    // bit.
    for (size_t j = 0; j < dim_; ++j) {
      double& m = scale_max_[j / QuantizedStore::kBlockDim];
      m = std::max(m, std::fabs(row[j]));
    }
  }
  ++rows_;
  if (++rows_in_page_ == rows_per_page_) return FlushPage();
  return Status::OK();
}

Status ColumnFileWriter::SetMetadata(std::vector<double> metadata) {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  if (metadata.size() > meta_capacity_) {
    return Status::InvalidArgument(
        "metadata exceeds the capacity reserved at Create (" +
        std::to_string(meta_capacity_) + " doubles)");
  }
  options_.metadata = std::move(metadata);
  return Status::OK();
}

Status ColumnFileWriter::FlushPage() {
  FUZZYDB_RETURN_NOT_OK(WriteAll(fd_, page_.data(),
                                   options_.page_bytes, next_page_offset_,
                                   path_));
  next_page_offset_ += options_.page_bytes;
  std::fill(page_.begin(), page_.end(), 0.0);
  rows_in_page_ = 0;
  return Status::OK();
}

Status ColumnFileWriter::WriteQuantizedSection() {
  // Finalize the scales exactly as QuantizedStore::Build does.
  const size_t blocks = scale_max_.size();
  const size_t padded = QuantizedStore::PaddedDim(dim_);
  std::vector<double> scales(blocks);
  for (size_t b = 0; b < blocks; ++b) {
    scales[b] = scale_max_[b] / static_cast<double>(simd::kInt8CodeMax);
  }

  // Section layout: scales | codes | residuals — codes in the middle so
  // both the codes (streamed) and the checksum (chained in file order) can
  // be produced in one re-read pass over the data section.
  const uint64_t qoff = next_page_offset_;
  const uint64_t codes_off = qoff + blocks * sizeof(double);
  const uint64_t residuals_off = codes_off + rows_ * padded;

  FUZZYDB_RETURN_NOT_OK(
      WriteAll(fd_, scales.data(), blocks * sizeof(double), qoff, path_));
  uint64_t qsum = Fnv1a64(scales.data(), blocks * sizeof(double));

  // One page of rows in, one page of codes out; residuals (8B/row) are the
  // only per-row state held across the pass — they are RAM-resident at
  // serving time anyway.
  std::vector<double> residuals(rows_);
  std::vector<double> page(options_.page_bytes / sizeof(double));
  std::vector<int8_t> codes(rows_per_page_ * padded);
  const uint64_t pages = PagesFor(rows_, rows_per_page_);
  for (uint64_t p = 0; p < pages; ++p) {
    FUZZYDB_RETURN_NOT_OK(ReadAll(fd_, page.data(), options_.page_bytes,
                                    data_offset_ + p * options_.page_bytes,
                                    "data section (quantize pass)"));
    const size_t begin = p * rows_per_page_;
    const size_t n = std::min(rows_per_page_, rows_ - begin);
    std::fill(codes.begin(), codes.end(), 0);  // zero block pad
    for (size_t i = 0; i < n; ++i) {
      residuals[begin + i] = QuantizedStore::EncodeRowAgainst(
          page.data() + i * stride_, dim_, scales, codes.data() + i * padded);
    }
    FUZZYDB_RETURN_NOT_OK(
        WriteAll(fd_, codes.data(), n * padded, codes_off + begin * padded,
                 path_));
    qsum = Fnv1a64(codes.data(), n * padded, qsum);
  }

  FUZZYDB_RETURN_NOT_OK(WriteAll(fd_, residuals.data(),
                                   rows_ * sizeof(double), residuals_off,
                                   path_));
  qsum = Fnv1a64(residuals.data(), rows_ * sizeof(double), qsum);

  qsection_offset_ = qoff;
  qsection_bytes_ = residuals_off + rows_ * sizeof(double) - qoff;
  qsection_checksum_ = qsum;
  return Status::OK();
}

Status ColumnFileWriter::Finish() {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  if (rows_ == 0) return Status::InvalidArgument("no rows written");
  if (rows_in_page_ > 0) FUZZYDB_RETURN_NOT_OK(FlushPage());

  const bool quantize = options_.build_quantized;
  if (quantize) FUZZYDB_RETURN_NOT_OK(WriteQuantizedSection());

  FileHeader header{};
  std::memcpy(header.magic, FileHeader::kMagic, sizeof(header.magic));
  header.version = FileHeader::kVersion;
  header.header_bytes = static_cast<uint32_t>(
      sizeof(FileHeader) + options_.metadata.size() * sizeof(double));
  header.count = rows_;
  header.dim = static_cast<uint32_t>(dim_);
  header.stride = static_cast<uint32_t>(stride_);
  header.page_bytes = static_cast<uint32_t>(options_.page_bytes);
  header.rows_per_page = static_cast<uint32_t>(rows_per_page_);
  header.data_offset = data_offset_;
  header.store_version = options_.store_version;
  header.meta_doubles = static_cast<uint32_t>(options_.metadata.size());
  header.quantized = quantize ? 1 : 0;
  header.qsection_offset = quantize ? qsection_offset_ : 0;
  header.qsection_bytes = quantize ? qsection_bytes_ : 0;
  header.qsection_checksum = quantize ? qsection_checksum_ : 0;
  header.checksum = HeaderChecksum(header, options_.metadata);

  // Metadata first, header last: the magic only becomes valid once
  // everything it promises is on disk.
  FUZZYDB_RETURN_NOT_OK(WriteAll(fd_, options_.metadata.data(),
                                   options_.metadata.size() * sizeof(double),
                                   sizeof(FileHeader), path_));
  FUZZYDB_RETURN_NOT_OK(WriteAll(fd_, &header, sizeof(header), 0, path_));
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  ::close(fd_);
  fd_ = -1;
  finished_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ColumnFile

Result<std::shared_ptr<ColumnFile>> ColumnFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  auto file = std::shared_ptr<ColumnFile>(new ColumnFile());
  file->fd_ = fd;

  // Probe the magic before trusting anything: a too-short or mismatched
  // prefix means "not a column file" (InvalidArgument), while any defect
  // *after* a good magic means corruption of our own format (DataLoss).
  struct stat st;
  if (::fstat(fd, &st) != 0) return ErrnoStatus("fstat", path);
  const uint64_t file_bytes = static_cast<uint64_t>(st.st_size);
  if (file_bytes < sizeof(FileHeader::kMagic)) {
    return Status::InvalidArgument(path + " is not a column file (too small)");
  }
  char magic[sizeof(FileHeader::kMagic)];
  FUZZYDB_RETURN_NOT_OK(ReadAll(fd, magic, sizeof(magic), 0, "magic"));
  if (std::memcmp(magic, FileHeader::kMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(path + " is not a column file (bad magic)");
  }
  if (file_bytes < sizeof(FileHeader)) {
    return Status::DataLoss(path + ": truncated header");
  }
  FUZZYDB_RETURN_NOT_OK(
      ReadAll(fd, &file->header_, sizeof(FileHeader), 0, "header"));
  const FileHeader& h = file->header_;
  if (h.version != FileHeader::kVersion) {
    return Status::InvalidArgument(
        path + ": version skew: file v" + std::to_string(h.version) +
        ", reader v" + std::to_string(FileHeader::kVersion));
  }
  if (h.header_bytes !=
      sizeof(FileHeader) + uint64_t{h.meta_doubles} * sizeof(double)) {
    return Status::DataLoss(path + ": header_bytes disagrees with metadata");
  }
  // Geometry sanity: reject before any arithmetic can divide by zero or
  // index past the file.
  if (h.dim == 0 || h.stride < h.dim || h.page_bytes == 0 ||
      h.page_bytes % 64 != 0 ||
      h.rows_per_page != h.page_bytes / (h.stride * sizeof(double)) ||
      h.rows_per_page == 0 || h.count == 0 ||
      h.data_offset % h.page_bytes != 0 || h.data_offset < h.header_bytes) {
    return Status::DataLoss(path + ": header geometry is inconsistent");
  }

  file->metadata_.resize(h.meta_doubles);
  if (h.meta_doubles > 0) {
    FUZZYDB_RETURN_NOT_OK(ReadAll(fd, file->metadata_.data(),
                                    h.meta_doubles * sizeof(double),
                                    sizeof(FileHeader), "header metadata"));
  }
  if (HeaderChecksum(h, file->metadata_) != h.checksum) {
    return Status::DataLoss(path + ": header checksum mismatch");
  }

  file->num_pages_ = PagesFor(h.count, h.rows_per_page);
  const uint64_t data_end =
      h.data_offset + file->num_pages_ * uint64_t{h.page_bytes};
  if (file_bytes < data_end) {
    return Status::DataLoss(path + ": data section truncated (file " +
                            std::to_string(file_bytes) + "B, need " +
                            std::to_string(data_end) + "B)");
  }
  if (h.quantized != 0) {
    const size_t padded = QuantizedStore::PaddedDim(h.dim);
    const uint64_t expect =
        QuantizedStore::NumBlocks(h.dim) * sizeof(double) +
        h.count * (padded + sizeof(double));
    if (h.qsection_bytes != expect || h.qsection_offset < data_end ||
        file_bytes < h.qsection_offset + h.qsection_bytes) {
      return Status::DataLoss(path + ": quantized section truncated");
    }
  }
  return file;
}

ColumnFile::~ColumnFile() { Close(); }

void ColumnFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ColumnFile::ReadPage(uint64_t page, std::span<char> dest) const {
  if (fd_ < 0) return Status::FailedPrecondition("column file is closed");
  if (page >= num_pages_) {
    return Status::OutOfRange("page " + std::to_string(page) + " of " +
                              std::to_string(num_pages_));
  }
  if (dest.size() != header_.page_bytes) {
    return Status::InvalidArgument("page buffer has wrong size");
  }
  return ReadAll(fd_, dest.data(), dest.size(),
                 header_.data_offset + page * uint64_t{header_.page_bytes},
                 "data page");
}

void ColumnFile::Advise(uint64_t page, uint64_t pages) const {
  if (fd_ < 0 || pages == 0 || page >= num_pages_) return;
  pages = std::min(pages, num_pages_ - page);
#if defined(POSIX_FADV_WILLNEED)
  (void)::posix_fadvise(
      fd_, static_cast<off_t>(header_.data_offset +
                              page * uint64_t{header_.page_bytes}),
      static_cast<off_t>(pages * uint64_t{header_.page_bytes}),
      POSIX_FADV_WILLNEED);
#else
  (void)page;
#endif
}

Result<QuantizedStore> ColumnFile::LoadQuantized() const {
  if (fd_ < 0) return Status::FailedPrecondition("column file is closed");
  if (header_.quantized == 0) return QuantizedStore();

  const size_t blocks = QuantizedStore::NumBlocks(header_.dim);
  const size_t padded = QuantizedStore::PaddedDim(header_.dim);
  const uint64_t qoff = header_.qsection_offset;
  const uint64_t codes_off = qoff + blocks * sizeof(double);
  const uint64_t residuals_off = codes_off + header_.count * padded;

  std::vector<double> scales(blocks);
  FUZZYDB_RETURN_NOT_OK(ReadAll(fd_, scales.data(), blocks * sizeof(double),
                                  qoff, "quantized scales"));
  AlignedArray<int8_t> codes(header_.count * padded);
  FUZZYDB_RETURN_NOT_OK(ReadAll(fd_, codes.data(), header_.count * padded,
                                  codes_off, "quantized codes"));
  std::vector<double> residuals(header_.count);
  FUZZYDB_RETURN_NOT_OK(ReadAll(fd_, residuals.data(),
                                  header_.count * sizeof(double),
                                  residuals_off, "quantized residuals"));

  uint64_t qsum = Fnv1a64(scales.data(), blocks * sizeof(double));
  qsum = Fnv1a64(codes.data(), header_.count * padded, qsum);
  qsum = Fnv1a64(residuals.data(), header_.count * sizeof(double), qsum);
  if (qsum != header_.qsection_checksum) {
    return Status::DataLoss("quantized section checksum mismatch");
  }
  return QuantizedStore::FromParts(header_.count, header_.dim,
                                   std::move(scales), std::move(residuals),
                                   std::move(codes));
}

}  // namespace storage
}  // namespace fuzzydb
