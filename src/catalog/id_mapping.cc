#include "catalog/id_mapping.h"

namespace fuzzydb {

Status IdMapping::Add(ObjectId local, ObjectId global) {
  auto lit = to_global_.find(local);
  if (lit != to_global_.end()) {
    return Status::AlreadyExists("local id already mapped");
  }
  auto git = to_local_.find(global);
  if (git != to_local_.end()) {
    return Status::AlreadyExists("global id already mapped");
  }
  to_global_.emplace(local, global);
  to_local_.emplace(global, local);
  return Status::OK();
}

Result<ObjectId> IdMapping::ToGlobal(ObjectId local) const {
  auto it = to_global_.find(local);
  if (it == to_global_.end()) return Status::NotFound("unmapped local id");
  return it->second;
}

Result<ObjectId> IdMapping::ToLocal(ObjectId global) const {
  auto it = to_local_.find(global);
  if (it == to_local_.end()) return Status::NotFound("unmapped global id");
  return it->second;
}

std::optional<GradedObject> MappedSource::NextSorted() {
  for (;;) {
    std::optional<GradedObject> next = inner_->NextSorted();
    if (!next.has_value()) return std::nullopt;
    Result<ObjectId> global = mapping_->ToGlobal(next->id);
    if (global.ok()) return GradedObject{*global, next->grade};
    // Objects the middleware does not know are skipped, not surfaced.
  }
}

double MappedSource::RandomAccess(ObjectId global) {
  Result<ObjectId> local = mapping_->ToLocal(global);
  if (!local.ok()) return 0.0;
  return inner_->RandomAccess(*local);
}

std::vector<GradedObject> MappedSource::AtLeast(double threshold) {
  std::vector<GradedObject> out;
  for (const GradedObject& g : inner_->AtLeast(threshold)) {
    Result<ObjectId> global = mapping_->ToGlobal(g.id);
    if (global.ok()) out.push_back({*global, g.grade});
  }
  return out;
}

}  // namespace fuzzydb
