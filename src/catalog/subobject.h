// Complex objects with shared components (paper §4.2): "let us assume that
// the system contains information about Advertisements, which are complex
// objects with AdPhotos among their subobjects ... we need to be able to
// obtain object id's for Advertisements from the object id's of their
// AdPhotos ... this is complicated by the fact that different multimedia
// objects can share the same component objects."
//
// SubobjectMapping is the many-to-many parent<->component relation;
// SubobjectSource lifts a component-level graded source (e.g. AdPhoto
// redness) to parent level: the parent's grade is the combination (max by
// default — "an Advertisement with a red AdPhoto") of its components'
// grades, computed correctly even when components are shared between
// parents.

#ifndef FUZZYDB_CATALOG_SUBOBJECT_H_
#define FUZZYDB_CATALOG_SUBOBJECT_H_

#include <unordered_map>
#include <vector>

#include "core/scoring.h"
#include "middleware/source.h"

namespace fuzzydb {

/// Many-to-many parent <-> component id relation.
class SubobjectMapping {
 public:
  /// Declares `component` to be a subobject of `parent`; duplicate pairs are
  /// rejected. A component may belong to several parents (sharing) and a
  /// parent may own several components.
  Status Add(ObjectId parent, ObjectId component);

  /// Components of a parent (empty when unknown), insertion order.
  std::vector<ObjectId> ComponentsOf(ObjectId parent) const;

  /// Parents owning a component (empty when unknown), insertion order.
  std::vector<ObjectId> ParentsOf(ObjectId component) const;

  /// All parent ids, insertion order.
  const std::vector<ObjectId>& parents() const { return parent_order_; }

  size_t num_pairs() const { return num_pairs_; }

 private:
  std::unordered_map<ObjectId, std::vector<ObjectId>> components_of_;
  std::unordered_map<ObjectId, std::vector<ObjectId>> parents_of_;
  std::vector<ObjectId> parent_order_;
  size_t num_pairs_ = 0;
};

/// Lifts a component-level source to parent level.
///
/// The parent grade is `combiner` applied to the grades of its components
/// (components absent from the inner source contribute grade 0); parents
/// with no components grade 0. The lifted graded set is materialized at
/// construction by streaming the component source once — the realistic
/// strategy when no component->parent index exists, which is exactly the
/// difficulty §4.2 describes.
class SubobjectSource final : public GradedSource {
 public:
  /// `inner` and `mapping` must outlive the source.
  static Result<SubobjectSource> Create(GradedSource* inner,
                                        const SubobjectMapping* mapping,
                                        ScoringRulePtr combiner = MaxRule(),
                                        std::string label = "parent");

  size_t Size() const override { return sorted_.size(); }
  std::optional<GradedObject> NextSorted() override;
  void RestartSorted() override { cursor_ = 0; }
  double RandomAccess(ObjectId parent) override;
  std::vector<GradedObject> AtLeast(double threshold) override;
  std::string name() const override { return label_; }

 private:
  SubobjectSource() = default;
  std::vector<GradedObject> sorted_;
  std::unordered_map<ObjectId, double> grades_;
  size_t cursor_ = 0;
  std::string label_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_CATALOG_SUBOBJECT_H_
