// The middleware catalog: maps query attributes to the subsystems that can
// answer them. An attribute registers a factory that builds (and the catalog
// caches) one GradedSource per target value — e.g. attribute "Color" builds
// a QbicColorSource for target "red".

#ifndef FUZZYDB_CATALOG_CATALOG_H_
#define FUZZYDB_CATALOG_CATALOG_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/query.h"
#include "middleware/executor.h"
#include "middleware/source.h"

namespace fuzzydb {

/// Builds the source answering `attribute = target` for one target.
using SourceFactory =
    std::function<Result<std::unique_ptr<GradedSource>>(const std::string&
                                                            target)>;

/// Attribute registry + per-(attribute, target) source cache.
class Catalog {
 public:
  /// Registers a factory for an attribute; AlreadyExists on duplicates.
  Status RegisterAttribute(const std::string& attribute,
                           SourceFactory factory);

  /// Registers a pre-built source for one exact (attribute, target) pair;
  /// the catalog takes ownership.
  Status RegisterSource(const std::string& attribute,
                        const std::string& target,
                        std::unique_ptr<GradedSource> source);

  /// The source answering the atomic query, building and caching it on
  /// first use. NotFound for unregistered attributes.
  Result<GradedSource*> Resolve(const std::string& attribute,
                                const std::string& target);

  /// Adapter for the executor.
  SourceResolver AsResolver();

  /// Registered attribute names (sorted), for diagnostics and the SQL
  /// binder's error messages.
  std::vector<std::string> Attributes() const;

 private:
  std::unordered_map<std::string, SourceFactory> factories_;
  std::unordered_map<std::string, std::unique_ptr<GradedSource>> cache_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_CATALOG_CATALOG_H_
