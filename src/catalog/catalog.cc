#include "catalog/catalog.h"

#include <algorithm>

namespace fuzzydb {

namespace {

std::string CacheKey(const std::string& attribute, const std::string& target) {
  return attribute + "\x1f" + target;  // unit separator avoids collisions
}

}  // namespace

Status Catalog::RegisterAttribute(const std::string& attribute,
                                  SourceFactory factory) {
  if (factory == nullptr) return Status::InvalidArgument("null factory");
  if (!factories_.emplace(attribute, std::move(factory)).second) {
    return Status::AlreadyExists("attribute '" + attribute +
                                 "' already registered");
  }
  return Status::OK();
}

Status Catalog::RegisterSource(const std::string& attribute,
                               const std::string& target,
                               std::unique_ptr<GradedSource> source) {
  if (source == nullptr) return Status::InvalidArgument("null source");
  std::string key = CacheKey(attribute, target);
  if (cache_.count(key)) {
    return Status::AlreadyExists("source for " + attribute + "='" + target +
                                 "' already registered");
  }
  // Make sure the attribute resolves even without a factory.
  factories_.try_emplace(attribute, [attribute](const std::string& t)
                                        -> Result<std::unique_ptr<GradedSource>> {
    return Status::NotFound("no source registered for " + attribute + "='" +
                            t + "'");
  });
  cache_.emplace(std::move(key), std::move(source));
  return Status::OK();
}

Result<GradedSource*> Catalog::Resolve(const std::string& attribute,
                                       const std::string& target) {
  std::string key = CacheKey(attribute, target);
  auto cached = cache_.find(key);
  if (cached != cache_.end()) return cached->second.get();

  auto fit = factories_.find(attribute);
  if (fit == factories_.end()) {
    return Status::NotFound("unknown attribute '" + attribute + "'");
  }
  Result<std::unique_ptr<GradedSource>> built = fit->second(target);
  if (!built.ok()) return built.status();
  GradedSource* raw = built->get();
  cache_.emplace(std::move(key), std::move(*built));
  return raw;
}

SourceResolver Catalog::AsResolver() {
  return [this](const Query& atom) -> Result<GradedSource*> {
    return Resolve(atom.attribute(), atom.target());
  };
}

std::vector<std::string> Catalog::Attributes() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fuzzydb
