#include "catalog/subobject.h"

#include <algorithm>

namespace fuzzydb {

Status SubobjectMapping::Add(ObjectId parent, ObjectId component) {
  auto& comps = components_of_[parent];
  if (std::find(comps.begin(), comps.end(), component) != comps.end()) {
    return Status::AlreadyExists("component already attached to parent");
  }
  if (comps.empty()) parent_order_.push_back(parent);
  comps.push_back(component);
  parents_of_[component].push_back(parent);
  ++num_pairs_;
  return Status::OK();
}

std::vector<ObjectId> SubobjectMapping::ComponentsOf(ObjectId parent) const {
  auto it = components_of_.find(parent);
  return it == components_of_.end() ? std::vector<ObjectId>{} : it->second;
}

std::vector<ObjectId> SubobjectMapping::ParentsOf(ObjectId component) const {
  auto it = parents_of_.find(component);
  return it == parents_of_.end() ? std::vector<ObjectId>{} : it->second;
}

Result<SubobjectSource> SubobjectSource::Create(
    GradedSource* inner, const SubobjectMapping* mapping,
    ScoringRulePtr combiner, std::string label) {
  if (inner == nullptr) return Status::InvalidArgument("null inner source");
  if (mapping == nullptr) return Status::InvalidArgument("null mapping");
  if (combiner == nullptr) return Status::InvalidArgument("null combiner");

  // One pass of sorted access over the component source collects every
  // component's grade; unknown components keep grade 0.
  std::unordered_map<ObjectId, double> component_grades;
  inner->RestartSorted();
  while (std::optional<GradedObject> next = inner->NextSorted()) {
    component_grades.emplace(next->id, next->grade);
  }
  inner->RestartSorted();

  SubobjectSource src;
  src.label_ = std::move(label);
  src.sorted_.reserve(mapping->parents().size());
  std::vector<double> scores;
  for (ObjectId parent : mapping->parents()) {
    scores.clear();
    for (ObjectId component : mapping->ComponentsOf(parent)) {
      auto it = component_grades.find(component);
      scores.push_back(it == component_grades.end() ? 0.0 : it->second);
    }
    double grade = scores.empty() ? 0.0 : combiner->Apply(scores);
    src.sorted_.push_back({parent, grade});
    src.grades_.emplace(parent, grade);
  }
  std::sort(src.sorted_.begin(), src.sorted_.end(), GradeDescending);
  return src;
}

std::optional<GradedObject> SubobjectSource::NextSorted() {
  if (cursor_ >= sorted_.size()) return std::nullopt;
  return sorted_[cursor_++];
}

double SubobjectSource::RandomAccess(ObjectId parent) {
  auto it = grades_.find(parent);
  return it == grades_.end() ? 0.0 : it->second;
}

std::vector<GradedObject> SubobjectSource::AtLeast(double threshold) {
  std::vector<GradedObject> out;
  for (const GradedObject& g : sorted_) {
    if (g.grade < threshold) break;
    out.push_back(g);
  }
  return out;
}

}  // namespace fuzzydb
