// Object-id correspondence between subsystems (paper §4.2): "the 'same'
// object might have different identities in different subsystems. Even if
// there is some correspondence ... Garlic has to be sure that the mapping is
// one-to-one." IdMapping is a validated bijection between a subsystem's
// local ids and the middleware's global ids; MappedSource rewrites ids at
// the interface so algorithms only ever see global ids.

#ifndef FUZZYDB_CATALOG_ID_MAPPING_H_
#define FUZZYDB_CATALOG_ID_MAPPING_H_

#include <unordered_map>

#include "middleware/source.h"

namespace fuzzydb {

/// A bijection local-id <-> global-id.
class IdMapping {
 public:
  /// Adds a pair; rejects any violation of one-to-one-ness on either side.
  Status Add(ObjectId local, ObjectId global);

  /// Global id for a local id, or NotFound.
  Result<ObjectId> ToGlobal(ObjectId local) const;
  /// Local id for a global id, or NotFound.
  Result<ObjectId> ToLocal(ObjectId global) const;

  size_t size() const { return to_global_.size(); }

 private:
  std::unordered_map<ObjectId, ObjectId> to_global_;
  std::unordered_map<ObjectId, ObjectId> to_local_;
};

/// Wraps a subsystem source whose ids are local, exposing global ids.
/// Sorted access drops objects without a mapping (they do not exist for the
/// middleware); random access on an unmapped global id returns grade 0.
class MappedSource final : public GradedSource {
 public:
  /// `inner` and `mapping` must outlive this wrapper.
  MappedSource(GradedSource* inner, const IdMapping* mapping)
      : inner_(inner), mapping_(mapping) {}

  size_t Size() const override { return mapping_->size(); }
  std::optional<GradedObject> NextSorted() override;
  void RestartSorted() override { inner_->RestartSorted(); }
  double RandomAccess(ObjectId global) override;
  std::vector<GradedObject> AtLeast(double threshold) override;
  std::string name() const override { return inner_->name(); }

 private:
  GradedSource* inner_;
  const IdMapping* mapping_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_CATALOG_ID_MAPPING_H_
