// Table schemas for the relational substrate.

#ifndef FUZZYDB_RELATIONAL_SCHEMA_H_
#define FUZZYDB_RELATIONAL_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace fuzzydb {

/// One column: a name and a declared type.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// An ordered list of uniquely named, non-null-typed columns.
class Schema {
 public:
  /// Validates: non-empty, unique names, no kNull column types.
  static Result<Schema> Create(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the named column, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;

  /// Checks a row's arity and types (NULLs are allowed in any column).
  Status ValidateRow(const std::vector<Value>& row) const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_RELATIONAL_SCHEMA_H_
