// Scalar comparison predicates over table rows — the "traditional database
// query" half of the paper's running example, whose grades are always 0 or 1
// (paper §3).

#ifndef FUZZYDB_RELATIONAL_PREDICATE_H_
#define FUZZYDB_RELATIONAL_PREDICATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace fuzzydb {

/// Comparison operators for predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Rendering such as "=", "<=".
std::string CompareOpName(CompareOp op);

/// `column <op> literal`. NULL column values make every comparison false
/// (SQL's unknown-collapses-to-false at the top level).
class Predicate {
 public:
  /// Binds the column name against `schema` and type-checks the literal.
  static Result<Predicate> Create(const Schema& schema,
                                  const std::string& column, CompareOp op,
                                  Value literal);

  /// Evaluates against a row of the bound schema.
  bool Eval(const std::vector<Value>& row) const;

  size_t column_index() const { return column_index_; }
  const std::string& column_name() const { return column_name_; }
  CompareOp op() const { return op_; }
  const Value& literal() const { return literal_; }

  /// e.g. "Artist='Beatles'".
  std::string ToString() const;

 private:
  Predicate(size_t column_index, std::string column_name, CompareOp op,
            Value literal)
      : column_index_(column_index),
        column_name_(std::move(column_name)),
        op_(op),
        literal_(std::move(literal)) {}

  size_t column_index_;
  std::string column_name_;
  CompareOp op_;
  Value literal_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_RELATIONAL_PREDICATE_H_
