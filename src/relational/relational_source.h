// Adapter exposing a relational predicate as a graded source (paper §3):
// grades are exactly 0 or 1, so sorted access streams all matches first.
// When the predicate is an equality on an indexed column, the match set is
// produced by an index lookup instead of a full scan — the "reasonable
// assumption that there are not many objects that satisfy Artist='Beatles'"
// strategy of paper §4.1 then costs only |matches| sorted accesses.

#ifndef FUZZYDB_RELATIONAL_RELATIONAL_SOURCE_H_
#define FUZZYDB_RELATIONAL_RELATIONAL_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "middleware/source.h"
#include "relational/predicate.h"
#include "relational/table.h"

namespace fuzzydb {

/// A 0/1-graded source over one table and one predicate.
class RelationalSource final : public GradedSource {
 public:
  /// `table` must outlive the source. Snapshot semantics: rows inserted
  /// after creation are not visible.
  static Result<RelationalSource> Create(const Table* table,
                                         Predicate predicate);

  size_t Size() const override { return sorted_.size(); }
  std::optional<GradedObject> NextSorted() override;
  void RestartSorted() override { cursor_ = 0; }
  double RandomAccess(ObjectId id) override;
  std::vector<GradedObject> AtLeast(double threshold) override;
  std::string name() const override;

  /// True when the match set came from an index lookup rather than a scan.
  bool used_index() const { return used_index_; }

  /// Number of grade-1 objects.
  size_t num_matches() const { return num_matches_; }

 private:
  RelationalSource(const Table* table, Predicate predicate)
      : table_(table), predicate_(std::move(predicate)) {}

  const Table* table_;
  Predicate predicate_;
  std::vector<GradedObject> sorted_;  // matches (id asc) then non-matches
  size_t num_matches_ = 0;
  size_t cursor_ = 0;
  bool used_index_ = false;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_RELATIONAL_RELATIONAL_SOURCE_H_
