// Typed scalar values for the relational substrate — the traditional side of
// the paper's running example (Artist='Beatles').

#ifndef FUZZYDB_RELATIONAL_VALUE_H_
#define FUZZYDB_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace fuzzydb {

/// Column types supported by the relational engine.
enum class ValueType { kNull, kInt64, kDouble, kString };

/// Type name for error messages ("int64", "string", ...).
std::string ValueTypeName(ValueType type);

/// A nullable scalar.
class Value {
 public:
  /// SQL NULL.
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed getters; precondition: matching type.
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Three-way comparison for same-typed non-null values; NULL compares
  /// equal to NULL and less than everything else (index ordering only —
  /// predicates treat NULL as unknown/false).
  /// Returns InvalidArgument on cross-type comparison.
  Result<int> Compare(const Value& other) const;

  /// SQL-ish rendering: NULL, 42, 3.14, 'text'.
  std::string ToString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_RELATIONAL_VALUE_H_
