#include "relational/btree.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <optional>

namespace fuzzydb {

namespace {

// Same-typed, non-null keys are guaranteed by CheckKey, so Compare cannot
// fail here.
int Cmp(const Value& a, const Value& b) {
  Result<int> c = a.Compare(b);
  assert(c.ok());
  return *c;
}

}  // namespace

struct BTreeIndex::Node {
  bool leaf = true;
  std::vector<Value> keys;
  // Internal: children.size() == keys.size() + 1; subtree i holds keys
  // strictly less than keys[i] (and >= keys[i-1]).
  std::vector<std::unique_ptr<Node>> children;
  // Leaf: postings[i] belongs to keys[i].
  std::vector<std::vector<ObjectId>> postings;
  Node* next = nullptr;  // leaf chain for range scans
};

BTreeIndex::BTreeIndex(ValueType key_type, int fanout)
    : key_type_(key_type), fanout_(std::max(fanout, 4)),
      root_(std::make_unique<Node>()) {}

BTreeIndex::~BTreeIndex() = default;
BTreeIndex::BTreeIndex(BTreeIndex&&) noexcept = default;
BTreeIndex& BTreeIndex::operator=(BTreeIndex&&) noexcept = default;

Status BTreeIndex::CheckKey(const Value& key) const {
  if (key.is_null()) {
    return Status::InvalidArgument("null keys are not indexable");
  }
  if (key.type() != key_type_) {
    return Status::InvalidArgument("index expects " +
                                   ValueTypeName(key_type_) + " keys, got " +
                                   ValueTypeName(key.type()));
  }
  return Status::OK();
}

BTreeIndex::Node* BTreeIndex::FindLeaf(const Value& key) const {
  Node* node = root_.get();
  while (!node->leaf) {
    size_t i = 0;
    while (i < node->keys.size() && Cmp(key, node->keys[i]) >= 0) ++i;
    node = node->children[i].get();
  }
  return node;
}

Status BTreeIndex::Insert(const Value& key, ObjectId id) {
  FUZZYDB_RETURN_NOT_OK(CheckKey(key));

  // Recursive insert returning a (separator, new right sibling) on split.
  struct Split {
    Value separator;
    std::unique_ptr<Node> right;
  };
  std::function<std::optional<Split>(Node*)> insert_into =
      [&](Node* node) -> std::optional<Split> {
    if (node->leaf) {
      size_t i = 0;
      while (i < node->keys.size() && Cmp(node->keys[i], key) < 0) ++i;
      if (i < node->keys.size() && Cmp(node->keys[i], key) == 0) {
        node->postings[i].push_back(id);
      } else {
        node->keys.insert(node->keys.begin() + static_cast<long>(i), key);
        node->postings.insert(node->postings.begin() + static_cast<long>(i),
                              std::vector<ObjectId>{id});
      }
      if (node->keys.size() < static_cast<size_t>(fanout_)) return std::nullopt;
      // Split the leaf in half; the separator is the first right key.
      size_t mid = node->keys.size() / 2;
      auto right = std::make_unique<Node>();
      right->leaf = true;
      right->keys.assign(std::make_move_iterator(node->keys.begin() +
                                                 static_cast<long>(mid)),
                         std::make_move_iterator(node->keys.end()));
      right->postings.assign(
          std::make_move_iterator(node->postings.begin() +
                                  static_cast<long>(mid)),
          std::make_move_iterator(node->postings.end()));
      node->keys.resize(mid);
      node->postings.resize(mid);
      right->next = node->next;
      node->next = right.get();
      return Split{right->keys.front(), std::move(right)};
    }
    size_t i = 0;
    while (i < node->keys.size() && Cmp(key, node->keys[i]) >= 0) ++i;
    std::optional<Split> child_split = insert_into(node->children[i].get());
    if (!child_split.has_value()) return std::nullopt;
    node->keys.insert(node->keys.begin() + static_cast<long>(i),
                      child_split->separator);
    node->children.insert(node->children.begin() + static_cast<long>(i) + 1,
                          std::move(child_split->right));
    if (node->keys.size() < static_cast<size_t>(fanout_)) return std::nullopt;
    // Split the internal node; the middle key moves up.
    size_t mid = node->keys.size() / 2;
    auto right = std::make_unique<Node>();
    right->leaf = false;
    Value separator = node->keys[mid];
    right->keys.assign(std::make_move_iterator(node->keys.begin() +
                                               static_cast<long>(mid) + 1),
                       std::make_move_iterator(node->keys.end()));
    right->children.assign(
        std::make_move_iterator(node->children.begin() +
                                static_cast<long>(mid) + 1),
        std::make_move_iterator(node->children.end()));
    node->keys.resize(mid);
    node->children.resize(mid + 1);
    return Split{std::move(separator), std::move(right)};
  };

  std::optional<Split> top = insert_into(root_.get());
  if (top.has_value()) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(top->separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(top->right));
    root_ = std::move(new_root);
  }
  ++size_;
  return Status::OK();
}

Status BTreeIndex::Erase(const Value& key, ObjectId id) {
  FUZZYDB_RETURN_NOT_OK(CheckKey(key));
  Node* leaf = FindLeaf(key);
  for (size_t i = 0; i < leaf->keys.size(); ++i) {
    if (Cmp(leaf->keys[i], key) != 0) continue;
    auto& plist = leaf->postings[i];
    auto it = std::find(plist.begin(), plist.end(), id);
    if (it == plist.end()) break;
    plist.erase(it);
    if (plist.empty()) {
      leaf->keys.erase(leaf->keys.begin() + static_cast<long>(i));
      leaf->postings.erase(leaf->postings.begin() + static_cast<long>(i));
    }
    --size_;
    return Status::OK();
  }
  return Status::NotFound("(key, id) not present in index");
}

Result<std::vector<ObjectId>> BTreeIndex::Lookup(const Value& key) const {
  FUZZYDB_RETURN_NOT_OK(CheckKey(key));
  Node* leaf = FindLeaf(key);
  for (size_t i = 0; i < leaf->keys.size(); ++i) {
    if (Cmp(leaf->keys[i], key) == 0) return leaf->postings[i];
  }
  return std::vector<ObjectId>{};
}

Status BTreeIndex::RangeScan(
    const Value& lo, const Value& hi,
    const std::function<void(const Value&, ObjectId)>& emit) const {
  if (!lo.is_null()) FUZZYDB_RETURN_NOT_OK(CheckKey(lo));
  if (!hi.is_null()) FUZZYDB_RETURN_NOT_OK(CheckKey(hi));

  // Start at the leftmost relevant leaf.
  Node* leaf;
  if (lo.is_null()) {
    Node* node = root_.get();
    while (!node->leaf) node = node->children.front().get();
    leaf = node;
  } else {
    leaf = FindLeaf(lo);
  }
  for (; leaf != nullptr; leaf = leaf->next) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (!lo.is_null() && Cmp(leaf->keys[i], lo) < 0) continue;
      if (!hi.is_null() && Cmp(leaf->keys[i], hi) > 0) return Status::OK();
      for (ObjectId id : leaf->postings[i]) emit(leaf->keys[i], id);
    }
  }
  return Status::OK();
}

size_t BTreeIndex::Height() const {
  size_t h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

}  // namespace fuzzydb
