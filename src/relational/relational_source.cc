#include "relational/relational_source.h"

#include <algorithm>
#include <unordered_set>

namespace fuzzydb {

Result<RelationalSource> RelationalSource::Create(const Table* table,
                                                  Predicate predicate) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  RelationalSource src(table, std::move(predicate));

  std::vector<ObjectId> matches;
  const BTreeIndex* index = table->IndexOn(src.predicate_.column_name());
  if (index != nullptr && src.predicate_.op() == CompareOp::kEq) {
    Result<std::vector<ObjectId>> hits =
        index->Lookup(src.predicate_.literal());
    if (!hits.ok()) return hits.status();
    matches = std::move(hits).value();
    src.used_index_ = true;
  } else {
    table->Scan([&](ObjectId id, const std::vector<Value>& row) {
      if (src.predicate_.Eval(row)) matches.push_back(id);
    });
  }
  std::sort(matches.begin(), matches.end());
  std::unordered_set<ObjectId> match_set(matches.begin(), matches.end());

  src.num_matches_ = matches.size();
  src.sorted_.reserve(table->size());
  for (ObjectId id : matches) src.sorted_.push_back({id, 1.0});
  std::vector<ObjectId> rest;
  for (ObjectId id : table->ids()) {
    if (!match_set.count(id)) rest.push_back(id);
  }
  std::sort(rest.begin(), rest.end());
  for (ObjectId id : rest) src.sorted_.push_back({id, 0.0});
  return src;
}

std::optional<GradedObject> RelationalSource::NextSorted() {
  if (cursor_ >= sorted_.size()) return std::nullopt;
  return sorted_[cursor_++];
}

double RelationalSource::RandomAccess(ObjectId id) {
  Result<const std::vector<Value>*> row = table_->Get(id);
  if (!row.ok()) return 0.0;
  return predicate_.Eval(**row) ? 1.0 : 0.0;
}

std::vector<GradedObject> RelationalSource::AtLeast(double threshold) {
  std::vector<GradedObject> out;
  for (const GradedObject& g : sorted_) {
    if (g.grade < threshold) break;
    out.push_back(g);
  }
  return out;
}

std::string RelationalSource::name() const {
  return table_->name() + ":" + predicate_.ToString();
}

}  // namespace fuzzydb
