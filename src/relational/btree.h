// In-memory B+-tree secondary index: Value key -> posting list of ObjectIds.
//
// Multimedia databases update rarely (paper §2.1), so this index optimizes
// reads: inserts split nodes as usual, while Erase simply removes postings
// without rebalancing (empty leaves are tolerated).

#ifndef FUZZYDB_RELATIONAL_BTREE_H_
#define FUZZYDB_RELATIONAL_BTREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/graded_set.h"
#include "relational/value.h"

namespace fuzzydb {

/// B+-tree over same-typed, non-null keys with duplicate support.
class BTreeIndex {
 public:
  /// Keys must all have `key_type`.
  explicit BTreeIndex(ValueType key_type, int fanout = 32);
  ~BTreeIndex();

  BTreeIndex(BTreeIndex&&) noexcept;
  BTreeIndex& operator=(BTreeIndex&&) noexcept;

  /// Adds `id` to the posting list of `key`. Rejects null or mis-typed keys.
  Status Insert(const Value& key, ObjectId id);

  /// Removes one posting; NotFound if the (key, id) pair is absent. Leaves
  /// are never merged (read-optimized; see header comment).
  Status Erase(const Value& key, ObjectId id);

  /// Posting list for an exact key (empty when absent).
  Result<std::vector<ObjectId>> Lookup(const Value& key) const;

  /// All postings with lo <= key <= hi (either bound may be omitted via
  /// is_null() Values meaning unbounded), in key order. `emit` is called
  /// once per (key, id).
  Status RangeScan(const Value& lo, const Value& hi,
                   const std::function<void(const Value&, ObjectId)>& emit)
      const;

  /// Number of (key, id) postings.
  size_t size() const { return size_; }

  /// Height of the tree (1 = a single leaf). Exposed for tests.
  size_t Height() const;

  ValueType key_type() const { return key_type_; }

 private:
  struct Node;
  Status CheckKey(const Value& key) const;
  // Descends to the leaf that owns `key`.
  Node* FindLeaf(const Value& key) const;

  ValueType key_type_;
  int fanout_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_RELATIONAL_BTREE_H_
