#include "relational/schema.h"

namespace fuzzydb {

Result<Schema> Schema::Create(std::vector<ColumnDef> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("schema needs at least one column");
  }
  Schema schema;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].type == ValueType::kNull) {
      return Status::InvalidArgument("column '" + columns[i].name +
                                     "' cannot have type null");
    }
    if (!schema.by_name_.emplace(columns[i].name, i).second) {
      return Status::AlreadyExists("duplicate column name '" +
                                   columns[i].name + "'");
    }
  }
  schema.columns_ = std::move(columns);
  return schema;
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

Status Schema::ValidateRow(const std::vector<Value>& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != columns_[i].type) {
      return Status::InvalidArgument(
          "column '" + columns_[i].name + "' expects " +
          ValueTypeName(columns_[i].type) + ", got " +
          ValueTypeName(row[i].type()));
    }
  }
  return Status::OK();
}

}  // namespace fuzzydb
