#include "relational/table.h"

#include <algorithm>

namespace fuzzydb {

Status Table::Insert(ObjectId id, std::vector<Value> row) {
  FUZZYDB_RETURN_NOT_OK(schema_.ValidateRow(row));
  if (rows_.count(id)) {
    return Status::AlreadyExists("row id already present");
  }
  for (auto& [column, index] : indexes_) {
    size_t col = schema_.IndexOf(column).value();
    if (!row[col].is_null()) {
      FUZZYDB_RETURN_NOT_OK(index->Insert(row[col], id));
    }
  }
  rows_.emplace(id, std::move(row));
  order_.push_back(id);
  return Status::OK();
}

Status Table::Delete(ObjectId id) {
  auto it = rows_.find(id);
  if (it == rows_.end()) return Status::NotFound("no row with that id");
  for (auto& [column, index] : indexes_) {
    size_t col = schema_.IndexOf(column).value();
    if (!it->second[col].is_null()) {
      FUZZYDB_RETURN_NOT_OK(index->Erase(it->second[col], id));
    }
  }
  rows_.erase(it);
  order_.erase(std::find(order_.begin(), order_.end(), id));
  return Status::OK();
}

Result<const std::vector<Value>*> Table::Get(ObjectId id) const {
  auto it = rows_.find(id);
  if (it == rows_.end()) return Status::NotFound("no row with that id");
  return &it->second;
}

void Table::Scan(
    const std::function<void(ObjectId, const std::vector<Value>&)>& emit)
    const {
  for (ObjectId id : order_) emit(id, rows_.at(id));
}

Status Table::CreateIndex(const std::string& column) {
  Result<size_t> col = schema_.IndexOf(column);
  if (!col.ok()) return col.status();
  auto index =
      std::make_unique<BTreeIndex>(schema_.column(*col).type);
  for (ObjectId id : order_) {
    const Value& key = rows_.at(id)[*col];
    if (!key.is_null()) {
      FUZZYDB_RETURN_NOT_OK(index->Insert(key, id));
    }
  }
  indexes_[column] = std::move(index);
  return Status::OK();
}

const BTreeIndex* Table::IndexOn(const std::string& column) const {
  auto it = indexes_.find(column);
  return it == indexes_.end() ? nullptr : it->second.get();
}

}  // namespace fuzzydb
