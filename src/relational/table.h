// Row-store tables for the relational substrate.

#ifndef FUZZYDB_RELATIONAL_TABLE_H_
#define FUZZYDB_RELATIONAL_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/graded_set.h"
#include "relational/btree.h"
#include "relational/schema.h"

namespace fuzzydb {

/// An in-memory table keyed by ObjectId, with optional B+-tree secondary
/// indexes. Rows are immutable once inserted (multimedia databases update
/// rarely, paper §2.1); there is no UPDATE, only Insert/Delete.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t size() const { return order_.size(); }

  /// Validates the row against the schema, rejects duplicate ids, and
  /// maintains all indexes.
  Status Insert(ObjectId id, std::vector<Value> row);

  /// Removes a row (and its index postings); NotFound if absent.
  Status Delete(ObjectId id);

  /// The row for `id`, or NotFound.
  Result<const std::vector<Value>*> Get(ObjectId id) const;

  /// Full scan in insertion order.
  void Scan(const std::function<void(ObjectId, const std::vector<Value>&)>&
                emit) const;

  /// All row ids in insertion order.
  const std::vector<ObjectId>& ids() const { return order_; }

  /// Builds (or rebuilds) a B+-tree index on the named column, indexing all
  /// current and future rows. NULLs in the column are not indexed.
  Status CreateIndex(const std::string& column);

  /// The index on `column`, or nullptr when none exists.
  const BTreeIndex* IndexOn(const std::string& column) const;

 private:
  std::string name_;
  Schema schema_;
  std::unordered_map<ObjectId, std::vector<Value>> rows_;
  std::vector<ObjectId> order_;
  std::unordered_map<std::string, std::unique_ptr<BTreeIndex>> indexes_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_RELATIONAL_TABLE_H_
