#include "relational/value.h"

#include <sstream>

namespace fuzzydb {

std::string ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt64;
    case 2:
      return ValueType::kDouble;
    case 3:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (type() != other.type()) {
    return Status::InvalidArgument("cannot compare " + ValueTypeName(type()) +
                                   " with " + ValueTypeName(other.type()));
  }
  switch (type()) {
    case ValueType::kInt64: {
      int64_t a = AsInt64(), b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kDouble: {
      double a = AsDouble(), b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kNull:
      return 0;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

}  // namespace fuzzydb
