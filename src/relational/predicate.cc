#include "relational/predicate.h"

namespace fuzzydb {

std::string CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<Predicate> Predicate::Create(const Schema& schema,
                                    const std::string& column, CompareOp op,
                                    Value literal) {
  Result<size_t> col = schema.IndexOf(column);
  if (!col.ok()) return col.status();
  if (literal.is_null()) {
    return Status::InvalidArgument("predicate literal cannot be NULL");
  }
  if (literal.type() != schema.column(*col).type) {
    return Status::InvalidArgument(
        "predicate on column '" + column + "' (" +
        ValueTypeName(schema.column(*col).type) + ") with " +
        ValueTypeName(literal.type()) + " literal");
  }
  return Predicate(*col, column, op, std::move(literal));
}

bool Predicate::Eval(const std::vector<Value>& row) const {
  const Value& v = row[column_index_];
  if (v.is_null()) return false;
  Result<int> cmp = v.Compare(literal_);
  if (!cmp.ok()) return false;
  switch (op_) {
    case CompareOp::kEq:
      return *cmp == 0;
    case CompareOp::kNe:
      return *cmp != 0;
    case CompareOp::kLt:
      return *cmp < 0;
    case CompareOp::kLe:
      return *cmp <= 0;
    case CompareOp::kGt:
      return *cmp > 0;
    case CompareOp::kGe:
      return *cmp >= 0;
  }
  return false;
}

std::string Predicate::ToString() const {
  return column_name_ + CompareOpName(op_) + literal_.ToString();
}

}  // namespace fuzzydb
