# Empty dependencies file for fuzzydb_sim.
# This may be replaced when dependencies are built.
