file(REMOVE_RECURSE
  "CMakeFiles/fuzzydb_sim.dir/experiment.cc.o"
  "CMakeFiles/fuzzydb_sim.dir/experiment.cc.o.d"
  "CMakeFiles/fuzzydb_sim.dir/workload.cc.o"
  "CMakeFiles/fuzzydb_sim.dir/workload.cc.o.d"
  "libfuzzydb_sim.a"
  "libfuzzydb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzydb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
