file(REMOVE_RECURSE
  "libfuzzydb_sim.a"
)
