
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/experiment.cc" "src/sim/CMakeFiles/fuzzydb_sim.dir/experiment.cc.o" "gcc" "src/sim/CMakeFiles/fuzzydb_sim.dir/experiment.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/fuzzydb_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/fuzzydb_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/middleware/CMakeFiles/fuzzydb_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fuzzydb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fuzzydb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
