file(REMOVE_RECURSE
  "CMakeFiles/fuzzydb_common.dir/matrix.cc.o"
  "CMakeFiles/fuzzydb_common.dir/matrix.cc.o.d"
  "CMakeFiles/fuzzydb_common.dir/random.cc.o"
  "CMakeFiles/fuzzydb_common.dir/random.cc.o.d"
  "CMakeFiles/fuzzydb_common.dir/stats.cc.o"
  "CMakeFiles/fuzzydb_common.dir/stats.cc.o.d"
  "CMakeFiles/fuzzydb_common.dir/status.cc.o"
  "CMakeFiles/fuzzydb_common.dir/status.cc.o.d"
  "libfuzzydb_common.a"
  "libfuzzydb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzydb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
