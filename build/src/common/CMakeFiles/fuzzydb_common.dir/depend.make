# Empty dependencies file for fuzzydb_common.
# This may be replaced when dependencies are built.
