file(REMOVE_RECURSE
  "libfuzzydb_common.a"
)
