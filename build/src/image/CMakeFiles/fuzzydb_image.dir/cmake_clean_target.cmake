file(REMOVE_RECURSE
  "libfuzzydb_image.a"
)
