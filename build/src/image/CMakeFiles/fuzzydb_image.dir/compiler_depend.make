# Empty compiler generated dependencies file for fuzzydb_image.
# This may be replaced when dependencies are built.
