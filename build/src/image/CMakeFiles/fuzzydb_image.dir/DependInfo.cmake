
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/bounding.cc" "src/image/CMakeFiles/fuzzydb_image.dir/bounding.cc.o" "gcc" "src/image/CMakeFiles/fuzzydb_image.dir/bounding.cc.o.d"
  "/root/repo/src/image/color.cc" "src/image/CMakeFiles/fuzzydb_image.dir/color.cc.o" "gcc" "src/image/CMakeFiles/fuzzydb_image.dir/color.cc.o.d"
  "/root/repo/src/image/color_moments.cc" "src/image/CMakeFiles/fuzzydb_image.dir/color_moments.cc.o" "gcc" "src/image/CMakeFiles/fuzzydb_image.dir/color_moments.cc.o.d"
  "/root/repo/src/image/image_store.cc" "src/image/CMakeFiles/fuzzydb_image.dir/image_store.cc.o" "gcc" "src/image/CMakeFiles/fuzzydb_image.dir/image_store.cc.o.d"
  "/root/repo/src/image/indexed_search.cc" "src/image/CMakeFiles/fuzzydb_image.dir/indexed_search.cc.o" "gcc" "src/image/CMakeFiles/fuzzydb_image.dir/indexed_search.cc.o.d"
  "/root/repo/src/image/precompute.cc" "src/image/CMakeFiles/fuzzydb_image.dir/precompute.cc.o" "gcc" "src/image/CMakeFiles/fuzzydb_image.dir/precompute.cc.o.d"
  "/root/repo/src/image/qbic_source.cc" "src/image/CMakeFiles/fuzzydb_image.dir/qbic_source.cc.o" "gcc" "src/image/CMakeFiles/fuzzydb_image.dir/qbic_source.cc.o.d"
  "/root/repo/src/image/quadratic_distance.cc" "src/image/CMakeFiles/fuzzydb_image.dir/quadratic_distance.cc.o" "gcc" "src/image/CMakeFiles/fuzzydb_image.dir/quadratic_distance.cc.o.d"
  "/root/repo/src/image/shape.cc" "src/image/CMakeFiles/fuzzydb_image.dir/shape.cc.o" "gcc" "src/image/CMakeFiles/fuzzydb_image.dir/shape.cc.o.d"
  "/root/repo/src/image/texture.cc" "src/image/CMakeFiles/fuzzydb_image.dir/texture.cc.o" "gcc" "src/image/CMakeFiles/fuzzydb_image.dir/texture.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/middleware/CMakeFiles/fuzzydb_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/fuzzydb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fuzzydb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fuzzydb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
