file(REMOVE_RECURSE
  "CMakeFiles/fuzzydb_image.dir/bounding.cc.o"
  "CMakeFiles/fuzzydb_image.dir/bounding.cc.o.d"
  "CMakeFiles/fuzzydb_image.dir/color.cc.o"
  "CMakeFiles/fuzzydb_image.dir/color.cc.o.d"
  "CMakeFiles/fuzzydb_image.dir/color_moments.cc.o"
  "CMakeFiles/fuzzydb_image.dir/color_moments.cc.o.d"
  "CMakeFiles/fuzzydb_image.dir/image_store.cc.o"
  "CMakeFiles/fuzzydb_image.dir/image_store.cc.o.d"
  "CMakeFiles/fuzzydb_image.dir/indexed_search.cc.o"
  "CMakeFiles/fuzzydb_image.dir/indexed_search.cc.o.d"
  "CMakeFiles/fuzzydb_image.dir/precompute.cc.o"
  "CMakeFiles/fuzzydb_image.dir/precompute.cc.o.d"
  "CMakeFiles/fuzzydb_image.dir/qbic_source.cc.o"
  "CMakeFiles/fuzzydb_image.dir/qbic_source.cc.o.d"
  "CMakeFiles/fuzzydb_image.dir/quadratic_distance.cc.o"
  "CMakeFiles/fuzzydb_image.dir/quadratic_distance.cc.o.d"
  "CMakeFiles/fuzzydb_image.dir/shape.cc.o"
  "CMakeFiles/fuzzydb_image.dir/shape.cc.o.d"
  "CMakeFiles/fuzzydb_image.dir/texture.cc.o"
  "CMakeFiles/fuzzydb_image.dir/texture.cc.o.d"
  "libfuzzydb_image.a"
  "libfuzzydb_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzydb_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
