# Empty compiler generated dependencies file for fuzzydb_catalog.
# This may be replaced when dependencies are built.
