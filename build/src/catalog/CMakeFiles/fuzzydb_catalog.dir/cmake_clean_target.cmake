file(REMOVE_RECURSE
  "libfuzzydb_catalog.a"
)
