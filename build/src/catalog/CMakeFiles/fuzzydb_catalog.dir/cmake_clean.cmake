file(REMOVE_RECURSE
  "CMakeFiles/fuzzydb_catalog.dir/catalog.cc.o"
  "CMakeFiles/fuzzydb_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/fuzzydb_catalog.dir/id_mapping.cc.o"
  "CMakeFiles/fuzzydb_catalog.dir/id_mapping.cc.o.d"
  "CMakeFiles/fuzzydb_catalog.dir/subobject.cc.o"
  "CMakeFiles/fuzzydb_catalog.dir/subobject.cc.o.d"
  "libfuzzydb_catalog.a"
  "libfuzzydb_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzydb_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
