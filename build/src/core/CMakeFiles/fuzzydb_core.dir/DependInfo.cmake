
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/equivalence.cc" "src/core/CMakeFiles/fuzzydb_core.dir/equivalence.cc.o" "gcc" "src/core/CMakeFiles/fuzzydb_core.dir/equivalence.cc.o.d"
  "/root/repo/src/core/graded_set.cc" "src/core/CMakeFiles/fuzzydb_core.dir/graded_set.cc.o" "gcc" "src/core/CMakeFiles/fuzzydb_core.dir/graded_set.cc.o.d"
  "/root/repo/src/core/query.cc" "src/core/CMakeFiles/fuzzydb_core.dir/query.cc.o" "gcc" "src/core/CMakeFiles/fuzzydb_core.dir/query.cc.o.d"
  "/root/repo/src/core/scoring.cc" "src/core/CMakeFiles/fuzzydb_core.dir/scoring.cc.o" "gcc" "src/core/CMakeFiles/fuzzydb_core.dir/scoring.cc.o.d"
  "/root/repo/src/core/set_ops.cc" "src/core/CMakeFiles/fuzzydb_core.dir/set_ops.cc.o" "gcc" "src/core/CMakeFiles/fuzzydb_core.dir/set_ops.cc.o.d"
  "/root/repo/src/core/tnorms.cc" "src/core/CMakeFiles/fuzzydb_core.dir/tnorms.cc.o" "gcc" "src/core/CMakeFiles/fuzzydb_core.dir/tnorms.cc.o.d"
  "/root/repo/src/core/weights.cc" "src/core/CMakeFiles/fuzzydb_core.dir/weights.cc.o" "gcc" "src/core/CMakeFiles/fuzzydb_core.dir/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fuzzydb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
