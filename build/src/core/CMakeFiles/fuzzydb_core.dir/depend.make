# Empty dependencies file for fuzzydb_core.
# This may be replaced when dependencies are built.
