file(REMOVE_RECURSE
  "libfuzzydb_core.a"
)
