file(REMOVE_RECURSE
  "CMakeFiles/fuzzydb_core.dir/equivalence.cc.o"
  "CMakeFiles/fuzzydb_core.dir/equivalence.cc.o.d"
  "CMakeFiles/fuzzydb_core.dir/graded_set.cc.o"
  "CMakeFiles/fuzzydb_core.dir/graded_set.cc.o.d"
  "CMakeFiles/fuzzydb_core.dir/query.cc.o"
  "CMakeFiles/fuzzydb_core.dir/query.cc.o.d"
  "CMakeFiles/fuzzydb_core.dir/scoring.cc.o"
  "CMakeFiles/fuzzydb_core.dir/scoring.cc.o.d"
  "CMakeFiles/fuzzydb_core.dir/set_ops.cc.o"
  "CMakeFiles/fuzzydb_core.dir/set_ops.cc.o.d"
  "CMakeFiles/fuzzydb_core.dir/tnorms.cc.o"
  "CMakeFiles/fuzzydb_core.dir/tnorms.cc.o.d"
  "CMakeFiles/fuzzydb_core.dir/weights.cc.o"
  "CMakeFiles/fuzzydb_core.dir/weights.cc.o.d"
  "libfuzzydb_core.a"
  "libfuzzydb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzydb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
