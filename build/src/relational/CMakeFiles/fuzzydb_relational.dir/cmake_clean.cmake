file(REMOVE_RECURSE
  "CMakeFiles/fuzzydb_relational.dir/btree.cc.o"
  "CMakeFiles/fuzzydb_relational.dir/btree.cc.o.d"
  "CMakeFiles/fuzzydb_relational.dir/predicate.cc.o"
  "CMakeFiles/fuzzydb_relational.dir/predicate.cc.o.d"
  "CMakeFiles/fuzzydb_relational.dir/relational_source.cc.o"
  "CMakeFiles/fuzzydb_relational.dir/relational_source.cc.o.d"
  "CMakeFiles/fuzzydb_relational.dir/schema.cc.o"
  "CMakeFiles/fuzzydb_relational.dir/schema.cc.o.d"
  "CMakeFiles/fuzzydb_relational.dir/table.cc.o"
  "CMakeFiles/fuzzydb_relational.dir/table.cc.o.d"
  "CMakeFiles/fuzzydb_relational.dir/value.cc.o"
  "CMakeFiles/fuzzydb_relational.dir/value.cc.o.d"
  "libfuzzydb_relational.a"
  "libfuzzydb_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzydb_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
