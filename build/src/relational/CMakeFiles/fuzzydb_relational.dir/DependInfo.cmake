
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/btree.cc" "src/relational/CMakeFiles/fuzzydb_relational.dir/btree.cc.o" "gcc" "src/relational/CMakeFiles/fuzzydb_relational.dir/btree.cc.o.d"
  "/root/repo/src/relational/predicate.cc" "src/relational/CMakeFiles/fuzzydb_relational.dir/predicate.cc.o" "gcc" "src/relational/CMakeFiles/fuzzydb_relational.dir/predicate.cc.o.d"
  "/root/repo/src/relational/relational_source.cc" "src/relational/CMakeFiles/fuzzydb_relational.dir/relational_source.cc.o" "gcc" "src/relational/CMakeFiles/fuzzydb_relational.dir/relational_source.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/relational/CMakeFiles/fuzzydb_relational.dir/schema.cc.o" "gcc" "src/relational/CMakeFiles/fuzzydb_relational.dir/schema.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/relational/CMakeFiles/fuzzydb_relational.dir/table.cc.o" "gcc" "src/relational/CMakeFiles/fuzzydb_relational.dir/table.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/relational/CMakeFiles/fuzzydb_relational.dir/value.cc.o" "gcc" "src/relational/CMakeFiles/fuzzydb_relational.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/middleware/CMakeFiles/fuzzydb_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fuzzydb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fuzzydb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
