# Empty compiler generated dependencies file for fuzzydb_relational.
# This may be replaced when dependencies are built.
