file(REMOVE_RECURSE
  "libfuzzydb_relational.a"
)
