
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/middleware/combined.cc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/combined.cc.o" "gcc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/combined.cc.o.d"
  "/root/repo/src/middleware/composite_rule.cc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/composite_rule.cc.o" "gcc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/composite_rule.cc.o.d"
  "/root/repo/src/middleware/disjunction.cc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/disjunction.cc.o" "gcc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/disjunction.cc.o.d"
  "/root/repo/src/middleware/executor.cc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/executor.cc.o" "gcc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/executor.cc.o.d"
  "/root/repo/src/middleware/fagin.cc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/fagin.cc.o" "gcc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/fagin.cc.o.d"
  "/root/repo/src/middleware/filtered.cc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/filtered.cc.o" "gcc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/filtered.cc.o.d"
  "/root/repo/src/middleware/join.cc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/join.cc.o" "gcc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/join.cc.o.d"
  "/root/repo/src/middleware/naive.cc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/naive.cc.o" "gcc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/naive.cc.o.d"
  "/root/repo/src/middleware/nra.cc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/nra.cc.o" "gcc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/nra.cc.o.d"
  "/root/repo/src/middleware/optimizer.cc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/optimizer.cc.o" "gcc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/optimizer.cc.o.d"
  "/root/repo/src/middleware/selective.cc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/selective.cc.o" "gcc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/selective.cc.o.d"
  "/root/repo/src/middleware/threshold.cc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/threshold.cc.o" "gcc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/threshold.cc.o.d"
  "/root/repo/src/middleware/topk.cc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/topk.cc.o" "gcc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/topk.cc.o.d"
  "/root/repo/src/middleware/vector_source.cc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/vector_source.cc.o" "gcc" "src/middleware/CMakeFiles/fuzzydb_middleware.dir/vector_source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fuzzydb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fuzzydb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
