file(REMOVE_RECURSE
  "CMakeFiles/fuzzydb_middleware.dir/combined.cc.o"
  "CMakeFiles/fuzzydb_middleware.dir/combined.cc.o.d"
  "CMakeFiles/fuzzydb_middleware.dir/composite_rule.cc.o"
  "CMakeFiles/fuzzydb_middleware.dir/composite_rule.cc.o.d"
  "CMakeFiles/fuzzydb_middleware.dir/disjunction.cc.o"
  "CMakeFiles/fuzzydb_middleware.dir/disjunction.cc.o.d"
  "CMakeFiles/fuzzydb_middleware.dir/executor.cc.o"
  "CMakeFiles/fuzzydb_middleware.dir/executor.cc.o.d"
  "CMakeFiles/fuzzydb_middleware.dir/fagin.cc.o"
  "CMakeFiles/fuzzydb_middleware.dir/fagin.cc.o.d"
  "CMakeFiles/fuzzydb_middleware.dir/filtered.cc.o"
  "CMakeFiles/fuzzydb_middleware.dir/filtered.cc.o.d"
  "CMakeFiles/fuzzydb_middleware.dir/join.cc.o"
  "CMakeFiles/fuzzydb_middleware.dir/join.cc.o.d"
  "CMakeFiles/fuzzydb_middleware.dir/naive.cc.o"
  "CMakeFiles/fuzzydb_middleware.dir/naive.cc.o.d"
  "CMakeFiles/fuzzydb_middleware.dir/nra.cc.o"
  "CMakeFiles/fuzzydb_middleware.dir/nra.cc.o.d"
  "CMakeFiles/fuzzydb_middleware.dir/optimizer.cc.o"
  "CMakeFiles/fuzzydb_middleware.dir/optimizer.cc.o.d"
  "CMakeFiles/fuzzydb_middleware.dir/selective.cc.o"
  "CMakeFiles/fuzzydb_middleware.dir/selective.cc.o.d"
  "CMakeFiles/fuzzydb_middleware.dir/threshold.cc.o"
  "CMakeFiles/fuzzydb_middleware.dir/threshold.cc.o.d"
  "CMakeFiles/fuzzydb_middleware.dir/topk.cc.o"
  "CMakeFiles/fuzzydb_middleware.dir/topk.cc.o.d"
  "CMakeFiles/fuzzydb_middleware.dir/vector_source.cc.o"
  "CMakeFiles/fuzzydb_middleware.dir/vector_source.cc.o.d"
  "libfuzzydb_middleware.a"
  "libfuzzydb_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzydb_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
