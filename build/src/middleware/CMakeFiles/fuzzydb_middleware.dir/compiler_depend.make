# Empty compiler generated dependencies file for fuzzydb_middleware.
# This may be replaced when dependencies are built.
