file(REMOVE_RECURSE
  "libfuzzydb_middleware.a"
)
