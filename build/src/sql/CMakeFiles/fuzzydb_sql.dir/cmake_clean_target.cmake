file(REMOVE_RECURSE
  "libfuzzydb_sql.a"
)
