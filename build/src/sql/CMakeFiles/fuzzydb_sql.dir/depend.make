# Empty dependencies file for fuzzydb_sql.
# This may be replaced when dependencies are built.
