file(REMOVE_RECURSE
  "CMakeFiles/fuzzydb_sql.dir/interpreter.cc.o"
  "CMakeFiles/fuzzydb_sql.dir/interpreter.cc.o.d"
  "CMakeFiles/fuzzydb_sql.dir/lexer.cc.o"
  "CMakeFiles/fuzzydb_sql.dir/lexer.cc.o.d"
  "CMakeFiles/fuzzydb_sql.dir/parser.cc.o"
  "CMakeFiles/fuzzydb_sql.dir/parser.cc.o.d"
  "libfuzzydb_sql.a"
  "libfuzzydb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzydb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
