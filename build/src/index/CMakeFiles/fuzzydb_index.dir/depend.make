# Empty dependencies file for fuzzydb_index.
# This may be replaced when dependencies are built.
