
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/gridfile.cc" "src/index/CMakeFiles/fuzzydb_index.dir/gridfile.cc.o" "gcc" "src/index/CMakeFiles/fuzzydb_index.dir/gridfile.cc.o.d"
  "/root/repo/src/index/rtree.cc" "src/index/CMakeFiles/fuzzydb_index.dir/rtree.cc.o" "gcc" "src/index/CMakeFiles/fuzzydb_index.dir/rtree.cc.o.d"
  "/root/repo/src/index/spatial.cc" "src/index/CMakeFiles/fuzzydb_index.dir/spatial.cc.o" "gcc" "src/index/CMakeFiles/fuzzydb_index.dir/spatial.cc.o.d"
  "/root/repo/src/index/zorder.cc" "src/index/CMakeFiles/fuzzydb_index.dir/zorder.cc.o" "gcc" "src/index/CMakeFiles/fuzzydb_index.dir/zorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fuzzydb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fuzzydb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
