file(REMOVE_RECURSE
  "CMakeFiles/fuzzydb_index.dir/gridfile.cc.o"
  "CMakeFiles/fuzzydb_index.dir/gridfile.cc.o.d"
  "CMakeFiles/fuzzydb_index.dir/rtree.cc.o"
  "CMakeFiles/fuzzydb_index.dir/rtree.cc.o.d"
  "CMakeFiles/fuzzydb_index.dir/spatial.cc.o"
  "CMakeFiles/fuzzydb_index.dir/spatial.cc.o.d"
  "CMakeFiles/fuzzydb_index.dir/zorder.cc.o"
  "CMakeFiles/fuzzydb_index.dir/zorder.cc.o.d"
  "libfuzzydb_index.a"
  "libfuzzydb_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzydb_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
