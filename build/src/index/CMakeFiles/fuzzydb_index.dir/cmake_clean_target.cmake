file(REMOVE_RECURSE
  "libfuzzydb_index.a"
)
