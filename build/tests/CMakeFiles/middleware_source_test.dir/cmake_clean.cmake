file(REMOVE_RECURSE
  "CMakeFiles/middleware_source_test.dir/middleware_source_test.cc.o"
  "CMakeFiles/middleware_source_test.dir/middleware_source_test.cc.o.d"
  "middleware_source_test"
  "middleware_source_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
