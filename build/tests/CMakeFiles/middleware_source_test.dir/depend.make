# Empty dependencies file for middleware_source_test.
# This may be replaced when dependencies are built.
