file(REMOVE_RECURSE
  "CMakeFiles/image_color_moments_test.dir/image_color_moments_test.cc.o"
  "CMakeFiles/image_color_moments_test.dir/image_color_moments_test.cc.o.d"
  "image_color_moments_test"
  "image_color_moments_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_color_moments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
