file(REMOVE_RECURSE
  "CMakeFiles/relational_btree_test.dir/relational_btree_test.cc.o"
  "CMakeFiles/relational_btree_test.dir/relational_btree_test.cc.o.d"
  "relational_btree_test"
  "relational_btree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
