# Empty compiler generated dependencies file for relational_btree_test.
# This may be replaced when dependencies are built.
