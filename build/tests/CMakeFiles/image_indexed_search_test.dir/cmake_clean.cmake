file(REMOVE_RECURSE
  "CMakeFiles/image_indexed_search_test.dir/image_indexed_search_test.cc.o"
  "CMakeFiles/image_indexed_search_test.dir/image_indexed_search_test.cc.o.d"
  "image_indexed_search_test"
  "image_indexed_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_indexed_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
