# Empty dependencies file for image_indexed_search_test.
# This may be replaced when dependencies are built.
