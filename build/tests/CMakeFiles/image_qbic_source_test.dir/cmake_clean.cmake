file(REMOVE_RECURSE
  "CMakeFiles/image_qbic_source_test.dir/image_qbic_source_test.cc.o"
  "CMakeFiles/image_qbic_source_test.dir/image_qbic_source_test.cc.o.d"
  "image_qbic_source_test"
  "image_qbic_source_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_qbic_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
