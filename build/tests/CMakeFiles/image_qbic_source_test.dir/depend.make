# Empty dependencies file for image_qbic_source_test.
# This may be replaced when dependencies are built.
