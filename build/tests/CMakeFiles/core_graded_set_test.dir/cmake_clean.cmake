file(REMOVE_RECURSE
  "CMakeFiles/core_graded_set_test.dir/core_graded_set_test.cc.o"
  "CMakeFiles/core_graded_set_test.dir/core_graded_set_test.cc.o.d"
  "core_graded_set_test"
  "core_graded_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_graded_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
