# Empty dependencies file for core_graded_set_test.
# This may be replaced when dependencies are built.
