# Empty compiler generated dependencies file for core_weights_test.
# This may be replaced when dependencies are built.
