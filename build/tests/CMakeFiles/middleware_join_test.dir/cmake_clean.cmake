file(REMOVE_RECURSE
  "CMakeFiles/middleware_join_test.dir/middleware_join_test.cc.o"
  "CMakeFiles/middleware_join_test.dir/middleware_join_test.cc.o.d"
  "middleware_join_test"
  "middleware_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
