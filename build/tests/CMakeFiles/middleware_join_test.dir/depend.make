# Empty dependencies file for middleware_join_test.
# This may be replaced when dependencies are built.
