file(REMOVE_RECURSE
  "CMakeFiles/sql_interpreter_test.dir/sql_interpreter_test.cc.o"
  "CMakeFiles/sql_interpreter_test.dir/sql_interpreter_test.cc.o.d"
  "sql_interpreter_test"
  "sql_interpreter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_interpreter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
