file(REMOVE_RECURSE
  "CMakeFiles/core_set_ops_test.dir/core_set_ops_test.cc.o"
  "CMakeFiles/core_set_ops_test.dir/core_set_ops_test.cc.o.d"
  "core_set_ops_test"
  "core_set_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_set_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
