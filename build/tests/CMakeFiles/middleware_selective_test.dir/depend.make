# Empty dependencies file for middleware_selective_test.
# This may be replaced when dependencies are built.
