file(REMOVE_RECURSE
  "CMakeFiles/middleware_selective_test.dir/middleware_selective_test.cc.o"
  "CMakeFiles/middleware_selective_test.dir/middleware_selective_test.cc.o.d"
  "middleware_selective_test"
  "middleware_selective_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_selective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
