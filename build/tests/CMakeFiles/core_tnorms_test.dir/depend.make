# Empty dependencies file for core_tnorms_test.
# This may be replaced when dependencies are built.
