file(REMOVE_RECURSE
  "CMakeFiles/core_tnorms_test.dir/core_tnorms_test.cc.o"
  "CMakeFiles/core_tnorms_test.dir/core_tnorms_test.cc.o.d"
  "core_tnorms_test"
  "core_tnorms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tnorms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
