file(REMOVE_RECURSE
  "CMakeFiles/middleware_cursor_test.dir/middleware_cursor_test.cc.o"
  "CMakeFiles/middleware_cursor_test.dir/middleware_cursor_test.cc.o.d"
  "middleware_cursor_test"
  "middleware_cursor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_cursor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
