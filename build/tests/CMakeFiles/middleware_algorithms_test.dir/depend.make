# Empty dependencies file for middleware_algorithms_test.
# This may be replaced when dependencies are built.
