file(REMOVE_RECURSE
  "CMakeFiles/middleware_algorithms_test.dir/middleware_algorithms_test.cc.o"
  "CMakeFiles/middleware_algorithms_test.dir/middleware_algorithms_test.cc.o.d"
  "middleware_algorithms_test"
  "middleware_algorithms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
