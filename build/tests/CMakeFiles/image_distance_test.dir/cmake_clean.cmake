file(REMOVE_RECURSE
  "CMakeFiles/image_distance_test.dir/image_distance_test.cc.o"
  "CMakeFiles/image_distance_test.dir/image_distance_test.cc.o.d"
  "image_distance_test"
  "image_distance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
