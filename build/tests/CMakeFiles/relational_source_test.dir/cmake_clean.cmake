file(REMOVE_RECURSE
  "CMakeFiles/relational_source_test.dir/relational_source_test.cc.o"
  "CMakeFiles/relational_source_test.dir/relational_source_test.cc.o.d"
  "relational_source_test"
  "relational_source_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
