file(REMOVE_RECURSE
  "CMakeFiles/relational_table_test.dir/relational_table_test.cc.o"
  "CMakeFiles/relational_table_test.dir/relational_table_test.cc.o.d"
  "relational_table_test"
  "relational_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
