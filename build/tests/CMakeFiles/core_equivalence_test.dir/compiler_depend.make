# Empty compiler generated dependencies file for core_equivalence_test.
# This may be replaced when dependencies are built.
