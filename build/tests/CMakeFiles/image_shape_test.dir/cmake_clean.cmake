file(REMOVE_RECURSE
  "CMakeFiles/image_shape_test.dir/image_shape_test.cc.o"
  "CMakeFiles/image_shape_test.dir/image_shape_test.cc.o.d"
  "image_shape_test"
  "image_shape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
