file(REMOVE_RECURSE
  "CMakeFiles/middleware_combined_test.dir/middleware_combined_test.cc.o"
  "CMakeFiles/middleware_combined_test.dir/middleware_combined_test.cc.o.d"
  "middleware_combined_test"
  "middleware_combined_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_combined_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
