# Empty dependencies file for middleware_combined_test.
# This may be replaced when dependencies are built.
