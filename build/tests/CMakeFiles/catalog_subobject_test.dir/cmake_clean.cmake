file(REMOVE_RECURSE
  "CMakeFiles/catalog_subobject_test.dir/catalog_subobject_test.cc.o"
  "CMakeFiles/catalog_subobject_test.dir/catalog_subobject_test.cc.o.d"
  "catalog_subobject_test"
  "catalog_subobject_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_subobject_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
