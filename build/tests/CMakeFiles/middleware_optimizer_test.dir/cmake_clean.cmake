file(REMOVE_RECURSE
  "CMakeFiles/middleware_optimizer_test.dir/middleware_optimizer_test.cc.o"
  "CMakeFiles/middleware_optimizer_test.dir/middleware_optimizer_test.cc.o.d"
  "middleware_optimizer_test"
  "middleware_optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
