file(REMOVE_RECURSE
  "CMakeFiles/middleware_executor_test.dir/middleware_executor_test.cc.o"
  "CMakeFiles/middleware_executor_test.dir/middleware_executor_test.cc.o.d"
  "middleware_executor_test"
  "middleware_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
