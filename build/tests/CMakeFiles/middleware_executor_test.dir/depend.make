# Empty dependencies file for middleware_executor_test.
# This may be replaced when dependencies are built.
