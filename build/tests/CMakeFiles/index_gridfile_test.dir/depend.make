# Empty dependencies file for index_gridfile_test.
# This may be replaced when dependencies are built.
