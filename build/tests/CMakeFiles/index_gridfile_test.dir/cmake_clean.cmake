file(REMOVE_RECURSE
  "CMakeFiles/index_gridfile_test.dir/index_gridfile_test.cc.o"
  "CMakeFiles/index_gridfile_test.dir/index_gridfile_test.cc.o.d"
  "index_gridfile_test"
  "index_gridfile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_gridfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
