# Empty dependencies file for index_zorder_test.
# This may be replaced when dependencies are built.
