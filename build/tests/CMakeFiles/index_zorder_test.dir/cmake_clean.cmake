file(REMOVE_RECURSE
  "CMakeFiles/index_zorder_test.dir/index_zorder_test.cc.o"
  "CMakeFiles/index_zorder_test.dir/index_zorder_test.cc.o.d"
  "index_zorder_test"
  "index_zorder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_zorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
