# Empty dependencies file for exp5_filter_bound.
# This may be replaced when dependencies are built.
