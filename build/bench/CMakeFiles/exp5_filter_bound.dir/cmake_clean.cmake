file(REMOVE_RECURSE
  "CMakeFiles/exp5_filter_bound.dir/exp5_filter_bound.cc.o"
  "CMakeFiles/exp5_filter_bound.dir/exp5_filter_bound.cc.o.d"
  "exp5_filter_bound"
  "exp5_filter_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp5_filter_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
