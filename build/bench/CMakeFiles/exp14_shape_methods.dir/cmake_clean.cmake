file(REMOVE_RECURSE
  "CMakeFiles/exp14_shape_methods.dir/exp14_shape_methods.cc.o"
  "CMakeFiles/exp14_shape_methods.dir/exp14_shape_methods.cc.o.d"
  "exp14_shape_methods"
  "exp14_shape_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp14_shape_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
