# Empty dependencies file for exp14_shape_methods.
# This may be replaced when dependencies are built.
