file(REMOVE_RECURSE
  "CMakeFiles/exp15_join_pipeline.dir/exp15_join_pipeline.cc.o"
  "CMakeFiles/exp15_join_pipeline.dir/exp15_join_pipeline.cc.o.d"
  "exp15_join_pipeline"
  "exp15_join_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp15_join_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
