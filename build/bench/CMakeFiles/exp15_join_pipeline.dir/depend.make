# Empty dependencies file for exp15_join_pipeline.
# This may be replaced when dependencies are built.
