file(REMOVE_RECURSE
  "CMakeFiles/exp12_filter_strategies.dir/exp12_filter_strategies.cc.o"
  "CMakeFiles/exp12_filter_strategies.dir/exp12_filter_strategies.cc.o.d"
  "exp12_filter_strategies"
  "exp12_filter_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp12_filter_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
