# Empty compiler generated dependencies file for exp12_filter_strategies.
# This may be replaced when dependencies are built.
