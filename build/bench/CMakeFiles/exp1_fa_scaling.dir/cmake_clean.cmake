file(REMOVE_RECURSE
  "CMakeFiles/exp1_fa_scaling.dir/exp1_fa_scaling.cc.o"
  "CMakeFiles/exp1_fa_scaling.dir/exp1_fa_scaling.cc.o.d"
  "exp1_fa_scaling"
  "exp1_fa_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp1_fa_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
