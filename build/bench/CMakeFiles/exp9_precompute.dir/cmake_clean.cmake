file(REMOVE_RECURSE
  "CMakeFiles/exp9_precompute.dir/exp9_precompute.cc.o"
  "CMakeFiles/exp9_precompute.dir/exp9_precompute.cc.o.d"
  "exp9_precompute"
  "exp9_precompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp9_precompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
