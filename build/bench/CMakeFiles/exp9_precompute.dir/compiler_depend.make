# Empty compiler generated dependencies file for exp9_precompute.
# This may be replaced when dependencies are built.
