# Empty dependencies file for exp8_correlation.
# This may be replaced when dependencies are built.
