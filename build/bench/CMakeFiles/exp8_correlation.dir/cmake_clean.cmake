file(REMOVE_RECURSE
  "CMakeFiles/exp8_correlation.dir/exp8_correlation.cc.o"
  "CMakeFiles/exp8_correlation.dir/exp8_correlation.cc.o.d"
  "exp8_correlation"
  "exp8_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp8_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
