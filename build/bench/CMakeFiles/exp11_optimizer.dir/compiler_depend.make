# Empty compiler generated dependencies file for exp11_optimizer.
# This may be replaced when dependencies are built.
