file(REMOVE_RECURSE
  "CMakeFiles/exp11_optimizer.dir/exp11_optimizer.cc.o"
  "CMakeFiles/exp11_optimizer.dir/exp11_optimizer.cc.o.d"
  "exp11_optimizer"
  "exp11_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp11_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
