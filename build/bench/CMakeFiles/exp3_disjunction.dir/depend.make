# Empty dependencies file for exp3_disjunction.
# This may be replaced when dependencies are built.
