file(REMOVE_RECURSE
  "CMakeFiles/exp3_disjunction.dir/exp3_disjunction.cc.o"
  "CMakeFiles/exp3_disjunction.dir/exp3_disjunction.cc.o.d"
  "exp3_disjunction"
  "exp3_disjunction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp3_disjunction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
