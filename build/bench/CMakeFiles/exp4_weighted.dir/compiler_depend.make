# Empty compiler generated dependencies file for exp4_weighted.
# This may be replaced when dependencies are built.
