file(REMOVE_RECURSE
  "CMakeFiles/exp4_weighted.dir/exp4_weighted.cc.o"
  "CMakeFiles/exp4_weighted.dir/exp4_weighted.cc.o.d"
  "exp4_weighted"
  "exp4_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp4_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
