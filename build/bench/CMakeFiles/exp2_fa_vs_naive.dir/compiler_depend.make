# Empty compiler generated dependencies file for exp2_fa_vs_naive.
# This may be replaced when dependencies are built.
