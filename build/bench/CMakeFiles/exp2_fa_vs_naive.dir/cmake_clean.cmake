file(REMOVE_RECURSE
  "CMakeFiles/exp2_fa_vs_naive.dir/exp2_fa_vs_naive.cc.o"
  "CMakeFiles/exp2_fa_vs_naive.dir/exp2_fa_vs_naive.cc.o.d"
  "exp2_fa_vs_naive"
  "exp2_fa_vs_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp2_fa_vs_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
