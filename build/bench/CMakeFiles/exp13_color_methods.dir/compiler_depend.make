# Empty compiler generated dependencies file for exp13_color_methods.
# This may be replaced when dependencies are built.
