file(REMOVE_RECURSE
  "CMakeFiles/exp13_color_methods.dir/exp13_color_methods.cc.o"
  "CMakeFiles/exp13_color_methods.dir/exp13_color_methods.cc.o.d"
  "exp13_color_methods"
  "exp13_color_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp13_color_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
