# Empty dependencies file for exp7_ta_vs_fa.
# This may be replaced when dependencies are built.
