file(REMOVE_RECURSE
  "CMakeFiles/exp7_ta_vs_fa.dir/exp7_ta_vs_fa.cc.o"
  "CMakeFiles/exp7_ta_vs_fa.dir/exp7_ta_vs_fa.cc.o.d"
  "exp7_ta_vs_fa"
  "exp7_ta_vs_fa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp7_ta_vs_fa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
