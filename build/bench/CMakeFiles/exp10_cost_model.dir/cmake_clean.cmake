file(REMOVE_RECURSE
  "CMakeFiles/exp10_cost_model.dir/exp10_cost_model.cc.o"
  "CMakeFiles/exp10_cost_model.dir/exp10_cost_model.cc.o.d"
  "exp10_cost_model"
  "exp10_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp10_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
