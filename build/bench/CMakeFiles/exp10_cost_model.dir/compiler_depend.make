# Empty compiler generated dependencies file for exp10_cost_model.
# This may be replaced when dependencies are built.
