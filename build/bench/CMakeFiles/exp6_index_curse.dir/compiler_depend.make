# Empty compiler generated dependencies file for exp6_index_curse.
# This may be replaced when dependencies are built.
