file(REMOVE_RECURSE
  "CMakeFiles/exp6_index_curse.dir/exp6_index_curse.cc.o"
  "CMakeFiles/exp6_index_curse.dir/exp6_index_curse.cc.o.d"
  "exp6_index_curse"
  "exp6_index_curse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp6_index_curse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
