file(REMOVE_RECURSE
  "CMakeFiles/complex_objects.dir/complex_objects.cc.o"
  "CMakeFiles/complex_objects.dir/complex_objects.cc.o.d"
  "complex_objects"
  "complex_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
