# Empty dependencies file for complex_objects.
# This may be replaced when dependencies are built.
