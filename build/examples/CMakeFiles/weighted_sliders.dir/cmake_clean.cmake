file(REMOVE_RECURSE
  "CMakeFiles/weighted_sliders.dir/weighted_sliders.cc.o"
  "CMakeFiles/weighted_sliders.dir/weighted_sliders.cc.o.d"
  "weighted_sliders"
  "weighted_sliders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_sliders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
