# Empty dependencies file for weighted_sliders.
# This may be replaced when dependencies are built.
