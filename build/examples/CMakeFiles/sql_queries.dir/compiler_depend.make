# Empty compiler generated dependencies file for sql_queries.
# This may be replaced when dependencies are built.
