file(REMOVE_RECURSE
  "CMakeFiles/sql_queries.dir/sql_queries.cc.o"
  "CMakeFiles/sql_queries.dir/sql_queries.cc.o.d"
  "sql_queries"
  "sql_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
