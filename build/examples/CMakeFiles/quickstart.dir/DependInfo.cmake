
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cc" "examples/CMakeFiles/quickstart.dir/quickstart.cc.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/fuzzydb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/fuzzydb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fuzzydb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/fuzzydb_image.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/fuzzydb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/fuzzydb_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/fuzzydb_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fuzzydb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fuzzydb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
