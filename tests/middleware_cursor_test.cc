// Tests for the resumable FaginCursor ("continue where we left off",
// paper §4.1).

#include <gtest/gtest.h>

#include <set>

#include "middleware/fagin.h"
#include "middleware/naive.h"
#include "sim/experiment.h"
#include "sim/workload.h"

namespace fuzzydb {
namespace {

TEST(FaginCursorTest, BatchesReproduceTheFullRanking) {
  Rng rng(271);
  Workload w = IndependentUniform(&rng, 300, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);

  Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
  ASSERT_TRUE(truth.ok());
  std::vector<GradedObject> expected = truth->Sorted();

  Result<FaginCursor> cursor = FaginCursor::Create(ptrs, MinRule());
  ASSERT_TRUE(cursor.ok());
  std::vector<GradedObject> streamed;
  while (streamed.size() < 300) {
    Result<TopKResult> batch = cursor->NextBatch(25);
    ASSERT_TRUE(batch.ok());
    ASSERT_FALSE(batch->items.empty());
    streamed.insert(streamed.end(), batch->items.begin(), batch->items.end());
  }
  ASSERT_EQ(streamed.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    // Grades are continuous uniforms: ties have probability 0, so the order
    // must match exactly.
    EXPECT_EQ(streamed[i].id, expected[i].id) << "position " << i;
    EXPECT_NEAR(streamed[i].grade, expected[i].grade, 1e-12);
  }
}

TEST(FaginCursorTest, BatchesNeverRepeatObjects) {
  Rng rng(277);
  Workload w = IndependentUniform(&rng, 200, 3);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  Result<FaginCursor> cursor = FaginCursor::Create(ptrs, MinRule());
  ASSERT_TRUE(cursor.ok());
  std::set<ObjectId> seen;
  for (int b = 0; b < 8; ++b) {
    Result<TopKResult> batch = cursor->NextBatch(10);
    ASSERT_TRUE(batch.ok());
    for (const GradedObject& g : batch->items) {
      EXPECT_TRUE(seen.insert(g.id).second) << "duplicate id " << g.id;
    }
  }
}

TEST(FaginCursorTest, CostGrowsIncrementally) {
  // The second batch should cost much less than running A0 from scratch
  // for 2k, because sorted access resumes and random accesses are cached.
  Rng rng(281);
  Workload w = IndependentUniform(&rng, 5000, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);

  Result<FaginCursor> cursor = FaginCursor::Create(ptrs, MinRule());
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE(cursor->NextBatch(10).ok());
  uint64_t after_first = cursor->cost().total();
  ASSERT_TRUE(cursor->NextBatch(10).ok());
  uint64_t after_second = cursor->cost().total();

  // One-shot run for 2k from scratch.
  Result<TopKResult> oneshot = FaginTopK(ptrs, *MinRule(), 20);
  ASSERT_TRUE(oneshot.ok());
  // Resumed total should not exceed the one-shot cost by more than the
  // first batch's overhead (they see the same sorted prefixes).
  EXPECT_LE(after_second, oneshot->cost.total() + after_first);
  EXPECT_GT(after_second, after_first);
}

TEST(FaginCursorTest, DrainsTheWholeDatabaseThenReturnsEmpty) {
  Rng rng(283);
  Workload w = IndependentUniform(&rng, 50, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  Result<FaginCursor> cursor = FaginCursor::Create(ptrs, MinRule());
  ASSERT_TRUE(cursor.ok());
  Result<TopKResult> all = cursor->NextBatch(100);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->items.size(), 50u);
  Result<TopKResult> empty = cursor->NextBatch(10);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->items.empty());
}

TEST(FaginCursorTest, RejectsBadArguments) {
  Rng rng(293);
  Workload w = IndependentUniform(&rng, 10, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  EXPECT_FALSE(FaginCursor::Create({}, MinRule()).ok());
  Result<FaginCursor> cursor = FaginCursor::Create(ptrs, MinRule());
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE(cursor->NextBatch(0).ok());
}

}  // namespace
}  // namespace fuzzydb
