// Determinism harness for the parallel middleware layer (DESIGN §3e).
//
// The headline guarantee under test: A0/TA/NRA with per-source prefetch and
// batched random access return the SAME top-k objects, bitwise-identical
// grades, and identical per-source consumed access counts as the serial
// loops — at every prefetch depth and pool size, including duplicate-grade
// tie storms and empty/exhausted/unequal-length sources. Speedup is
// benchmarked elsewhere (bench/exp18); this file pins down correctness.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>

#include "analysis/parallel_audit.h"
#include "common/thread_pool.h"
#include "middleware/combined.h"
#include "middleware/fagin.h"
#include "middleware/join.h"
#include "middleware/nra.h"
#include "middleware/parallel.h"
#include "middleware/threshold.h"
#include "middleware/vector_source.h"
#include "sim/experiment.h"
#include "sim/workload.h"

namespace fuzzydb {
namespace {

using ParallelRunner = Result<TopKResult> (*)(std::span<GradedSource* const>,
                                              const ScoringRule&, size_t,
                                              const ParallelOptions&);

// CA pinned at h=2 (the auditor's default period) so the mixed
// sorted/random access pattern — NRA-style rounds plus a resolution batch
// every other round — goes through the same sweep as the pure algorithms.
Result<TopKResult> CombinedPeriod2TopK(std::span<GradedSource* const> sources,
                                       const ScoringRule& rule, size_t k,
                                       const ParallelOptions& options) {
  return CombinedTopK(sources, rule, k, 2, options);
}

struct AlgoCase {
  const char* name;
  ParallelRunner run;
  AuditedAlgorithm audited;
};

const AlgoCase kAlgos[] = {
    {"fagin-a0", static_cast<ParallelRunner>(FaginTopK),
     AuditedAlgorithm::kFagin},
    {"ta", static_cast<ParallelRunner>(ThresholdTopK),
     AuditedAlgorithm::kThreshold},
    {"nra", static_cast<ParallelRunner>(NoRandomAccessTopK),
     AuditedAlgorithm::kNoRandomAccess},
    {"ca-h2", CombinedPeriod2TopK, AuditedAlgorithm::kCombined},
};

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

// Asserts the full equivalence contract between a serial and a parallel run
// of `algo` over the same sources.
void ExpectEquivalent(const AlgoCase& algo,
                      std::span<GradedSource* const> ptrs,
                      const ScoringRule& rule, size_t k,
                      const ParallelOptions& options,
                      const std::string& label) {
  Result<TopKResult> serial = algo.run(ptrs, rule, k, ParallelOptions{});
  Result<TopKResult> parallel = algo.run(ptrs, rule, k, options);
  ASSERT_TRUE(serial.ok()) << label;
  ASSERT_TRUE(parallel.ok()) << label;

  ASSERT_EQ(serial->items.size(), parallel->items.size()) << label;
  for (size_t r = 0; r < serial->items.size(); ++r) {
    EXPECT_EQ(serial->items[r].id, parallel->items[r].id)
        << label << " rank " << r;
    EXPECT_TRUE(BitEqual(serial->items[r].grade, parallel->items[r].grade))
        << label << " rank " << r << ": " << serial->items[r].grade << " vs "
        << parallel->items[r].grade;
  }
  EXPECT_EQ(serial->grades_exact, parallel->grades_exact) << label;

  // Consumed access counts are schedule-independent, source by source.
  ASSERT_EQ(serial->per_source.size(), parallel->per_source.size()) << label;
  for (size_t j = 0; j < serial->per_source.size(); ++j) {
    EXPECT_EQ(serial->per_source[j].sorted, parallel->per_source[j].sorted)
        << label << " source " << j;
    EXPECT_EQ(serial->per_source[j].random, parallel->per_source[j].random)
        << label << " source " << j;
  }
  EXPECT_EQ(serial->cost.sorted, parallel->cost.sorted) << label;
  EXPECT_EQ(serial->cost.random, parallel->cost.random) << label;
  EXPECT_EQ(serial->cost.prefetched, 0u) << label;
  // The speculative overhang never leaks into the paper's cost measure.
  EXPECT_EQ(parallel->cost.total(),
            parallel->cost.sorted + parallel->cost.random)
      << label;
}

// One workload under every algorithm × depth × pool-size combination.
void SweepConfigurations(const std::vector<GradedSource*>& ptrs,
                         const ScoringRule& rule, size_t k,
                         const std::string& workload_name) {
  for (size_t pool_size : {1u, 2u, 7u}) {
    ThreadPool pool(pool_size);
    for (size_t depth : {1u, 2u, 8u, 64u}) {
      ParallelOptions options;
      options.pool = &pool;
      options.prefetch_depth = depth;
      for (const AlgoCase& algo : kAlgos) {
        ExpectEquivalent(algo, ptrs, rule, k, options,
                         workload_name + "/" + algo.name + "/pool" +
                             std::to_string(pool_size) + "/depth" +
                             std::to_string(depth));
      }
    }
  }
}

TEST(ParallelEquivalenceTest, IndependentUniformWorkload) {
  Rng rng(20260801);
  Workload w = IndependentUniform(&rng, 400, 3);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  SweepConfigurations(SourcePtrs(*sources), *MinRule(), 10, "uniform");
}

TEST(ParallelEquivalenceTest, TieStormWorkload) {
  // Four grade levels over 400 objects: every sorted list is a plateau of
  // duplicates, the regime where a wrong tie-break or an early/late
  // threshold check would change the answer.
  Rng rng(20260802);
  Workload w = QuantizedUniform(&rng, 400, 3, 4);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  SweepConfigurations(SourcePtrs(*sources), *MinRule(), 10, "tie-storm");
  SweepConfigurations(SourcePtrs(*sources), *ArithmeticMeanRule(), 5,
                      "tie-storm-avg");
}

TEST(ParallelEquivalenceTest, UnequalAndEmptySources) {
  // One full list, one truncated to 30 of 200, one entirely empty: prefetch
  // must handle exhaustion mid-buffer and sources that exhaust instantly.
  Rng rng(20260803);
  Workload w = IndependentUniform(&rng, 200, 3);
  Result<std::vector<VectorSource>> sources =
      MakeTruncatedSources(w, {200, 30, 0});
  ASSERT_TRUE(sources.ok());
  SweepConfigurations(SourcePtrs(*sources), *MinRule(), 10, "truncated");
  SweepConfigurations(SourcePtrs(*sources), *ArithmeticMeanRule(), 10,
                      "truncated-avg");
}

TEST(ParallelEquivalenceTest, DepthLargerThanList) {
  // Prefetch depth beyond the whole database: the buffer drains the source
  // completely up front and keeps working.
  Rng rng(20260804);
  Workload w = IndependentUniform(&rng, 40, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  ThreadPool pool(3);
  ParallelOptions options;
  options.pool = &pool;
  options.prefetch_depth = 1024;
  for (const AlgoCase& algo : kAlgos) {
    ExpectEquivalent(algo, ptrs, *MinRule(), 10, options,
                     std::string("overdeep/") + algo.name);
  }
}

TEST(ParallelEquivalenceTest, AuditorConfirmsAccessLogContract) {
  // The analysis-layer auditor checks the stronger log-level contract:
  // serial sorted log is a prefix of the parallel one (overhang <= depth)
  // and random sequences match exactly.
  Rng rng(20260805);
  Workload w = QuantizedUniform(&rng, 300, 3, 5);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  ThreadPool pool(4);
  for (const AlgoCase& algo : kAlgos) {
    ParallelAuditOptions options;
    options.k = 8;
    options.parallel.pool = &pool;
    options.parallel.prefetch_depth = 8;
    AuditReport report =
        AuditParallelEquivalence(ptrs, *MinRule(), algo.audited, options);
    EXPECT_TRUE(report.ok()) << report.ToString();
    EXPECT_GT(report.checks_run(), 0u) << algo.name;
  }
}

// A source that is not repeatable across runs: the first full pass serves
// its whole list, every later pass exhausts after `later_len` items. Each
// individual pass is perfectly sorted, so no access-contract invariant
// fires — but run-to-run equivalence is broken, which is exactly what the
// parallel auditor must refute (the serial reference run sees a longer list
// than the parallel run under audit).
class ShrinkingSource final : public GradedSource {
 public:
  ShrinkingSource(GradedSource* inner, size_t later_len)
      : inner_(inner), later_len_(later_len) {}
  size_t Size() const override { return inner_->Size(); }
  std::optional<GradedObject> NextSorted() override {
    size_t limit = epoch_ <= 1 ? inner_->Size() : later_len_;
    if (served_ >= limit) return std::nullopt;
    ++served_;
    return inner_->NextSorted();
  }
  void RestartSorted() override {
    ++epoch_;
    served_ = 0;
    inner_->RestartSorted();
  }
  double RandomAccess(ObjectId id) override {
    return inner_->RandomAccess(id);
  }
  std::vector<GradedObject> AtLeast(double threshold) override {
    return inner_->AtLeast(threshold);
  }
  std::string name() const override { return "shrinking"; }

 private:
  GradedSource* inner_;
  const size_t later_len_;
  size_t epoch_ = 0;   // incremented per restart; each run restarts once
  size_t served_ = 0;
};

TEST(ParallelEquivalenceTest, AuditorRefutesANonRepeatableSource) {
  Rng rng(20260806);
  Workload w = IndependentUniform(&rng, 200, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  ShrinkingSource unstable(&(*sources)[1], 3);
  std::vector<GradedSource*> ptrs = {&(*sources)[0], &unstable};

  ThreadPool pool(2);
  ParallelAuditOptions options;
  options.k = 5;
  options.parallel.pool = &pool;
  options.parallel.prefetch_depth = 4;
  AuditReport report = AuditParallelEquivalence(
      ptrs, *MinRule(), AuditedAlgorithm::kThreshold, options);
  EXPECT_FALSE(report.ok())
      << "a non-repeatable source must not audit clean";
  EXPECT_FALSE(report.findings().empty());
}

TEST(PrefetchSourceTest, StreamMatchesInnerSortedOrder) {
  Rng rng(20260807);
  Workload w = IndependentUniform(&rng, 100, 1);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  VectorSource& inner = (*sources)[0];

  for (size_t depth : {1u, 4u, 32u, 1024u}) {
    inner.RestartSorted();
    PrefetchSource pf(&inner, depth, InlineExecutor::Get());
    std::vector<GradedObject> streamed;
    while (std::optional<GradedObject> next = pf.NextSorted()) {
      streamed.push_back(*next);
    }
    EXPECT_EQ(streamed, inner.sorted_items()) << "depth " << depth;
    EXPECT_FALSE(pf.NextSorted().has_value());  // stays exhausted
    PrefetchSource::Stats stats = pf.Quiesce();
    EXPECT_EQ(stats.consumed, inner.sorted_items().size());
    EXPECT_EQ(stats.fetched, stats.consumed)  // fully drained: no waste
        << "depth " << depth;
    EXPECT_EQ(stats.wasted(), 0u);
  }
}

TEST(PrefetchSourceTest, RestartRewindsConsumptionButKeepsWasteCharged) {
  Rng rng(20260808);
  Workload w = IndependentUniform(&rng, 50, 1);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  VectorSource& inner = (*sources)[0];

  PrefetchSource pf(&inner, 8, InlineExecutor::Get());
  pf.RestartSorted();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(pf.NextSorted().has_value());
  pf.RestartSorted();
  std::vector<GradedObject> streamed;
  while (std::optional<GradedObject> next = pf.NextSorted()) {
    streamed.push_back(*next);
  }
  EXPECT_EQ(streamed, inner.sorted_items());
  // Accounting spans restarts: the 5 pre-restart pops stay consumed, and
  // pre-restart fetches whose buffered items were discarded stay in
  // `fetched` as waste.
  PrefetchSource::Stats stats = pf.Quiesce();
  EXPECT_EQ(stats.consumed, inner.sorted_items().size() + 5);
  EXPECT_GE(stats.fetched, stats.consumed);
}

TEST(PrefetchSourceTest, QuiesceIsIdempotentAndKeepsSourceUsable) {
  Rng rng(20260809);
  Workload w = IndependentUniform(&rng, 30, 1);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  VectorSource& inner = (*sources)[0];

  ThreadPool pool(3);
  PrefetchSource pf(&inner, 4, &pool);
  pf.RestartSorted();
  ASSERT_TRUE(pf.NextSorted().has_value());
  PrefetchSource::Stats first = pf.Quiesce();
  PrefetchSource::Stats second = pf.Quiesce();
  EXPECT_EQ(first.fetched, second.fetched);
  EXPECT_EQ(first.consumed, second.consumed);
  EXPECT_LE(first.wasted(), 4u);  // overhang bounded by depth
  // Still streams correctly after quiescing (synchronously).
  std::optional<GradedObject> next = pf.NextSorted();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->id, inner.sorted_items()[1].id);
}

TEST(PrefetchSourceTest, RandomAccessAndSizeForwardThroughDecorator) {
  Rng rng(20260810);
  Workload w = IndependentUniform(&rng, 25, 1);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  VectorSource& inner = (*sources)[0];

  PrefetchSource pf(&inner, 4, InlineExecutor::Get());
  EXPECT_EQ(pf.Size(), inner.Size());
  const GradedObject& probe = inner.sorted_items()[7];
  EXPECT_TRUE(BitEqual(pf.RandomAccess(probe.id), probe.grade));
  EXPECT_TRUE(BitEqual(pf.RandomAccess(999999), 0.0));
}

TEST(ResolveProbesTest, ShardedAndSequentialResolutionAgree) {
  Rng rng(20260811);
  const size_t m = 4;
  Workload w = IndependentUniform(&rng, 60, m);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());

  // Same probe set resolved with and without a pool.
  auto run = [&](ThreadPool* pool, std::vector<AccessCost>* tallies) {
    std::vector<CountingSource> counted;
    counted.reserve(m);
    tallies->assign(m, AccessCost{});
    for (size_t j = 0; j < m; ++j) {
      counted.emplace_back(&(*sources)[j], &(*tallies)[j]);
    }
    std::vector<ProbeList> probes(m);
    std::vector<std::vector<double>> rows(8, std::vector<double>(m, 0.0));
    for (size_t r = 0; r < rows.size(); ++r) {
      for (size_t j = 0; j < m; ++j) {
        if ((r + j) % 2 == 0) {
          probes[j].probes.push_back({r, w.ids[(r * 7 + j) % w.n()]});
        }
      }
    }
    ResolveProbes(counted, probes, &rows, pool);
    return rows;
  };

  std::vector<AccessCost> serial_cost, pooled_cost;
  std::vector<std::vector<double>> serial_rows = run(nullptr, &serial_cost);
  ThreadPool pool(5);
  std::vector<std::vector<double>> pooled_rows = run(&pool, &pooled_cost);

  ASSERT_EQ(serial_rows.size(), pooled_rows.size());
  for (size_t r = 0; r < serial_rows.size(); ++r) {
    for (size_t j = 0; j < m; ++j) {
      EXPECT_TRUE(BitEqual(serial_rows[r][j], pooled_rows[r][j]))
          << "row " << r << " col " << j;
    }
  }
  for (size_t j = 0; j < m; ++j) {
    EXPECT_EQ(serial_cost[j].random, pooled_cost[j].random) << j;
    EXPECT_EQ(serial_cost[j].sorted, 0u);
  }
}

TEST(ParallelCostTest, SpeculativeWasteIsVisibleButNeverCharged) {
  // Inline executor + deep prefetch: the fill runs ahead deterministically,
  // so TA leaves a known overhang that must land in cost.prefetched and
  // stay out of cost.total().
  Rng rng(20260812);
  Workload w = IndependentUniform(&rng, 500, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);

  Result<TopKResult> serial = ThresholdTopK(ptrs, *MinRule(), 3);
  ParallelOptions options;
  options.prefetch_depth = 64;
  options.executor = InlineExecutor::Get();
  Result<TopKResult> parallel = ThresholdTopK(ptrs, *MinRule(), 3, options);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());

  EXPECT_EQ(serial->cost.sorted, parallel->cost.sorted);
  EXPECT_EQ(serial->cost.random, parallel->cost.random);
  EXPECT_GT(parallel->cost.prefetched, 0u);
  EXPECT_EQ(parallel->cost.total(), serial->cost.total());
  EXPECT_EQ(parallel->cost.total_issued(),
            parallel->cost.total() + parallel->cost.prefetched);
  // Per-source overhang is bounded by the configured depth.
  for (const AccessCost& c : parallel->per_source) {
    EXPECT_LE(c.prefetched, 64u);
  }
}

// Drains up to `limit` items from a fresh join over (left, right) built
// with `options`, restarting the inputs first so every run sees the same
// streams.
std::vector<GradedObject> DrainJoin(GradedSource* left, GradedSource* right,
                                    const ParallelOptions& options,
                                    size_t limit) {
  left->RestartSorted();
  right->RestartSorted();
  Result<TopKJoinSource> join =
      TopKJoinSource::Create(left, right, MinRule(), "join", options);
  EXPECT_TRUE(join.ok());
  std::vector<GradedObject> out;
  while (out.size() < limit) {
    std::optional<GradedObject> next = join->NextSorted();
    if (!next.has_value()) break;
    out.push_back(*next);
  }
  return out;
}

void ExpectSameStream(const std::vector<GradedObject>& serial,
                      const std::vector<GradedObject>& parallel,
                      const std::string& label) {
  ASSERT_EQ(serial.size(), parallel.size()) << label;
  for (size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(serial[r].id, parallel[r].id) << label << " rank " << r;
    EXPECT_TRUE(BitEqual(serial[r].grade, parallel[r].grade))
        << label << " rank " << r;
  }
}

TEST(ParallelJoinTest, EmittedStreamIsBitIdenticalAcrossDepthsAndPools) {
  Rng rng(20260814);
  Workload w = IndependentUniform(&rng, 200, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  GradedSource* left = &(*sources)[0];
  GradedSource* right = &(*sources)[1];

  std::vector<GradedObject> serial =
      DrainJoin(left, right, ParallelOptions{}, 40);
  ASSERT_FALSE(serial.empty());
  for (size_t pool_size : {1u, 2u, 7u}) {
    ThreadPool pool(pool_size);
    for (size_t depth : {1u, 2u, 8u, 64u}) {
      ParallelOptions options;
      options.pool = &pool;
      options.prefetch_depth = depth;
      ExpectSameStream(serial, DrainJoin(left, right, options, 40),
                       "join/pool" + std::to_string(pool_size) + "/depth" +
                           std::to_string(depth));
    }
  }
}

// Serves only the first `limit` sorted items of `inner` but reports the
// full Size(): a subsystem whose sorted stream ends early, without
// violating the join's same-universe size check.
class ShortStreamSource final : public GradedSource {
 public:
  ShortStreamSource(GradedSource* inner, size_t limit)
      : inner_(inner), limit_(limit) {}
  size_t Size() const override { return inner_->Size(); }
  std::optional<GradedObject> NextSorted() override {
    if (served_ >= limit_) return std::nullopt;
    ++served_;
    return inner_->NextSorted();
  }
  void RestartSorted() override {
    served_ = 0;
    inner_->RestartSorted();
  }
  double RandomAccess(ObjectId id) override {
    return inner_->RandomAccess(id);
  }
  std::vector<GradedObject> AtLeast(double threshold) override {
    return inner_->AtLeast(threshold);
  }
  std::string name() const override { return "short-stream"; }

 private:
  GradedSource* inner_;
  const size_t limit_;
  size_t served_ = 0;
};

TEST(ParallelJoinTest, TieStormAndTruncatedInputsStayEquivalent) {
  // Plateaus of duplicate grades exercise the heap tie-breaks; a truncated
  // sorted stream exercises exhaustion mid-pipeline.
  Rng rng(20260815);
  Workload ties = QuantizedUniform(&rng, 150, 2, 3);
  Result<std::vector<VectorSource>> tie_sources = ties.MakeSources();
  ASSERT_TRUE(tie_sources.ok());
  Workload w = IndependentUniform(&rng, 150, 2);
  Result<std::vector<VectorSource>> full = w.MakeSources();
  ASSERT_TRUE(full.ok());
  ShortStreamSource short_right(&(*full)[1], 20);

  struct Pair {
    GradedSource* left;
    GradedSource* right;
    const char* name;
  };
  const Pair pairs[] = {
      {&(*tie_sources)[0], &(*tie_sources)[1], "tie-storm"},
      {&(*full)[0], &short_right, "truncated"},
  };
  for (const Pair& p : pairs) {
    std::vector<GradedObject> serial =
        DrainJoin(p.left, p.right, ParallelOptions{}, 30);
    ThreadPool pool(3);
    for (size_t depth : {2u, 64u}) {
      ParallelOptions options;
      options.pool = &pool;
      options.prefetch_depth = depth;
      ExpectSameStream(serial, DrainJoin(p.left, p.right, options, 30),
                       std::string(p.name) + "/depth" + std::to_string(depth));
    }
  }
}

TEST(ParallelJoinTest, ComposedThreeWayPipelinePrefetchesEveryLevel) {
  // join(join(A,B),C): parallel options at both levels; the composed stream
  // must match the fully serial composition item for item.
  Rng rng(20260816);
  Workload w = IndependentUniform(&rng, 120, 3);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());

  auto drain_composed = [&](const ParallelOptions& options) {
    for (VectorSource& s : *sources) s.RestartSorted();
    Result<TopKJoinSource> inner = TopKJoinSource::Create(
        &(*sources)[0], &(*sources)[1], MinRule(), "inner", options);
    EXPECT_TRUE(inner.ok());
    Result<TopKJoinSource> outer = TopKJoinSource::Create(
        &*inner, &(*sources)[2], MinRule(), "outer", options);
    EXPECT_TRUE(outer.ok());
    std::vector<GradedObject> out;
    while (out.size() < 25) {
      std::optional<GradedObject> next = outer->NextSorted();
      if (!next.has_value()) break;
      out.push_back(*next);
    }
    return out;
  };

  std::vector<GradedObject> serial = drain_composed(ParallelOptions{});
  ASSERT_FALSE(serial.empty());
  ThreadPool pool(4);
  for (size_t depth : {1u, 8u}) {
    ParallelOptions options;
    options.pool = &pool;
    options.prefetch_depth = depth;
    ExpectSameStream(serial, drain_composed(options),
                     "composed/depth" + std::to_string(depth));
  }
}

TEST(ParallelJoinTest, AuditorConfirmsJoinAccessLogContract) {
  Rng rng(20260817);
  Workload w = QuantizedUniform(&rng, 180, 2, 5);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  ThreadPool pool(4);
  ParallelAuditOptions options;
  options.parallel.pool = &pool;
  options.parallel.prefetch_depth = 8;
  AuditReport report = AuditJoinParallelEquivalence(
      &(*sources)[0], &(*sources)[1], MinRule(), /*emit=*/20, options);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.checks_run(), 0u);
}

TEST(ParallelJoinTest, AuditorRefutesANonRepeatableJoinInput) {
  Rng rng(20260818);
  Workload w = IndependentUniform(&rng, 150, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  ShrinkingSource unstable(&(*sources)[1], 2);

  ThreadPool pool(2);
  ParallelAuditOptions options;
  options.parallel.pool = &pool;
  options.parallel.prefetch_depth = 4;
  AuditReport report = AuditJoinParallelEquivalence(
      &(*sources)[0], &unstable, MinRule(), /*emit=*/20, options);
  EXPECT_FALSE(report.ok())
      << "a non-repeatable join input must not audit clean";
  EXPECT_FALSE(report.findings().empty());
}

TEST(ParallelEquivalenceTest, AuditorRefutesANonRepeatableSourceUnderCa) {
  // The refutation witness must also fire through CA's mixed sorted/random
  // log shape, not just TA's.
  Rng rng(20260819);
  Workload w = IndependentUniform(&rng, 200, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  ShrinkingSource unstable(&(*sources)[1], 3);
  std::vector<GradedSource*> ptrs = {&(*sources)[0], &unstable};

  ThreadPool pool(2);
  ParallelAuditOptions options;
  options.k = 5;
  options.parallel.pool = &pool;
  options.parallel.prefetch_depth = 4;
  AuditReport report = AuditParallelEquivalence(
      ptrs, *MinRule(), AuditedAlgorithm::kCombined, options);
  EXPECT_FALSE(report.ok())
      << "a non-repeatable source must not audit clean under CA";
  EXPECT_FALSE(report.findings().empty());
}

TEST(ParallelExecutorTest, ExecutorOptionsRouteThroughToPlans) {
  // End-to-end through ExecuteTopK: the parallel knobs reach the chosen
  // algorithm (covered in detail above; this pins the plumbing).
  Rng rng(20260813);
  Workload w = IndependentUniform(&rng, 150, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);

  ThreadPool pool(3);
  ParallelOptions options;
  options.pool = &pool;
  options.prefetch_depth = 8;
  Result<TopKResult> serial = ThresholdTopK(ptrs, *MinRule(), 5);
  Result<TopKResult> parallel = ThresholdTopK(ptrs, *MinRule(), 5, options);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->items.size(), parallel->items.size());
  for (size_t r = 0; r < serial->items.size(); ++r) {
    EXPECT_EQ(serial->items[r].id, parallel->items[r].id);
  }
}

}  // namespace
}  // namespace fuzzydb
